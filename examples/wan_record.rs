//! Recreate the §4 Internet2 Land Speed Record run: a single TCP stream
//! from Sunnyvale to Geneva across the OC-192/OC-48 circuit, with the
//! paper's BDP-tuned socket buffers — then show what goes wrong with
//! mistuned buffers (the Table 1 warning).
//!
//! ```text
//! cargo run --release --example wan_record
//! ```

use tengig::experiments::wan::record_run;
use tengig::report::{humanize, Table};
use tengig_net::WanSpec;
use tengig_sim::Nanos;

fn main() {
    let wan = WanSpec::record_run();
    println!("path: Sunnyvale → (OC-192 POS) → Chicago → (OC-48 POS) → Geneva");
    println!(
        "RTT {:.0} ms, bottleneck {:.2} Gb/s (OC-48 SONET payload), BDP {:.1} MB\n",
        wan.rtt_small().as_millis_f64(),
        wan.forward_path().bottleneck().gbps(),
        wan.bdp() as f64 / 1e6,
    );

    let warmup = Nanos::from_secs(3);
    let window = Nanos::from_secs(3);

    let mut t = Table::new(
        "single-stream TCP, Sunnyvale ↔ Geneva (10,037 km)",
        &[
            "socket buffers",
            "steady Gb/s",
            "payload eff.",
            "rtx",
            "drops",
            "1 TB takes",
        ],
    );
    // The record configuration: buffers ≈ 2×BDP.
    let rec = record_run(&wan, None, warmup, window);
    t.row(vec![
        "tuned (≈2×BDP)".into(),
        format!("{:.3}", rec.gbps),
        format!("{:.1}%", rec.payload_efficiency * 100.0),
        rec.retransmits.to_string(),
        rec.drops.to_string(),
        humanize(rec.terabyte_time),
    ]);
    // Undersized buffers: the flow-control window throttles the stream.
    let small = record_run(&wan, Some(8 << 20), warmup, window);
    t.row(vec![
        "undersized (8 MB)".into(),
        format!("{:.3}", small.gbps),
        format!("{:.1}%", small.payload_efficiency * 100.0),
        small.retransmits.to_string(),
        small.drops.to_string(),
        humanize(small.terabyte_time),
    ]);
    // Oversized buffers against a shallow router queue: congestion loss
    // and the AIMD sawtooth the paper's Table 1 warns about.
    let shallow = wan.with_bottleneck_buffer(6 << 20);
    let over = record_run(&shallow, Some(256 << 20), warmup, window);
    t.row(vec![
        "oversized + 6MB router buffer".into(),
        format!("{:.3}", over.gbps),
        format!("{:.1}%", over.payload_efficiency * 100.0),
        over.retransmits.to_string(),
        over.drops.to_string(),
        humanize(over.terabyte_time),
    ]);
    println!("{}", t.render());
    println!("paper: 2.38 Gb/s sustained, ≈99% payload efficiency, a terabyte in <1 hour;");
    println!("\"setting the socket buffer too large can severely impact performance\" (§3.5.1).");
}
