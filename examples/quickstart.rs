//! Quickstart: run one NTTCP throughput measurement between two simulated
//! Dell PowerEdge 2650s connected back-to-back with Intel PRO/10GbE
//! adapters, at two rungs of the paper's tuning ladder.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tengig::config::LadderRung;
use tengig::experiments::latency::netpipe_point;
use tengig::experiments::throughput::nttcp_point;
use tengig_ethernet::Mtu;

fn main() {
    println!("tengig quickstart: the SC'03 10GbE case study in simulation\n");

    // Stock configuration: SMP kernel, MMRBC 512, default windows.
    let stock = LadderRung::Stock.pe2650_config(Mtu::JUMBO_9000);
    let r = nttcp_point(stock, stock.sysctls.mss(), 8_000, 1);
    println!(
        "stock PE2650, 9000-byte MTU : {:>6.2} Gb/s  (paper: 2.7)   rx CPU load {:.2}",
        r.throughput.gbps(),
        r.rx_cpu_load
    );

    // The paper's fully tuned configuration: MMRBC 4096, uniprocessor
    // kernel, 256 KB socket buffers, 8160-byte MTU.
    let tuned = LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160);
    let r = nttcp_point(tuned, tuned.sysctls.mss(), 8_000, 1);
    println!(
        "tuned PE2650, 8160-byte MTU : {:>6.2} Gb/s  (paper: 4.11)  rx CPU load {:.2}",
        r.throughput.gbps(),
        r.rx_cpu_load
    );

    // End-to-end latency, NetPipe-style single-byte ping-pong.
    let lat = netpipe_point(tuned, 1, false);
    println!(
        "one-way latency, back-to-back: {:>6.2} us  (paper: 19)",
        lat.as_micros_f64()
    );

    println!("\nEvery knob the paper turns is a config field — see");
    println!("`tengig::config::TuningStep` and `examples/optimization_ladder.rs`.");
}
