//! Regenerate any paper figure or table as text/gnuplot-style output.
//!
//! ```text
//! cargo run --release --example figures -- fig3 [count]
//! cargo run --release --example figures -- all
//! ```
//!
//! Supported artifacts: `fig3 fig4 fig5 fig6 fig7 fig8 table1 comparison`.

use tengig::analytic::{table1, WindowQuantization};
use tengig::config::LadderRung;
use tengig::experiments::latency::{latency_sweep, paper_latency_payloads, without_coalescing};
use tengig::experiments::throughput::throughput_sweep;
use tengig::report::{figure, humanize, Table};
use tengig_ethernet::Mtu;
use tengig_nic::Interconnect;
use tengig_sim::stats::Series;

/// Reduced sweep (every 512 B) — the full 128-byte-step sweep of the paper
/// works too but takes proportionally longer.
fn payload_sweep() -> Vec<u64> {
    let mut v: Vec<u64> = (256..=16_384).step_by(512).collect();
    // Make sure the MSS points (the peaks) are present.
    for p in [1448, 8108, 8948, 15948] {
        if !v.contains(&p) {
            v.push(p);
        }
    }
    v.sort_unstable();
    v
}

fn fig3(count: u64) -> Vec<Series> {
    let payloads = payload_sweep();
    vec![
        throughput_sweep(
            LadderRung::Stock.pe2650_config(Mtu::STANDARD),
            "1500MTU,SMP,512PCI",
            &payloads,
            count,
        ),
        throughput_sweep(
            LadderRung::Stock.pe2650_config(Mtu::JUMBO_9000),
            "9000MTU,SMP,512PCI",
            &payloads,
            count,
        ),
    ]
}

fn fig4(count: u64) -> Vec<Series> {
    let payloads = payload_sweep();
    vec![
        throughput_sweep(
            LadderRung::OversizedWindows.pe2650_config(Mtu::STANDARD),
            "1500MTU,UP,4096PCI,256kbuf,medres",
            &payloads,
            count,
        ),
        throughput_sweep(
            LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000),
            "9000MTU,UP,4096PCI,256kbuf,medres",
            &payloads,
            count,
        ),
    ]
}

fn fig5(count: u64) -> Vec<Series> {
    let payloads = payload_sweep();
    let mut series = vec![
        throughput_sweep(
            LadderRung::Mtu16000.pe2650_config(Mtu::JUMBO_9000),
            "16000MTU,UP,4096PCI,256kbuf",
            &payloads,
            count,
        ),
        throughput_sweep(
            LadderRung::Mtu8160.pe2650_config(Mtu::JUMBO_9000),
            "8160MTU,UP,4096PCI,256kbuf",
            &payloads,
            count,
        ),
    ];
    // The paper's theoretical reference lines.
    for (label, gbps) in [
        ("Quadrics (theoretical)", 3.2),
        ("Myrinet (theoretical)", 2.0),
        ("GbE (theoretical)", 1.0),
    ] {
        let mut s = Series::new(label);
        s.push(*payloads.first().unwrap() as f64, gbps * 1000.0);
        s.push(*payloads.last().unwrap() as f64, gbps * 1000.0);
        series.push(s);
    }
    series
}

fn fig6() -> Vec<Series> {
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let payloads = paper_latency_payloads();
    vec![
        latency_sweep(cfg, "back-to-back (us)", &payloads, false),
        latency_sweep(cfg, "through FastIron 1500 (us)", &payloads, true),
    ]
}

fn fig7() -> Vec<Series> {
    let cfg = without_coalescing(LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000));
    let payloads = paper_latency_payloads();
    vec![
        latency_sweep(cfg, "back-to-back, no coalescing (us)", &payloads, false),
        latency_sweep(cfg, "through switch, no coalescing (us)", &payloads, true),
    ]
}

fn print_table1() {
    let mut t = Table::new(
        "Table 1: time to recover from a single packet loss",
        &[
            "path",
            "bandwidth",
            "RTT (ms)",
            "MSS (bytes)",
            "time to recover",
        ],
    );
    for row in table1() {
        t.row(vec![
            row.path.to_string(),
            row.bandwidth.to_string(),
            format!("{:.1}", row.rtt.as_millis_f64()),
            row.mss.to_string(),
            humanize(row.time),
        ]);
    }
    println!("{}", t.render());
}

fn print_fig8() {
    // Fig. 8: ideal vs MSS-allowed window — the §3.5.1 quantization.
    let mut t = Table::new(
        "Fig. 8: ideal vs MSS-allowed window (window quantization)",
        &[
            "ideal window",
            "snd MSS",
            "rcv MSS",
            "advertised",
            "sender-usable",
            "attenuation",
        ],
    );
    for (ideal, snd, rcv) in [
        (26_000u64, 8_948u64, 8_948u64), // the figure's ~26 KB example
        (48_000, 8_948, 8_948),          // the LAN ideal-window case
        (33_000, 8_960, 8_948),          // the §3.5.1 MSS-mismatch example
        (48_000, 1_448, 1_448),          // standard MTU barely loses
    ] {
        let wq = WindowQuantization {
            ideal_window: ideal,
            snd_mss: snd,
            rcv_mss: rcv,
        };
        t.row(vec![
            ideal.to_string(),
            snd.to_string(),
            rcv.to_string(),
            wq.advertised().to_string(),
            wq.sender_usable().to_string(),
            format!("{:.0}%", wq.attenuation_pct()),
        ]);
    }
    println!("{}", t.render());
}

fn print_comparison() {
    let mut t = Table::new(
        "§3.5.4: interconnect comparison (published numbers)",
        &[
            "interconnect",
            "theoretical",
            "unidirectional",
            "latency",
            "sockets-compatible",
        ],
    );
    let mut rows = Interconnect::all_baselines();
    rows.push(Interconnect::tengbe_tcp_paper());
    for ic in rows {
        t.row(vec![
            ic.name.to_string(),
            ic.theoretical.to_string(),
            ic.unidirectional.to_string(),
            format!("{:.1} us", ic.latency.as_micros_f64()),
            if ic.sockets_compatible { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let count: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000);

    let run = |name: &str| which == name || which == "all";
    if run("fig3") {
        println!(
            "{}",
            figure("Fig. 3: throughput of stock TCP (Mb/s)", &fig3(count))
        );
    }
    if run("fig4") {
        println!(
            "{}",
            figure(
                "Fig. 4: oversized windows + MMRBC 4096 + UP (Mb/s)",
                &fig4(count)
            )
        );
    }
    if run("fig5") {
        println!(
            "{}",
            figure("Fig. 5: non-standard MTUs (Mb/s)", &fig5(count))
        );
    }
    if run("fig6") {
        println!("{}", figure("Fig. 6: end-to-end latency (us)", &fig6()));
    }
    if run("fig7") {
        println!(
            "{}",
            figure("Fig. 7: latency without interrupt coalescing (us)", &fig7())
        );
    }
    if run("table1") {
        print_table1();
    }
    if run("fig8") {
        print_fig8();
    }
    if run("comparison") {
        print_comparison();
    }
}
