//! The §3.5.4 comparison: simulated 10GbE numbers against the published
//! figures for Gigabit Ethernet, Myrinet (GM and IP), and Quadrics QsNet
//! (Elan3 and IP), with the paper's advantage percentages recomputed from
//! the laboratory's own measurements.
//!
//! ```text
//! cargo run --release --example interconnect_comparison
//! ```

use tengig::config::LadderRung;
use tengig::experiments::latency::netpipe_point;
use tengig::experiments::throughput::nttcp_point;
use tengig::report::Table;
use tengig_ethernet::Mtu;
use tengig_nic::Interconnect;
use tengig_sim::{Bandwidth, Nanos};

fn main() {
    // Measure our 10GbE numbers in the tuned configuration.
    let cfg = LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160);
    println!("measuring tuned 10GbE in simulation…");
    let thr = nttcp_point(cfg, cfg.sysctls.mss(), 8_000, 7).throughput;
    let lat = netpipe_point(cfg, 1, false);
    let ours = Interconnect {
        name: "10GbE/TCP (simulated)",
        api: tengig_nic::InterconnectApi::TcpIp,
        theoretical: Bandwidth::from_gbps(10),
        unidirectional: thr,
        bidirectional: None,
        latency: lat,
        sockets_compatible: true,
    };

    let mut t = Table::new(
        "§3.5.4: TCP/IP and native performance across interconnects",
        &[
            "interconnect",
            "theoretical",
            "unidirectional",
            "latency",
            "10GbE thr adv",
            "10GbE lat adv",
        ],
    );
    for ic in Interconnect::all_baselines() {
        t.row(vec![
            ic.name.to_string(),
            ic.theoretical.to_string(),
            ic.unidirectional.to_string(),
            format!("{:.1} us", ic.latency.as_micros_f64()),
            format!("{:+.0}%", ours.throughput_advantage_pct(&ic)),
            format!("{:+.0}%", ours.latency_advantage_pct(&ic)),
        ]);
    }
    t.row(vec![
        ours.name.to_string(),
        ours.theoretical.to_string(),
        ours.unidirectional.to_string(),
        format!("{:.1} us", ours.latency.as_micros_f64()),
        "—".to_string(),
        "—".to_string(),
    ]);
    println!("{}", t.render());

    println!("paper's summary (§3.5.4): 10GbE throughput >300% better than GbE,");
    println!(">120% better than Myrinet/IP, >80% better than QsNet/IP; latency ~40%");
    println!("better than GbE but 1.7x/2.4x slower than Myrinet-GM/QsNet-Elan3.");

    // The best-case 12 µs of §5 comes from the faster E7505-class hosts.
    let e7 = tengig::experiments::anecdotal::e7505_config();
    let best = netpipe_point(e7, 1, false);
    println!(
        "\nbest-case one-way latency on E7505-class hosts: {:.1} us (paper: 12)",
        best.as_micros_f64()
    );
    let _ = Nanos::ZERO;
}
