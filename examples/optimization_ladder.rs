//! Walk the §3.3 optimization ladder rung by rung, printing peak and mean
//! throughput plus CPU loads for each cumulative tuning step — the
//! narrative spine of the paper.
//!
//! ```text
//! cargo run --release --example optimization_ladder [packet-count]
//! ```

use tengig::experiments::throughput::ladder;
use tengig::report::Table;
use tengig_ethernet::Mtu;

fn main() {
    let count: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_000);

    // Sweep points near the interesting payloads; the peaks live at the
    // MSS of each configuration.
    let payloads = [1448, 4096, 8108, 8948, 15948];
    println!("running the §3.3 ladder at 9000-byte base MTU ({count} packets/point)…\n");
    let results = ladder(Mtu::JUMBO_9000, &payloads, count);

    let mut table = Table::new(
        "§3.3 optimization ladder (base MTU 9000)",
        &[
            "configuration",
            "peak Mb/s",
            "mean Mb/s",
            "tx CPU",
            "rx CPU",
        ],
    );
    for r in &results {
        table.row(vec![
            r.label.clone(),
            format!("{:.0}", r.peak_mbps),
            format!("{:.0}", r.mean_mbps),
            format!("{:.2}", r.tx_cpu_load),
            format!("{:.2}", r.rx_cpu_load),
        ]);
    }
    println!("{}", table.render());

    println!("paper reference peaks: stock 2.7 Gb/s → +MMRBC 3.6 → +UP (~+10% avg)");
    println!("→ +256KB windows 3.9 → 8160 MTU 4.11 → 16000 MTU 4.09");
}
