# Development targets. `make ci` is the gate every change must pass.

CARGO ?= cargo

.PHONY: ci build test fmt clippy benches-check lint obs-check faults-check bench bench-gate

ci: build test fmt clippy benches-check lint obs-check faults-check

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

fmt:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --all-targets -- -D warnings

# Bench targets are test = false (they regenerate full paper figures and
# would dominate `cargo test`); keep them compiling instead. Release
# profile: that is the profile they run under, and debug-only codegen
# issues in cold bench code are not worth a separate compile.
benches-check:
	$(CARGO) check --benches --release

# Determinism lint: forbids wall-clock time, unseeded RNGs, hash-map
# iteration, unwrap/panic in hot paths, floats in the event loop, and
# sweeps that bypass SweepRunner. See crates/lint.
lint:
	$(CARGO) run --release -q -p tengig-lint

# Observability determinism gate: runs the pinned-seed throughput sweep
# with metrics enabled on 1 and 4 worker threads (timeline sidecars must
# be byte-identical), then with obs disabled (report must byte-match the
# checked-in golden — the side-channel never touches the primary bytes).
# Regenerate the golden deliberately by appending `--write-golden`.
obs-check:
	$(CARGO) run --release -q -p tengig-bench --bin tengig-obs -- \
		check goldens/obs_throughput.jsonl

# Fault-injection determinism gate: runs the pinned burst-loss sweep, the
# flap-recovery sweep, and the 64-scenario chaos campaign on 1 and 4
# worker threads (reports must be byte-identical), then byte-compares
# each against its checked-in golden (goldens/faults_*.jsonl).
# Regenerate deliberately by appending `--write-golden`.
faults-check:
	$(CARGO) run --release -q -p tengig-bench --bin tengig-chaos -- \
		check goldens

# Refresh the wall-clock benchmark baseline: runs the fixed pinned-seed
# workload per experiment family and rewrites BENCH_sim.json in place.
# Commit the result to claim a performance win (or accept a justified
# regression).
bench:
	$(CARGO) run --release -p tengig-bench --bin tengig-bench -- --out BENCH_sim.json

# Gate the current tree against the checked-in baseline: events/sec per
# family must stay within ±15% of BENCH_sim.json (both directions), and
# event/byte counts must match exactly. The fresh run is written next to
# the baseline for inspection, never over it.
bench-gate:
	$(CARGO) run --release -p tengig-bench --bin tengig-bench -- \
		--out target/BENCH_current.json --check BENCH_sim.json
