# Development targets. `make ci` is the gate every change must pass.
#
# `ci` ordering: cheap structural gates first (build, test, fmt, clippy),
# then the compile-only bench check, then the determinism gates in
# increasing cost — lint (static: runs its own selftests, then lints the
# live tree and byte-compares the JSON report against
# goldens/lint_baseline.json) before obs-check, faults-check, grid-check
# and prof-check (dynamic: full pinned-seed sweeps). grid-check and
# prof-check run last: they are the only gates that spin up the sharded
# engine, so a plain single-calendar determinism break surfaces in the
# cheaper gates first and a grid/prof-only failure points straight at the
# shard or profiling layer. A static violation fails in seconds instead
# of after a minute of simulation.

CARGO ?= cargo

.PHONY: ci build test fmt clippy benches-check lint lint-selftest obs-check faults-check grid-check prof-check serve-check bench bench-gate

ci: build test fmt clippy benches-check lint obs-check faults-check grid-check prof-check serve-check

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

fmt:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --all-targets -- -D warnings

# Bench targets are test = false (they regenerate full paper figures and
# would dominate `cargo test`); keep them compiling instead. Release
# profile: that is the profile they run under, and debug-only codegen
# issues in cold bench code are not worth a separate compile.
benches-check:
	$(CARGO) check --benches --release

# Determinism lint: lexes and parses every workspace source, forbids
# wall-clock time, unseeded RNGs, hash-map iteration, unwrap/panic and
# prints in hot paths, floats and lossy casts in the event loop, sweeps
# that bypass SweepRunner — and proves, over the call graph, that no
# hot-path root reaches a nondeterminism source. The JSON report lands in
# target/lint.json and must byte-match goldens/lint_baseline.json (zero
# findings). Runs the lint crate's own selftests first: a linter that
# no longer fires on its known-bad fixtures is a green light worth
# nothing. See crates/lint.
lint: lint-selftest
	mkdir -p target
	$(CARGO) run --release -q -p tengig-lint -- --json . > target/lint.json
	$(CARGO) run --release -q -p tengig-lint -- --baseline goldens/lint_baseline.json .

lint-selftest:
	$(CARGO) test -q -p tengig-lint

# Observability determinism gate: runs the pinned-seed throughput sweep
# with metrics enabled on 1 and 4 worker threads (timeline sidecars must
# be byte-identical), then with obs disabled (report must byte-match the
# checked-in golden — the side-channel never touches the primary bytes).
# Regenerate the golden deliberately by appending `--write-golden`.
obs-check:
	$(CARGO) run --release -q -p tengig-bench --bin tengig-obs -- \
		check goldens/obs_throughput.jsonl

# Fault-injection determinism gate: runs the pinned burst-loss sweep, the
# flap-recovery sweep, and the 64-scenario chaos campaign on 1 and 4
# worker threads (reports must be byte-identical), then byte-compares
# each against its checked-in golden (goldens/faults_*.jsonl).
# Regenerate deliberately by appending `--write-golden`.
faults-check:
	$(CARGO) run --release -q -p tengig-bench --bin tengig-chaos -- \
		check goldens

# Sharded-engine determinism gate: runs the pinned-seed grid fabric sweep
# (fat-tree and torus presets) at the given shard count on 1 and 4 sweep
# threads — the two thread counts must be byte-identical, and both must
# byte-match goldens/grid.jsonl. CI runs this at shards 1 and 4; the
# golden is shard-count-invariant by construction, so every cell of the
# matrix compares against the same file. On mismatch the fresh run lands
# in target/grid_current.jsonl for diffing. Regenerate deliberately by
# appending `--write-golden`.
grid-check:
	$(CARGO) run --release -q -p tengig-bench --bin tengig-grid -- \
		check goldens/grid.jsonl --shards 1
	$(CARGO) run --release -q -p tengig-bench --bin tengig-grid -- \
		check goldens/grid.jsonl --shards 4

# Self-profiling determinism gate: runs the pinned grid sweep with the
# profiling plane collected, at the given shard count on 1 and 4 sweep
# threads. The gated "sim" profiling sidecar must be byte-identical
# across thread counts and byte-match goldens/prof_throughput.jsonl —
# which is shard-count-invariant, so every cell compares against the same
# file — and the profiled run's primary report must byte-match
# goldens/grid.jsonl (collecting the profile never perturbs a sweep
# byte). The per-shard "local" and host-domain "wall" sections are never
# gated. On mismatch the fresh sidecar lands in target/prof_current.jsonl
# for diffing (`tengig-prof diff`). Regenerate deliberately by appending
# `--write-golden`.
prof-check:
	$(CARGO) run --release -q -p tengig-bench --bin tengig-prof -- \
		check goldens/prof_throughput.jsonl --shards 1
	$(CARGO) run --release -q -p tengig-bench --bin tengig-prof -- \
		check goldens/prof_throughput.jsonl --shards 4

# Open-loop workload determinism gate: runs the pinned serve sweep (the
# four-rung load ladder plus the four-rung disk-to-disk striping ladder)
# at the given shard count on 1 and 4 sweep threads. The gated document
# — the FCT/goodput report followed by the per-host CPU-saturation
# sidecar — must be byte-identical across thread counts and byte-match
# goldens/serve.jsonl, which is shard-count-invariant by construction
# (CI runs shards 1 and 4 against the same file). On mismatch the fresh
# document lands in target/serve_current.jsonl for diffing. Regenerate
# deliberately by appending `--write-golden`.
serve-check:
	$(CARGO) run --release -q -p tengig-bench --bin tengig-serve -- \
		check goldens/serve.jsonl --shards 1
	$(CARGO) run --release -q -p tengig-bench --bin tengig-serve -- \
		check goldens/serve.jsonl --shards 4

# Refresh the wall-clock benchmark baseline: runs the fixed pinned-seed
# workload per experiment family and rewrites BENCH_sim.json in place.
# Commit the result to claim a performance win (or accept a justified
# regression).
bench:
	$(CARGO) run --release -p tengig-bench --bin tengig-bench -- --out BENCH_sim.json

# Gate the current tree against the checked-in baseline: events/sec per
# family must stay within ±15% of BENCH_sim.json (both directions), and
# event/byte counts must match exactly. The fresh run is written next to
# the baseline for inspection, never over it.
bench-gate:
	$(CARGO) run --release -p tengig-bench --bin tengig-bench -- \
		--out target/BENCH_current.json --check BENCH_sim.json
