# Development targets. `make ci` is the gate every change must pass.

CARGO ?= cargo

.PHONY: ci build test clippy benches-check lint

ci: build test clippy benches-check lint

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --all-targets -- -D warnings

# Bench targets are test = false (they regenerate full paper figures and
# would dominate `cargo test`); keep them compiling instead.
benches-check:
	$(CARGO) check --benches

# Determinism lint: forbids wall-clock time, unseeded RNGs, hash-map
# iteration, unwrap/panic in hot paths, floats in the event loop, and
# sweeps that bypass SweepRunner. See crates/lint.
lint:
	$(CARGO) run --release -q -p tengig-lint
