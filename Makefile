# Development targets. `make ci` is the gate every change must pass.

CARGO ?= cargo

.PHONY: ci build test clippy benches-check

ci: build test clippy benches-check

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --all-targets -- -D warnings

# Bench targets are test = false (they regenerate full paper figures and
# would dominate `cargo test`); keep them compiling instead.
benches-check:
	$(CARGO) check --benches
