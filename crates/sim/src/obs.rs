//! The observability layer: per-flow metrics timelines and the flight
//! recorder that grow the MAGNET analog ([`crate::trace`]) into a real
//! diagnostic subsystem.
//!
//! The paper's conclusions rest on instrumentation — MAGNET packet-path
//! traces, per-optimization CPU-load numbers, and cwnd/throughput-over-time
//! plots that explain the WAN record's AIMD behaviour. This module provides
//! the simulated equivalents:
//!
//! * [`Timelines`] — compact step-series of per-flow TCP state (cwnd,
//!   ssthresh, srtt/rttvar, bytes in flight, retransmits), per-host NIC and
//!   CPU state, and per-link queue depths, sampled on a sim-clock cadence.
//! * [`FlightDump`] — a rendering of the per-host [`crate::Tracer`] rings
//!   (the "flight recorder"), produced when the [`crate::Sanitizer`] fires
//!   so a violation comes with the story, not just a scalar.
//! * [`ObsConfig`] — the knobs, including the tracer-sampling RNG seed
//!   discipline (seeded from the lab config via [`crate::SimRng`], never a
//!   fixed constant).
//!
//! Everything here honors the house determinism rules: values are integer
//! (`u64` / [`Nanos`]), containers are `BTreeMap`-ordered, there is no
//! wall-clock anywhere, and serialization is byte-deterministic — the same
//! run on 1 and N sweep threads emits identical timeline JSONL.

use crate::time::Nanos;
use crate::trace::TraceEvent;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Configuration of the observability layer for one lab.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Sim-clock cadence between metric samples.
    pub sample_interval: Nanos,
    /// Per-host flight-recorder ring capacity (recent detailed events).
    pub ring_capacity: usize,
    /// Keep ring detail for a random ~1/k sample of packets (1 = all) —
    /// MAGNET's sampling mode. The sampling RNG is forked from the lab
    /// seed, so the kept sample is a pure function of `(config, seed)`.
    pub sample_every: u64,
}

impl ObsConfig {
    /// Default sampling cadence: 1 ms of sim time — fine enough to resolve
    /// AIMD sawtooth on a 180 ms-RTT WAN path, coarse enough to stay
    /// compact on microsecond-scale LAN runs.
    pub const DEFAULT_INTERVAL: Nanos = Nanos::from_millis(1);

    /// Default flight-recorder ring capacity per host.
    pub const DEFAULT_RING: usize = 256;

    /// The sampling cadence guarded against a zero interval: a sampler
    /// armed every 0 ns would reschedule itself at the current instant
    /// forever (and an interval divisor of 0 is a divide-by-zero), so a
    /// misconfigured cadence clamps to 1 ns. Zero is a configuration bug
    /// and trips a debug assertion; release runs keep going, clamped.
    pub fn clamped_interval(&self) -> Nanos {
        debug_assert!(
            self.sample_interval > Nanos::ZERO,
            "obs sampling interval must be positive"
        );
        self.sample_interval.max(Nanos::from_nanos(1))
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            sample_interval: Self::DEFAULT_INTERVAL,
            ring_capacity: Self::DEFAULT_RING,
            sample_every: 1,
        }
    }
}

/// What a step-series measures. Values are integers; sub-unit quantities
/// are scaled (`CpuPermille` is busy time in 1/1000ths of the sampling
/// interval; RTT metrics are nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetricKind {
    /// Congestion window, segments.
    Cwnd,
    /// Slow-start threshold, segments.
    Ssthresh,
    /// Smoothed RTT estimate, nanoseconds (0 until the first sample).
    SrttNanos,
    /// RTT variance estimate, nanoseconds.
    RttvarNanos,
    /// Unacknowledged bytes in flight.
    BytesInFlight,
    /// Cumulative retransmissions.
    Retransmits,
    /// Frames DMA-complete in the NIC receive ring, awaiting an interrupt.
    RxRingFrames,
    /// Frames held by the interrupt coalescer, awaiting timer or cap.
    CoalescePending,
    /// Configured interrupt-coalescing delay, nanoseconds.
    CoalesceDelayNanos,
    /// Hottest-CPU busy time over the last interval, in permille (0-1000).
    CpuPermille,
    /// Bytes backlogged across the link's hop queues.
    QueueBytes,
    /// Cumulative drops on the link (overflow + loss model).
    QueueDrops,
    /// Cumulative impairment-layer drops on the link (burst loss + flaps).
    ImpairDrops,
    /// Cumulative corrupted frames discarded by this host's NIC (bad FCS).
    RxCrcDrops,
    /// Cumulative busy nanoseconds of the hottest CPU. The grid-mode
    /// sibling of [`MetricKind::CpuPermille`]: a cumulative value stays
    /// constant while a shard idles, so per-shard series collapse to the
    /// same change points at any shard count and merge invariantly
    /// (a windowed delta decays to zero and would not).
    CpuBusyNanos,
}

impl MetricKind {
    /// Every kind, in serialization order.
    pub const ALL: [MetricKind; 15] = [
        MetricKind::Cwnd,
        MetricKind::Ssthresh,
        MetricKind::SrttNanos,
        MetricKind::RttvarNanos,
        MetricKind::BytesInFlight,
        MetricKind::Retransmits,
        MetricKind::RxRingFrames,
        MetricKind::CoalescePending,
        MetricKind::CoalesceDelayNanos,
        MetricKind::CpuPermille,
        MetricKind::QueueBytes,
        MetricKind::QueueDrops,
        MetricKind::ImpairDrops,
        MetricKind::RxCrcDrops,
        MetricKind::CpuBusyNanos,
    ];

    /// Parse the serialized name back into a kind.
    pub fn parse(name: &str) -> Option<MetricKind> {
        MetricKind::ALL
            .iter()
            .copied()
            .find(|k| k.to_string() == name)
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MetricKind::Cwnd => "cwnd",
            MetricKind::Ssthresh => "ssthresh",
            MetricKind::SrttNanos => "srtt_ns",
            MetricKind::RttvarNanos => "rttvar_ns",
            MetricKind::BytesInFlight => "bytes_in_flight",
            MetricKind::Retransmits => "retransmits",
            MetricKind::RxRingFrames => "rx_ring_frames",
            MetricKind::CoalescePending => "coalesce_pending",
            MetricKind::CoalesceDelayNanos => "coalesce_delay_ns",
            MetricKind::CpuPermille => "cpu_permille",
            MetricKind::QueueBytes => "queue_bytes",
            MetricKind::QueueDrops => "queue_drops",
            MetricKind::ImpairDrops => "impair_drops",
            MetricKind::RxCrcDrops => "rx_crc_drops",
            MetricKind::CpuBusyNanos => "cpu_busy_ns",
        };
        f.write_str(s)
    }
}

/// What a series is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scope {
    /// One endpoint of one flow.
    Flow {
        /// Flow index in the lab.
        flow: u32,
        /// Endpoint (0 = initiator/sender, 1 = peer).
        ep: u32,
    },
    /// One host.
    Host {
        /// Host index in the lab.
        host: u32,
    },
    /// One link (a hop path between two hosts).
    Link {
        /// Link index in the lab.
        link: u32,
    },
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Flow { flow, ep } => write!(f, "flow {flow}/{ep}"),
            Scope::Host { host } => write!(f, "host {host}"),
            Scope::Link { link } => write!(f, "link {link}"),
        }
    }
}

/// A compact step-series: `(t, v)` points recorded only when the value
/// changes, so a steady metric sampled ten thousand times costs one point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepSeries {
    points: Vec<(Nanos, u64)>,
}

impl StepSeries {
    /// An empty series.
    pub fn new() -> Self {
        StepSeries { points: Vec::new() }
    }

    /// Record a sample. Consecutive samples with an unchanged value are
    /// collapsed into the first point (step semantics).
    pub fn push(&mut self, t: Nanos, v: u64) {
        if self.points.last().map(|&(_, last)| last) == Some(v) {
            return;
        }
        self.points.push((t, v));
    }

    /// The recorded change points, in time order.
    pub fn points(&self) -> &[(Nanos, u64)] {
        &self.points
    }

    /// Number of change points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The step value in effect at time `t` (the last change at or before
    /// `t`), if any sample precedes it.
    pub fn value_at(&self, t: Nanos) -> Option<u64> {
        match self.points.partition_point(|&(pt, _)| pt <= t) {
            0 => None,
            n => self.points.get(n - 1).map(|&(_, v)| v),
        }
    }

    /// Smallest recorded value.
    pub fn min(&self) -> Option<u64> {
        self.points.iter().map(|&(_, v)| v).min()
    }

    /// Largest recorded value.
    pub fn max(&self) -> Option<u64> {
        self.points.iter().map(|&(_, v)| v).max()
    }

    /// The last recorded value.
    pub fn last(&self) -> Option<u64> {
        self.points.last().map(|&(_, v)| v)
    }
}

/// The full set of step-series recorded by one run, keyed by
/// `(scope, metric)` in `BTreeMap` order so serialization is
/// byte-deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timelines {
    /// The sampling cadence the series were recorded on.
    pub interval: Nanos,
    series: BTreeMap<(Scope, MetricKind), StepSeries>,
}

impl Timelines {
    /// An empty timeline set for the given sampling cadence. A zero
    /// interval is a configuration bug (it would make the sampler spin at
    /// one instant forever): it trips a debug assertion and clamps to
    /// 1 ns in release builds.
    pub fn new(interval: Nanos) -> Self {
        debug_assert!(
            interval > Nanos::ZERO,
            "timelines sampling interval must be positive"
        );
        Timelines {
            interval: interval.max(Nanos::from_nanos(1)),
            series: BTreeMap::new(),
        }
    }

    /// Fold another timeline set into this one. Grid mode records each
    /// scope's series on the one shard that owns it, so merging per-shard
    /// timelines reassembles the full picture; where both sides somehow
    /// recorded the same `(scope, metric)`, the change points are
    /// interleaved in time order and re-collapsed under step semantics.
    pub fn merge(&mut self, other: &Timelines) {
        debug_assert_eq!(
            self.interval, other.interval,
            "merging timelines with mismatched cadences"
        );
        for (key, s) in &other.series {
            let dst = self.series.entry(*key).or_default();
            if dst.points.is_empty() {
                dst.points = s.points.clone();
            } else {
                let mut all: Vec<(Nanos, u64)> =
                    dst.points.iter().chain(s.points.iter()).copied().collect();
                all.sort_by_key(|&(t, _)| t);
                let mut merged = StepSeries::new();
                for (t, v) in all {
                    merged.push(t, v);
                }
                *dst = merged;
            }
        }
    }

    /// Record one sample.
    pub fn record(&mut self, scope: Scope, metric: MetricKind, t: Nanos, v: u64) {
        self.series.entry((scope, metric)).or_default().push(t, v);
    }

    /// The series for one `(scope, metric)` pair, if recorded.
    pub fn get(&self, scope: Scope, metric: MetricKind) -> Option<&StepSeries> {
        self.series.get(&(scope, metric))
    }

    /// All series in deterministic `(scope, metric)` order.
    pub fn iter(&self) -> impl Iterator<Item = (&(Scope, MetricKind), &StepSeries)> {
        self.series.iter()
    }

    /// Number of recorded series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Serialize as JSON lines: one header object, then one object per
    /// series in `(scope, metric)` order. All values are integers, so the
    /// bytes are exactly reproducible on any platform.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"obs\":\"timelines\",\"interval_ns\":{},\"series\":{}}}",
            self.interval.as_nanos(),
            self.series.len()
        );
        for ((scope, metric), s) in &self.series {
            match scope {
                Scope::Flow { flow, ep } => {
                    let _ = write!(out, "{{\"scope\":\"flow\",\"flow\":{flow},\"ep\":{ep}");
                }
                Scope::Host { host } => {
                    let _ = write!(out, "{{\"scope\":\"host\",\"host\":{host}");
                }
                Scope::Link { link } => {
                    let _ = write!(out, "{{\"scope\":\"link\",\"link\":{link}");
                }
            }
            let _ = write!(out, ",\"metric\":\"{metric}\",\"points\":[");
            for (i, (t, v)) in s.points().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{}]", t.as_nanos(), v);
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Parse a document produced by [`Timelines::to_jsonl`]. The parser
    /// accepts exactly that shape (this is a round-trip format, not a
    /// general JSON reader).
    pub fn from_jsonl(text: &str) -> Result<Timelines, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| "empty timelines document".to_string())?;
        if !header.contains("\"obs\":\"timelines\"") {
            return Err(format!("not a timelines document: {header}"));
        }
        let interval = field_u64(header, "interval_ns")
            .ok_or_else(|| format!("header missing interval_ns: {header}"))?;
        let mut tl = Timelines::new(Nanos::from_nanos(interval));
        for (idx, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let scope = match field_str(line, "scope") {
                Some("flow") => Scope::Flow {
                    flow: field_u64(line, "flow").ok_or_else(|| err_at(lineno, "flow"))? as u32,
                    ep: field_u64(line, "ep").ok_or_else(|| err_at(lineno, "ep"))? as u32,
                },
                Some("host") => Scope::Host {
                    host: field_u64(line, "host").ok_or_else(|| err_at(lineno, "host"))? as u32,
                },
                Some("link") => Scope::Link {
                    link: field_u64(line, "link").ok_or_else(|| err_at(lineno, "link"))? as u32,
                },
                other => return Err(format!("line {lineno}: unknown scope {other:?}")),
            };
            let metric_name = field_str(line, "metric").ok_or_else(|| err_at(lineno, "metric"))?;
            let metric = MetricKind::parse(metric_name)
                .ok_or_else(|| format!("line {lineno}: unknown metric `{metric_name}`"))?;
            for (t, v) in parse_points(line).map_err(|e| format!("line {lineno}: {e}"))? {
                tl.record(scope, metric, Nanos::from_nanos(t), v);
            }
            // A constant series must survive the round trip even though
            // push() collapses repeats: to_jsonl only emits change points,
            // so nothing is lost here.
            tl.series.entry((scope, metric)).or_default();
        }
        Ok(tl)
    }

    /// A human-readable per-series summary (count, range, final value).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "timelines: {} series, {} sampling interval\n",
            self.series.len(),
            self.interval
        );
        for ((scope, metric), s) in &self.series {
            let _ = writeln!(
                out,
                "  {:<10} {:<18} steps={:<6} min={:<12} max={:<12} last={}",
                scope.to_string(),
                metric.to_string(),
                s.len(),
                s.min().unwrap_or(0),
                s.max().unwrap_or(0),
                s.last().unwrap_or(0),
            );
        }
        out
    }

    /// Differences between two timeline sets, one line per divergence
    /// (empty = identical). Reports series present on only one side and,
    /// for shared series, the first diverging change point.
    pub fn diff(&self, other: &Timelines) -> Vec<String> {
        let mut out = Vec::new();
        if self.interval != other.interval {
            out.push(format!(
                "sampling interval differs: {} vs {}",
                self.interval, other.interval
            ));
        }
        for (key @ (scope, metric), a) in &self.series {
            match other.series.get(key) {
                None => out.push(format!("{scope} {metric}: only in left")),
                Some(b) => {
                    if let Some(i) =
                        (0..a.len().max(b.len())).find(|&i| a.points().get(i) != b.points().get(i))
                    {
                        let render = |p: Option<&(Nanos, u64)>| match p {
                            Some((t, v)) => format!("{v} @ {t}"),
                            None => "—".to_string(),
                        };
                        out.push(format!(
                            "{scope} {metric}: first divergence at step {i}: {} vs {}",
                            render(a.points().get(i)),
                            render(b.points().get(i)),
                        ));
                        // Surrounding context: the change points around
                        // the divergence on each side, so the reader sees
                        // the step shape, not just one number.
                        let ctx = |s: &StepSeries| -> String {
                            let lo = i.saturating_sub(2).min(s.len());
                            let hi = (i + 3).min(s.len());
                            let mut parts: Vec<String> =
                                s.points()[lo..hi].iter().map(|p| render(Some(p))).collect();
                            if lo > 0 {
                                parts.insert(0, "…".to_string());
                            }
                            if hi < s.len() {
                                parts.push("…".to_string());
                            }
                            if parts.is_empty() {
                                "(no points)".to_string()
                            } else {
                                parts.join(", ")
                            }
                        };
                        out.push(format!("  left:  {}", ctx(a)));
                        out.push(format!("  right: {}", ctx(b)));
                    }
                }
            }
        }
        for (scope, metric) in other.series.keys() {
            if !self.series.contains_key(&(*scope, *metric)) {
                out.push(format!("{scope} {metric}: only in right"));
            }
        }
        out
    }
}

/// `"key":value` integer field lookup on one serialized line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `"key":"value"` string field lookup on one serialized line.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Parse the `"points":[[t,v],...]` array of one serialized line.
fn parse_points(line: &str) -> Result<Vec<(u64, u64)>, String> {
    let pat = "\"points\":[";
    let start = line
        .find(pat)
        .ok_or_else(|| "missing points array".to_string())?
        + pat.len();
    let rest = &line[start..];
    let end = rest
        .rfind(']')
        .ok_or_else(|| "unterminated points".to_string())?;
    let body = &rest[..end];
    let mut out = Vec::new();
    for pair in body.split("],[") {
        let pair = pair.trim_matches(|c| c == '[' || c == ']');
        if pair.is_empty() {
            continue;
        }
        let (t, v) = pair
            .split_once(',')
            .ok_or_else(|| format!("malformed point `{pair}`"))?;
        let t: u64 = t.parse().map_err(|e| format!("point time `{t}`: {e}"))?;
        let v: u64 = v.parse().map_err(|e| format!("point value `{v}`: {e}"))?;
        out.push((t, v));
    }
    Ok(out)
}

fn err_at(lineno: usize, key: &str) -> String {
    format!("line {lineno}: missing field `{key}`")
}

/// A flight-recorder dump: the recent [`TraceEvent`] rings of every host,
/// captured at the moment something went wrong (sanitizer violation, TCP
/// invariant failure, panicking lab). Renders both human-readable text
/// (for panic messages and terminals) and JSONL (for tooling).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightDump {
    /// Per-host `(host index, recent events oldest-first)`.
    pub hosts: Vec<(usize, Vec<TraceEvent>)>,
}

impl FlightDump {
    /// Whether no host recorded any events (tracers disabled or idle).
    pub fn is_empty(&self) -> bool {
        self.hosts.iter().all(|(_, evs)| evs.is_empty())
    }

    /// Total events across all hosts.
    pub fn len(&self) -> usize {
        self.hosts.iter().map(|(_, evs)| evs.len()).sum()
    }

    /// Human-readable rendering (the form embedded in panic messages).
    pub fn text(&self) -> String {
        if self.is_empty() {
            return "== flight recorder == (no trace events recorded)\n".to_string();
        }
        let mut out = String::from("== flight recorder ==\n");
        for (host, evs) in &self.hosts {
            let _ = writeln!(out, "host {host}: last {} trace events", evs.len());
            for e in evs {
                let _ = writeln!(
                    out,
                    "  [{:>14}] {:<11} packet={:<12} bytes={:<8} cost={}",
                    e.at.as_nanos(),
                    e.stage.to_string(),
                    e.packet,
                    e.bytes,
                    e.cost
                );
            }
        }
        out
    }

    /// JSONL rendering: one object per event, hosts in index order.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"obs\":\"flight\",\"hosts\":{},\"events\":{}}}",
            self.hosts.len(),
            self.len()
        );
        for (host, evs) in &self.hosts {
            for e in evs {
                let _ = writeln!(
                    out,
                    "{{\"host\":{host},\"at\":{},\"stage\":\"{}\",\"packet\":{},\"bytes\":{},\"cost\":{}}}",
                    e.at.as_nanos(),
                    e.stage,
                    e.packet,
                    e.bytes,
                    e.cost.as_nanos()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Stage;

    fn flow0() -> Scope {
        Scope::Flow { flow: 0, ep: 0 }
    }

    #[test]
    fn step_series_collapses_repeats() {
        let mut s = StepSeries::new();
        s.push(Nanos(10), 5);
        s.push(Nanos(20), 5);
        s.push(Nanos(30), 7);
        s.push(Nanos(40), 7);
        s.push(Nanos(50), 5);
        assert_eq!(
            s.points(),
            &[(Nanos(10), 5), (Nanos(30), 7), (Nanos(50), 5)]
        );
        assert_eq!(s.value_at(Nanos(9)), None);
        assert_eq!(s.value_at(Nanos(10)), Some(5));
        assert_eq!(s.value_at(Nanos(35)), Some(7));
        assert_eq!(s.value_at(Nanos(99)), Some(5));
        assert_eq!(s.min(), Some(5));
        assert_eq!(s.max(), Some(7));
        assert_eq!(s.last(), Some(5));
    }

    #[test]
    fn timelines_round_trip_jsonl() {
        let mut tl = Timelines::new(Nanos::from_millis(1));
        tl.record(flow0(), MetricKind::Cwnd, Nanos(1_000), 8948);
        tl.record(flow0(), MetricKind::Cwnd, Nanos(2_000), 17896);
        tl.record(
            Scope::Host { host: 1 },
            MetricKind::CpuPermille,
            Nanos(1_000),
            512,
        );
        tl.record(
            Scope::Link { link: 0 },
            MetricKind::QueueBytes,
            Nanos(1_000),
            0,
        );
        let text = tl.to_jsonl();
        let back = Timelines::from_jsonl(&text).expect("round trip parses");
        assert_eq!(back, tl);
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn jsonl_is_deterministic_regardless_of_record_order() {
        let build = |swap: bool| {
            let mut tl = Timelines::new(Nanos::from_millis(1));
            let records = [
                (Scope::Host { host: 0 }, MetricKind::RxRingFrames, 3u64),
                (flow0(), MetricKind::Cwnd, 8948),
            ];
            let order: Vec<_> = if swap {
                records.iter().rev().collect()
            } else {
                records.iter().collect()
            };
            for (scope, metric, v) in order {
                tl.record(*scope, *metric, Nanos(1000), *v);
            }
            tl.to_jsonl()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn diff_reports_divergence_and_missing_series() {
        let mut a = Timelines::new(Nanos::from_millis(1));
        let mut b = Timelines::new(Nanos::from_millis(1));
        a.record(flow0(), MetricKind::Cwnd, Nanos(1000), 10);
        b.record(flow0(), MetricKind::Cwnd, Nanos(1000), 11);
        a.record(flow0(), MetricKind::Retransmits, Nanos(1000), 0);
        assert!(a.diff(&a.clone()).is_empty());
        let d = a.diff(&b);
        assert_eq!(d.len(), 4, "{d:?}");
        assert!(d[0].contains("first divergence"), "{d:?}");
        assert!(
            d[0].contains("flow 0/0") && d[0].contains("cwnd"),
            "divergence names (scope, metric): {d:?}"
        );
        assert!(
            d[0].contains("10 @ 1.000us") && d[0].contains("11 @ 1.000us"),
            "divergence carries (t, value) for both sides: {d:?}"
        );
        assert!(d[1].contains("left:"), "{d:?}");
        assert!(d[2].contains("right:"), "{d:?}");
        assert!(d[3].contains("only in left"), "{d:?}");
    }

    #[test]
    fn diff_context_windows_the_divergence() {
        let mut a = Timelines::new(Nanos::from_millis(1));
        let mut b = Timelines::new(Nanos::from_millis(1));
        for (i, v) in [1u64, 2, 3, 4, 5, 6, 7].iter().enumerate() {
            a.record(flow0(), MetricKind::Cwnd, Nanos(1000 * (i as u64 + 1)), *v);
            let v = if i == 3 { 99 } else { *v };
            b.record(flow0(), MetricKind::Cwnd, Nanos(1000 * (i as u64 + 1)), v);
        }
        let d = a.diff(&b);
        assert!(d[0].contains("step 3"), "{d:?}");
        // Context shows ±2 points with ellipses marking the truncation.
        assert!(d[1].starts_with("  left:  …, "), "{d:?}");
        assert!(d[1].contains("4 @ 4.000us"), "{d:?}");
        assert!(d[2].contains("99 @ 4.000us"), "{d:?}");
        assert!(d[1].ends_with(", …"), "{d:?}");
    }

    #[test]
    fn value_at_boundaries_and_before_first_point() {
        let mut s = StepSeries::new();
        s.push(Nanos(100), 1);
        s.push(Nanos(200), 2);
        // Strictly before the first change point: no value in effect.
        assert_eq!(s.value_at(Nanos(0)), None);
        assert_eq!(s.value_at(Nanos(99)), None);
        // Exactly at a change point the new value is already in effect.
        assert_eq!(s.value_at(Nanos(100)), Some(1));
        assert_eq!(s.value_at(Nanos(199)), Some(1));
        assert_eq!(s.value_at(Nanos(200)), Some(2));
        assert_eq!(s.value_at(Nanos(u64::MAX)), Some(2));
        assert_eq!(StepSeries::new().value_at(Nanos(0)), None);
    }

    #[test]
    fn from_jsonl_rejects_malformed_lines() {
        let err = |text: &str| Timelines::from_jsonl(text).expect_err("must be rejected");
        assert!(err("").contains("empty timelines document"));
        assert!(err("{\"nope\":1}").contains("not a timelines document"));
        assert!(err("{\"obs\":\"timelines\",\"series\":0}").contains("interval_ns"));
        let hdr = "{\"obs\":\"timelines\",\"interval_ns\":1000,\"series\":1}\n";
        let with = |line: &str| format!("{hdr}{line}\n");
        assert!(err(&with("{\"scope\":\"galaxy\",\"points\":[]}")).contains("unknown scope"));
        assert!(err(&with("{\"scope\":\"flow\",\"ep\":0}")).contains("missing field `flow`"));
        assert!(err(&with(
            "{\"scope\":\"flow\",\"flow\":0,\"ep\":0,\"metric\":\"warp\",\"points\":[]}"
        ))
        .contains("unknown metric"),);
        let e = err(&with(
            "{\"scope\":\"host\",\"host\":0,\"metric\":\"cwnd\",\"points\":[[1,2],[oops]]}",
        ));
        assert!(e.contains("line 2"), "{e}");
        let e = err(&with("{\"scope\":\"host\",\"host\":0,\"metric\":\"cwnd\"}"));
        assert!(e.contains("missing points"), "{e}");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "sampling interval"))]
    fn zero_interval_clamps_to_one_nanosecond() {
        // Debug builds assert; release builds clamp and carry on.
        let tl = Timelines::new(Nanos::ZERO);
        assert_eq!(tl.interval, Nanos(1));
        let cfg = ObsConfig {
            sample_interval: Nanos::ZERO,
            ..ObsConfig::default()
        };
        assert_eq!(cfg.clamped_interval(), Nanos(1));
    }

    #[test]
    fn merge_unions_disjoint_scopes_and_interleaves_shared_ones() {
        let mut a = Timelines::new(Nanos::from_millis(1));
        let mut b = Timelines::new(Nanos::from_millis(1));
        a.record(
            Scope::Host { host: 0 },
            MetricKind::RxRingFrames,
            Nanos(10),
            3,
        );
        b.record(
            Scope::Host { host: 1 },
            MetricKind::RxRingFrames,
            Nanos(20),
            4,
        );
        // A shared series split across the two sides: interleave + collapse.
        a.record(flow0(), MetricKind::Cwnd, Nanos(10), 5);
        a.record(flow0(), MetricKind::Cwnd, Nanos(30), 7);
        b.record(flow0(), MetricKind::Cwnd, Nanos(20), 5);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(
            a.get(Scope::Host { host: 1 }, MetricKind::RxRingFrames)
                .map(StepSeries::points),
            Some(&[(Nanos(20), 4u64)][..])
        );
        // 5@10, 5@20 collapse; 7@30 survives.
        assert_eq!(
            a.get(flow0(), MetricKind::Cwnd).map(StepSeries::points),
            Some(&[(Nanos(10), 5u64), (Nanos(30), 7)][..])
        );
    }

    #[test]
    fn metric_names_round_trip() {
        for k in MetricKind::ALL {
            assert_eq!(MetricKind::parse(&k.to_string()), Some(k));
        }
        assert_eq!(MetricKind::parse("nope"), None);
    }

    #[test]
    fn flight_dump_renders_text_and_jsonl() {
        let dump = FlightDump {
            hosts: vec![(
                0,
                vec![TraceEvent {
                    at: Nanos(1234),
                    stage: Stage::TxStack,
                    packet: 42,
                    bytes: 8948,
                    cost: Nanos(500),
                }],
            )],
        };
        let text = dump.text();
        assert!(text.contains("flight recorder"));
        assert!(text.contains("tx-stack"));
        assert!(text.contains("packet=42"));
        let jsonl = dump.jsonl();
        assert!(jsonl.starts_with("{\"obs\":\"flight\",\"hosts\":1,\"events\":1}"));
        assert!(jsonl.contains("\"stage\":\"tx-stack\""));
        assert!(!dump.is_empty());
        assert_eq!(dump.len(), 1);
        assert!(FlightDump::default().is_empty());
        assert!(FlightDump::default().text().contains("no trace events"));
    }
}
