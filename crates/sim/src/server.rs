//! Work-conserving FIFO resources ("servers" in queueing terms).
//!
//! The host pipeline stations of the model — a CPU, the PCI-X bus, the memory
//! bus, a wire — are single servers that process work items back-to-back.
//! Because service is FIFO and non-preemptive, a server does not need its own
//! events: admitting a job at time `t` with service time `s` analytically
//! yields start `max(t, busy_until)` and completion `start + s`. The caller
//! schedules whatever downstream event the completion triggers.
//!
//! Each server tracks cumulative busy time, so utilization over any window is
//! exact — this is how the laboratory reproduces the paper's
//! `/proc/loadavg` CPU-load observations.

use crate::time::Nanos;

/// Outcome of admitting one job to a [`FifoServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// When service began (≥ admission time).
    pub start: Nanos,
    /// When service completes.
    pub done: Nanos,
    /// How long the job waited before service began.
    pub queued_for: Nanos,
}

/// A non-preemptive, work-conserving, FIFO single server.
#[derive(Debug, Clone)]
pub struct FifoServer {
    name: &'static str,
    busy_until: Nanos,
    busy_total: Nanos,
    jobs: u64,
    queued_total: Nanos,
    /// Largest backlog (in time) observed at admission.
    max_backlog: Nanos,
}

impl FifoServer {
    /// Create an idle server. `name` appears in traces and reports.
    pub fn new(name: &'static str) -> Self {
        FifoServer {
            name,
            busy_until: Nanos::ZERO,
            busy_total: Nanos::ZERO,
            jobs: 0,
            queued_total: Nanos::ZERO,
            max_backlog: Nanos::ZERO,
        }
    }

    /// The server's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Admit a job arriving at `now` requiring `service` time.
    pub fn admit(&mut self, now: Nanos, service: Nanos) -> Admission {
        let start = now.max(self.busy_until);
        let done = start.saturating_add(service);
        let queued_for = start - now;
        self.max_backlog = self.max_backlog.max(self.backlog(now));
        self.busy_until = done;
        self.busy_total = self.busy_total.saturating_add(service);
        self.jobs += 1;
        self.queued_total = self.queued_total.saturating_add(queued_for);
        Admission {
            start,
            done,
            queued_for,
        }
    }

    /// Time at which the server next becomes idle (absent new arrivals).
    pub fn busy_until(&self) -> Nanos {
        self.busy_until
    }

    /// Outstanding work as of `now` — how long a job arriving now would wait.
    pub fn backlog(&self, now: Nanos) -> Nanos {
        self.busy_until.saturating_sub(now)
    }

    /// Whether the server would start a job arriving at `now` immediately.
    pub fn idle_at(&self, now: Nanos) -> bool {
        self.busy_until <= now
    }

    /// Total service time delivered so far.
    pub fn busy_total(&self) -> Nanos {
        self.busy_total
    }

    /// Number of jobs admitted.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Mean utilization over `[0, now]` — the model's `/proc/loadavg` analog.
    ///
    /// Counts only service actually delivered by `now` (work scheduled beyond
    /// `now` is excluded), so the value is always in `[0, 1]`.
    pub fn utilization(&self, now: Nanos) -> f64 {
        if now == Nanos::ZERO {
            return 0.0;
        }
        let delivered = self.busy_total.saturating_sub(self.backlog(now));
        delivered.as_nanos() as f64 / now.as_nanos() as f64
    }

    /// Mean queueing delay per admitted job.
    pub fn mean_wait(&self) -> Nanos {
        if self.jobs == 0 {
            Nanos::ZERO
        } else {
            self.queued_total / self.jobs
        }
    }

    /// Largest backlog seen at any admission instant.
    pub fn max_backlog_seen(&self) -> Nanos {
        self.max_backlog
    }

    /// Reset counters (jobs, busy time, waits) but keep the busy horizon.
    ///
    /// Used when a measurement window opens after warm-up traffic.
    pub fn reset_stats(&mut self) {
        self.busy_total = Nanos::ZERO;
        self.jobs = 0;
        self.queued_total = Nanos::ZERO;
        self.max_backlog = Nanos::ZERO;
    }
}

/// A bank of identical FIFO servers with static or round-robin routing —
/// the model of a multi-processor host.
///
/// The 2.4-era SMP kernel the paper studies pins all NIC interrupts to a
/// single CPU; [`ServerBank::admit_pinned`] models that, while application
/// work can be spread with [`ServerBank::admit_least_loaded`].
#[derive(Debug, Clone)]
pub struct ServerBank {
    servers: Vec<FifoServer>,
}

impl ServerBank {
    /// Create `n` idle servers (n ≥ 1).
    pub fn new(name: &'static str, n: usize) -> Self {
        assert!(n >= 1, "a host needs at least one CPU");
        ServerBank {
            servers: (0..n).map(|_| FifoServer::new(name)).collect(),
        }
    }

    /// Number of servers in the bank.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the bank is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Admit to a specific server (interrupt pinning).
    pub fn admit_pinned(&mut self, idx: usize, now: Nanos, service: Nanos) -> Admission {
        self.servers[idx].admit(now, service)
    }

    /// Admit to the server that can start the job soonest.
    pub fn admit_least_loaded(&mut self, now: Nanos, service: Nanos) -> (usize, Admission) {
        let idx = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.busy_until())
            .map(|(i, _)| i)
            .expect("bank is non-empty");
        (idx, self.servers[idx].admit(now, service))
    }

    /// A specific server, for inspection.
    pub fn server(&self, idx: usize) -> &FifoServer {
        &self.servers[idx]
    }

    /// Highest per-server utilization — what `top` would show as the hot CPU.
    pub fn peak_utilization(&self, now: Nanos) -> f64 {
        self.servers
            .iter()
            .map(|s| s.utilization(now))
            .fold(0.0, f64::max)
    }

    /// Mean utilization across the bank — the `/proc/loadavg`-style figure.
    pub fn mean_utilization(&self, now: Nanos) -> f64 {
        let sum: f64 = self.servers.iter().map(|s| s.utilization(now)).sum();
        sum / self.servers.len() as f64
    }

    /// Reset all per-server statistics.
    pub fn reset_stats(&mut self) {
        for s in &mut self.servers {
            s.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = FifoServer::new("cpu");
        let a = s.admit(Nanos(100), Nanos(50));
        assert_eq!(a.start, Nanos(100));
        assert_eq!(a.done, Nanos(150));
        assert_eq!(a.queued_for, Nanos::ZERO);
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut s = FifoServer::new("pci");
        s.admit(Nanos(0), Nanos(100));
        let a = s.admit(Nanos(10), Nanos(20));
        assert_eq!(a.start, Nanos(100));
        assert_eq!(a.done, Nanos(120));
        assert_eq!(a.queued_for, Nanos(90));
        let b = s.admit(Nanos(10), Nanos(5));
        assert_eq!(b.start, Nanos(120), "second job waits behind the first");
    }

    #[test]
    fn utilization_is_busy_fraction() {
        let mut s = FifoServer::new("cpu");
        s.admit(Nanos(0), Nanos(400));
        // At t=1000 the server has been busy 400 of 1000 ns.
        assert!((s.utilization(Nanos(1000)) - 0.4).abs() < 1e-9);
        // Utilization can never exceed 1 even with a deep backlog.
        s.admit(Nanos(0), Nanos(10_000));
        assert!(s.utilization(Nanos(1000)) <= 1.0);
    }

    #[test]
    fn idle_and_backlog() {
        let mut s = FifoServer::new("wire");
        assert!(s.idle_at(Nanos(0)));
        s.admit(Nanos(0), Nanos(100));
        assert!(!s.idle_at(Nanos(50)));
        assert_eq!(s.backlog(Nanos(40)), Nanos(60));
        assert!(s.idle_at(Nanos(100)));
    }

    #[test]
    fn mean_wait_counts_queueing_only() {
        let mut s = FifoServer::new("cpu");
        s.admit(Nanos(0), Nanos(100)); // waits 0
        s.admit(Nanos(0), Nanos(100)); // waits 100
        assert_eq!(s.mean_wait(), Nanos(50));
    }

    #[test]
    fn reset_stats_keeps_horizon() {
        let mut s = FifoServer::new("cpu");
        s.admit(Nanos(0), Nanos(100));
        s.reset_stats();
        assert_eq!(s.jobs(), 0);
        assert_eq!(s.busy_total(), Nanos::ZERO);
        // Horizon survives: a new job still queues behind the old one.
        let a = s.admit(Nanos(0), Nanos(10));
        assert_eq!(a.start, Nanos(100));
    }

    #[test]
    fn bank_pinned_vs_least_loaded() {
        let mut bank = ServerBank::new("cpu", 2);
        bank.admit_pinned(0, Nanos(0), Nanos(1000));
        // Least-loaded routing picks CPU 1.
        let (idx, a) = bank.admit_least_loaded(Nanos(0), Nanos(10));
        assert_eq!(idx, 1);
        assert_eq!(a.start, Nanos(0));
        // Pinned routing keeps hammering CPU 0 — the SMP interrupt pathology.
        let a = bank.admit_pinned(0, Nanos(0), Nanos(10));
        assert_eq!(a.start, Nanos(1000));
        assert!(bank.peak_utilization(Nanos(1000)) > bank.mean_utilization(Nanos(1000)));
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn empty_bank_rejected() {
        let _ = ServerBank::new("cpu", 0);
    }
}
