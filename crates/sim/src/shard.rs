//! Conservative parallel-DES shard runner.
//!
//! One simulation is partitioned into `N` shards, each owning a disjoint
//! set of model entities and its own [`crate::Engine`] calendar. The
//! shards advance in lockstep through **lookahead windows**: every
//! cross-shard interaction travels over a link whose latency is bounded
//! below by `lookahead`, so when the globally earliest pending event sits
//! at `T`, every event in `[T, T + lookahead)` can be executed without
//! hearing from any other shard — a message emitted at or after `T`
//! cannot arrive before `T + lookahead`. This is the classical
//! conservative synchronization argument (CMB windows); the lookahead
//! bound comes for free from the physical topology.
//!
//! Determinism contract: [`run_sharded`] delivers each round's messages
//! to a destination shard in an **unspecified order** (senders race for
//! the inbox lock). Implementors of [`ShardWorld::accept`] must therefore
//! be order-insensitive — the lab layer funnels every arrival through a
//! canonically keyed ordered channel, so the executed schedule is a pure
//! function of the message *set*, never of thread interleaving. Under
//! that contract the runner itself is deterministic at any shard count:
//! window boundaries are computed from published next-event times with
//! integer arithmetic only, identically on every shard.
//!
//! The `shards = 1` case runs inline on the caller's thread with no
//! synchronization primitives at all — the degenerate case costs nothing
//! over a plain [`crate::Engine::run`] loop beyond the window bookkeeping.

use crate::prof::{wall_now_ns, WallStats};
use crate::time::Nanos;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A shard's view of the world: one calendar's worth of owned entities
/// plus the cross-shard message surface.
pub trait ShardWorld {
    /// A cross-shard message (an arrival bound for an entity another
    /// shard owns).
    type Msg: Send;

    /// Timestamp of this shard's earliest pending event, or `None` when
    /// its calendar has drained.
    fn next_time(&mut self) -> Option<Nanos>;

    /// Execute every local event strictly before `end` (the exclusive
    /// window edge), leaving later events queued.
    fn run_window(&mut self, end: Nanos);

    /// Drain the messages this shard emitted during the last window, as
    /// `(destination shard, arrival time, message)` triples. Arrival
    /// times must honor the lookahead bound: a message emitted at `t`
    /// arrives no earlier than `t + lookahead`.
    fn flush(&mut self) -> Vec<(usize, Nanos, Self::Msg)>;

    /// Ingest one cross-shard message arriving at `at`. Called before
    /// the next window opens; the calendar must end up with an event
    /// covering the arrival. Messages from different source shards are
    /// delivered in unspecified order — implementations must produce
    /// identical schedules for any permutation of one round's batch.
    fn accept(&mut self, at: Nanos, msg: Self::Msg);
}

/// Slot value meaning "this shard's calendar has drained".
const DRAINED: u64 = u64::MAX;

/// A sense-reversing spin barrier with panic poisoning: a worker that
/// unwinds poisons the barrier instead of leaving its peers blocked
/// forever, so a model assertion inside one shard fails the whole run
/// promptly instead of deadlocking the test harness.
struct RoundBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicU64,
    poisoned: AtomicBool,
}

impl RoundBarrier {
    fn new(parties: usize) -> Self {
        RoundBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
    }

    /// Block until all parties arrive. Panics if any party poisoned the
    /// barrier (its own panic is already propagating through the scope).
    fn wait(&self) {
        let gen = self.generation.load(Ordering::SeqCst);
        if self.arrived.fetch_add(1, Ordering::SeqCst) + 1 == self.parties {
            self.arrived.store(0, Ordering::SeqCst);
            self.generation.store(gen + 1, Ordering::SeqCst);
            return;
        }
        while self.generation.load(Ordering::SeqCst) == gen {
            assert!(
                !self.poisoned.load(Ordering::SeqCst),
                "a peer shard panicked mid-window"
            );
            std::thread::yield_now();
        }
        assert!(
            !self.poisoned.load(Ordering::SeqCst),
            "a peer shard panicked mid-window"
        );
    }
}

/// A shard's mailbox of timestamped cross-shard messages: locked for the
/// barrier exchange, drained whole at the top of each round.
type Inbox<M> = Mutex<Vec<(Nanos, M)>>;

/// Poisons the barrier when dropped during a panic unwind.
struct PoisonOnPanic<'a>(&'a RoundBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// Compute the minimum published next-event time across all shards.
fn global_min(slots: &[AtomicU64]) -> u64 {
    let mut min = DRAINED;
    for s in slots {
        min = min.min(s.load(Ordering::SeqCst));
    }
    min
}

/// One shard's round: drain the inbox, publish the next event time,
/// then (outside, after the barrier) run the window and flush.
fn drain_and_publish<S: ShardWorld>(world: &mut S, inbox: &Inbox<S::Msg>, slot: &AtomicU64) {
    let batch = {
        let mut guard = inbox.lock().expect("shard inbox lock poisoned");
        std::mem::take(&mut *guard)
    };
    for (at, msg) in batch {
        world.accept(at, msg);
    }
    let next = world.next_time().map_or(DRAINED, |t| t.as_nanos());
    slot.store(next, Ordering::SeqCst);
}

/// Run `shards` to completion under conservative lookahead windows.
///
/// `lookahead` must be a strictly positive lower bound on every
/// cross-shard link latency: each round executes the window
/// `[T_min, T_min + lookahead)` on every shard in parallel, where
/// `T_min` is the globally earliest pending event. Messages emitted in a
/// window arrive at or after its exclusive edge, so no shard ever
/// receives an arrival for an instant it has already executed past.
///
/// With a single shard the loop runs inline on the caller's thread; the
/// window sequence (and therefore the executed schedule) is identical.
pub fn run_sharded<S: ShardWorld + Send>(shards: &mut [S], lookahead: Nanos) {
    run_sharded_wall(shards, lookahead, None);
}

/// [`run_sharded`] with the optional wall-time profiling plane.
///
/// When `wall` is `Some`, it must hold one [`WallStats`] slot per shard;
/// each worker accumulates its own barrier-wait and window-execute wall
/// time into its slot via [`wall_now_ns`] — the single trusted wall-clock
/// boundary. The readings are strictly observational: they are taken
/// *around* the barrier and the window, never inside model code, and
/// nothing downstream of them reaches a calendar, so the executed
/// schedule (and every golden-gated byte) is identical whether `wall` is
/// `Some` or `None`. When `wall` is `None` no clock is ever read — the
/// disabled plane costs zero.
pub fn run_sharded_wall<S: ShardWorld + Send>(
    shards: &mut [S],
    lookahead: Nanos,
    wall: Option<&mut [WallStats]>,
) {
    assert!(!shards.is_empty(), "run_sharded needs at least one shard");
    assert!(
        lookahead > Nanos::ZERO,
        "conservative windows need strictly positive lookahead"
    );
    if let Some(ws) = &wall {
        assert!(
            ws.len() == shards.len(),
            "wall-stats slots must match shard count"
        );
    }
    if shards.len() == 1 {
        let mut slot = wall.map(|ws| &mut ws[0]);
        let world = &mut shards[0];
        while let Some(t) = world.next_time() {
            let t0 = slot.as_ref().map(|_| wall_now_ns());
            world.run_window(t.saturating_add(lookahead));
            if let (Some(w), Some(t0)) = (slot.as_deref_mut(), t0) {
                w.windows += 1;
                w.execute_ns += wall_now_ns().saturating_sub(t0);
            }
            // A single shard may only message itself.
            for (dst, at, msg) in world.flush() {
                assert!(dst == 0, "single-shard run emitted to shard {dst}");
                world.accept(at, msg);
            }
        }
        return;
    }

    let n = shards.len();
    // Disjoint per-worker wall slots (or one `None` per worker).
    let wall_slots: Vec<Option<&mut WallStats>> = match wall {
        Some(ws) => ws.iter_mut().map(Some).collect(),
        None => (0..n).map(|_| None).collect(),
    };
    let slots: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let inboxes: Vec<Inbox<S::Msg>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let barrier = RoundBarrier::new(n);
    std::thread::scope(|scope| {
        for (i, (world, mut wslot)) in shards.iter_mut().zip(wall_slots).enumerate() {
            let slots = &slots;
            let inboxes = &inboxes;
            let barrier = &barrier;
            scope.spawn(move || {
                let poison = PoisonOnPanic(barrier);
                loop {
                    drain_and_publish(world, &inboxes[i], &slots[i]);
                    // Every shard has drained its inbox and published;
                    // now everyone computes the same window. Clock reads
                    // sit on phase *boundaries* so adjacent phases share
                    // one read: four reads per round, not six. The
                    // execute bucket therefore includes the (trivial)
                    // window negotiation and outbox delivery — the
                    // round's non-barrier work.
                    let t0 = wslot.as_ref().map(|_| wall_now_ns());
                    barrier.wait();
                    let t1 = wslot.as_ref().map(|_| wall_now_ns());
                    if let (Some(w), Some(t0), Some(t1)) = (wslot.as_deref_mut(), t0, t1) {
                        w.barrier_wait_ns += t1.saturating_sub(t0);
                    }
                    let t_min = global_min(slots);
                    if t_min == DRAINED {
                        break;
                    }
                    let end = Nanos(t_min).saturating_add(lookahead);
                    world.run_window(end);
                    for (dst, at, msg) in world.flush() {
                        debug_assert!(
                            at >= end,
                            "lookahead violated: arrival at {at} inside window ending {end}"
                        );
                        let mut guard = inboxes[dst].lock().expect("shard inbox lock poisoned");
                        guard.push((at, msg));
                    }
                    // All outboxes delivered before anyone re-drains.
                    let t2 = wslot.as_ref().map(|_| wall_now_ns());
                    if let (Some(w), Some(t1), Some(t2)) = (wslot.as_deref_mut(), t1, t2) {
                        w.windows += 1;
                        w.execute_ns += t2.saturating_sub(t1);
                    }
                    barrier.wait();
                    let t3 = wslot.as_ref().map(|_| wall_now_ns());
                    if let (Some(w), Some(t2), Some(t3)) = (wslot.as_deref_mut(), t2, t3) {
                        w.barrier_wait_ns += t3.saturating_sub(t2);
                    }
                }
                drop(poison);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy shard: a sorted list of (time, value) events; every event
    /// with an odd value mirrors itself to the peer shard `lookahead`
    /// later. The log records (time, value) in execution order.
    struct Toy {
        id: usize,
        peers: usize,
        pending: Vec<(Nanos, u64)>,
        emitted: Vec<(usize, Nanos, u64)>,
        log: Vec<(Nanos, u64)>,
    }

    const LOOK: Nanos = Nanos(100);

    impl Toy {
        fn new(id: usize, peers: usize, events: Vec<(Nanos, u64)>) -> Self {
            Toy {
                id,
                peers,
                pending: events,
                emitted: Vec::new(),
                log: Vec::new(),
            }
        }
    }

    impl ShardWorld for Toy {
        type Msg = u64;

        fn next_time(&mut self) -> Option<Nanos> {
            self.pending.iter().map(|&(t, _)| t).min()
        }

        fn run_window(&mut self, end: Nanos) {
            // Execute in (time, value) order — a stand-in for (time, seq).
            while let Some(&(t, v)) = self
                .pending
                .iter()
                .filter(|&&(t, _)| t < end)
                .min_by_key(|&&(t, v)| (t, v))
            {
                self.pending.retain(|&e| e != (t, v));
                self.log.push((t, v));
                // Odd values mirror once; the mirror (even) terminates.
                if v % 2 == 1 {
                    let dst = (self.id + 1) % self.peers;
                    self.emitted.push((dst, t.saturating_add(LOOK), v + 1));
                }
            }
        }

        fn flush(&mut self) -> Vec<(usize, Nanos, u64)> {
            std::mem::take(&mut self.emitted)
        }

        fn accept(&mut self, at: Nanos, msg: u64) {
            self.pending.push((at, msg));
        }
    }

    #[test]
    fn single_shard_runs_to_completion_inline() {
        let mut shards = vec![Toy::new(
            0,
            1,
            vec![(Nanos(10), 2), (Nanos(5), 1), (Nanos(10), 4)],
        )];
        run_sharded(&mut shards, LOOK);
        // The odd event at t=5 mirrors to itself at t=105.
        assert_eq!(
            shards[0].log,
            vec![
                (Nanos(5), 1),
                (Nanos(10), 2),
                (Nanos(10), 4),
                (Nanos(105), 2)
            ]
        );
    }

    #[test]
    fn two_shards_exchange_messages_and_both_drain() {
        let mut shards = vec![
            Toy::new(0, 2, vec![(Nanos(5), 1)]),
            Toy::new(1, 2, vec![(Nanos(7), 3)]),
        ];
        run_sharded(&mut shards, LOOK);
        // Shard 0's odd event lands on shard 1 at 105; shard 1's at 107
        // lands on shard 0; both mirrored values are even, so it stops.
        assert_eq!(shards[0].log, vec![(Nanos(5), 1), (Nanos(107), 4)]);
        assert_eq!(shards[1].log, vec![(Nanos(7), 3), (Nanos(105), 2)]);
    }

    #[test]
    fn four_shards_match_the_single_shard_union() {
        // The same global event set partitioned 1-way and 4-way must
        // execute the same (time, value) multiset even though messages
        // ping around the ring.
        let events = [
            (Nanos(5), 1),
            (Nanos(9), 7),
            (Nanos(12), 2),
            (Nanos(40), 9),
            (Nanos(41), 11),
            (Nanos(300), 6),
        ];
        let run = |ways: usize| -> Vec<(Nanos, u64)> {
            let mut shards: Vec<Toy> = (0..ways)
                .map(|i| {
                    Toy::new(
                        i,
                        ways,
                        events
                            .iter()
                            .enumerate()
                            .filter(|(k, _)| k % ways == i)
                            .map(|(_, &e)| e)
                            .collect(),
                    )
                })
                .collect();
            run_sharded(&mut shards, LOOK);
            let mut all: Vec<(Nanos, u64)> = shards.iter().flat_map(|s| s.log.clone()).collect();
            all.sort_unstable();
            all
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn wall_plane_counts_windows_without_changing_the_schedule() {
        let events = vec![(Nanos(10), 2), (Nanos(5), 1), (Nanos(10), 4)];
        let mut plain = vec![Toy::new(0, 1, events.clone())];
        run_sharded(&mut plain, LOOK);
        let mut walled = vec![Toy::new(0, 1, events)];
        let mut wall = vec![WallStats::default()];
        run_sharded_wall(&mut walled, LOOK, Some(&mut wall));
        assert_eq!(plain[0].log, walled[0].log, "wall plane must be invisible");
        assert!(wall[0].windows > 0, "windows accounted: {wall:?}");

        // Two shards: both workers cross the barrier every round, so the
        // per-shard window counts are populated independently.
        let mut shards = vec![
            Toy::new(0, 2, vec![(Nanos(5), 1)]),
            Toy::new(1, 2, vec![(Nanos(7), 3)]),
        ];
        let mut wall2 = vec![WallStats::default(); 2];
        run_sharded_wall(&mut shards, LOOK, Some(&mut wall2));
        assert!(wall2.iter().all(|w| w.windows > 0), "{wall2:?}");
        assert_eq!(shards[0].log, vec![(Nanos(5), 1), (Nanos(107), 4)]);
    }

    #[test]
    #[should_panic(expected = "strictly positive lookahead")]
    fn zero_lookahead_is_rejected() {
        let mut shards = vec![Toy::new(0, 1, Vec::new())];
        run_sharded(&mut shards, Nanos::ZERO);
    }
}
