//! `tengig-sim` — the discrete-event simulation kernel of the `tengig`
//! 10-Gigabit-Ethernet performance laboratory.
//!
//! This crate knows nothing about networking. It provides:
//!
//! * [`Nanos`] — the nanosecond-resolution virtual clock value,
//! * [`Bandwidth`] — data rates and serialization-time arithmetic,
//! * [`Engine`] — a deterministic closure-based event calendar,
//! * [`FifoServer`]/[`ServerBank`] — analytic work-conserving resources used
//!   to model CPUs, buses, and wires,
//! * [`DropTailQueue`] — bounded byte queues for switch/router buffers,
//! * statistics instruments ([`stats`]) and a packet-path tracer ([`trace`],
//!   the substrate of the MAGNET analog),
//! * [`SimRng`] — deterministic, forkable randomness,
//! * [`Sanitizer`] — a runtime invariant checker (causality, byte
//!   conservation, TCP sequence invariants) installable on the engine.
//!
//! Everything above (hosts, NICs, TCP, switches, the WAN) is built from these
//! pieces by the other `tengig-*` crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod engine;
pub mod obs;
pub mod prof;
pub mod queue;
pub mod rng;
pub mod sanitizer;
pub mod server;
pub mod shard;
pub mod stats;
pub mod time;
pub mod trace;
pub mod units;
pub mod workload;

pub use calendar::{Calendar, EventId};
pub use engine::{BoxedEvent, Engine, EventFire};
pub use obs::{FlightDump, MetricKind, ObsConfig, Scope, StepSeries, Timelines};
pub use prof::{CalendarCounters, EngineCounters, Hist, WallStats};
pub use queue::{DropTailQueue, Enqueue};
pub use rng::SimRng;
pub use sanitizer::{Sanitizer, SimConfig, Violation, ViolationKind};
pub use server::{Admission, FifoServer, ServerBank};
pub use shard::{run_sharded, run_sharded_wall, ShardWorld};
pub use time::Nanos;
pub use trace::{Stage, TraceEvent, Tracer};
pub use units::{rate_of, Bandwidth};
pub use workload::{
    build_schedule, ArrivalProcess, BoundedPareto, FctStats, FlowPlan, SizeMix, WorkloadSpec,
};
