//! Engine self-profiling: the two-plane instrumentation substrate.
//!
//! The paper's method is *profile, then tune* — MAGNET told the authors
//! where the 10GigE path burned cycles before they touched MMRBC or the
//! MTU. This module gives the simulator the same visibility into itself,
//! split into two rigorously separated planes:
//!
//! * **Deterministic plane** — pure-integer counters and log-bucketed
//!   histograms ([`Hist`]) driven exclusively by simulation-domain
//!   quantities (event counts, batch lengths, calendar routing). Every
//!   value is a function of the executed schedule alone, so the plane is
//!   byte-identical across shard counts and sweep threads and can be
//!   golden-gated like any other sim output.
//! * **Wall-time plane** — per-shard barrier-wait and window-execute
//!   accounting ([`WallStats`]) fed by the *single* sanctioned wall-clock
//!   read in the workspace ([`wall_now_ns`], a `lint:trusted` boundary).
//!   Host-domain numbers land in their own report section, are never
//!   golden-gated, and never feed back into the simulation: the clock is
//!   read, subtracted, and accumulated — nothing downstream of it can
//!   reach a calendar.
//!
//! [`Hist`] is the HDR-style streaming histogram named on the roadmap:
//! 65 power-of-two buckets cover the full `u64` range with bounded
//! relative error, merging is bucket-wise addition (associative and
//! commutative, so per-shard histograms fold into one shard-count
//! invariant whole), and — unlike [`crate::stats::LogHistogram`], its
//! figure-plotting sibling — it is pure-integer end to end and
//! round-trips through a compact JSON rendering.

use std::sync::OnceLock;

/// Number of buckets in a [`Hist`]: bucket 0 holds exact zeros, bucket
/// `k >= 1` holds values in `[2^(k-1), 2^k - 1]`, so bucket 64 ends at
/// `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

/// A pure-integer, mergeable, log-bucketed (HDR-style) histogram.
///
/// Records `u64` samples into 65 power-of-two buckets plus an exact
/// min/max, supports bucket-wise merge, and reads out percentiles as the
/// upper bound of the bucket containing the requested rank (clamped to
/// the observed `[min, max]`). All arithmetic is integer, so rendering
/// is bit-stable across platforms — safe for golden files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    count: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist {
            count: 0,
            min: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }

    /// The bucket index of value `v`.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The inclusive upper bound of bucket `k`.
    #[inline]
    fn bucket_top(k: usize) -> u64 {
        if k == 0 {
            0
        } else if k >= 64 {
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fold another histogram into this one: bucket-wise addition plus
    /// min/max union. Associative and commutative, so any merge order
    /// over per-shard histograms yields identical bytes.
    pub fn merge(&mut self, other: &Hist) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// The `p`-th percentile (`p` in `0..=100`): the upper bound of the
    /// bucket containing sample rank `ceil(p * count / 100)`, clamped to
    /// the observed `[min, max]`. Returns 0 when empty. Integer-only, so
    /// the answer is exact with respect to the bucketed distribution.
    pub fn percentile(&self, p: u64) -> u64 {
        self.permille(p.min(100).saturating_mul(10))
    }

    /// The quantile at permille `p` (`p` in `0..=1000`): like
    /// [`Hist::percentile`] but at tail resolution — `permille(999)` is
    /// the p999 the FCT reporting plane leans on, which integer percent
    /// cannot express. Same rank rule with a 1000 denominator
    /// (`percentile(p)` ≡ `permille(10 * p)` exactly).
    pub fn permille(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.min(1000);
        // ceil(p * count / 1000), at least rank 1.
        let rank = (p.saturating_mul(self.count).div_ceil(1000)).max(1);
        let mut seen = 0u64;
        for (k, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Self::bucket_top(k).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Render as a compact single-line JSON object:
    /// `{"count":N,"min":m,"max":M,"buckets":[[k,c],...]}` with only the
    /// nonzero buckets listed, in ascending bucket order.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{{\"count\":{},\"min\":{},\"max\":{},\"buckets\":[",
            self.count, self.min, self.max
        );
        let mut first = true;
        for (k, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!("[{k},{b}]"));
        }
        s.push_str("]}");
        s
    }

    /// Parse a rendering produced by [`Hist::render`] (the object may be
    /// embedded in a larger JSON line; parsing starts at `text`'s first
    /// `{`). Errors name the missing or malformed field.
    pub fn parse(text: &str) -> Result<Hist, String> {
        let field = |name: &str| -> Result<u64, String> {
            let pat = format!("\"{name}\":");
            let at = text.find(&pat).ok_or_else(|| format!("missing {name}"))?;
            let rest = &text[at + pat.len()..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end]
                .parse::<u64>()
                .map_err(|e| format!("bad {name}: {e}"))
        };
        let mut h = Hist::new();
        h.count = field("count")?;
        h.min = field("min")?;
        h.max = field("max")?;
        let bat = text.find("\"buckets\":[").ok_or("missing buckets")?;
        let rest = &text[bat + "\"buckets\":[".len()..];
        // The (nonempty) pair list ends at the first "]]"; an empty list
        // closes immediately with "]".
        let list = if rest.starts_with(']') {
            ""
        } else {
            let end = rest.find("]]").ok_or("unterminated buckets")?;
            &rest[..end + 1]
        };
        for pair in list.split("],[") {
            let pair = pair.trim_matches(|c| c == '[' || c == ']');
            if pair.is_empty() {
                continue;
            }
            let (k, c) = pair.split_once(',').ok_or("malformed bucket pair")?;
            let k: usize = k.parse().map_err(|e| format!("bad bucket index: {e}"))?;
            let c: u64 = c.parse().map_err(|e| format!("bad bucket count: {e}"))?;
            if k >= HIST_BUCKETS {
                return Err(format!("bucket index {k} out of range"));
            }
            h.buckets[k] = c;
        }
        let total: u64 = h.buckets.iter().sum();
        if total != h.count {
            return Err(format!("bucket sum {total} != count {}", h.count));
        }
        Ok(h)
    }

    /// One-line human summary: count plus the p50/p90/p99/max readout.
    pub fn summary(&self) -> String {
        format!(
            "n={} min={} p50={} p90={} p99={} max={}",
            self.count,
            self.min,
            self.percentile(50),
            self.percentile(90),
            self.percentile(99),
            self.max
        )
    }
}

/// Calendar-internal routing counters: where schedules landed (binary
/// heap slab, same-instant FIFO lane, timing wheel) and how the wheel
/// behaved. **Deterministic but not shard-count-invariant** — the
/// slab/wheel split depends on each calendar's private horizon state, so
/// these belong in the per-shard "local" profiling section, never in the
/// merged golden-gated one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CalendarCounters {
    /// Schedules routed to the binary-heap slab.
    pub sched_slab: u64,
    /// Same-instant schedules routed to the FIFO lane.
    pub sched_lane: u64,
    /// High-water mark of the same-instant FIFO lane depth.
    pub lane_hiwater: u64,
    /// Timer schedules parked directly in the timing wheel.
    pub wheel_parked: u64,
    /// Timer schedules that fell back to the slab (outside the horizon).
    pub wheel_fallbacks: u64,
    /// Expired wheel buckets cascaded back into the slab.
    pub wheel_cascades: u64,
    /// Cancel attempts.
    pub cancels: u64,
    /// Cancels that found a live event.
    pub cancel_hits: u64,
}

/// Engine-surface scheduling totals: how many times each scheduling verb
/// was invoked, independent of calendar-internal routing. Every call
/// site executes on exactly one shard at the same virtual instant
/// regardless of shard count, so these totals (summed across shards)
/// **are** shard-count-invariant and safe for the golden-gated section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// `schedule_event_*` calls (normal-class events).
    pub sched_events: u64,
    /// `schedule_timer_*` calls (wheel-eligible timers).
    pub sched_timers: u64,
    /// `schedule_front_*` calls (front-class events).
    pub sched_front: u64,
    /// Cancel attempts.
    pub cancels: u64,
    /// Cancels that found a live event.
    pub cancel_hits: u64,
}

impl EngineCounters {
    /// Fold another engine's totals into this one (for cross-shard sums).
    pub fn merge(&mut self, other: &EngineCounters) {
        self.sched_events += other.sched_events;
        self.sched_timers += other.sched_timers;
        self.sched_front += other.sched_front;
        self.cancels += other.cancels;
        self.cancel_hits += other.cancel_hits;
    }
}

/// Wall-time plane: one shard's host-domain accounting, accumulated by
/// [`crate::shard::run_sharded_wall`]. Strictly observational — values
/// here never feed a calendar, never enter golden-gated output, and are
/// expected to differ run to run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WallStats {
    /// Lookahead windows this shard executed.
    pub windows: u64,
    /// Wall nanoseconds spent blocked on the round barrier.
    pub barrier_wait_ns: u64,
    /// Wall nanoseconds spent executing windows.
    pub execute_ns: u64,
}

impl WallStats {
    /// One-line host-domain rendering for the never-gated wall section.
    pub fn render(&self, shard: usize) -> String {
        format!(
            "{{\"wall\":\"shard\",\"shard\":{},\"windows\":{},\"barrier_wait_ns\":{},\"execute_ns\":{}}}",
            shard, self.windows, self.barrier_wait_ns, self.execute_ns
        )
    }
}

/// Monotonic wall-clock read for the profiling plane, in nanoseconds
/// since the first call. This is the **single sanctioned wall-clock
/// boundary** in the determinism crates: the value is observational
/// only — accumulated into [`WallStats`], reported in the never-gated
/// wall section, and provably unreachable from any calendar input (the
/// taint pass verifies every hot-path root stays clean because this
/// boundary is marked trusted).
// lint:trusted(profiling boundary: the one reviewed wall-clock read; host-domain output only, never golden-gated, never fed back into the simulation)
pub fn wall_now_ns() -> u64 {
    // lint:allow(wall-clock)
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    // lint:allow(wall-clock)
    let epoch = EPOCH.get_or_init(std::time::Instant::now);
    let ns = epoch.elapsed().as_nanos();
    ns.min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_hist_is_all_zero() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50), 0);
        assert_eq!(
            h.render(),
            "{\"count\":0,\"min\":0,\"max\":0,\"buckets\":[]}"
        );
    }

    #[test]
    fn bucket_edges_land_where_documented() {
        // 0 is its own bucket; 1 starts bucket 1; each power of two
        // opens a new bucket and each 2^k - 1 closes the previous one.
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of((1u64 << 32) - 1), 32);
        assert_eq!(Hist::bucket_of(1u64 << 32), 33);
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
        assert_eq!(Hist::bucket_top(0), 0);
        assert_eq!(Hist::bucket_top(1), 1);
        assert_eq!(Hist::bucket_top(64), u64::MAX);
    }

    #[test]
    fn extreme_values_record_and_read_back() {
        let mut h = Hist::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        // Rank 1 of 3 at p=0..33 is the zero bucket.
        assert_eq!(h.percentile(0), 0);
        assert_eq!(h.percentile(33), 0);
        // Rank 2 is the ones bucket; rank 3 the top bucket (clamped max).
        assert_eq!(h.percentile(50), 1);
        assert_eq!(h.percentile(100), u64::MAX);
    }

    #[test]
    fn single_sample_answers_every_quantile() {
        let mut h = Hist::new();
        h.record(777);
        for p in [0u64, 1, 50, 99, 100] {
            assert_eq!(h.percentile(p), 777, "p{p}");
        }
        for p in [0u64, 1, 500, 990, 999, 1000] {
            assert_eq!(h.permille(p), 777, "permille {p}");
        }
    }

    #[test]
    fn all_max_samples_stay_at_max() {
        let mut h = Hist::new();
        for _ in 0..5 {
            h.record(u64::MAX);
        }
        assert_eq!(h.min(), u64::MAX);
        assert_eq!(h.percentile(0), u64::MAX);
        assert_eq!(h.percentile(50), u64::MAX);
        assert_eq!(h.permille(999), u64::MAX);
        assert_eq!(h.percentile(100), u64::MAX);
    }

    #[test]
    fn empty_hist_permille_is_zero() {
        let h = Hist::new();
        for p in [0u64, 500, 999, 1000, 5000] {
            assert_eq!(h.permille(p), 0);
        }
    }

    #[test]
    fn permille_refines_percentile_exactly() {
        let mut h = Hist::new();
        for v in 0..1000u64 {
            h.record(v * v);
        }
        for p in 0..=100u64 {
            assert_eq!(h.percentile(p), h.permille(p * 10), "p{p}");
        }
        // The tail permilles are at least the p99 and at most the max.
        assert!(h.permille(999) >= h.percentile(99));
        assert!(h.permille(999) <= h.max());
    }

    #[test]
    fn percentiles_clamp_to_observed_range() {
        let mut h = Hist::new();
        h.record(900);
        h.record(901);
        // Both samples share bucket 10 (512..=1023); the bucket top 1023
        // must clamp to the observed max at every percentile.
        assert_eq!(h.percentile(1), 901);
        assert_eq!(h.percentile(50), 901);
        assert_eq!(h.percentile(99), 901);
    }

    #[test]
    fn render_parse_round_trips() {
        let mut h = Hist::new();
        for v in [0u64, 1, 1, 7, 900, 65_536, u64::MAX] {
            h.record(v);
        }
        let text = h.render();
        let back = Hist::parse(&text).expect("rendered hist parses");
        assert_eq!(back, h);
        // Embedded in a larger line it still parses.
        let line = format!("{{\"scenario\":\"x\",\"rx_batch\":{text},\"tail\":1}}");
        let tail = &line[line.find("\"rx_batch\":").expect("field present") + 11..];
        assert_eq!(Hist::parse(tail).expect("embedded hist parses"), h);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Hist::parse("{}").is_err());
        assert!(Hist::parse("{\"count\":1,\"min\":0,\"max\":0,\"buckets\":[]}").is_err());
        assert!(
            Hist::parse("{\"count\":1,\"min\":0,\"max\":0,\"buckets\":[[99,1]]}").is_err(),
            "out-of-range bucket index must be rejected"
        );
    }

    #[test]
    fn merge_matches_recording_the_union() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut whole = Hist::new();
        for v in [3u64, 5, 8, 1000] {
            a.record(v);
            whole.record(v);
        }
        for v in [0u64, 2, 1u64 << 40] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn engine_counters_merge_is_field_wise_addition() {
        let mut a = EngineCounters {
            sched_events: 1,
            sched_timers: 2,
            sched_front: 3,
            cancels: 4,
            cancel_hits: 5,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.sched_events, 2);
        assert_eq!(a.cancel_hits, 10);
    }

    #[test]
    fn wall_clock_is_monotone_nondecreasing() {
        let a = wall_now_ns();
        let b = wall_now_ns();
        assert!(b >= a);
    }

    proptest! {
        #[test]
        fn merge_is_associative_and_matches_union(
            xs in proptest::collection::vec(any::<u64>(), 0..40),
            ys in proptest::collection::vec(any::<u64>(), 0..40),
            zs in proptest::collection::vec(any::<u64>(), 0..40),
        ) {
            let hist_of = |vs: &[u64]| {
                let mut h = Hist::new();
                for &v in vs {
                    h.record(v);
                }
                h
            };
            let (x, y, z) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
            // (x + y) + z
            let mut left = x.clone();
            left.merge(&y);
            left.merge(&z);
            // x + (y + z)
            let mut yz = y.clone();
            yz.merge(&z);
            let mut right = x.clone();
            right.merge(&yz);
            prop_assert_eq!(&left, &right);
            // ...and both equal recording the concatenation directly.
            let mut all = xs.clone();
            all.extend_from_slice(&ys);
            all.extend_from_slice(&zs);
            prop_assert_eq!(&left, &hist_of(&all));
            // Round-trip stability under the same inputs.
            prop_assert_eq!(
                Hist::parse(&left.render()).expect("renders parse"),
                left
            );
        }

        #[test]
        fn quantiles_are_monotone_in_q_and_bounded_by_min_max(
            xs in proptest::collection::vec(any::<u64>(), 1..60),
        ) {
            let mut h = Hist::new();
            for &v in &xs {
                h.record(v);
            }
            let mut prev = h.permille(0);
            for p in 0..=1000u64 {
                let q = h.permille(p);
                prop_assert!(q >= prev, "permille({}) = {} < {}", p, q, prev);
                prop_assert!(q >= h.min() && q <= h.max());
                prev = q;
            }
            // The coarse API agrees with the fine one everywhere.
            for p in 0..=100u64 {
                prop_assert_eq!(h.percentile(p), h.permille(p * 10));
            }
        }
    }
}
