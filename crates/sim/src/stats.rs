//! Measurement instruments: counters, running means, time-weighted values,
//! histograms, and (x, y) series used to regenerate the paper's figures.

use crate::time::Nanos;
use std::fmt;

/// A simple monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn bump(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    #[allow(clippy::should_implement_trait)] // counter bump, not arithmetic
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Running scalar statistics (count / mean / min / max) over `f64` samples,
/// using Welford's algorithm for a numerically stable variance.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// A value integrated over time — e.g. queue depth or window occupancy.
///
/// `update(t, v)` declares that the value became `v` at time `t`; the
/// time-weighted mean over the observation interval is then exact.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_t: Nanos,
    last_v: f64,
    integral: f64,
    start: Nanos,
    max: f64,
}

impl TimeWeighted {
    /// Begin observation at `start` with initial value `v0`.
    pub fn new(start: Nanos, v0: f64) -> Self {
        TimeWeighted {
            last_t: start,
            last_v: v0,
            integral: 0.0,
            start,
            max: v0,
        }
    }

    /// Record that the observed value became `v` at time `t` (t must be
    /// non-decreasing).
    pub fn update(&mut self, t: Nanos, v: f64) {
        debug_assert!(t >= self.last_t, "time-weighted update out of order");
        let dt = t.saturating_sub(self.last_t).as_nanos() as f64;
        self.integral += self.last_v * dt;
        self.last_t = t;
        self.last_v = v;
        self.max = self.max.max(v);
    }

    /// Time-weighted mean over `[start, t]`.
    pub fn mean_at(&self, t: Nanos) -> f64 {
        let span = t.saturating_sub(self.start).as_nanos() as f64;
        if span == 0.0 {
            return self.last_v;
        }
        let tail = t.saturating_sub(self.last_t).as_nanos() as f64;
        (self.integral + self.last_v * tail) / span
    }

    /// Largest value observed.
    pub fn max_seen(&self) -> f64 {
        self.max
    }

    /// Current value.
    pub fn current(&self) -> f64 {
        self.last_v
    }
}

/// A log₂-bucketed histogram of `u64` samples (latencies in ns, sizes in
/// bytes). Bucket `i` holds samples in `[2^i, 2^(i+1))`; bucket 0 also holds
/// zero.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: u64) {
        let idx = if x == 0 {
            0
        } else {
            63 - x.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += x as u128;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the upper bound of the bucket containing the
    /// q-th sample (q in `[0, 1]`).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        u64::MAX
    }
}

/// One measured point of a figure: payload size on the x-axis, a measured
/// value (throughput in Mb/s, latency in µs, …) on the y-axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X coordinate (payload size in bytes for most paper figures).
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

/// A named (x, y) series — one curve of a paper figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label, e.g. `"9000MTU,SMP,512PCI"`.
    pub label: String,
    /// The measured points, in x order.
    pub points: Vec<Point>,
}

impl Series {
    /// An empty series with the given legend label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(Point { x, y });
    }

    /// Largest y value (the figure's "peak") — 0 for an empty series.
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|p| p.y).fold(0.0, f64::max)
    }

    /// Mean y value — the paper's "average throughput".
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.y).sum::<f64>() / self.points.len() as f64
    }

    /// The y value at the largest x ≤ `x` (stairstep lookup); `None` if `x`
    /// precedes the first point.
    pub fn at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .take_while(|p| p.x <= x)
            .last()
            .map(|p| p.y)
    }

    /// Minimum y value over points with x in `[lo, hi]`.
    pub fn min_in(&self, lo: f64, hi: f64) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.x >= lo && p.x <= hi)
            .map(|p| p.y)
            .min_by(|a, b| a.partial_cmp(b).expect("no NaN in series"))
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.label)?;
        for p in &self.points {
            writeln!(f, "{:10.1} {:12.3}", p.x, p.y)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::default();
        c.bump();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_empty_is_sane() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(Nanos(0), 0.0);
        tw.update(Nanos(100), 10.0); // 0 for [0,100)
        tw.update(Nanos(200), 0.0); // 10 for [100,200)
                                    // over [0,200]: (0*100 + 10*100)/200 = 5
        assert!((tw.mean_at(Nanos(200)) - 5.0).abs() < 1e-12);
        // extend to 400 with value 0 → (1000)/400 = 2.5
        assert!((tw.mean_at(Nanos(400)) - 2.5).abs() < 1e-12);
        assert_eq!(tw.max_seen(), 10.0);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn log_histogram_quantiles() {
        let mut h = LogHistogram::new();
        for x in 1..=1000u64 {
            h.record(x);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // Median of 1..=1000 is ~500; bucket upper bound is 511.
        assert_eq!(h.quantile(0.5), 511);
        assert!(h.quantile(1.0) >= 1000);
        assert_eq!(LogHistogram::new().quantile(0.5), 0);
    }

    #[test]
    fn series_peak_mean_lookup() {
        let mut s = Series::new("9000MTU");
        s.push(1500.0, 1.0);
        s.push(3000.0, 3.0);
        s.push(8000.0, 2.0);
        assert_eq!(s.peak(), 3.0);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.at(4000.0), Some(3.0));
        assert_eq!(s.at(100.0), None);
        assert_eq!(s.min_in(2000.0, 9000.0), Some(2.0));
    }
}
