//! Packet-path tracing — the substrate for the laboratory's MAGNET analog.
//!
//! MAGNET (Gardner et al., CCGrid'03) let the paper's authors trace the path
//! of individual packets through the Linux TCP stack with negligible
//! overhead, quantifying how many packets took each path and what each path
//! cost. [`Tracer`] provides the same capability for the simulated stack:
//! components emit [`TraceEvent`]s tagged with a [`Stage`]; the tracer keeps
//! a bounded ring of recent events plus full per-stage counters, and supports
//! random sampling (MAGNET observed "a random sampling of packets").

use crate::rng::SimRng;
use crate::time::Nanos;
use std::collections::VecDeque;
use std::fmt;

/// A stage of the end-to-end path a packet can be observed at.
///
/// These mirror the stations of the simulated pipeline; MAGNET's kernel
/// tracepoints map onto the TX/RX stack stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Application wrote data into the socket.
    AppWrite,
    /// User → kernel (skb) copy on the transmit side.
    TxCopy,
    /// TCP/IP transmit processing (segmentation, headers, checksum).
    TxStack,
    /// DMA descriptor + payload crossing the I/O bus outbound.
    TxDma,
    /// Frame serialized onto the wire.
    Wire,
    /// Frame traversed a switch.
    Switch,
    /// DMA into host memory on the receive side.
    RxDma,
    /// Interrupt raised (possibly after a coalescing delay).
    Interrupt,
    /// TCP/IP receive processing.
    RxStack,
    /// Kernel → user copy on the receive side.
    RxCopy,
    /// Application read the data.
    AppRead,
    /// Packet dropped (queue overflow, loss model, allocation failure).
    Drop,
    /// Retransmission triggered (timeout or fast retransmit).
    Retransmit,
    /// ACK generated.
    Ack,
    /// Retransmission timer fired.
    TimerRto,
    /// Delayed-ACK timer fired.
    TimerDelack,
    /// Frame dropped by the impairment layer (burst loss or link flap).
    ImpairDrop,
    /// Duplicate frame copy minted by the impairment layer.
    ImpairDup,
    /// Frame delayed by the reordering impairment.
    ImpairReorder,
    /// Corrupted frame discarded by the receiving NIC (bad FCS).
    ImpairCorrupt,
}

impl Stage {
    /// Number of stages (the size of the per-stage stats table).
    const COUNT: usize = 20;

    /// Every stage, in pipeline order — the iteration order of
    /// [`Tracer::stage_stats`].
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::AppWrite,
        Stage::TxCopy,
        Stage::TxStack,
        Stage::TxDma,
        Stage::Wire,
        Stage::Switch,
        Stage::RxDma,
        Stage::Interrupt,
        Stage::RxStack,
        Stage::RxCopy,
        Stage::AppRead,
        Stage::Drop,
        Stage::Retransmit,
        Stage::Ack,
        Stage::TimerRto,
        Stage::TimerDelack,
        Stage::ImpairDrop,
        Stage::ImpairDup,
        Stage::ImpairReorder,
        Stage::ImpairCorrupt,
    ];

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::AppWrite => "app-write",
            Stage::TxCopy => "tx-copy",
            Stage::TxStack => "tx-stack",
            Stage::TxDma => "tx-dma",
            Stage::Wire => "wire",
            Stage::Switch => "switch",
            Stage::RxDma => "rx-dma",
            Stage::Interrupt => "interrupt",
            Stage::RxStack => "rx-stack",
            Stage::RxCopy => "rx-copy",
            Stage::AppRead => "app-read",
            Stage::Drop => "drop",
            Stage::Retransmit => "retransmit",
            Stage::Ack => "ack",
            Stage::TimerRto => "timer-rto",
            Stage::TimerDelack => "timer-delack",
            Stage::ImpairDrop => "impair-drop",
            Stage::ImpairDup => "impair-dup",
            Stage::ImpairReorder => "impair-reorder",
            Stage::ImpairCorrupt => "impair-corrupt",
        };
        f.write_str(s)
    }
}

/// One observed packet event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened.
    pub at: Nanos,
    /// Which pipeline stage observed it.
    pub stage: Stage,
    /// Packet/segment identifier (sequence number or generator index).
    pub packet: u64,
    /// Payload or frame size in bytes, when meaningful.
    pub bytes: u64,
    /// How long the stage took (service time), when meaningful.
    pub cost: Nanos,
}

/// Per-stage aggregate: how many packets took this path and what it cost —
/// MAGNET's headline output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Number of events observed at this stage.
    pub count: u64,
    /// Total bytes observed.
    pub bytes: u64,
    /// Total stage cost.
    pub cost: Nanos,
}

impl StageStats {
    /// Mean cost per observed event.
    pub fn mean_cost(&self) -> Nanos {
        if self.count == 0 {
            Nanos::ZERO
        } else {
            self.cost / self.count
        }
    }
}

/// The tracer. Cheap when disabled: a disabled tracer only tests one bool.
///
/// Per-stage aggregates live in a fixed array indexed by [`Stage`] so the
/// emit hot path is an add, not a map lookup.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    /// Keep only every k-th packet's detailed events (1 = all).
    sample_every: u64,
    /// Precomputed `1 / sample_every` for the sampling draw.
    sample_p: f64,
    ring_capacity: usize,
    ring: VecDeque<TraceEvent>,
    stats: [StageStats; Stage::COUNT],
    rng: Option<SimRng>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            sample_every: 1,
            sample_p: 1.0,
            ring_capacity: 0,
            ring: VecDeque::new(),
            stats: [StageStats::default(); Stage::COUNT],
            rng: None,
        }
    }

    /// A tracer recording every event, keeping the most recent
    /// `ring_capacity` in detail.
    pub fn full(ring_capacity: usize) -> Self {
        Tracer {
            enabled: true,
            sample_every: 1,
            sample_p: 1.0,
            ring_capacity,
            ring: VecDeque::with_capacity(ring_capacity.min(4096)),
            stats: [StageStats::default(); Stage::COUNT],
            rng: None,
        }
    }

    /// A tracer that aggregates all events but keeps detailed ring entries
    /// only for a random ~1/k sample of packets (MAGNET's sampling mode).
    pub fn sampling(ring_capacity: usize, every: u64, rng: SimRng) -> Self {
        let every = every.max(1);
        Tracer {
            enabled: true,
            sample_every: every,
            sample_p: 1.0 / every as f64,
            ring_capacity,
            ring: VecDeque::with_capacity(ring_capacity.min(4096)),
            stats: [StageStats::default(); Stage::COUNT],
            rng: Some(rng),
        }
    }

    /// Whether the tracer records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event.
    #[inline]
    pub fn emit(&mut self, at: Nanos, stage: Stage, packet: u64, bytes: u64, cost: Nanos) {
        if !self.enabled {
            return;
        }
        let s = &mut self.stats[stage.index()];
        s.count += 1;
        s.bytes += bytes;
        s.cost = s.cost.saturating_add(cost);

        let keep_detail = if self.sample_every == 1 {
            true
        } else if let Some(rng) = &mut self.rng {
            rng.chance(self.sample_p)
        } else {
            packet % self.sample_every == 0
        };
        if keep_detail && self.ring_capacity > 0 {
            if self.ring.len() == self.ring_capacity {
                self.ring.pop_front();
            }
            self.ring.push_back(TraceEvent {
                at,
                stage,
                packet,
                bytes,
                cost,
            });
        }
    }

    /// Per-stage aggregates for every observed stage, in pipeline order.
    pub fn stage_stats(&self) -> impl Iterator<Item = (Stage, StageStats)> + '_ {
        Stage::ALL
            .iter()
            .map(|&st| (st, self.stats[st.index()]))
            .filter(|(_, s)| s.count > 0)
    }

    /// Aggregate for a single stage (zeroes if never observed).
    pub fn stage(&self, stage: Stage) -> StageStats {
        self.stats[stage.index()]
    }

    /// Recently recorded detailed events, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Detailed events for one packet id, oldest first.
    pub fn packet_path(&self, packet: u64) -> Vec<&TraceEvent> {
        self.ring.iter().filter(|e| e.packet == packet).collect()
    }

    /// Render the MAGNET-style per-stage cost profile.
    pub fn profile(&self) -> String {
        let mut out = String::from("stage        count        bytes     mean-cost\n");
        for (stage, s) in self.stage_stats() {
            out.push_str(&format!(
                "{:<12} {:>9} {:>12} {:>13}\n",
                stage.to_string(),
                s.count,
                s.bytes,
                s.mean_cost().to_string()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.emit(Nanos(1), Stage::Wire, 1, 1500, Nanos(1200));
        assert_eq!(t.stage(Stage::Wire).count, 0);
        assert_eq!(t.recent().count(), 0);
        assert!(!t.is_enabled());
    }

    #[test]
    fn full_tracer_aggregates_and_keeps_ring() {
        let mut t = Tracer::full(2);
        t.emit(Nanos(1), Stage::Wire, 1, 1500, Nanos(1200));
        t.emit(Nanos(2), Stage::Wire, 2, 1500, Nanos(1200));
        t.emit(Nanos(3), Stage::Wire, 3, 1500, Nanos(1200));
        let s = t.stage(Stage::Wire);
        assert_eq!(s.count, 3);
        assert_eq!(s.bytes, 4500);
        assert_eq!(s.mean_cost(), Nanos(1200));
        // Ring keeps only the 2 most recent.
        let ids: Vec<u64> = t.recent().map(|e| e.packet).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn packet_path_reconstruction() {
        let mut t = Tracer::full(16);
        for (at, stage) in [
            (1u64, Stage::TxStack),
            (2, Stage::TxDma),
            (3, Stage::Wire),
            (5, Stage::RxStack),
        ] {
            t.emit(Nanos(at), stage, 7, 100, Nanos(1));
        }
        t.emit(Nanos(4), Stage::Wire, 8, 100, Nanos(1));
        let path = t.packet_path(7);
        assert_eq!(path.len(), 4);
        assert_eq!(path[0].stage, Stage::TxStack);
        assert_eq!(path[3].stage, Stage::RxStack);
    }

    #[test]
    fn deterministic_sampling_keeps_every_kth() {
        let mut t = Tracer::sampling(1000, 10, SimRng::seeded(5));
        for p in 0..1000 {
            t.emit(Nanos(p), Stage::RxStack, p, 1, Nanos(1));
        }
        // All events aggregate...
        assert_eq!(t.stage(Stage::RxStack).count, 1000);
        // ...but only ~1/10 keep detail.
        let detail = t.recent().count();
        assert!((50..200).contains(&detail), "detail={detail}");
    }

    #[test]
    fn profile_renders_all_stages() {
        let mut t = Tracer::full(4);
        t.emit(Nanos(1), Stage::TxStack, 1, 100, Nanos(10));
        t.emit(Nanos(2), Stage::Drop, 2, 100, Nanos::ZERO);
        let p = t.profile();
        assert!(p.contains("tx-stack"));
        assert!(p.contains("drop"));
    }
}
