//! Physical units used throughout the laboratory: bandwidth and byte counts.
//!
//! All link, bus, and memory rates in the model are expressed as
//! [`Bandwidth`] values; the single conversion that matters — "how long does
//! it take to move `n` bytes at this rate" — lives here so that every crate
//! computes serialization delays identically.

use crate::time::Nanos;
use std::fmt;

/// A data rate in bits per second.
///
/// Stored as a `u64` bit rate, which represents every rate in the paper
/// exactly (10 GbE line rate, OC-48 payload rate, front-side-bus rates, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth {
    bits_per_sec: u64,
}

impl Bandwidth {
    /// Zero bandwidth (an unusable link; `time_to_send` is saturating).
    pub const ZERO: Bandwidth = Bandwidth { bits_per_sec: 0 };

    /// Construct from bits per second.
    #[inline]
    pub const fn from_bps(bits_per_sec: u64) -> Self {
        Bandwidth { bits_per_sec }
    }

    /// Construct from megabits per second (decimal, as used in networking).
    #[inline]
    pub const fn from_mbps(mbps: u64) -> Self {
        Bandwidth {
            bits_per_sec: mbps * 1_000_000,
        }
    }

    /// Construct from gigabits per second (decimal).
    #[inline]
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth {
            bits_per_sec: gbps * 1_000_000_000,
        }
    }

    /// Construct from fractional gigabits per second.
    #[inline]
    pub fn from_gbps_f64(gbps: f64) -> Self {
        debug_assert!(gbps >= 0.0);
        Bandwidth {
            bits_per_sec: (gbps * 1e9).round() as u64,
        }
    }

    /// Construct from megabytes per second (decimal; e.g. STREAM results).
    #[inline]
    pub const fn from_mbytes_per_sec(mbs: u64) -> Self {
        Bandwidth {
            bits_per_sec: mbs * 8_000_000,
        }
    }

    /// Rate in bits per second.
    #[inline]
    pub const fn bps(self) -> u64 {
        self.bits_per_sec
    }

    /// Rate in gigabits per second (lossy, for reporting).
    #[inline]
    pub fn gbps(self) -> f64 {
        self.bits_per_sec as f64 / 1e9
    }

    /// Time to serialize `bytes` bytes at this rate, rounded up to the next
    /// nanosecond (rounding up keeps a busy resource conservative: it can
    /// never transmit faster than its rated bandwidth).
    ///
    /// A zero rate yields [`Nanos::MAX`].
    #[inline]
    pub fn time_to_send(self, bytes: u64) -> Nanos {
        if self.bits_per_sec == 0 {
            return Nanos::MAX;
        }
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.bits_per_sec as u128);
        Nanos(ns.min(u64::MAX as u128) as u64)
    }

    /// Bytes that can be moved in `dur` at this rate (rounded down).
    #[inline]
    pub fn bytes_in(self, dur: Nanos) -> u64 {
        let bits = self.bits_per_sec as u128 * dur.as_nanos() as u128 / 1_000_000_000;
        (bits / 8).min(u64::MAX as u128) as u64
    }

    /// The bandwidth-delay product for a round-trip time, in bytes.
    ///
    /// This is the paper's "ideal window size": the amount of data that must
    /// be in flight to keep a path of this rate busy across `rtt`.
    #[inline]
    pub fn delay_product(self, rtt: Nanos) -> u64 {
        self.bytes_in(rtt)
    }

    /// Scale the rate by a dimensionless efficiency factor in `[0, 1]` (or an
    /// overhead factor > 1).
    #[inline]
    pub fn scale(self, factor: f64) -> Bandwidth {
        debug_assert!(factor >= 0.0);
        Bandwidth {
            bits_per_sec: (self.bits_per_sec as f64 * factor).round() as u64,
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bps = self.bits_per_sec;
        if bps >= 1_000_000_000 {
            write!(f, "{:.3}Gb/s", bps as f64 / 1e9)
        } else if bps >= 1_000_000 {
            write!(f, "{:.3}Mb/s", bps as f64 / 1e6)
        } else if bps >= 1_000 {
            write!(f, "{:.3}Kb/s", bps as f64 / 1e3)
        } else {
            write!(f, "{bps}b/s")
        }
    }
}

/// Compute an achieved data rate from a byte count and an elapsed duration.
///
/// Returns [`Bandwidth::ZERO`] for a zero duration (nothing meaningful can be
/// said about an instantaneous transfer).
pub fn rate_of(bytes: u64, elapsed: Nanos) -> Bandwidth {
    if elapsed == Nanos::ZERO {
        return Bandwidth::ZERO;
    }
    let bps = bytes as u128 * 8 * 1_000_000_000 / elapsed.as_nanos() as u128;
    Bandwidth::from_bps(bps.min(u64::MAX as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Bandwidth::from_gbps(10).bps(), 10_000_000_000);
        assert_eq!(Bandwidth::from_mbps(2500).bps(), 2_500_000_000);
        assert_eq!(Bandwidth::from_gbps_f64(2.5).bps(), 2_500_000_000);
        assert_eq!(Bandwidth::from_mbytes_per_sec(1600).bps(), 12_800_000_000);
    }

    #[test]
    fn serialization_time_rounds_up() {
        // 1500 bytes at 10 Gb/s = 1200 ns exactly.
        let gbe10 = Bandwidth::from_gbps(10);
        assert_eq!(gbe10.time_to_send(1500), Nanos(1200));
        // 1 byte at 10 Gb/s = 0.8 ns, rounds up to 1 ns.
        assert_eq!(gbe10.time_to_send(1), Nanos(1));
        assert_eq!(gbe10.time_to_send(0), Nanos::ZERO);
        assert_eq!(Bandwidth::ZERO.time_to_send(1), Nanos::MAX);
    }

    #[test]
    fn bdp_matches_paper_lan_example() {
        // Paper §3.3: 19 us back-to-back latency → RTT ≈ 38 us; at 10 Gb/s
        // the bandwidth-delay product is "about 48 KB".
        let bdp = Bandwidth::from_gbps(10).delay_product(Nanos::from_micros(38));
        assert_eq!(bdp, 47_500);
        assert!((40_000..56_000).contains(&bdp), "≈48 KB, got {bdp}");
    }

    #[test]
    fn bdp_matches_paper_wan_example() {
        // §4: OC-48 payload 2.5 Gb/s at 180 ms RTT → BDP ≈ 56 MB.
        let bdp = Bandwidth::from_gbps_f64(2.5).delay_product(Nanos::from_millis(180));
        assert_eq!(bdp, 56_250_000);
    }

    #[test]
    fn rate_of_inverts_time_to_send() {
        let bw = Bandwidth::from_gbps(4);
        let t = bw.time_to_send(1_000_000);
        let measured = rate_of(1_000_000, t);
        let err = (measured.gbps() - 4.0).abs() / 4.0;
        assert!(err < 1e-6, "measured {measured}");
    }

    #[test]
    fn bytes_in_is_conservative() {
        let bw = Bandwidth::from_gbps(10);
        // 1 us at 10 Gb/s = 1250 bytes.
        assert_eq!(bw.bytes_in(Nanos::from_micros(1)), 1250);
        assert_eq!(bw.bytes_in(Nanos::ZERO), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bandwidth::from_gbps(10).to_string(), "10.000Gb/s");
        assert_eq!(Bandwidth::from_mbps(923).to_string(), "923.000Mb/s");
        assert_eq!(Bandwidth::from_bps(500).to_string(), "500b/s");
    }

    #[test]
    fn scale_efficiency() {
        let raw = Bandwidth::from_gbps(10);
        assert_eq!(raw.scale(0.5).bps(), 5_000_000_000);
    }
}
