//! Simulation time: nanosecond-resolution virtual clock values and durations.
//!
//! The whole laboratory runs on a single monotonically non-decreasing virtual
//! clock. We use one newtype, [`Nanos`], for both instants and durations —
//! the arithmetic the simulator needs (saturating add, ordered comparisons,
//! unit conversions) is identical for both, and the duplication of a full
//! `Instant`/`Duration` pair buys nothing at this scale.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in virtual time or a span of virtual time, in nanoseconds.
///
/// Nanosecond resolution is fine enough for everything the SC'03 paper
/// measures: the shortest physical time in the model is a single byte on the
/// 10GbE wire (~0.8 ns), and every reported quantity is ≥ 1 µs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The zero instant / empty duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable instant (used as an "infinitely far" timer).
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounded to the nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative duration");
        // Float→integer truncation is this constructor's contract: the
        // value is rounded to the nearest nanosecond, non-negative by the
        // assert above, and config-time only (never on the event path).
        // lint:allow(lossy-cast)
        Nanos((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds (lossy).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in milliseconds (lossy).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in seconds (lossy).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `max(self - rhs, 0)`.
    #[inline]
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition, pinned at [`Nanos::MAX`].
    #[inline]
    pub fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Saturating multiplication by a dimensionless integer factor,
    /// pinned at [`Nanos::MAX`]. Exact where [`Nanos::scale`] only
    /// happens to be; timer paths must use this, never the float.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> Nanos {
        Nanos(self.0.saturating_mul(factor))
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_sub(rhs.0).map(Nanos)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, rhs: Nanos) -> Nanos {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, rhs: Nanos) -> Nanos {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// Multiply a duration by a dimensionless float factor (e.g. an overhead
    /// multiplier), rounding to the nearest nanosecond.
    #[inline]
    pub fn scale(self, factor: f64) -> Nanos {
        debug_assert!(factor >= 0.0, "negative scale factor");
        // Rounding back to integer nanoseconds is the point of `scale`:
        // the product is non-negative (assert above) and callers apply it
        // at config/link-model setup, not per event.
        // lint:allow(lossy-cast)
        Nanos((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Rem<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn rem(self, rhs: u64) -> Nanos {
        Nanos(self.0 % rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    /// Human-readable rendering with an automatically chosen unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "∞")
        } else if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion_roundtrip() {
        assert_eq!(Nanos::from_micros(5).as_nanos(), 5_000);
        assert_eq!(Nanos::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(Nanos::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Nanos::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((Nanos::from_micros(19).as_micros_f64() - 19.0).abs() < 1e-9);
        assert!((Nanos::from_millis(180).as_millis_f64() - 180.0).abs() < 1e-9);
        assert!((Nanos::from_secs(3600).as_secs_f64() - 3600.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::from_micros(10);
        let b = Nanos::from_micros(4);
        assert_eq!(a + b, Nanos::from_micros(14));
        assert_eq!(a - b, Nanos::from_micros(6));
        assert_eq!(a * 3, Nanos::from_micros(30));
        assert_eq!(a / 2, Nanos::from_micros(5));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(Nanos::MAX.saturating_add(a), Nanos::MAX);
        assert_eq!(a.checked_sub(b), Some(Nanos::from_micros(6)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn scale_rounds_to_nearest() {
        assert_eq!(Nanos(100).scale(1.5), Nanos(150));
        assert_eq!(Nanos(3).scale(0.5), Nanos(2)); // 1.5 rounds to 2
        assert_eq!(Nanos(1_000).scale(0.0), Nanos::ZERO);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Nanos(1) < Nanos(2));
        assert!(Nanos::MAX > Nanos::from_secs(1_000_000));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Nanos(850).to_string(), "850ns");
        assert_eq!(Nanos::from_micros(19).to_string(), "19.000us");
        assert_eq!(Nanos::from_millis(180).to_string(), "180.000ms");
        assert_eq!(Nanos::from_secs(2).to_string(), "2.000s");
        assert_eq!(Nanos::MAX.to_string(), "∞");
    }

    #[test]
    fn sum_of_durations() {
        let total: Nanos = (1..=4).map(Nanos::from_micros).sum();
        assert_eq!(total, Nanos::from_micros(10));
    }
}
