//! The slab-backed event calendar underneath [`crate::Engine`].
//!
//! Three structural choices keep the hot path allocation- and
//! comparison-light, replacing the original `BinaryHeap<Box<event>>`:
//!
//! * **Slab storage.** Payloads live in a slab (`Vec` of slots) and are
//!   referenced by `u32` handles; freed slots go on an intrusive freelist
//!   and are reused, so steady-state scheduling performs no allocation
//!   and the heap itself only moves 24-byte copyable keys around.
//! * **Cancellation tombstones.** [`Calendar::cancel`] frees the payload
//!   immediately and bumps the slot generation; the key already sitting
//!   in the heap is left behind as a tombstone and discarded lazily when
//!   it surfaces. Cancelling is O(1) instead of an O(n) heap rebuild or
//!   an O(log n) removal.
//! * **Same-timestamp batching.** An event scheduled for the *current*
//!   instant (the overwhelmingly common "immediately after this one"
//!   pattern, plus past-clamped events) bypasses the heap into a FIFO
//!   lane. Draining the lane costs no comparisons, and the keys never
//!   pay sift-up/sift-down traffic.
//!
//! The observable order is **exactly** the strict `(time, seq)` order of
//! the original queue. The lane is sound because a key only enters it
//! while the clock already sits at its timestamp, so every heap key with
//! the same timestamp was scheduled earlier and holds a smaller `seq`:
//! draining heap keys at `now` before lane keys reproduces the global
//! sequence order. The equivalence (including cancellation) is pinned by
//! a property test against a reference heap in
//! `crates/sim/tests/calendar_equivalence.rs`.

use crate::time::Nanos;
use std::collections::VecDeque;

/// Handle to a scheduled event, returned by the schedule calls and
/// accepted by [`Calendar::cancel`] (via `Engine::cancel`).
///
/// The generation makes handles ABA-safe: once the event fires or is
/// cancelled, the slot is recycled under a new generation and the old
/// handle turns inert (cancelling it is a no-op returning `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// A heap/lane key: everything the ordering needs, nothing it does not.
/// 24 bytes and `Copy`, so sift operations move keys, not payloads.
#[derive(Debug, Clone, Copy)]
struct Key {
    at: Nanos,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl Key {
    #[inline]
    fn before(&self, other: &Key) -> bool {
        (self.at, self.seq) < (other.at, other.seq)
    }
}

/// One slab slot: vacant slots chain through the freelist, occupied slots
/// own the payload. Both carry the slot's current generation.
#[derive(Debug)]
enum Slot<T> {
    Vacant { next_free: u32, gen: u32 },
    Occupied { payload: T, gen: u32 },
}

/// Freelist terminator.
const NIL: u32 = u32::MAX;

/// A deterministic event calendar: a slab of payloads indexed by a binary
/// min-heap of `(time, seq)` keys, with a FIFO fast lane for events at the
/// current instant and O(1) tombstone cancellation.
#[derive(Debug)]
pub struct Calendar<T> {
    heap: Vec<Key>,
    /// Keys whose `at` equals the current time, in insertion (= seq) order.
    lane: VecDeque<Key>,
    slots: Vec<Slot<T>>,
    free_head: u32,
    now: Nanos,
    seq: u64,
    /// Scheduled-and-not-cancelled events (tombstones excluded).
    live: usize,
}

impl<T> Default for Calendar<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Calendar<T> {
    /// An empty calendar at time zero.
    pub fn new() -> Self {
        Calendar {
            heap: Vec::new(),
            lane: VecDeque::new(),
            slots: Vec::new(),
            free_head: NIL,
            now: Nanos::ZERO,
            seq: 0,
            live: 0,
        }
    }

    /// Current virtual time; advances only in [`Calendar::pop`] and
    /// [`Calendar::advance_now_to`].
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Live (scheduled, not cancelled, not yet popped) events.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `payload` at absolute time `at`, which the caller must
    /// have clamped to `at >= now`. Returns a handle for cancellation.
    pub fn schedule(&mut self, at: Nanos, payload: T) -> EventId {
        debug_assert!(at >= self.now, "calendar caller must clamp to now");
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let (slot, gen) = self.insert(payload);
        let key = Key { at, seq, slot, gen };
        if at == self.now {
            // Fast lane: every heap key at this timestamp predates (and
            // outranks) every lane key, so FIFO order is (at, seq) order.
            self.lane.push_back(key);
        } else {
            self.heap_push(key);
        }
        self.live += 1;
        EventId { slot, gen }
    }

    /// Cancel a scheduled event, returning its payload if the handle was
    /// still live. The payload is freed now; the key left in the heap (or
    /// lane) becomes a tombstone discarded lazily on pop.
    pub fn cancel(&mut self, id: EventId) -> Option<T> {
        match self.slots.get(id.slot as usize) {
            Some(Slot::Occupied { gen, .. }) if *gen == id.gen => {
                let payload = self.remove(id.slot);
                self.live -= 1;
                Some(payload)
            }
            _ => None,
        }
    }

    /// Timestamp of the earliest live event, without popping it.
    /// Tombstones encountered on the way are discarded.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        loop {
            if let Some(&top) = self.heap.first() {
                if top.at == self.now {
                    if self.is_live(top) {
                        return Some(top.at);
                    }
                    self.heap_pop();
                    continue;
                }
            }
            if let Some(&front) = self.lane.front() {
                if self.is_live(front) {
                    return Some(front.at);
                }
                self.lane.pop_front();
                continue;
            }
            let &top = self.heap.first()?;
            if self.is_live(top) {
                return Some(top.at);
            }
            self.heap_pop();
        }
    }

    /// Pop the earliest live event in strict `(time, seq)` order,
    /// advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, T)> {
        loop {
            // Heap keys at the current instant precede the lane: they
            // were scheduled before the clock reached `now`, so their
            // seqs are smaller than any lane key's.
            if let Some(&top) = self.heap.first() {
                if top.at == self.now {
                    self.heap_pop();
                    if let Some(p) = self.take_live(top) {
                        return Some((top.at, p));
                    }
                    continue;
                }
            }
            if let Some(front) = self.lane.pop_front() {
                debug_assert!(front.at == self.now, "lane key left behind the clock");
                if let Some(p) = self.take_live(front) {
                    return Some((front.at, p));
                }
                continue;
            }
            // Lane drained: the earliest event (if any) sits atop the heap
            // strictly in the future; popping it advances the clock.
            let top = self.heap_pop()?;
            if let Some(p) = self.take_live(top) {
                debug_assert!(top.at >= self.now, "time went backwards");
                self.now = top.at;
                return Some((top.at, p));
            }
        }
    }

    /// Advance the clock without running events, e.g. to pin a measurement
    /// window edge. The caller must ensure no live event is earlier.
    pub fn advance_now_to(&mut self, at: Nanos) {
        debug_assert!(
            self.peek_time().map_or(true, |t| t >= at),
            "advancing the clock over a pending event"
        );
        if at > self.now {
            self.now = at;
        }
    }

    #[inline]
    fn is_live(&self, key: Key) -> bool {
        matches!(
            self.slots.get(key.slot as usize),
            Some(Slot::Occupied { gen, .. }) if *gen == key.gen
        )
    }

    /// Remove the payload behind `key` if the key is live (not a
    /// tombstone), recycling the slot either way it was occupied.
    fn take_live(&mut self, key: Key) -> Option<T> {
        if self.is_live(key) {
            let p = self.remove(key.slot);
            self.live -= 1;
            Some(p)
        } else {
            None
        }
    }

    fn insert(&mut self, payload: T) -> (u32, u32) {
        if self.free_head != NIL {
            let slot = self.free_head;
            let s = &mut self.slots[slot as usize];
            let Slot::Vacant { next_free, gen } = *s else {
                unreachable!("freelist points at an occupied slot")
            };
            self.free_head = next_free;
            *s = Slot::Occupied { payload, gen };
            (slot, gen)
        } else {
            assert!(
                self.slots.len() < NIL as usize,
                "calendar slab exhausted u32 handles"
            );
            let slot = self.slots.len() as u32;
            self.slots.push(Slot::Occupied { payload, gen: 0 });
            (slot, 0)
        }
    }

    /// Free an occupied slot, bumping its generation so stale keys and
    /// handles go inert, and chain it onto the freelist.
    fn remove(&mut self, slot: u32) -> T {
        let s = &mut self.slots[slot as usize];
        let next = Slot::Vacant {
            next_free: self.free_head,
            gen: match s {
                Slot::Occupied { gen, .. } => gen.wrapping_add(1),
                Slot::Vacant { .. } => unreachable!("double free of a calendar slot"),
            },
        };
        let Slot::Occupied { payload, .. } = std::mem::replace(s, next) else {
            unreachable!("checked occupied above")
        };
        self.free_head = slot;
        payload
    }

    // ---- the key heap: a plain binary min-heap over `Key` ----

    fn heap_push(&mut self, key: Key) {
        self.heap.push(key);
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].before(&self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_pop(&mut self) -> Option<Key> {
        let last = self.heap.pop()?;
        if self.heap.is_empty() {
            return Some(last);
        }
        let top = std::mem::replace(&mut self.heap[0], last);
        // Sift the relocated tail down to its place.
        let len = self.heap.len();
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            if l >= len {
                break;
            }
            let r = l + 1;
            let child = if r < len && self.heap[r].before(&self.heap[l]) {
                r
            } else {
                l
            };
            if self.heap[child].before(&self.heap[i]) {
                self.heap.swap(i, child);
                i = child;
            } else {
                break;
            }
        }
        Some(top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut c: Calendar<u32> = Calendar::new();
        c.schedule(Nanos(30), 3);
        c.schedule(Nanos(10), 1);
        c.schedule(Nanos(10), 2);
        c.schedule(Nanos(20), 9);
        assert_eq!(c.len(), 4);
        let order: Vec<u32> = std::iter::from_fn(|| c.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 9, 3]);
        assert_eq!(c.now(), Nanos(30));
    }

    #[test]
    fn current_instant_uses_the_lane_and_keeps_global_order() {
        let mut c: Calendar<u32> = Calendar::new();
        c.schedule(Nanos(5), 1);
        c.schedule(Nanos(5), 2);
        let (at, p) = c.pop().expect("event pending");
        assert_eq!((at, p), (Nanos(5), 1));
        // Scheduled *at* the clock: lands in the lane, after key 2.
        c.schedule(Nanos(5), 3);
        assert!(!c.lane.is_empty(), "same-instant event must take the lane");
        assert_eq!(c.pop().map(|(_, p)| p), Some(2));
        assert_eq!(c.pop().map(|(_, p)| p), Some(3));
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn cancel_frees_immediately_and_tombstones_the_key() {
        let mut c: Calendar<String> = Calendar::new();
        let a = c.schedule(Nanos(10), "a".to_string());
        c.schedule(Nanos(20), "b".to_string());
        assert_eq!(c.cancel(a), Some("a".to_string()));
        assert_eq!(c.len(), 1);
        // Double-cancel and cancel-after-pop are inert.
        assert_eq!(c.cancel(a), None);
        assert_eq!(c.pop(), Some((Nanos(20), "b".to_string())));
        assert_eq!(c.pop(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn slots_are_reused_through_the_freelist() {
        let mut c: Calendar<u64> = Calendar::new();
        for round in 0..100u64 {
            let at = Nanos(round + 1);
            c.schedule(at, round);
            let (_, p) = c.pop().expect("just scheduled");
            assert_eq!(p, round);
        }
        assert_eq!(c.slots.len(), 1, "steady-state churn must reuse one slot");
    }

    #[test]
    fn stale_handle_after_reuse_does_not_cancel_the_new_tenant() {
        let mut c: Calendar<u32> = Calendar::new();
        let a = c.schedule(Nanos(10), 1);
        c.pop();
        // Slot reused under a new generation.
        let _b = c.schedule(Nanos(20), 2);
        assert_eq!(c.cancel(a), None, "old handle must be inert");
        assert_eq!(c.pop().map(|(_, p)| p), Some(2));
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut c: Calendar<u32> = Calendar::new();
        let a = c.schedule(Nanos(10), 1);
        c.schedule(Nanos(30), 3);
        c.cancel(a);
        assert_eq!(c.peek_time(), Some(Nanos(30)));
        assert_eq!(c.pop().map(|(at, _)| at), Some(Nanos(30)));
        assert_eq!(c.peek_time(), None);
    }
}
