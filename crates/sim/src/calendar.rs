//! The slab-backed event calendar underneath [`crate::Engine`].
//!
//! Three structural choices keep the hot path allocation- and
//! comparison-light, replacing the original `BinaryHeap<Box<event>>`:
//!
//! * **Slab storage.** Payloads live in a slab (`Vec` of slots) and are
//!   referenced by `u32` handles; freed slots go on an intrusive freelist
//!   and are reused, so steady-state scheduling performs no allocation
//!   and the heap itself only moves 24-byte copyable keys around.
//! * **Cancellation tombstones.** [`Calendar::cancel`] frees the payload
//!   immediately and bumps the slot generation; the key already sitting
//!   in the heap is left behind as a tombstone and discarded lazily when
//!   it surfaces. Cancelling is O(1) instead of an O(n) heap rebuild or
//!   an O(log n) removal.
//! * **Same-timestamp batching.** An event scheduled for the *current*
//!   instant (the overwhelmingly common "immediately after this one"
//!   pattern, plus past-clamped events) bypasses the heap into a FIFO
//!   lane. Draining the lane costs no comparisons, and the keys never
//!   pay sift-up/sift-down traffic.
//! * **A hierarchical timing wheel for far timers.** Protocol timers
//!   (RTO, delayed ACK) are armed hundreds of milliseconds out and almost
//!   always cancelled before they fire; parking their keys in the heap
//!   makes every such tombstone pay an O(log n) sift when it finally
//!   surfaces. [`Calendar::schedule_timer`] parks the key in a
//!   power-of-two-span bucket instead — O(1) insert, O(1) cancel, and a
//!   cancelled key is reaped in bulk when its bucket expires, never
//!   touching the heap at all. Buckets cascade toward the heap as the
//!   clock approaches (see `surface`), so by the time an instant is
//!   popped every timer key for it has been merged into the heap and the
//!   observable order is unchanged.
//!
//! The observable order is **exactly** the strict `(time, seq)` order of
//! the original queue. The lane is sound because a key only enters it
//! while the clock already sits at its timestamp, so every heap key with
//! the same timestamp was scheduled earlier and holds a smaller `seq`:
//! draining heap keys at `now` before lane keys reproduces the global
//! sequence order. The wheel is sound because a bucket is flushed into
//! the heap no later than its span's start time, and the heap orders
//! flushed keys by `(time, seq)` regardless of when they arrive. The
//! equivalence (including cancellation and cascade boundaries) is pinned
//! by property tests against a reference heap in
//! `crates/sim/tests/calendar_equivalence.rs`.

use crate::prof::CalendarCounters;
use crate::time::Nanos;
use std::collections::VecDeque;

/// Handle to a scheduled event, returned by the schedule calls and
/// accepted by [`Calendar::cancel`] (via `Engine::cancel`).
///
/// The generation makes handles ABA-safe: once the event fires or is
/// cancelled, the slot is recycled under a new generation and the old
/// handle turns inert (cancelling it is a no-op returning `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// A heap/lane key: everything the ordering needs, nothing it does not.
/// 24 bytes and `Copy`, so sift operations move keys, not payloads.
#[derive(Debug, Clone, Copy)]
struct Key {
    at: Nanos,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl Key {
    #[inline]
    fn before(&self, other: &Key) -> bool {
        (self.at, self.seq) < (other.at, other.seq)
    }
}

/// One slab slot: vacant slots chain through the freelist, occupied slots
/// own the payload. Both carry the slot's current generation.
#[derive(Debug)]
enum Slot<T> {
    Vacant { next_free: u32, gen: u32 },
    Occupied { payload: T, gen: u32 },
}

/// Freelist terminator.
const NIL: u32 = u32::MAX;

/// Class bit composed into every key's sequence number. Normal events
/// carry it set; front-class events ([`Calendar::schedule_front`]) carry
/// it clear, so under the strict `(time, seq)` order every front-class
/// key at an instant precedes every normal key at that instant, while
/// keys within a class keep FIFO scheduling order among themselves.
const SEQ_NORMAL: u64 = 1 << 63;

// ---- timing-wheel geometry ----
//
// Level-0 ticks are `2^WHEEL_SHIFT` ns (≈65.5 µs) and every level packs
// `WHEEL_SLOTS` slots of the level below into one slot, so slot spans grow
// by powers of two: level 0 covers 4.2 ms, level 1 covers 268 ms (delayed
// ACKs), level 2 covers 17 s (RTOs), level 5 covers 52 days. Timers beyond
// the top level park in the farthest top slot and re-park when it expires.

/// log2 of the level-0 tick length in nanoseconds.
const WHEEL_SHIFT: u32 = 16;
/// log2 of the slots per level (64 slots ↔ one `u64` occupancy bitmap).
const WHEEL_LEVEL_BITS: u32 = 6;
/// Slots per level.
const WHEEL_SLOTS: usize = 1 << WHEEL_LEVEL_BITS;
/// Slots per level in the `u64` domain the tick arithmetic runs in,
/// derived from the same shift so no cast is involved.
const WHEEL_SLOTS_U64: u64 = 1 << WHEEL_LEVEL_BITS;
/// Mask extracting a bucket index from an absolute slot number.
const WHEEL_SLOT_MASK: u64 = WHEEL_SLOTS_U64 - 1;
/// Number of levels.
const WHEEL_LEVELS: usize = 6;

/// Widen a `u32` slab handle (or level count) to an indexing `usize`.
/// Checked so a hypothetical sub-32-bit target fails loudly rather than
/// silently truncating an index.
#[inline]
fn widen(v: u32) -> usize {
    usize::try_from(v).expect("u32 does not fit usize on this target")
}

/// Narrow an already-masked absolute slot number to a bucket index. The
/// caller guarantees `v < WHEEL_SLOTS`, so the conversion is exact.
#[inline]
fn bucket_index(v: u64) -> usize {
    debug_assert!(v < WHEEL_SLOTS_U64);
    usize::try_from(v).expect("masked slot number exceeds usize")
}

/// The bit shift selecting `level`'s absolute slot number from a tick.
#[inline]
fn level_shift(level: usize) -> u32 {
    WHEEL_LEVEL_BITS * u32::try_from(level).expect("wheel level exceeds u32")
}

/// A deterministic event calendar: a slab of payloads indexed by a binary
/// min-heap of `(time, seq)` keys, with a FIFO fast lane for events at the
/// current instant and O(1) tombstone cancellation.
#[derive(Debug)]
pub struct Calendar<T> {
    heap: Vec<Key>,
    /// Keys whose `at` equals the current time, in insertion (= seq) order.
    lane: VecDeque<Key>,
    slots: Vec<Slot<T>>,
    free_head: u32,
    now: Nanos,
    seq: u64,
    /// Scheduled-and-not-cancelled events (tombstones excluded).
    live: usize,
    /// Timing-wheel buckets, flat-indexed `level * WHEEL_SLOTS + bucket`.
    /// Empty until the first [`Calendar::schedule_timer`] call, so purely
    /// frame-clocked workloads never pay for the wheel.
    wheel: Vec<Vec<Key>>,
    /// Per-level occupancy bitmaps: bit `b` set ⇔ bucket `b` holds keys.
    wheel_occupied: [u64; WHEEL_LEVELS],
    /// Keys currently parked in wheel buckets, tombstones included.
    wheel_items: usize,
    /// Level-0 tick up to which wheel slots have been surfaced: no parked
    /// key's tick is `<=` this, and it only moves forward through expiry
    /// (or snaps under the clock while the wheel is empty).
    wheel_horizon: u64,
    /// Lower bound on the earliest parked key's timestamp (`u64::MAX`
    /// when the wheel is empty); lets `surface` bail in one compare.
    wheel_next_start: Nanos,
    /// Self-profiling routing counters (see [`CalendarCounters`]):
    /// deterministic, but calendar-private — the slab/lane/wheel split
    /// depends on this calendar's own horizon history.
    prof: CalendarCounters,
}

impl<T> Default for Calendar<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Calendar<T> {
    /// An empty calendar at time zero.
    pub fn new() -> Self {
        Calendar {
            heap: Vec::new(),
            lane: VecDeque::new(),
            slots: Vec::new(),
            free_head: NIL,
            now: Nanos::ZERO,
            seq: 0,
            live: 0,
            wheel: Vec::new(),
            wheel_occupied: [0; WHEEL_LEVELS],
            wheel_items: 0,
            wheel_horizon: 0,
            wheel_next_start: Nanos(u64::MAX),
            prof: CalendarCounters::default(),
        }
    }

    /// Snapshot of the routing counters accumulated so far.
    #[inline]
    pub fn prof_counters(&self) -> CalendarCounters {
        self.prof
    }

    /// Current virtual time; advances only in [`Calendar::pop`] and
    /// [`Calendar::advance_now_to`].
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Live (scheduled, not cancelled, not yet popped) events.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `payload` at absolute time `at`, which the caller must
    /// have clamped to `at >= now`. Returns a handle for cancellation.
    pub fn schedule(&mut self, at: Nanos, payload: T) -> EventId {
        debug_assert!(at >= self.now, "calendar caller must clamp to now");
        let at = at.max(self.now);
        let seq = self.seq | SEQ_NORMAL;
        self.seq += 1;
        let (slot, gen) = self.insert(payload);
        let key = Key { at, seq, slot, gen };
        if at == self.now {
            // Fast lane: every heap key at this timestamp predates (and
            // outranks) every lane key, so FIFO order is (at, seq) order.
            self.lane.push_back(key);
            self.prof.sched_lane += 1;
            let depth = u64::try_from(self.lane.len()).expect("lane depth exceeds u64");
            self.prof.lane_hiwater = self.prof.lane_hiwater.max(depth);
        } else {
            self.heap_push(key);
            self.prof.sched_slab += 1;
        }
        self.live += 1;
        EventId { slot, gen }
    }

    /// Schedule `payload` at absolute time `at` through the timing-wheel
    /// lane. Semantically identical to [`Calendar::schedule`] — same
    /// `(time, seq)` pop order, same handle, same [`Calendar::cancel`] —
    /// but tuned for far-future timers that are usually cancelled before
    /// they fire: the key parks in a wheel bucket (O(1)) and a cancelled
    /// key is reaped when its bucket expires instead of paying heap
    /// sift traffic. Events at or near the current tick fall back to the
    /// heap/lane path.
    pub fn schedule_timer(&mut self, at: Nanos, payload: T) -> EventId {
        debug_assert!(at >= self.now, "calendar caller must clamp to now");
        let at = at.max(self.now);
        if self.wheel_items == 0 {
            // No parked key depends on the cursor: snap it under the
            // clock so level selection sees true distances.
            self.wheel_horizon = self.now.as_nanos() >> WHEEL_SHIFT;
        }
        let tick = at.as_nanos() >> WHEEL_SHIFT;
        if at == self.now || tick <= self.wheel_horizon {
            // Same-instant events must take the FIFO lane (a key parked
            // now would surface into the heap *after* older lane keys and
            // jump them), and the already-surfaced region may not re-park;
            // the heap/lane path is exact for both.
            self.prof.wheel_fallbacks += 1;
            return self.schedule(at, payload);
        }
        let seq = self.seq | SEQ_NORMAL;
        self.seq += 1;
        let (slot, gen) = self.insert(payload);
        self.wheel_park(Key { at, seq, slot, gen });
        self.live += 1;
        self.prof.wheel_parked += 1;
        EventId { slot, gen }
    }

    /// Schedule `payload` at strictly-future time `at` in the **front
    /// class**: at equal timestamps a front-class event fires before
    /// every normal event (whatever their scheduling order), while
    /// front-class events keep FIFO order among themselves. The sharded
    /// lab's ingress drain rides this so a merged arrival batch is
    /// applied before any normal event of the same instant, making the
    /// pop order independent of which shard scheduled what first.
    ///
    /// Strictly-future is load-bearing: a front key never has to enter
    /// the same-instant FIFO lane (where it would pop *after* older lane
    /// keys and break the class order), so it always goes to the heap.
    pub fn schedule_front(&mut self, at: Nanos, payload: T) -> EventId {
        assert!(at > self.now, "front-class events must be strictly future");
        let seq = self.seq;
        self.seq += 1;
        let (slot, gen) = self.insert(payload);
        self.heap_push(Key { at, seq, slot, gen });
        self.live += 1;
        EventId { slot, gen }
    }

    /// Cancel a scheduled event, returning its payload if the handle was
    /// still live. The payload is freed now; the key left in the heap (or
    /// lane) becomes a tombstone discarded lazily on pop.
    pub fn cancel(&mut self, id: EventId) -> Option<T> {
        self.prof.cancels += 1;
        match self.slots.get(widen(id.slot)) {
            Some(Slot::Occupied { gen, .. }) if *gen == id.gen => {
                let payload = self.remove(id.slot);
                self.live -= 1;
                self.prof.cancel_hits += 1;
                Some(payload)
            }
            _ => None,
        }
    }

    /// Timestamp of the earliest live event, without popping it.
    /// Tombstones encountered on the way are discarded.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        loop {
            self.surface();
            if let Some(&top) = self.heap.first() {
                if top.at == self.now {
                    if self.is_live(top) {
                        return Some(top.at);
                    }
                    self.heap_pop();
                    continue;
                }
            }
            if let Some(&front) = self.lane.front() {
                if self.is_live(front) {
                    return Some(front.at);
                }
                self.lane.pop_front();
                continue;
            }
            let &top = self.heap.first()?;
            if self.is_live(top) {
                return Some(top.at);
            }
            self.heap_pop();
        }
    }

    /// Pop the earliest live event in strict `(time, seq)` order,
    /// advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, T)> {
        loop {
            // Wheel keys that could pop next must be in the heap first;
            // one branch when no timers are parked.
            self.surface();
            // Heap keys at the current instant precede the lane: they
            // were scheduled before the clock reached `now`, so their
            // seqs are smaller than any lane key's.
            if let Some(&top) = self.heap.first() {
                if top.at == self.now {
                    self.heap_pop();
                    if let Some(p) = self.take_live(top) {
                        return Some((top.at, p));
                    }
                    continue;
                }
            }
            if let Some(front) = self.lane.pop_front() {
                debug_assert!(front.at == self.now, "lane key left behind the clock");
                if let Some(p) = self.take_live(front) {
                    return Some((front.at, p));
                }
                continue;
            }
            // Lane drained: the earliest event (if any) sits atop the heap
            // strictly in the future; popping it advances the clock.
            let top = self.heap_pop()?;
            if let Some(p) = self.take_live(top) {
                debug_assert!(top.at >= self.now, "time went backwards");
                self.now = top.at;
                return Some((top.at, p));
            }
        }
    }

    /// Advance the clock without running events, e.g. to pin a measurement
    /// window edge. The caller must ensure no live event is earlier.
    pub fn advance_now_to(&mut self, at: Nanos) {
        debug_assert!(
            self.peek_time().map_or(true, |t| t >= at),
            "advancing the clock over a pending event"
        );
        if at > self.now {
            self.now = at;
        }
    }

    // ---- the timing wheel ----

    /// Park a key in the bucket whose span covers its distance from the
    /// horizon. Caller guarantees `tick(key.at) > wheel_horizon`.
    fn wheel_park(&mut self, key: Key) {
        if self.wheel.is_empty() {
            self.wheel = (0..WHEEL_LEVELS * WHEEL_SLOTS)
                .map(|_| Vec::new())
                .collect();
        }
        let tick = key.at.as_nanos() >> WHEEL_SHIFT;
        debug_assert!(tick > self.wheel_horizon, "parking under the horizon");
        let dist = tick - self.wheel_horizon;
        // floor(log2(dist)) / bits picks the level whose spans cover the
        // distance; beyond the top level, park in the farthest top slot
        // (the key re-parks strictly closer each time that slot expires).
        let mut level = widen((63 - dist.leading_zeros()) / WHEEL_LEVEL_BITS);
        // An unaligned horizon can put the natural level's slot index a
        // full ring ahead of the cursor, where it would alias the cursor
        // bucket; one level up the slot distance is exactly 1.
        if level < WHEEL_LEVELS {
            let shift = level_shift(level);
            if (tick >> shift) - (self.wheel_horizon >> shift) >= WHEEL_SLOTS_U64 {
                level += 1;
            }
        }
        let (level, bucket, start_tick) = if level < WHEEL_LEVELS {
            let shift = level_shift(level);
            let slot_abs = tick >> shift;
            (
                level,
                bucket_index(slot_abs & WHEEL_SLOT_MASK),
                slot_abs << shift,
            )
        } else {
            let top = WHEEL_LEVELS - 1;
            let shift = level_shift(top);
            let slot_abs = (self.wheel_horizon >> shift) + WHEEL_SLOT_MASK;
            (
                top,
                bucket_index(slot_abs & WHEEL_SLOT_MASK),
                slot_abs << shift,
            )
        };
        self.wheel[level * WHEEL_SLOTS + bucket].push(key);
        self.wheel_occupied[level] |= 1u64 << bucket;
        self.wheel_items += 1;
        // Slot starts are lower bounds on their keys' timestamps, so the
        // cache stays a sound lower bound.
        let start = Nanos(start_tick << WHEEL_SHIFT);
        if start < self.wheel_next_start {
            self.wheel_next_start = start;
        }
    }

    /// The occupied slot with the earliest span start, as
    /// `(level, bucket, start_tick)`. Starts are computed cursor-relative
    /// per level, which can only *under*estimate a stale slot's true
    /// start — flushing early is harmless, flushing late never happens.
    fn earliest_wheel_slot(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for level in 0..WHEEL_LEVELS {
            let bits = self.wheel_occupied[level];
            if bits == 0 {
                continue;
            }
            let shift = level_shift(level);
            let cur = self.wheel_horizon >> shift;
            let rot = u32::try_from(cur & WHEEL_SLOT_MASK).expect("masked slot fits u32");
            let dist = u64::from(bits.rotate_right(rot).trailing_zeros());
            let slot_abs = cur + dist;
            if best.map_or(true, |(_, _, s)| (slot_abs << shift) < s) {
                best = Some((
                    level,
                    bucket_index(slot_abs & WHEEL_SLOT_MASK),
                    slot_abs << shift,
                ));
            }
        }
        best
    }

    /// Merge every wheel key that could precede the next heap/lane pop
    /// into the heap: expire occupied slots in span-start order until the
    /// earliest remaining span starts after the heap/lane front. Level-0
    /// slots flush straight to the heap; higher slots cascade their keys
    /// down a level (tombstones are reaped on the way, never sifted).
    #[inline]
    fn surface(&mut self) {
        if self.wheel_items > 0 {
            self.surface_slow();
        }
    }

    fn surface_slow(&mut self) {
        while self.wheel_items > 0 {
            // Wheel keys are strictly beyond `now`, so a non-empty lane
            // (keys *at* `now`) already bounds them out; otherwise the
            // heap top (even a tombstone — the loop in pop/peek clears it
            // and surfaces again) bounds the next pop time.
            let bound = if !self.lane.is_empty() {
                Some(self.now)
            } else {
                self.heap.first().map(|k| k.at)
            };
            if let Some(b) = bound {
                if self.wheel_next_start > b {
                    return;
                }
            }
            let Some((level, bucket, start_tick)) = self.earliest_wheel_slot() else {
                unreachable!("wheel_items > 0 with all bitmaps empty")
            };
            let start = Nanos(start_tick << WHEEL_SHIFT);
            self.wheel_next_start = start;
            if let Some(b) = bound {
                if start > b {
                    return;
                }
            }
            self.wheel_occupied[level] &= !(1u64 << bucket);
            let mut keys = std::mem::take(&mut self.wheel[level * WHEEL_SLOTS + bucket]);
            self.wheel_items -= keys.len();
            self.prof.wheel_cascades += 1;
            if start_tick > self.wheel_horizon {
                self.wheel_horizon = start_tick;
            }
            for key in keys.drain(..) {
                if !self.is_live(key) {
                    continue; // cancelled while parked: reaped in bulk
                }
                if key.at.as_nanos() >> WHEEL_SHIFT <= self.wheel_horizon {
                    self.heap_push(key);
                } else {
                    self.wheel_park(key);
                }
            }
            // Hand the drained vec back so the bucket keeps its capacity
            // (unless a cascading key re-parked into this very bucket).
            if self.wheel[level * WHEEL_SLOTS + bucket].is_empty() {
                self.wheel[level * WHEEL_SLOTS + bucket] = keys;
            }
        }
        self.wheel_next_start = Nanos(u64::MAX);
    }

    #[inline]
    fn is_live(&self, key: Key) -> bool {
        matches!(
            self.slots.get(widen(key.slot)),
            Some(Slot::Occupied { gen, .. }) if *gen == key.gen
        )
    }

    /// Remove the payload behind `key` if the key is live (not a
    /// tombstone), recycling the slot either way it was occupied.
    fn take_live(&mut self, key: Key) -> Option<T> {
        if self.is_live(key) {
            let p = self.remove(key.slot);
            self.live -= 1;
            Some(p)
        } else {
            None
        }
    }

    fn insert(&mut self, payload: T) -> (u32, u32) {
        if self.free_head != NIL {
            let slot = self.free_head;
            let s = &mut self.slots[widen(slot)];
            let Slot::Vacant { next_free, gen } = *s else {
                unreachable!("freelist points at an occupied slot")
            };
            self.free_head = next_free;
            *s = Slot::Occupied { payload, gen };
            (slot, gen)
        } else {
            assert!(
                self.slots.len() < widen(NIL),
                "calendar slab exhausted u32 handles"
            );
            let slot = u32::try_from(self.slots.len()).expect("guarded: len < u32::MAX");
            self.slots.push(Slot::Occupied { payload, gen: 0 });
            (slot, 0)
        }
    }

    /// Free an occupied slot, bumping its generation so stale keys and
    /// handles go inert, and chain it onto the freelist.
    fn remove(&mut self, slot: u32) -> T {
        let s = &mut self.slots[widen(slot)];
        let next = Slot::Vacant {
            next_free: self.free_head,
            gen: match s {
                Slot::Occupied { gen, .. } => gen.wrapping_add(1),
                Slot::Vacant { .. } => unreachable!("double free of a calendar slot"),
            },
        };
        let Slot::Occupied { payload, .. } = std::mem::replace(s, next) else {
            unreachable!("checked occupied above")
        };
        self.free_head = slot;
        payload
    }

    // ---- the key heap: a plain binary min-heap over `Key` ----

    fn heap_push(&mut self, key: Key) {
        self.heap.push(key);
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].before(&self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_pop(&mut self) -> Option<Key> {
        let last = self.heap.pop()?;
        if self.heap.is_empty() {
            return Some(last);
        }
        let top = std::mem::replace(&mut self.heap[0], last);
        // Sift the relocated tail down to its place.
        let len = self.heap.len();
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            if l >= len {
                break;
            }
            let r = l + 1;
            let child = if r < len && self.heap[r].before(&self.heap[l]) {
                r
            } else {
                l
            };
            if self.heap[child].before(&self.heap[i]) {
                self.heap.swap(i, child);
                i = child;
            } else {
                break;
            }
        }
        Some(top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut c: Calendar<u32> = Calendar::new();
        c.schedule(Nanos(30), 3);
        c.schedule(Nanos(10), 1);
        c.schedule(Nanos(10), 2);
        c.schedule(Nanos(20), 9);
        assert_eq!(c.len(), 4);
        let order: Vec<u32> = std::iter::from_fn(|| c.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 9, 3]);
        assert_eq!(c.now(), Nanos(30));
    }

    #[test]
    fn current_instant_uses_the_lane_and_keeps_global_order() {
        let mut c: Calendar<u32> = Calendar::new();
        c.schedule(Nanos(5), 1);
        c.schedule(Nanos(5), 2);
        let (at, p) = c.pop().expect("event pending");
        assert_eq!((at, p), (Nanos(5), 1));
        // Scheduled *at* the clock: lands in the lane, after key 2.
        c.schedule(Nanos(5), 3);
        assert!(!c.lane.is_empty(), "same-instant event must take the lane");
        assert_eq!(c.pop().map(|(_, p)| p), Some(2));
        assert_eq!(c.pop().map(|(_, p)| p), Some(3));
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn cancel_frees_immediately_and_tombstones_the_key() {
        let mut c: Calendar<String> = Calendar::new();
        let a = c.schedule(Nanos(10), "a".to_string());
        c.schedule(Nanos(20), "b".to_string());
        assert_eq!(c.cancel(a), Some("a".to_string()));
        assert_eq!(c.len(), 1);
        // Double-cancel and cancel-after-pop are inert.
        assert_eq!(c.cancel(a), None);
        assert_eq!(c.pop(), Some((Nanos(20), "b".to_string())));
        assert_eq!(c.pop(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn slots_are_reused_through_the_freelist() {
        let mut c: Calendar<u64> = Calendar::new();
        for round in 0..100u64 {
            let at = Nanos(round + 1);
            c.schedule(at, round);
            let (_, p) = c.pop().expect("just scheduled");
            assert_eq!(p, round);
        }
        assert_eq!(c.slots.len(), 1, "steady-state churn must reuse one slot");
    }

    #[test]
    fn stale_handle_after_reuse_does_not_cancel_the_new_tenant() {
        let mut c: Calendar<u32> = Calendar::new();
        let a = c.schedule(Nanos(10), 1);
        c.pop();
        // Slot reused under a new generation.
        let _b = c.schedule(Nanos(20), 2);
        assert_eq!(c.cancel(a), None, "old handle must be inert");
        assert_eq!(c.pop().map(|(_, p)| p), Some(2));
    }

    /// One level-0 tick in nanoseconds, for boundary arithmetic below.
    const TICK: u64 = 1 << WHEEL_SHIFT;

    #[test]
    fn wheel_timers_pop_in_global_time_seq_order() {
        let mut c: Calendar<u32> = Calendar::new();
        // Interleave slab events and wheel timers across cascade
        // boundaries: one tick, a level-0 wrap, a level-1 wrap, and a
        // same-timestamp collision between the two lanes.
        c.schedule(Nanos(3 * TICK), 1);
        c.schedule_timer(Nanos(3 * TICK), 2); // same instant, later seq
        c.schedule_timer(Nanos(TICK + 5), 3);
        c.schedule_timer(Nanos(64 * TICK), 4); // level-1 territory
        c.schedule_timer(Nanos(64 * 64 * TICK + 9), 5); // level-2 territory
        c.schedule(Nanos(2), 0);
        let got: Vec<u32> = std::iter::from_fn(|| c.pop().map(|(_, p)| p)).collect();
        assert_eq!(got, vec![0, 3, 1, 2, 4, 5]);
        assert!(c.is_empty());
    }

    #[test]
    fn cancelled_wheel_timer_rearmed_at_the_same_tick_preserves_fifo() {
        let mut c: Calendar<u32> = Calendar::new();
        let at = Nanos(7 * TICK + 3);
        c.schedule(at, 10); // slab event, seq 0
        let t = c.schedule_timer(at, 11); // timer, seq 1
        assert_eq!(c.cancel(t), Some(11));
        // Re-armed at the same tick: the fresh seq must order it after
        // the slab event and before anything scheduled later.
        c.schedule_timer(at, 12); // seq 2
        c.schedule(at, 13); // slab event, seq 3
        let got: Vec<u32> = std::iter::from_fn(|| c.pop().map(|(_, p)| p)).collect();
        assert_eq!(got, vec![10, 12, 13]);
    }

    #[test]
    fn cancel_after_cascade_still_returns_the_payload() {
        let mut c: Calendar<u32> = Calendar::new();
        // A timer two level-1 slots out, and a slab event between here
        // and there: popping the slab event forces the wheel to cascade
        // the timer's level-1 slot down to level 0 / the heap.
        let t = c.schedule_timer(Nanos(130 * TICK), 1);
        c.schedule(Nanos(129 * TICK), 2);
        assert_eq!(c.pop(), Some((Nanos(129 * TICK), 2)));
        assert_eq!(c.cancel(t), Some(1), "handle must survive the cascade");
        assert_eq!(c.pop(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn timers_beyond_the_top_level_span_repark_and_still_fire_exactly() {
        let mut c: Calendar<u32> = Calendar::new();
        // ~104 days out: past the 52-day top-level span, so the key parks
        // in the farthest top slot and re-parks as the clock approaches.
        let far = Nanos(1 << 53);
        c.schedule_timer(far, 1);
        assert_eq!(c.peek_time(), Some(far));
        assert_eq!(c.pop(), Some((far, 1)));
        assert_eq!(c.now(), far);
    }

    #[test]
    fn cancelled_timers_never_reach_the_heap() {
        let mut c: Calendar<u32> = Calendar::new();
        // Arm-then-cancel churn, the RTO pattern: the heap must stay
        // empty the whole time — that is the point of the wheel lane.
        for i in 0..1000u32 {
            let id = c.schedule_timer(Nanos(3_000_000 + u64::from(i)), i);
            assert_eq!(c.cancel(id), Some(i));
        }
        assert!(c.heap.is_empty(), "parked tombstones must not hit the heap");
        assert!(c.is_empty());
        assert_eq!(c.pop(), None);
        assert_eq!(c.wheel_items, 0, "drain must reap every tombstone");
    }

    #[test]
    fn front_class_precedes_normals_at_the_same_instant() {
        let mut c: Calendar<u32> = Calendar::new();
        // Normals scheduled first, front key last — it still pops first
        // at its instant, and FIFO holds within each class.
        c.schedule(Nanos(10), 1);
        c.schedule(Nanos(10), 2);
        c.schedule_timer(Nanos(10), 3);
        c.schedule_front(Nanos(10), 100);
        c.schedule_front(Nanos(10), 101);
        c.schedule(Nanos(5), 0);
        let got: Vec<u32> = std::iter::from_fn(|| c.pop().map(|(_, p)| p)).collect();
        assert_eq!(got, vec![0, 100, 101, 1, 2, 3]);
        assert_eq!(c.now(), Nanos(10));
    }

    #[test]
    fn front_class_keys_can_be_cancelled() {
        let mut c: Calendar<u32> = Calendar::new();
        let f = c.schedule_front(Nanos(10), 7);
        c.schedule(Nanos(10), 8);
        assert_eq!(c.cancel(f), Some(7));
        assert_eq!(c.pop(), Some((Nanos(10), 8)));
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly future")]
    fn front_class_rejects_the_current_instant() {
        let mut c: Calendar<u32> = Calendar::new();
        c.schedule(Nanos(5), 1);
        c.pop();
        c.schedule_front(Nanos(5), 2);
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut c: Calendar<u32> = Calendar::new();
        let a = c.schedule(Nanos(10), 1);
        c.schedule(Nanos(30), 3);
        c.cancel(a);
        assert_eq!(c.peek_time(), Some(Nanos(30)));
        assert_eq!(c.pop().map(|(at, _)| at), Some(Nanos(30)));
        assert_eq!(c.peek_time(), None);
    }
}
