//! Runtime invariant sanitizer for simulation runs.
//!
//! The repo's headline guarantee — byte-identical reports at any thread
//! count — only holds if every run is causally ordered and physically
//! conservative. The [`Sanitizer`] makes those properties machine-checked
//! instead of conventional:
//!
//! * **Causality** — virtual time is monotonic and no event handler may
//!   schedule work into the past. The [`Engine`](crate::Engine) reports
//!   past-scheduling here when a sanitizer is installed (and debug-asserts
//!   when one is not).
//! * **Byte conservation** — every wire byte injected by a sender must be
//!   accounted for as delivered or dropped; at the end of a fully drained
//!   run the in-flight residue must be exactly zero. The composition layer
//!   (the `tengig` core crate) feeds the ledger from its NIC → link →
//!   switch → sink hooks.
//! * **TCP sequence invariants** — checked by the TCP layer at every ACK
//!   and reported here (`snd_una ≤ snd_nxt`, cwnd/ssthresh bounds, SWS
//!   rounding; see `TcpConn::check_invariants` in `tengig-tcp`).
//!
//! Violations are *recorded*, not panicked on, so a test can observe them;
//! the experiment drivers turn a non-empty violation list into a panic whose
//! message carries the scenario seed and index — a one-command repro.
//!
//! The sanitizer is enabled by default in debug builds (so all tests run
//! under it) and opt-in via [`SimConfig`] in release builds.

use crate::time::Nanos;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide default for whether new simulations install a sanitizer.
///
/// Debug builds default to on — every test runs sanitized; release builds
/// default to off so measurement sweeps pay zero overhead unless asked.
static DEFAULT_ENABLED: AtomicBool = AtomicBool::new(cfg!(debug_assertions));

/// Whether simulations built with [`SimConfig::default`] install a sanitizer.
pub fn default_enabled() -> bool {
    DEFAULT_ENABLED.load(Ordering::Relaxed)
}

/// Override the process-wide sanitizer default (see [`default_enabled`]).
///
/// Used by tests to prove sanitized and unsanitized runs produce
/// byte-identical reports, and by release callers to opt in.
pub fn set_default_enabled(on: bool) {
    DEFAULT_ENABLED.store(on, Ordering::Relaxed);
}

/// Simulation-wide correctness-checking configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Install a [`Sanitizer`] on the engine for this run.
    pub sanitize: bool,
}

impl Default for SimConfig {
    /// Follows the process-wide default: on under `debug_assertions`,
    /// off in release unless [`set_default_enabled`] was called.
    fn default() -> Self {
        SimConfig {
            sanitize: default_enabled(),
        }
    }
}

/// The class of invariant a [`Violation`] breaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// An event was scheduled before the current virtual time.
    Causality,
    /// The byte ledger went out of balance (bytes created or leaked).
    ByteConservation,
    /// A TCP connection's sequence-space invariants failed.
    TcpInvariant,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViolationKind::Causality => "causality",
            ViolationKind::ByteConservation => "byte-conservation",
            ViolationKind::TcpInvariant => "tcp-invariant",
        })
    }
}

/// One recorded invariant breach.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant class failed.
    pub kind: ViolationKind,
    /// Virtual time at which the breach was detected.
    pub at: Nanos,
    /// Human-readable description of the breach.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={} [{}] {}", self.at, self.kind, self.detail)
    }
}

/// Cap on stored violations; a systemically broken model would otherwise
/// record one violation per event and balloon memory before the run ends.
const MAX_RECORDED: usize = 64;

/// Accumulates invariant breaches and the whole-run byte-conservation
/// ledger for one simulation run.
///
/// Install on an [`Engine`](crate::Engine) via
/// [`Engine::install_sanitizer`](crate::Engine::install_sanitizer) so every
/// event handler (which already holds `&mut Engine`) can reach it.
#[derive(Debug, Clone)]
pub struct Sanitizer {
    seed: u64,
    scenario: Option<(usize, String)>,
    injected: u64,
    delivered: u64,
    dropped: u64,
    total: u64,
    violations: Vec<Violation>,
}

impl Sanitizer {
    /// A fresh sanitizer for a run driven by `seed` (recorded so every
    /// report is a one-command repro).
    pub fn new(seed: u64) -> Self {
        Sanitizer {
            seed,
            scenario: None,
            injected: 0,
            delivered: 0,
            dropped: 0,
            total: 0,
            violations: Vec::new(),
        }
    }

    /// Attach the sweep scenario index and label this run belongs to.
    pub fn set_scenario(&mut self, index: usize, label: &str) {
        self.scenario = Some((index, label.to_string()));
    }

    /// The master seed recorded at construction.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The sweep scenario `(index, label)` if one was attached.
    pub fn scenario(&self) -> Option<(usize, &str)> {
        self.scenario.as_ref().map(|(i, l)| (*i, l.as_str()))
    }

    /// Record a violation of `kind` at virtual time `at`.
    ///
    /// Violations beyond an internal cap are counted but not stored.
    pub fn record(&mut self, kind: ViolationKind, at: Nanos, detail: String) {
        self.total += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(Violation { kind, at, detail });
        }
    }

    /// Ledger: `bytes` of wire traffic entered the network at a sender.
    pub fn inject(&mut self, bytes: u64) {
        self.injected += bytes;
    }

    /// Ledger: `bytes` of wire traffic reached a sink at time `at`.
    ///
    /// Delivering (or dropping) more than was ever injected means the model
    /// created bytes out of thin air, and is recorded immediately.
    pub fn deliver(&mut self, at: Nanos, bytes: u64) {
        self.delivered += bytes;
        self.check_balance(at);
    }

    /// Ledger: `bytes` of wire traffic were dropped (queue overflow, path
    /// loss) at time `at`.
    pub fn drop_bytes(&mut self, at: Nanos, bytes: u64) {
        self.dropped += bytes;
        self.check_balance(at);
    }

    fn check_balance(&mut self, at: Nanos) {
        if self.delivered + self.dropped > self.injected {
            let detail = format!(
                "bytes created: delivered {} + dropped {} > injected {}",
                self.delivered, self.dropped, self.injected
            );
            self.record(ViolationKind::ByteConservation, at, detail);
        }
    }

    /// Total wire bytes injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Total wire bytes delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total wire bytes dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Bytes injected but not yet delivered or dropped.
    pub fn in_flight(&self) -> u64 {
        self.injected.saturating_sub(self.delivered + self.dropped)
    }

    /// Assert the ledger is fully drained: after a run whose event calendar
    /// emptied, every injected byte must have been delivered or dropped.
    ///
    /// Only call this on full-drain runs — windowed measurements stop with
    /// frames legitimately still on the wire.
    pub fn check_drained(&mut self, at: Nanos) {
        if self.in_flight() != 0 {
            let detail = format!(
                "bytes leaked: injected {} = delivered {} + dropped {} + in-flight {}",
                self.injected,
                self.delivered,
                self.dropped,
                self.in_flight()
            );
            self.record(ViolationKind::ByteConservation, at, detail);
        }
    }

    /// Whether any violation has been recorded.
    pub fn has_violations(&self) -> bool {
        self.total > 0
    }

    /// The recorded violations (capped; see [`Sanitizer::record`]).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Render every recorded violation with the run's repro coordinates
    /// (seed, scenario index/label).
    pub fn report(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        let _ = write!(
            out,
            "sanitizer: {} violation(s) [seed=0x{:x}",
            self.total, self.seed
        );
        if let Some((index, label)) = self.scenario() {
            let _ = write!(out, " scenario={index} \"{label}\"");
        }
        out.push(']');
        for v in &self.violations {
            let _ = write!(out, "\n  {v}");
        }
        if self.total as usize > self.violations.len() {
            let _ = write!(
                out,
                "\n  ... and {} more",
                self.total as usize - self.violations.len()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_ledger_is_clean() {
        let mut s = Sanitizer::new(1);
        s.inject(9000);
        s.inject(9000);
        s.drop_bytes(Nanos(10), 9000);
        s.deliver(Nanos(20), 9000);
        s.check_drained(Nanos(30));
        assert!(!s.has_violations(), "{}", s.report());
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn leaked_bytes_are_reported_with_seed_and_scenario() {
        let mut s = Sanitizer::new(0xBEEF);
        s.set_scenario(7, "payload=8948");
        s.inject(1000);
        s.deliver(Nanos(50), 400);
        assert!(!s.has_violations(), "mid-run in-flight is legal");
        assert_eq!(s.in_flight(), 600);
        s.check_drained(Nanos(99));
        assert!(s.has_violations());
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].kind, ViolationKind::ByteConservation);
        assert_eq!(s.violations()[0].at, Nanos(99));
        let report = s.report();
        assert!(report.contains("seed=0xbeef"), "{report}");
        assert!(report.contains("scenario=7 \"payload=8948\""), "{report}");
        assert!(report.contains("in-flight 600"), "{report}");
    }

    #[test]
    fn created_bytes_are_reported_immediately() {
        let mut s = Sanitizer::new(3);
        s.inject(100);
        s.deliver(Nanos(5), 100);
        s.deliver(Nanos(6), 1); // one byte from thin air
        assert!(s.has_violations());
        assert_eq!(s.violations()[0].kind, ViolationKind::ByteConservation);
        assert!(s.violations()[0].detail.contains("bytes created"));
    }

    #[test]
    fn violation_storage_is_capped_but_counted() {
        let mut s = Sanitizer::new(4);
        for i in 0..(MAX_RECORDED as u64 + 10) {
            s.record(ViolationKind::TcpInvariant, Nanos(i), format!("v{i}"));
        }
        assert_eq!(s.violations().len(), MAX_RECORDED);
        assert!(s.report().contains("... and 10 more"));
    }

    #[test]
    fn scenario_metadata_roundtrips() {
        let mut s = Sanitizer::new(2003);
        assert_eq!(s.scenario(), None);
        s.set_scenario(3, "mtu=9000");
        assert_eq!(s.scenario(), Some((3, "mtu=9000")));
        assert_eq!(s.seed(), 2003);
    }
}
