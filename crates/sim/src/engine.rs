//! The discrete-event engine.
//!
//! [`Engine<W>`] is a deterministic event calendar over a caller-supplied
//! world type `W`. Events are boxed `FnOnce(&mut W, &mut Engine<W>)` closures
//! keyed by `(time, sequence)`; the sequence number breaks ties in insertion
//! order, so two runs with identical inputs execute identical schedules.
//!
//! The closure form keeps the engine agnostic of everything above it: the
//! TCP stack, NIC models, and workload tools are pure state machines, and the
//! composition layer (the `tengig` core crate) turns their actions into
//! scheduled closures.

use crate::sanitizer::{Sanitizer, ViolationKind};
use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Type of the boxed event callbacks executed by the engine.
pub type Event<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

struct Entry<W> {
    at: Nanos,
    seq: u64,
    f: Event<W>,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first.
impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event scheduler over world state `W`.
pub struct Engine<W> {
    now: Nanos,
    seq: u64,
    executed: u64,
    queue: BinaryHeap<Entry<W>>,
    sanitizer: Option<Sanitizer>,
    /// Hard cap on executed events; guards against runaway feedback loops in
    /// model composition bugs. [`Engine::run`] panics when exceeded.
    pub event_limit: u64,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Create an empty engine at time zero.
    pub fn new() -> Self {
        Engine {
            now: Nanos::ZERO,
            seq: 0,
            executed: 0,
            queue: BinaryHeap::new(),
            sanitizer: None,
            event_limit: u64::MAX,
        }
    }

    /// Install a runtime invariant [`Sanitizer`] on this engine.
    ///
    /// Once installed, past-scheduling is recorded as a causality violation
    /// (instead of the debug assertion) and model layers can reach the
    /// ledger through [`Engine::sanitizer_mut`] from any event handler.
    pub fn install_sanitizer(&mut self, sanitizer: Sanitizer) {
        self.sanitizer = Some(sanitizer);
    }

    /// The installed sanitizer, if any.
    pub fn sanitizer(&self) -> Option<&Sanitizer> {
        self.sanitizer.as_ref()
    }

    /// Mutable access to the installed sanitizer, if any.
    pub fn sanitizer_mut(&mut self) -> Option<&mut Sanitizer> {
        self.sanitizer.as_mut()
    }

    /// Remove and return the installed sanitizer for end-of-run inspection.
    pub fn take_sanitizer(&mut self) -> Option<Sanitizer> {
        self.sanitizer.take()
    }

    /// Current virtual time. Monotonically non-decreasing across callbacks.
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` to run at absolute time `at`.
    ///
    /// Scheduling in the past is a model bug and is rejected, never
    /// silently reordered: with a [`Sanitizer`] installed the engine
    /// records a causality violation (so tests can observe it); without
    /// one it panics in debug builds. Either way the event is clamped to
    /// `now` so release runs keep a monotonic clock.
    pub fn schedule_at<F>(&mut self, at: Nanos, f: F)
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        if at < self.now {
            if let Some(s) = self.sanitizer.as_mut() {
                let detail = format!(
                    "handler scheduled an event at {} with the clock at {}",
                    at, self.now
                );
                s.record(ViolationKind::Causality, self.now, detail);
            } else {
                debug_assert!(
                    at >= self.now,
                    "event scheduled in the past: {} < {}",
                    at,
                    self.now
                );
            }
        }
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            at,
            seq,
            f: Box::new(f),
        });
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: Nanos, f: F)
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, f);
    }

    /// Schedule `f` to run "immediately" (at the current time, after all
    /// callbacks already queued for this instant).
    pub fn schedule_now<F>(&mut self, f: F)
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        self.schedule_at(self.now, f);
    }

    /// Run a single event if one is pending. Returns `false` when the
    /// calendar is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some(entry) = self.queue.pop() else {
            return false;
        };
        debug_assert!(entry.at >= self.now, "time went backwards");
        self.now = entry.at;
        self.executed += 1;
        (entry.f)(world, self);
        true
    }

    /// Run until the calendar drains.
    ///
    /// Panics if `event_limit` is exceeded — an engine that never drains
    /// means some component keeps rescheduling itself unconditionally.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {
            assert!(
                self.executed <= self.event_limit,
                "event limit {} exceeded at t={}",
                self.event_limit,
                self.now
            );
        }
    }

    /// Run until the calendar drains or virtual time would pass `deadline`.
    ///
    /// Events scheduled strictly after `deadline` remain queued; the clock is
    /// left at the last executed event (≤ `deadline`).
    pub fn run_until(&mut self, world: &mut W, deadline: Nanos) {
        while let Some(next) = self.queue.peek().map(|e| e.at) {
            if next > deadline {
                break;
            }
            self.step(world);
            assert!(
                self.executed <= self.event_limit,
                "event limit {} exceeded at t={}",
                self.event_limit,
                self.now
            );
        }
    }

    /// Run until `deadline` like [`Engine::run_until`], then set the clock
    /// to exactly `deadline`.
    ///
    /// `run_until` leaves `now` at the last executed event, which skews any
    /// rate computed as `bytes / now()` and makes back-to-back measurement
    /// windows (`advance_to(warmup)`, `advance_to(warmup + window)`) cover
    /// slightly more or less than `window` of virtual time. This variant
    /// pins the clock to the deadline; it is safe because every remaining
    /// event is strictly later than `deadline`.
    pub fn advance_to(&mut self, world: &mut W, deadline: Nanos) {
        self.run_until(world, deadline);
        if self.now < deadline {
            self.now = deadline;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        eng.schedule_at(Nanos(30), |w: &mut Vec<u32>, _| w.push(3));
        eng.schedule_at(Nanos(10), |w, _| w.push(1));
        eng.schedule_at(Nanos(20), |w, _| w.push(2));
        eng.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(eng.now(), Nanos(30));
        assert_eq!(eng.executed(), 3);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        for i in 0..100 {
            eng.schedule_at(Nanos(5), move |w: &mut Vec<u32>, _| w.push(i));
        }
        eng.run(&mut log);
        assert_eq!(log, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut eng: Engine<Vec<Nanos>> = Engine::new();
        let mut log = Vec::new();
        eng.schedule_at(
            Nanos(10),
            |w: &mut Vec<Nanos>, e: &mut Engine<Vec<Nanos>>| {
                w.push(e.now());
                e.schedule_in(Nanos(5), |w, e| w.push(e.now()));
                e.schedule_now(|w, e| w.push(e.now()));
            },
        );
        eng.run(&mut log);
        assert_eq!(log, vec![Nanos(10), Nanos(10), Nanos(15)]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        for t in [5u64, 10, 15, 20] {
            eng.schedule_at(Nanos(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        eng.run_until(&mut log, Nanos(12));
        assert_eq!(log, vec![5, 10]);
        assert_eq!(eng.pending(), 2);
        // Continuing runs the rest.
        eng.run(&mut log);
        assert_eq!(log, vec![5, 10, 15, 20]);
    }

    #[test]
    fn advance_to_lands_exactly_on_the_deadline() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        for t in [5u64, 10, 15, 20] {
            eng.schedule_at(Nanos(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        eng.advance_to(&mut log, Nanos(12));
        assert_eq!(log, vec![5, 10]);
        assert_eq!(eng.now(), Nanos(12), "clock pinned to the deadline");
        // Pending events are untouched and still run at their own times.
        eng.advance_to(&mut log, Nanos(20));
        assert_eq!(log, vec![5, 10, 15, 20]);
        assert_eq!(eng.now(), Nanos(20));
        // An empty calendar still advances the clock.
        eng.advance_to(&mut log, Nanos(30));
        assert_eq!(eng.now(), Nanos(30));
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_trips_on_livelock() {
        fn respawn(_: &mut (), e: &mut Engine<()>) {
            e.schedule_in(Nanos(1), respawn);
        }
        let mut eng: Engine<()> = Engine::new();
        eng.event_limit = 1000;
        eng.schedule_at(Nanos(0), respawn);
        eng.run(&mut ());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics_without_a_sanitizer() {
        let mut eng: Engine<()> = Engine::new();
        eng.schedule_at(Nanos(100), |_, e: &mut Engine<()>| {
            e.schedule_at(Nanos(50), |_, _| {});
        });
        eng.run(&mut ());
    }

    #[test]
    fn past_scheduling_is_recorded_by_the_sanitizer() {
        let mut eng: Engine<Vec<Nanos>> = Engine::new();
        eng.install_sanitizer(Sanitizer::new(0xD06));
        let mut log = Vec::new();
        eng.schedule_at(Nanos(100), |_, e: &mut Engine<Vec<Nanos>>| {
            e.schedule_at(Nanos(50), |w, e| w.push(e.now()));
        });
        eng.run(&mut log);
        // The offending event still ran, clamped to the current time.
        assert_eq!(log, vec![Nanos(100)]);
        let s = eng.take_sanitizer().expect("sanitizer was installed");
        assert_eq!(s.violations().len(), 1);
        let v = &s.violations()[0];
        assert_eq!(v.kind, ViolationKind::Causality);
        assert_eq!(v.at, Nanos(100));
        assert!(v.detail.contains("50ns"), "{}", v.detail);
        assert!(s.report().contains("seed=0xd06"), "{}", s.report());
    }

    #[test]
    fn saturating_delay_does_not_overflow() {
        let mut eng: Engine<u32> = Engine::new();
        let mut w = 0u32;
        eng.schedule_at(Nanos(100), |_, e: &mut Engine<u32>| {
            e.schedule_in(Nanos::MAX, |w: &mut u32, _| *w += 1);
        });
        eng.run(&mut w);
        assert_eq!(w, 1);
        assert_eq!(eng.now(), Nanos::MAX);
    }
}
