//! The discrete-event engine.
//!
//! [`Engine<W, E>`] is a deterministic event calendar over a caller-supplied
//! world type `W` and event payload type `E`. Events are keyed by
//! `(time, sequence)`; the sequence number breaks ties in insertion order,
//! so two runs with identical inputs execute identical schedules.
//!
//! The payload type keeps the engine agnostic of everything above it while
//! letting hot compositions avoid allocation entirely: a payload is any
//! [`EventFire`] type, stored inline in the calendar's slab
//! ([`crate::calendar::Calendar`]) and referenced by `u32` handles. The
//! composition layer (the `tengig` core crate) schedules a plain `enum` of
//! its event kinds; tests and small models use the default
//! [`BoxedEvent<W>`] payload, which restores the original boxed-closure
//! ergonomics ([`Engine::schedule_at`] and friends taking `FnOnce`).

use crate::calendar::Calendar;
pub use crate::calendar::EventId;
use crate::prof::{CalendarCounters, EngineCounters};
use crate::sanitizer::{Sanitizer, ViolationKind};
use crate::time::Nanos;

/// An event payload the engine can execute.
///
/// Implementors are consumed by value when their scheduled instant
/// arrives, with mutable access to both the world and the engine (to
/// schedule follow-up events).
pub trait EventFire<W>: Sized {
    /// Execute the event.
    fn fire(self, world: &mut W, eng: &mut Engine<W, Self>);
}

/// The closure type a [`BoxedEvent`] boxes.
type BoxedFire<W> = dyn FnOnce(&mut W, &mut Engine<W>);

/// The default payload: a boxed `FnOnce` closure, for worlds that prefer
/// closure ergonomics over allocation-free scheduling.
pub struct BoxedEvent<W>(Box<BoxedFire<W>>);

/// Backwards-compatible alias for the boxed payload type.
pub type Event<W> = BoxedEvent<W>;

impl<W> EventFire<W> for BoxedEvent<W> {
    fn fire(self, world: &mut W, eng: &mut Engine<W, Self>) {
        (self.0)(world, eng)
    }
}

/// A deterministic discrete-event scheduler over world state `W`.
pub struct Engine<W, E: EventFire<W> = BoxedEvent<W>> {
    executed: u64,
    calendar: Calendar<E>,
    sanitizer: Option<Sanitizer>,
    /// Hard cap on executed events; guards against runaway feedback loops in
    /// model composition bugs. [`Engine::run`] panics when exceeded.
    pub event_limit: u64,
    /// Scheduling-verb totals for the deterministic profiling plane.
    prof: EngineCounters,
    _world: std::marker::PhantomData<fn(&mut W)>,
}

impl<W, E: EventFire<W>> Default for Engine<W, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W, E: EventFire<W>> Engine<W, E> {
    /// Create an empty engine at time zero.
    pub fn new() -> Self {
        Engine {
            executed: 0,
            calendar: Calendar::new(),
            sanitizer: None,
            event_limit: u64::MAX,
            prof: EngineCounters::default(),
            _world: std::marker::PhantomData,
        }
    }

    /// Scheduling-verb totals accumulated so far (deterministic plane).
    /// Summed across shards these are shard-count-invariant: every
    /// schedule/cancel call site executes on exactly one shard at the
    /// same virtual instant whatever the shard count.
    #[inline]
    pub fn prof_counters(&self) -> EngineCounters {
        self.prof
    }

    /// The calendar's internal routing counters (deterministic but
    /// calendar-private — see [`CalendarCounters`]).
    #[inline]
    pub fn calendar_counters(&self) -> CalendarCounters {
        self.calendar.prof_counters()
    }

    /// Install a runtime invariant [`Sanitizer`] on this engine.
    ///
    /// Once installed, past-scheduling is recorded as a causality violation
    /// (instead of the debug assertion) and model layers can reach the
    /// ledger through [`Engine::sanitizer_mut`] from any event handler.
    pub fn install_sanitizer(&mut self, sanitizer: Sanitizer) {
        self.sanitizer = Some(sanitizer);
    }

    /// The installed sanitizer, if any.
    pub fn sanitizer(&self) -> Option<&Sanitizer> {
        self.sanitizer.as_ref()
    }

    /// Mutable access to the installed sanitizer, if any.
    pub fn sanitizer_mut(&mut self) -> Option<&mut Sanitizer> {
        self.sanitizer.as_mut()
    }

    /// Remove and return the installed sanitizer for end-of-run inspection.
    pub fn take_sanitizer(&mut self) -> Option<Sanitizer> {
        self.sanitizer.take()
    }

    /// Current virtual time. Monotonically non-decreasing across callbacks.
    #[inline]
    pub fn now(&self) -> Nanos {
        self.calendar.now()
    }

    /// Number of events executed so far.
    #[inline]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (cancelled events excluded).
    #[inline]
    pub fn pending(&self) -> usize {
        self.calendar.len()
    }

    /// Schedule `ev` to fire at absolute time `at`, returning a handle
    /// that [`Engine::cancel`] accepts until the event fires.
    ///
    /// Scheduling in the past is a model bug and is rejected, never
    /// silently reordered: with a [`Sanitizer`] installed the engine
    /// records a causality violation (so tests can observe it); without
    /// one it panics in debug builds. Either way the event is clamped to
    /// `now` so release runs keep a monotonic clock.
    pub fn schedule_event_at(&mut self, at: Nanos, ev: E) -> EventId {
        let now = self.calendar.now();
        if at < now {
            if let Some(s) = self.sanitizer.as_mut() {
                let detail = format!(
                    "handler scheduled an event at {} with the clock at {}",
                    at, now
                );
                s.record(ViolationKind::Causality, now, detail);
            } else {
                debug_assert!(at >= now, "event scheduled in the past: {} < {}", at, now);
            }
        }
        self.prof.sched_events += 1;
        self.calendar.schedule(at.max(now), ev)
    }

    /// Schedule `ev` to fire `delay` after the current time.
    pub fn schedule_event_in(&mut self, delay: Nanos, ev: E) -> EventId {
        let at = self.calendar.now().saturating_add(delay);
        self.schedule_event_at(at, ev)
    }

    /// Schedule `ev` at absolute time `at` through the calendar's
    /// timing-wheel lane ([`crate::Calendar::schedule_timer`]): identical
    /// semantics to [`Engine::schedule_event_at`] — same pop order, same
    /// handle, same past-scheduling policing — but O(1) arm/cancel for
    /// far-future, usually-cancelled protocol timers (RTO, delayed ACK).
    pub fn schedule_timer_at(&mut self, at: Nanos, ev: E) -> EventId {
        let now = self.calendar.now();
        if at < now {
            if let Some(s) = self.sanitizer.as_mut() {
                let detail = format!("handler armed a timer at {} with the clock at {}", at, now);
                s.record(ViolationKind::Causality, now, detail);
            } else {
                debug_assert!(at >= now, "timer armed in the past: {} < {}", at, now);
            }
        }
        self.prof.sched_timers += 1;
        self.calendar.schedule_timer(at.max(now), ev)
    }

    /// Schedule `ev` on the timer lane `delay` after the current time.
    pub fn schedule_timer_in(&mut self, delay: Nanos, ev: E) -> EventId {
        let at = self.calendar.now().saturating_add(delay);
        self.schedule_timer_at(at, ev)
    }

    /// Schedule `ev` to fire "immediately" (at the current time, after all
    /// events already queued for this instant).
    pub fn schedule_event_now(&mut self, ev: E) -> EventId {
        self.schedule_event_at(self.calendar.now(), ev)
    }

    /// Schedule `ev` at strictly-future time `at` in the calendar's
    /// **front class** ([`crate::Calendar::schedule_front`]): at equal
    /// timestamps it fires before every normal event, whatever the
    /// scheduling order. The sharded lab's ingress drain uses this so a
    /// merged arrival batch is applied before any normal event of the
    /// same instant on any shard count.
    ///
    /// Panics when `at <= now` — front-class events may not target the
    /// current instant (the same-instant FIFO lane would break the class
    /// order), so callers must schedule them strictly ahead.
    pub fn schedule_front_at(&mut self, at: Nanos, ev: E) -> EventId {
        self.prof.sched_front += 1;
        self.calendar.schedule_front(at, ev)
    }

    /// Timestamp of the earliest pending event, if any, without popping
    /// it. Used by the shard runner to publish each shard's next event
    /// time when computing the global synchronization window.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        self.calendar.peek_time()
    }

    /// Cancel a scheduled event. Returns `true` when the handle was still
    /// live (the payload is dropped immediately); `false` when the event
    /// already fired or was already cancelled. O(1): the calendar leaves a
    /// tombstone behind instead of restructuring the heap.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.prof.cancels += 1;
        let hit = self.calendar.cancel(id).is_some();
        if hit {
            self.prof.cancel_hits += 1;
        }
        hit
    }

    /// Run a single event if one is pending. Returns `false` when the
    /// calendar is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some((_, ev)) = self.calendar.pop() else {
            return false;
        };
        self.executed += 1;
        ev.fire(world, self);
        true
    }

    /// Run until the calendar drains.
    ///
    /// Panics if `event_limit` is exceeded — an engine that never drains
    /// means some component keeps rescheduling itself unconditionally.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {
            assert!(
                self.executed <= self.event_limit,
                "event limit {} exceeded at t={}",
                self.event_limit,
                self.calendar.now()
            );
        }
    }

    /// Run until the calendar drains or virtual time would pass `deadline`.
    ///
    /// Events scheduled strictly after `deadline` remain queued; the clock is
    /// left at the last executed event (≤ `deadline`).
    pub fn run_until(&mut self, world: &mut W, deadline: Nanos) {
        while let Some(next) = self.calendar.peek_time() {
            if next > deadline {
                break;
            }
            self.step(world);
            assert!(
                self.executed <= self.event_limit,
                "event limit {} exceeded at t={}",
                self.event_limit,
                self.calendar.now()
            );
        }
    }

    /// Run until the calendar drains or the next event lies at or past
    /// `end` (an **exclusive** deadline, unlike [`Engine::run_until`]'s
    /// inclusive one). Events at exactly `end` remain queued.
    ///
    /// This is the conservative-window primitive of the shard runner:
    /// a shard owning lookahead window `[T, T + L)` executes every local
    /// event strictly below `T + L` and stops, because an event at
    /// `T + L` could still be preceded by a cross-shard arrival at that
    /// same instant.
    pub fn run_before(&mut self, world: &mut W, end: Nanos) {
        while let Some(next) = self.calendar.peek_time() {
            if next >= end {
                break;
            }
            self.step(world);
            assert!(
                self.executed <= self.event_limit,
                "event limit {} exceeded at t={}",
                self.event_limit,
                self.calendar.now()
            );
        }
    }

    /// Run until `deadline` like [`Engine::run_until`], then set the clock
    /// to exactly `deadline`.
    ///
    /// `run_until` leaves `now` at the last executed event, which skews any
    /// rate computed as `bytes / now()` and makes back-to-back measurement
    /// windows (`advance_to(warmup)`, `advance_to(warmup + window)`) cover
    /// slightly more or less than `window` of virtual time. This variant
    /// pins the clock to the deadline; it is safe because every remaining
    /// event is strictly later than `deadline`.
    pub fn advance_to(&mut self, world: &mut W, deadline: Nanos) {
        self.run_until(world, deadline);
        self.calendar.advance_now_to(deadline);
    }
}

impl<W> Engine<W, BoxedEvent<W>> {
    /// Schedule closure `f` to run at absolute time `at` (boxed-payload
    /// engines only). See [`Engine::schedule_event_at`].
    pub fn schedule_at<F>(&mut self, at: Nanos, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        self.schedule_event_at(at, BoxedEvent(Box::new(f)))
    }

    /// Schedule closure `f` to run `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: Nanos, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        self.schedule_event_in(delay, BoxedEvent(Box::new(f)))
    }

    /// Schedule closure `f` to run "immediately" (at the current time,
    /// after all callbacks already queued for this instant).
    pub fn schedule_now<F>(&mut self, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        self.schedule_event_now(BoxedEvent(Box::new(f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        eng.schedule_at(Nanos(30), |w: &mut Vec<u32>, _| w.push(3));
        eng.schedule_at(Nanos(10), |w, _| w.push(1));
        eng.schedule_at(Nanos(20), |w, _| w.push(2));
        eng.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(eng.now(), Nanos(30));
        assert_eq!(eng.executed(), 3);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        for i in 0..100 {
            eng.schedule_at(Nanos(5), move |w: &mut Vec<u32>, _| w.push(i));
        }
        eng.run(&mut log);
        assert_eq!(log, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut eng: Engine<Vec<Nanos>> = Engine::new();
        let mut log = Vec::new();
        eng.schedule_at(
            Nanos(10),
            |w: &mut Vec<Nanos>, e: &mut Engine<Vec<Nanos>>| {
                w.push(e.now());
                e.schedule_in(Nanos(5), |w, e| w.push(e.now()));
                e.schedule_now(|w, e| w.push(e.now()));
            },
        );
        eng.run(&mut log);
        assert_eq!(log, vec![Nanos(10), Nanos(10), Nanos(15)]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        for t in [5u64, 10, 15, 20] {
            eng.schedule_at(Nanos(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        eng.run_until(&mut log, Nanos(12));
        assert_eq!(log, vec![5, 10]);
        assert_eq!(eng.pending(), 2);
        // Continuing runs the rest.
        eng.run(&mut log);
        assert_eq!(log, vec![5, 10, 15, 20]);
    }

    #[test]
    fn advance_to_lands_exactly_on_the_deadline() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        for t in [5u64, 10, 15, 20] {
            eng.schedule_at(Nanos(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        eng.advance_to(&mut log, Nanos(12));
        assert_eq!(log, vec![5, 10]);
        assert_eq!(eng.now(), Nanos(12), "clock pinned to the deadline");
        // Pending events are untouched and still run at their own times.
        eng.advance_to(&mut log, Nanos(20));
        assert_eq!(log, vec![5, 10, 15, 20]);
        assert_eq!(eng.now(), Nanos(20));
        // An empty calendar still advances the clock.
        eng.advance_to(&mut log, Nanos(30));
        assert_eq!(eng.now(), Nanos(30));
    }

    #[test]
    fn run_before_excludes_the_deadline_instant() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        for t in [5u64, 10, 15] {
            eng.schedule_at(Nanos(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        eng.run_before(&mut log, Nanos(10));
        assert_eq!(log, vec![5], "the event at the window end stays queued");
        assert_eq!(eng.peek_time(), Some(Nanos(10)));
        eng.run(&mut log);
        assert_eq!(log, vec![5, 10, 15]);
    }

    #[test]
    fn front_class_events_run_before_normals_of_the_same_instant() {
        let mut eng: Engine<Vec<&'static str>> = Engine::new();
        let mut log = Vec::new();
        eng.schedule_at(Nanos(10), |w: &mut Vec<&'static str>, _| w.push("normal"));
        eng.schedule_front_at(
            Nanos(10),
            BoxedEvent(Box::new(|w: &mut Vec<&'static str>, _| w.push("front"))),
        );
        eng.run(&mut log);
        assert_eq!(log, vec!["front", "normal"]);
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_trips_on_livelock() {
        fn respawn(_: &mut (), e: &mut Engine<()>) {
            e.schedule_in(Nanos(1), respawn);
        }
        let mut eng: Engine<()> = Engine::new();
        eng.event_limit = 1000;
        eng.schedule_at(Nanos(0), respawn);
        eng.run(&mut ());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics_without_a_sanitizer() {
        let mut eng: Engine<()> = Engine::new();
        eng.schedule_at(Nanos(100), |_, e: &mut Engine<()>| {
            e.schedule_at(Nanos(50), |_, _| {});
        });
        eng.run(&mut ());
    }

    #[test]
    fn past_scheduling_is_recorded_by_the_sanitizer() {
        let mut eng: Engine<Vec<Nanos>> = Engine::new();
        eng.install_sanitizer(Sanitizer::new(0xD06));
        let mut log = Vec::new();
        eng.schedule_at(Nanos(100), |_, e: &mut Engine<Vec<Nanos>>| {
            e.schedule_at(Nanos(50), |w, e| w.push(e.now()));
        });
        eng.run(&mut log);
        // The offending event still ran, clamped to the current time.
        assert_eq!(log, vec![Nanos(100)]);
        let s = eng.take_sanitizer().expect("sanitizer was installed");
        assert_eq!(s.violations().len(), 1);
        let v = &s.violations()[0];
        assert_eq!(v.kind, ViolationKind::Causality);
        assert_eq!(v.at, Nanos(100));
        assert!(v.detail.contains("50ns"), "{}", v.detail);
        assert!(s.report().contains("seed=0xd06"), "{}", s.report());
    }

    #[test]
    fn saturating_delay_does_not_overflow() {
        let mut eng: Engine<u32> = Engine::new();
        let mut w = 0u32;
        eng.schedule_at(Nanos(100), |_, e: &mut Engine<u32>| {
            e.schedule_in(Nanos::MAX, |w: &mut u32, _| *w += 1);
        });
        eng.run(&mut w);
        assert_eq!(w, 1);
        assert_eq!(eng.now(), Nanos::MAX);
    }

    #[test]
    fn cancelled_events_never_fire_and_leave_pending_clean() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        let a = eng.schedule_at(Nanos(10), |w: &mut Vec<u32>, _| w.push(1));
        eng.schedule_at(Nanos(20), |w, _| w.push(2));
        assert_eq!(eng.pending(), 2);
        assert!(eng.cancel(a), "live event cancels");
        assert_eq!(eng.pending(), 1);
        assert!(!eng.cancel(a), "second cancel is inert");
        eng.run(&mut log);
        assert_eq!(log, vec![2]);
        assert_eq!(eng.executed(), 1, "cancelled events are not executed");
        assert!(!eng.cancel(a), "cancel after run is inert");
    }

    #[test]
    fn cancel_from_within_a_handler_kills_a_pending_timer() {
        // The timer-reschedule pattern: a handler cancels a previously
        // armed event and arms a replacement.
        let mut eng: Engine<Vec<&'static str>> = Engine::new();
        let mut log = Vec::new();
        let stale = eng.schedule_at(Nanos(100), |w: &mut Vec<&'static str>, _| w.push("stale"));
        eng.schedule_at(Nanos(50), move |w: &mut Vec<&'static str>, e| {
            w.push("reschedule");
            assert!(e.cancel(stale));
            e.schedule_at(Nanos(200), |w, _| w.push("fresh"));
        });
        eng.run(&mut log);
        assert_eq!(log, vec!["reschedule", "fresh"]);
        assert_eq!(eng.now(), Nanos(200));
    }
}
