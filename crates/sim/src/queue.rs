//! Bounded drop-tail byte queues — the buffer model for switch ports and
//! router line cards.
//!
//! The WAN experiment's central fact is that "packet loss is due exclusively
//! to congestion in the network, i.e., packets are dropped when the number of
//! unacknowledged packets exceeds the available capacity of the network"
//! (§4.2). [`DropTailQueue`] realizes that: it admits items up to a byte
//! capacity and drops beyond it, with exact accounting.

use crate::stats::Counter;

/// An enqueued item: an opaque token plus its byte size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Queued<T> {
    /// Caller's token (e.g. a frame id).
    pub item: T,
    /// Size charged against the queue's byte capacity.
    pub bytes: u64,
}

/// Result of an enqueue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// Item accepted; queue depth in bytes after admission.
    Accepted {
        /// Queue depth in bytes after admission.
        depth: u64,
    },
    /// Item dropped (would exceed capacity).
    Dropped,
}

/// A bounded FIFO byte queue with drop-tail semantics.
#[derive(Debug, Clone)]
pub struct DropTailQueue<T> {
    capacity_bytes: u64,
    depth_bytes: u64,
    items: std::collections::VecDeque<Queued<T>>,
    /// Count of accepted items.
    pub accepted: Counter,
    /// Count of dropped items.
    pub dropped: Counter,
    /// Highest byte depth ever reached.
    pub peak_depth: u64,
}

impl<T> DropTailQueue<T> {
    /// A queue holding at most `capacity_bytes` bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        DropTailQueue {
            capacity_bytes,
            depth_bytes: 0,
            items: std::collections::VecDeque::new(),
            accepted: Counter::default(),
            dropped: Counter::default(),
            peak_depth: 0,
        }
    }

    /// Attempt to enqueue `item` of `bytes` bytes.
    ///
    /// A zero-capacity queue drops everything; an item larger than the whole
    /// capacity is always dropped.
    pub fn enqueue(&mut self, item: T, bytes: u64) -> Enqueue {
        if self.depth_bytes + bytes > self.capacity_bytes {
            self.dropped.bump();
            return Enqueue::Dropped;
        }
        self.depth_bytes += bytes;
        self.peak_depth = self.peak_depth.max(self.depth_bytes);
        self.items.push_back(Queued { item, bytes });
        self.accepted.bump();
        Enqueue::Accepted {
            depth: self.depth_bytes,
        }
    }

    /// Remove and return the oldest item.
    pub fn dequeue(&mut self) -> Option<Queued<T>> {
        let q = self.items.pop_front()?;
        self.depth_bytes -= q.bytes;
        Some(q)
    }

    /// Current depth in bytes.
    pub fn depth_bytes(&self) -> u64 {
        self.depth_bytes
    }

    /// Current depth in items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Configured byte capacity.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Free space in bytes.
    pub fn headroom(&self) -> u64 {
        self.capacity_bytes - self.depth_bytes
    }

    /// Loss fraction over the queue's lifetime (`dropped / offered`).
    pub fn loss_rate(&self) -> f64 {
        let offered = self.accepted.get() + self.dropped.get();
        if offered == 0 {
            0.0
        } else {
            self.dropped.get() as f64 / offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_depth_accounting() {
        let mut q = DropTailQueue::new(10_000);
        assert!(matches!(
            q.enqueue('a', 4000),
            Enqueue::Accepted { depth: 4000 }
        ));
        assert!(matches!(
            q.enqueue('b', 4000),
            Enqueue::Accepted { depth: 8000 }
        ));
        assert_eq!(q.len(), 2);
        assert_eq!(q.headroom(), 2000);
        let first = q.dequeue().expect("two items were enqueued");
        assert_eq!(first.item, 'a');
        assert_eq!(q.depth_bytes(), 4000);
        assert_eq!(q.dequeue().expect("second item still queued").item, 'b');
        assert!(q.is_empty());
    }

    #[test]
    fn drop_tail_on_overflow() {
        let mut q = DropTailQueue::new(9000);
        assert!(matches!(q.enqueue(1, 8000), Enqueue::Accepted { .. }));
        assert_eq!(q.enqueue(2, 1500), Enqueue::Dropped);
        assert_eq!(q.dropped.get(), 1);
        assert_eq!(q.accepted.get(), 1);
        assert!((q.loss_rate() - 0.5).abs() < 1e-12);
        // After draining there is room again.
        q.dequeue();
        assert!(matches!(q.enqueue(3, 1500), Enqueue::Accepted { .. }));
    }

    #[test]
    fn oversized_item_always_drops() {
        let mut q = DropTailQueue::new(1000);
        assert_eq!(q.enqueue((), 1001), Enqueue::Dropped);
        let mut z = DropTailQueue::new(0);
        assert_eq!(z.enqueue((), 1), Enqueue::Dropped);
    }

    #[test]
    fn peak_depth_tracks_high_water() {
        let mut q = DropTailQueue::new(10_000);
        q.enqueue(1, 6000);
        q.enqueue(2, 3000);
        q.dequeue();
        q.dequeue();
        assert_eq!(q.peak_depth, 9000);
        assert_eq!(q.depth_bytes(), 0);
    }
}
