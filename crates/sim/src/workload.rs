//! Deterministic open-loop workload generation: seeded flow arrivals,
//! heavy-tailed transfer sizes, and flow-completion-time accounting.
//!
//! Every experiment family before this module was *closed-loop*: a fixed
//! set of flows, each pushing bytes as fast as its window allows, started
//! once and run to completion. An operator serving real users sees the
//! opposite regime — an *open-loop* stream of flow arrivals that does not
//! slow down because the server is busy. This module provides the
//! deterministic pieces of that regime:
//!
//! * [`ArrivalProcess`] — when flows arrive (Poisson, or bursty on/off),
//! * [`BoundedPareto`] / [`SizeMix`] — how many bytes each flow carries
//!   (heavy-tailed, with mice/elephant mix presets),
//! * [`build_schedule`] — the arrival loop: samples a full [`FlowPlan`]
//!   list from a forked [`SimRng`] *at laboratory build time*,
//! * [`FctStats`] — the completion loop: folds per-flow completion times
//!   into a [`Hist`]-backed percentile summary after the run.
//!
//! # Draw-count discipline
//!
//! The schedule is sampled once, up front, from an [`SimRng::fork`]ed
//! stream — a simulation that does not enable the workload plane performs
//! **zero** workload draws, so enabling it elsewhere can never perturb an
//! existing golden. Within the plane, the draw order per flow is fixed
//! and documented (gap first, then size; the size takes a class coin and
//! then one inverse-CDF draw), and the unit tests pin both the sampled
//! values and the exact number of `next_u64` draws for fixed seeds: a
//! reordered draw or a re-parameterized sampler fails loudly instead of
//! silently shifting every downstream golden.
//!
//! Both the arrival loop ([`build_schedule`]) and the completion loop
//! ([`FctStats::record`]) are declared `tengig-lint` hot-path roots: a
//! wall-clock read or unseeded RNG introduced anywhere beneath them is a
//! CI failure with a call-chain proof.

use crate::prof::Hist;
use crate::rng::SimRng;
use crate::time::Nanos;

/// When flows arrive: the inter-arrival--gap process.
///
/// Gaps are sampled by [`ArrivalProcess::sample_gap`], one flow index at
/// a time, so the draw count per arrival is fixed by the variant (see
/// the method docs) and schedule construction is reproducible from the
/// seed alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless Poisson arrivals: independent exponential gaps with
    /// the given mean. Offered flow rate is `1 / mean_gap`.
    Poisson {
        /// Mean inter-arrival gap (must be positive).
        mean_gap: Nanos,
    },
    /// Bursty on/off arrivals: flows arrive in bursts of `burst` with
    /// exponential in-burst gaps of mean `on_gap`; between bursts the
    /// source goes silent for an additional exponential idle period of
    /// mean `off_gap`. Models synchronized client wave-fronts.
    OnOff {
        /// Mean gap between arrivals inside a burst (must be positive).
        on_gap: Nanos,
        /// Arrivals per burst (must be ≥ 1).
        burst: u64,
        /// Mean extra idle gap inserted between bursts (must be positive).
        off_gap: Nanos,
    },
}

impl ArrivalProcess {
    /// Sample the gap between arrival `index - 1` and arrival `index`
    /// (`index == 0` offsets the first arrival from the workload start).
    ///
    /// Draw contract: exactly **one** `next_u64` for `Poisson` and for
    /// in-burst `OnOff` gaps; exactly **two** when `index` opens a new
    /// `OnOff` burst (`index > 0 && index % burst == 0` — the in-burst
    /// gap plus the idle period). Changing this contract invalidates
    /// every serve golden; the pinned tests below fail first.
    pub fn sample_gap(&self, rng: &mut SimRng, index: u64) -> Nanos {
        match *self {
            ArrivalProcess::Poisson { mean_gap } => exp_gap(rng, mean_gap),
            ArrivalProcess::OnOff {
                on_gap,
                burst,
                off_gap,
            } => {
                debug_assert!(burst >= 1, "on/off burst length must be >= 1");
                let gap = exp_gap(rng, on_gap);
                if index > 0 && index % burst.max(1) == 0 {
                    gap + exp_gap(rng, off_gap)
                } else {
                    gap
                }
            }
        }
    }

    /// Mean inter-arrival gap of the process — the open-loop offered
    /// flow rate is `1 / mean_gap()`.
    pub fn mean_gap(&self) -> Nanos {
        match *self {
            ArrivalProcess::Poisson { mean_gap } => mean_gap,
            ArrivalProcess::OnOff {
                on_gap,
                burst,
                off_gap,
            } => {
                // Per-arrival average: every arrival pays the on-gap, and
                // one arrival per burst additionally pays the idle gap.
                on_gap + Nanos::from_nanos(off_gap.as_nanos() / burst.max(1))
            }
        }
    }
}

/// Exponential gap with the given mean, as integer nanoseconds.
/// Exactly one `next_u64` draw (means are validated positive upstream).
fn exp_gap(rng: &mut SimRng, mean: Nanos) -> Nanos {
    debug_assert!(mean > Nanos::ZERO, "arrival gap means must be positive");
    Nanos::from_secs_f64(rng.exponential(mean.as_secs_f64()))
}

/// A bounded Pareto transfer-size distribution on `[min, max]` bytes
/// with tail exponent `alpha` (smaller alpha ⇒ heavier tail).
///
/// This is the canonical heavy-tailed model for flow sizes: most
/// transfers are near `min`, a small fraction reach toward `max`, and
/// the truncation keeps every moment finite so offered load is well
/// defined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    alpha: f64,
    min: u64,
    max: u64,
}

impl BoundedPareto {
    /// A bounded Pareto with tail exponent `alpha` on `[min, max]`.
    /// Requires `alpha > 0` and `0 < min <= max`.
    pub fn new(alpha: f64, min: u64, max: u64) -> Self {
        assert!(alpha > 0.0, "bounded Pareto needs a positive tail exponent");
        assert!(min > 0 && min <= max, "bounded Pareto needs 0 < min <= max");
        BoundedPareto { alpha, min, max }
    }

    /// Tail exponent alpha.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Smallest possible sample, bytes.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest possible sample, bytes.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// One inverse-CDF sample — exactly **one** `next_u64` draw.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.min == self.max {
            // Degenerate point mass: still burn the draw so the draw
            // count per flow does not depend on distribution parameters.
            let _ = rng.next_u64();
            return self.min;
        }
        let u = rng.uniform();
        let la = (self.min as f64).powf(self.alpha);
        let ha = (self.max as f64).powf(self.alpha);
        // Inverse CDF of the bounded Pareto: x = (H^a / (u*L^a/H^a
        // interpolation))^(1/a), written in the standard stable form.
        let x = (ha * la / (ha - u * (ha - la))).powf(1.0 / self.alpha);
        // x lies in [min, max] analytically; the clamp absorbs float
        // rounding at the edges. The cast is exact for every size this
        // model produces (< 2^53 bytes).
        (x as u64).clamp(self.min, self.max)
    }

    /// Analytic mean of the distribution, bytes.
    pub fn mean(&self) -> f64 {
        let (a, l, h) = (self.alpha, self.min as f64, self.max as f64);
        if self.min == self.max {
            return l;
        }
        if (a - 1.0).abs() < 1e-9 {
            // alpha == 1: the mean integral degenerates to a log.
            let la = l.powf(a);
            let ha = h.powf(a);
            return la / (1.0 - la / ha) * (h / l).ln();
        }
        (l.powf(a) / (1.0 - (l / h).powf(a)))
            * (a / (a - 1.0))
            * (l.powf(1.0 - a) - h.powf(1.0 - a))
    }
}

/// A two-class mice/elephants mixture of bounded-Pareto size classes.
///
/// Datacenter and web-serving traffic is classically bimodal: a large
/// majority of small "mice" (requests, control chatter) and a small
/// minority of huge "elephants" (bulk transfers) that carry most of the
/// bytes. `mice_share` is the probability a given flow is a mouse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeMix {
    mice_share: f64,
    mice: BoundedPareto,
    elephants: BoundedPareto,
}

impl SizeMix {
    /// A mixture with the given mouse probability. Requires
    /// `0 < mice_share < 1` so the class coin always costs exactly one
    /// draw (the draw-count contract [`SizeMix::sample`] documents).
    pub fn new(mice_share: f64, mice: BoundedPareto, elephants: BoundedPareto) -> Self {
        assert!(
            mice_share > 0.0 && mice_share < 1.0,
            "mice_share must lie strictly inside (0, 1)"
        );
        SizeMix {
            mice_share,
            mice,
            elephants,
        }
    }

    /// Web-serving preset: 95% mice of 2–64 KB (α = 1.2), 5% elephants
    /// of 1–64 MB (α = 1.1). Mice dominate the flow count; elephants
    /// carry most bytes.
    pub fn web_serving() -> Self {
        SizeMix::new(
            0.95,
            BoundedPareto::new(1.2, 2 << 10, 64 << 10),
            BoundedPareto::new(1.1, 1 << 20, 64 << 20),
        )
    }

    /// Bulk-grid preset: 60% mice of 64 KB–1 MB, 40% elephants of
    /// 8–256 MB — the Kukol–Gray storage-replication regime where bulk
    /// streams are the rule, not the exception.
    pub fn bulk_grid() -> Self {
        SizeMix::new(
            0.60,
            BoundedPareto::new(1.2, 64 << 10, 1 << 20),
            BoundedPareto::new(1.1, 8 << 20, 256 << 20),
        )
    }

    /// Probability a flow is a mouse.
    pub fn mice_share(&self) -> f64 {
        self.mice_share
    }

    /// The mouse size class.
    pub fn mice(&self) -> BoundedPareto {
        self.mice
    }

    /// The elephant size class.
    pub fn elephants(&self) -> BoundedPareto {
        self.elephants
    }

    /// Sample one transfer size.
    ///
    /// Draw contract: exactly **two** `next_u64` draws — one class coin
    /// (`mice_share` is strictly inside `(0, 1)` by construction) and
    /// one inverse-CDF draw for the chosen class.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if rng.chance(self.mice_share) {
            self.mice.sample(rng)
        } else {
            self.elephants.sample(rng)
        }
    }

    /// Analytic mean transfer size of the mixture, bytes.
    pub fn mean(&self) -> f64 {
        self.mice_share * self.mice.mean() + (1.0 - self.mice_share) * self.elephants.mean()
    }
}

/// One planned open-loop flow: when it arrives and how many bytes it
/// carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowPlan {
    /// Arrival instant, relative to the workload start.
    pub at: Nanos,
    /// Transfer size, bytes.
    pub bytes: u64,
}

/// A complete open-loop workload specification: arrival process, size
/// mixture, and flow count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// The transfer-size mixture.
    pub sizes: SizeMix,
    /// Number of flows to plan.
    pub flows: u64,
}

impl WorkloadSpec {
    /// Offered load in bits per second: mean size × 8 / mean gap.
    pub fn offered_bps(&self) -> f64 {
        let gap = self.arrivals.mean_gap().as_secs_f64();
        if gap <= 0.0 {
            return 0.0;
        }
        self.sizes.mean() * 8.0 / gap
    }
}

/// The arrival loop: sample the full flow schedule for `spec` from `rng`.
///
/// Per flow the draw order is fixed — inter-arrival gap first (one draw,
/// two at an on/off burst boundary), then transfer size (two draws) —
/// and arrival instants are the running gap sum, so the whole plan is a
/// pure function of `(spec, rng seed)`. Declared as a `tengig-lint`
/// hot-path root: nothing reachable from here may read a wall clock or
/// an unseeded RNG.
pub fn build_schedule(spec: &WorkloadSpec, rng: &mut SimRng) -> Vec<FlowPlan> {
    let flows = usize::try_from(spec.flows).unwrap_or(usize::MAX);
    let mut plans = Vec::with_capacity(flows);
    let mut t = Nanos::ZERO;
    for index in 0..spec.flows {
        t += spec.arrivals.sample_gap(rng, index);
        let bytes = spec.sizes.sample(rng);
        plans.push(FlowPlan { at: t, bytes });
    }
    plans
}

/// Flow-completion-time accounting: the completion loop's fold target.
///
/// FCTs are recorded in integer nanoseconds into a [`Hist`] (so p50/p99/
/// p999 come from the same power-of-two-bucket machinery as the engine
/// profiling plane), alongside the byte and span bookkeeping needed for
/// goodput and offered-vs-achieved reporting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FctStats {
    fct: Hist,
    bytes: u64,
    first_arrival: Nanos,
    last_done: Nanos,
}

impl FctStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        FctStats {
            fct: Hist::new(),
            bytes: 0,
            first_arrival: Nanos::MAX,
            last_done: Nanos::ZERO,
        }
    }

    /// The completion loop: fold one finished flow in. `arrival` is the
    /// flow's planned arrival instant, `done` its completion instant —
    /// FCT is the difference (flows that finish the instant they arrive
    /// record 0 ns). Declared as a `tengig-lint` hot-path root.
    pub fn record(&mut self, arrival: Nanos, done: Nanos, bytes: u64) {
        debug_assert!(done >= arrival, "flow finished before it arrived");
        self.fct.record(done.saturating_sub(arrival).as_nanos());
        self.bytes += bytes;
        self.first_arrival = self.first_arrival.min(arrival);
        self.last_done = self.last_done.max(done);
    }

    /// Merge another accumulator in (shard-order independent, like the
    /// underlying [`Hist::merge`]).
    pub fn merge(&mut self, other: &FctStats) {
        self.fct.merge(&other.fct);
        self.bytes += other.bytes;
        self.first_arrival = self.first_arrival.min(other.first_arrival);
        self.last_done = self.last_done.max(other.last_done);
    }

    /// Number of completed flows recorded.
    pub fn flows(&self) -> u64 {
        self.fct.count()
    }

    /// Total payload bytes across recorded flows.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// FCT at permille `p` (e.g. 500 → p50, 990 → p99, 999 → p999), as
    /// integer nanoseconds. Zero when nothing has been recorded.
    pub fn fct_permille(&self, p: u64) -> u64 {
        self.fct.permille(p)
    }

    /// The underlying FCT histogram, for rendering.
    pub fn hist(&self) -> &Hist {
        &self.fct
    }

    /// Achieved goodput over the active span (first arrival → last
    /// completion), bits per second. Zero when the span is empty.
    pub fn achieved_bps(&self) -> f64 {
        if self.last_done <= self.first_arrival {
            return 0.0;
        }
        let span = (self.last_done - self.first_arrival).as_secs_f64();
        self.bytes as f64 * 8.0 / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Advance a fresh rng by `draws` and return the next raw word —
    /// the sentinel the draw-count tests compare against.
    fn sentinel(seed: u64, draws: u64) -> u64 {
        let mut rng = SimRng::seeded(seed);
        for _ in 0..draws {
            let _ = rng.next_u64();
        }
        rng.next_u64()
    }

    #[test]
    fn poisson_gaps_are_pinned_and_cost_one_draw_each() {
        let p = ArrivalProcess::Poisson {
            mean_gap: Nanos::from_micros(100),
        };
        let mut rng = SimRng::seeded(2003);
        let gaps: Vec<u64> = (0..4)
            .map(|i| p.sample_gap(&mut rng, i).as_nanos())
            .collect();
        // Pinned for seed 2003. A renamed variant, a reordered draw, or a
        // changed inverse-CDF form must fail here before it can silently
        // shift goldens/serve.jsonl.
        assert_eq!(gaps, vec![57955, 31538, 264536, 150099]);
        // Exactly one draw per gap: the next raw word matches a fresh rng
        // advanced by four.
        assert_eq!(rng.next_u64(), sentinel(2003, 4));
    }

    #[test]
    fn onoff_burst_boundary_costs_exactly_one_extra_draw() {
        let p = ArrivalProcess::OnOff {
            on_gap: Nanos::from_micros(10),
            burst: 3,
            off_gap: Nanos::from_millis(1),
        };
        let mut rng = SimRng::seeded(7);
        // Indices 0,1,2 in-burst; 3 opens a burst (2 draws); 4,5 in-burst;
        // 6 opens a burst (2 draws): 9 draws total.
        let gaps: Vec<u64> = (0..7)
            .map(|i| p.sample_gap(&mut rng, i).as_nanos())
            .collect();
        assert_eq!(rng.next_u64(), sentinel(7, 9));
        // Burst-boundary gaps include the idle period, so they dominate.
        let in_burst_max = [gaps[0], gaps[1], gaps[2], gaps[4], gaps[5]]
            .into_iter()
            .max()
            .expect("non-empty");
        assert!(gaps[3] > in_burst_max && gaps[6] > in_burst_max, "{gaps:?}");
        // Pinned values for seed 7.
        assert_eq!(gaps, vec![1492, 6801, 16868, 1980317, 4296, 4833, 1865128]);
    }

    #[test]
    fn bounded_pareto_samples_are_pinned_in_range_and_cost_one_draw() {
        let d = BoundedPareto::new(1.1, 1 << 10, 1 << 20);
        let mut rng = SimRng::seeded(42);
        let xs: Vec<u64> = (0..6).map(|_| d.sample(&mut rng)).collect();
        for &x in &xs {
            assert!((d.min()..=d.max()).contains(&x), "{x} out of range");
        }
        assert_eq!(xs, vec![12547, 1773, 8160, 1297, 2811, 1883]);
        assert_eq!(rng.next_u64(), sentinel(42, 6));
    }

    #[test]
    fn degenerate_pareto_still_burns_its_draw() {
        let d = BoundedPareto::new(1.5, 4096, 4096);
        let mut rng = SimRng::seeded(5);
        assert_eq!(d.sample(&mut rng), 4096);
        assert_eq!(rng.next_u64(), sentinel(5, 1));
    }

    #[test]
    fn size_mix_costs_two_draws_and_is_pinned() {
        let mix = SizeMix::web_serving();
        let mut rng = SimRng::seeded(2003);
        let xs: Vec<u64> = (0..5).map(|_| mix.sample(&mut rng)).collect();
        assert_eq!(xs, vec![2650, 6844, 3407, 2119, 2339]);
        assert_eq!(rng.next_u64(), sentinel(2003, 10));
    }

    #[test]
    fn schedule_is_sorted_deterministic_and_draw_stable() {
        let spec = WorkloadSpec {
            arrivals: ArrivalProcess::Poisson {
                mean_gap: Nanos::from_micros(50),
            },
            sizes: SizeMix::web_serving(),
            flows: 100,
        };
        let mut a = SimRng::seeded(11);
        let mut b = SimRng::seeded(11);
        let plan_a = build_schedule(&spec, &mut a);
        let plan_b = build_schedule(&spec, &mut b);
        assert_eq!(plan_a, plan_b);
        assert_eq!(plan_a.len(), 100);
        assert!(plan_a.windows(2).all(|w| w[0].at <= w[1].at));
        // 3 draws per flow: one gap + two size draws.
        assert_eq!(a.next_u64(), sentinel(11, 300));
    }

    #[test]
    fn pareto_mean_tracks_the_empirical_mean() {
        let d = BoundedPareto::new(1.3, 2 << 10, 8 << 20);
        let mut rng = SimRng::seeded(1);
        let n = 200_000u64;
        let sum: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let emp = sum as f64 / n as f64;
        let ana = d.mean();
        assert!(
            (emp - ana).abs() / ana < 0.05,
            "empirical {emp} vs analytic {ana}"
        );
    }

    #[test]
    fn offered_load_is_mean_size_over_mean_gap() {
        let spec = WorkloadSpec {
            arrivals: ArrivalProcess::Poisson {
                mean_gap: Nanos::from_micros(100),
            },
            sizes: SizeMix::web_serving(),
            flows: 1,
        };
        let want = spec.sizes.mean() * 8.0 / 100e-6;
        assert!((spec.offered_bps() - want).abs() < 1e-3);
    }

    #[test]
    fn fct_stats_fold_and_merge() {
        let mut a = FctStats::new();
        a.record(Nanos::from_micros(1), Nanos::from_micros(3), 100);
        a.record(Nanos::from_micros(2), Nanos::from_micros(10), 200);
        let mut b = FctStats::new();
        b.record(Nanos::from_micros(5), Nanos::from_micros(6), 50);
        a.merge(&b);
        assert_eq!(a.flows(), 3);
        assert_eq!(a.bytes(), 350);
        assert!(a.fct_permille(500) >= a.fct_permille(1));
        assert!(a.achieved_bps() > 0.0);
        // Empty stats are all-zero.
        let e = FctStats::new();
        assert_eq!(e.flows(), 0);
        assert_eq!(e.fct_permille(990), 0);
        assert_eq!(e.achieved_bps(), 0.0);
    }
}
