//! Deterministic randomness for the laboratory.
//!
//! Every stochastic element of the model (loss processes, jitter, sampling)
//! draws from a [`SimRng`] seeded explicitly by the experiment, so a run is a
//! pure function of its configuration. Streams can be forked per component
//! with [`SimRng::fork`] so adding a random draw in one component does not
//! perturb the sequence seen by another.
//!
//! The generator is a self-contained xoshiro256++ (seeded through a
//! SplitMix64 expander) so the simulation has no external dependencies and
//! the stream is bit-stable across platforms and toolchain versions — a
//! prerequisite for the sweep runner's "same seeds, same bytes" contract.

/// SplitMix64 finalizer: mixes a 64-bit value into a well-distributed one.
/// Used for seed expansion and for deriving per-scenario seeds.
#[inline]
pub const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic, forkable random stream (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a stream from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors: the
        // four words are decorrelated even for adjacent seeds.
        let mut z = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *w = splitmix64(z);
        }
        // All-zero state is the one forbidden state; seed 0 cannot produce
        // it through SplitMix64, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        SimRng { s }
    }

    /// Derive the seed for scenario `index` of a sweep with `master` seed.
    ///
    /// This is the seeding discipline of the sweep runner: scenario seed =
    /// f(master seed, scenario index), independent of thread count and
    /// completion order, so a sweep is reproducible point-by-point.
    pub const fn scenario_seed(master: u64, index: u64) -> u64 {
        splitmix64(master ^ splitmix64(index.wrapping_add(1)))
    }

    /// Create the stream for scenario `index` of a sweep seeded by `master`.
    pub fn for_scenario(master: u64, index: u64) -> Self {
        SimRng::seeded(Self::scenario_seed(master, index))
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derive an independent stream for a named component.
    ///
    /// The child seed mixes the label into this stream's next output with a
    /// SplitMix64 finalizer, so distinct labels give well-separated streams.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let mut h: u64 = self.next_u64() ^ 0x9e37_79b9_7f4a_7c15;
        for b in label.bytes() {
            h = (h ^ b as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h ^= h >> 27;
        }
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        SimRng::seeded(h)
    }

    /// Uniform `f64` in `[0, 1)`: the top 53 bits scaled by 2⁻⁵³.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire): uniform over [0, span).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                l = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// inter-arrival processes). Returns 0 for a zero mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // 1 - uniform() is in (0, 1], so the log argument never hits zero.
        let u = 1.0 - self.uniform();
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn forks_are_label_dependent_and_deterministic() {
        let mut root1 = SimRng::seeded(7);
        let mut root2 = SimRng::seeded(7);
        let mut a1 = root1.fork("loss");
        let mut a2 = root2.fork("loss");
        assert_eq!(a1.uniform().to_bits(), a2.uniform().to_bits());

        let mut root3 = SimRng::seeded(7);
        let mut b = root3.fork("jitter");
        // Different labels from the same root state diverge.
        let mut root4 = SimRng::seeded(7);
        let mut a = root4.fork("loss");
        assert_ne!(a.uniform().to_bits(), b.uniform().to_bits());
    }

    #[test]
    fn chance_edges() {
        let mut r = SimRng::seeded(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // p=0.5 should be non-degenerate.
        let hits = (0..1000).filter(|_| r.chance(0.5)).count();
        assert!((300..700).contains(&hits), "hits={hits}");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = SimRng::seeded(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean={mean}");
        assert_eq!(r.exponential(0.0), 0.0);
    }

    #[test]
    fn range_bounds() {
        let mut r = SimRng::seeded(9);
        for _ in 0..1000 {
            let x = r.range(10, 20);
            assert!((10..20).contains(&x));
        }
        // All values in a small range are reachable.
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[(r.range(10, 20) - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn uniform_is_in_unit_interval_and_varied() {
        let mut r = SimRng::seeded(1234);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn scenario_seeds_are_stable_and_distinct() {
        // The sweep contract: pure function of (master, index)...
        assert_eq!(SimRng::scenario_seed(1, 0), SimRng::scenario_seed(1, 0));
        // ...and well-separated across both arguments.
        let mut seeds: Vec<u64> = (0..64)
            .flat_map(|m| (0..64).map(move |i| SimRng::scenario_seed(m, i)))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64 * 64, "no collisions in a 64x64 grid");
    }
}
