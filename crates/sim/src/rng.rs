//! Deterministic randomness for the laboratory.
//!
//! Every stochastic element of the model (loss processes, jitter, sampling)
//! draws from a [`SimRng`] seeded explicitly by the experiment, so a run is a
//! pure function of its configuration. Streams can be forked per component
//! with [`SimRng::fork`] so adding a random draw in one component does not
//! perturb the sequence seen by another.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic, forkable random stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create a stream from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        SimRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Derive an independent stream for a named component.
    ///
    /// The child seed mixes the label into this stream's next output with a
    /// SplitMix64 finalizer, so distinct labels give well-separated streams.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let mut h: u64 = self.inner.gen::<u64>() ^ 0x9e37_79b9_7f4a_7c15;
        for b in label.bytes() {
            h = (h ^ b as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h ^= h >> 27;
        }
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        SimRng::seeded(h)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// inter-arrival processes). Returns 0 for a zero mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn forks_are_label_dependent_and_deterministic() {
        let mut root1 = SimRng::seeded(7);
        let mut root2 = SimRng::seeded(7);
        let mut a1 = root1.fork("loss");
        let mut a2 = root2.fork("loss");
        assert_eq!(a1.uniform().to_bits(), a2.uniform().to_bits());

        let mut root3 = SimRng::seeded(7);
        let mut b = root3.fork("jitter");
        // Different labels from the same root state diverge.
        let mut root4 = SimRng::seeded(7);
        let mut a = root4.fork("loss");
        assert_ne!(a.uniform().to_bits(), b.uniform().to_bits());
    }

    #[test]
    fn chance_edges() {
        let mut r = SimRng::seeded(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // p=0.5 should be non-degenerate.
        let hits = (0..1000).filter(|_| r.chance(0.5)).count();
        assert!((300..700).contains(&hits), "hits={hits}");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = SimRng::seeded(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean={mean}");
        assert_eq!(r.exponential(0.0), 0.0);
    }

    #[test]
    fn range_bounds() {
        let mut r = SimRng::seeded(9);
        for _ in 0..1000 {
            let x = r.range(10, 20);
            assert!((10..20).contains(&x));
        }
    }
}
