//! Equivalence property for the slab event calendar.
//!
//! The original engine queue was a `BinaryHeap` of `(time, seq)`-ordered
//! entries owning boxed payloads: strict `(time, seq)` pop order, ties
//! FIFO by insertion. The slab calendar replaces it with handle-indexed
//! storage, a same-instant FIFO lane, and tombstone cancellation — none
//! of which may change the observable order. This test drives random
//! schedule/cancel/pop traces through both queues and asserts identical
//! pop sequences, identical cancellation outcomes, and identical live
//! counts at every step.

use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tengig_sim::{Calendar, EventId, Nanos};

/// The pre-overhaul queue, reduced to its ordering semantics: a binary
/// max-heap on inverted `(time, seq)` keys, payloads owned by the
/// entries. Cancellation (which the old engine lacked) is modeled the
/// straightforward way — an eager sweep of the backing store — so the
/// property checks the tombstone scheme against remove-semantics, not
/// against another lazy implementation of itself.
struct ReferenceQueue {
    heap: BinaryHeap<Reverse<(Nanos, u64, u32)>>,
    cancelled: Vec<bool>,
    seq: u64,
    now: Nanos,
    live: usize,
}

impl ReferenceQueue {
    fn new() -> Self {
        ReferenceQueue {
            heap: BinaryHeap::new(),
            cancelled: Vec::new(),
            seq: 0,
            now: Nanos::ZERO,
            live: 0,
        }
    }

    /// Schedule a payload (its tag is its position in `cancelled`).
    fn schedule(&mut self, at: Nanos) -> u32 {
        let tag = self.cancelled.len() as u32;
        self.cancelled.push(false);
        self.heap.push(Reverse((at.max(self.now), self.seq, tag)));
        self.seq += 1;
        self.live += 1;
        tag
    }

    fn cancel(&mut self, tag: u32) -> bool {
        if self.cancelled[tag as usize] {
            return false;
        }
        // "already popped" shows as absent from the heap.
        if !self.heap.iter().any(|Reverse((_, _, t))| *t == tag) {
            return false;
        }
        self.cancelled[tag as usize] = true;
        self.live -= 1;
        true
    }

    fn pop(&mut self) -> Option<(Nanos, u32)> {
        while let Some(Reverse((at, _, tag))) = self.heap.pop() {
            if self.cancelled[tag as usize] {
                continue;
            }
            self.now = at;
            self.live -= 1;
            return Some((at, tag));
        }
        None
    }
}

/// One step of a random trace, decoded from a `(kind, offset, pick,
/// timer_offset)` tuple: kinds 0-1 schedule at `now + offset` (tiny
/// offsets force heavy timestamp collisions; offset 0 exercises the
/// same-instant FIFO lane), kind 2 schedules at a medium offset (the
/// clock jumps whole wheel slots ahead of parked timers, so the wheel's
/// horizon goes stale and same-instant/near-tick fallbacks get hit),
/// kind 3 arms a wheel timer at `now + timer_offset` (offsets up to
/// 2^30 ns span several wheel levels, so cascade boundaries and
/// cancel-after-cascade get exercised), kind 4 arms a wheel timer at the
/// tiny offset (the near-tick fallback path, colliding with slab events
/// on the same instant), kind 5 cancels the `pick`-th id issued so far
/// (live, popped, or already cancelled — all three outcomes must agree
/// across queues), and kinds 6-9 pop the earliest live event from both
/// queues.
#[derive(Debug, Clone, Copy)]
enum Op {
    Schedule { offset: u64 },
    ScheduleTimer { offset: u64 },
    Cancel { pick: usize },
    Pop,
}

fn decode(kind: u8, offset: u64, pick: usize, timer_offset: u64) -> Op {
    match kind {
        0..=1 => Op::Schedule { offset },
        2 => Op::Schedule {
            offset: timer_offset >> 4,
        },
        3 => Op::ScheduleTimer {
            offset: timer_offset,
        },
        4 => Op::ScheduleTimer { offset },
        5 => Op::Cancel { pick },
        _ => Op::Pop,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Identical pop order (FIFO-stable at equal timestamps), identical
    /// cancellation results, identical live counts — across arbitrary
    /// interleavings of schedule, timer-lane schedule, cancel, and pop.
    /// The reference queue has no wheel: this is the proof that the wheel
    /// lane is observationally identical to plain heap scheduling.
    #[test]
    fn slab_calendar_matches_the_reference_binary_heap(
        ops in proptest::collection::vec(
            (0u8..10, 0u64..6, 0usize..64, 0u64..(1u64 << 30)),
            1..400,
        )
    ) {
        let mut cal: Calendar<u32> = Calendar::new();
        let mut reference = ReferenceQueue::new();
        let mut ids: Vec<(EventId, u32)> = Vec::new();
        for (kind, offset, pick, timer_offset) in ops {
            match decode(kind, offset, pick, timer_offset) {
                Op::Schedule { offset } => {
                    let at = cal.now() + Nanos(offset);
                    let tag = reference.schedule(at);
                    let id = cal.schedule(at, tag);
                    ids.push((id, tag));
                }
                Op::ScheduleTimer { offset } => {
                    let at = cal.now() + Nanos(offset);
                    let tag = reference.schedule(at);
                    let id = cal.schedule_timer(at, tag);
                    ids.push((id, tag));
                }
                Op::Cancel { pick } if !ids.is_empty() => {
                    let (id, tag) = ids[pick % ids.len()];
                    let got = cal.cancel(id);
                    let want = reference.cancel(tag);
                    prop_assert_eq!(
                        got.is_some(),
                        want,
                        "cancel diverged for tag {}", tag
                    );
                    if let Some(p) = got {
                        prop_assert_eq!(p, tag, "cancel returned the wrong payload");
                    }
                }
                Op::Cancel { .. } => {}
                Op::Pop => {
                    prop_assert_eq!(cal.pop(), reference.pop(), "pop order diverged");
                }
            }
            prop_assert_eq!(cal.len(), reference.live, "live counts diverged");
            prop_assert_eq!(cal.now(), reference.now, "clocks diverged");
        }
        // Drain both completely: the tails must match too.
        loop {
            let (a, b) = (cal.pop(), reference.pop());
            prop_assert_eq!(a, b, "drain order diverged");
            if a.is_none() {
                break;
            }
        }
    }

    /// With no cancellations at all, pop order is exactly the
    /// stable-by-insertion sort of the schedule times.
    #[test]
    fn pop_order_is_a_stable_sort_of_schedule_times(
        times in proptest::collection::vec(0u64..50, 1..200)
    ) {
        let mut cal: Calendar<usize> = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(Nanos(t), i);
        }
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_by_key(|&(t, i)| (t, i));
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| cal.pop().map(|(at, i)| (at.as_nanos(), i))).collect();
        prop_assert_eq!(got, expect);
    }
}
