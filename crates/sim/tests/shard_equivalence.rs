//! Property: sharded conservative execution is observation-equivalent to
//! a single-calendar run.
//!
//! The model is a miniature of the laboratory's grid machinery: hosts
//! partitioned round-robin over shards, per-host accumulator state whose
//! value depends on *application order*, messages between hosts carried
//! through a canonically keyed ingress map and applied by a front-class
//! drain event. The reference is the same machinery on one shard (the
//! degenerate case `run_sharded` executes inline); the property drives
//! random schedules through 1, 2, 3, and 4 shards and demands identical
//! final accumulators and identical per-host event sequences —
//! order-sensitive state, not just multisets.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tengig_sim::{run_sharded, Calendar, Nanos, ShardWorld};

/// Minimum flight time of any cross-host message: the lookahead bound.
const LOOK: u64 = 64;

/// One calendar entry: `(host, value, canonical key)`; a drain sentinel
/// uses `host == usize::MAX`.
type Entry = (usize, u64, u64);

/// Cross-shard message: `(destination host, value, canonical key)`.
type Msg = (usize, u64, u64);

/// The drain sentinel payload.
const DRAIN: Entry = (usize::MAX, 0, 0);

struct MiniShard {
    shard: usize,
    shards: usize,
    hosts: usize,
    cal: Calendar<Entry>,
    /// Order-sensitive per-host state: `acc = acc * 31 + val` per applied
    /// event, so any reordering of a host's events changes the result.
    acc: Vec<u64>,
    /// Per-host sequence of applied values (owned hosts only).
    log: Vec<Vec<(u64, u64)>>,
    /// Per-source-host emission ordinals for canonical keys.
    emit: Vec<u64>,
    /// Ordered ingress: `(arrival time, canonical key) -> (dst, val)`.
    inbox: BTreeMap<(u64, u64), (usize, u64)>,
    /// Messages bound for other shards.
    out: Vec<(usize, Nanos, Msg)>,
}

impl MiniShard {
    fn new(shard: usize, shards: usize, hosts: usize, initial: &[(u64, usize, u64)]) -> Self {
        let mut s = MiniShard {
            shard,
            shards,
            hosts,
            cal: Calendar::new(),
            acc: vec![0; hosts],
            log: vec![Vec::new(); hosts],
            emit: vec![0; hosts],
            inbox: BTreeMap::new(),
            out: Vec::new(),
        };
        for &(t, h, v) in initial {
            if s.owns(h) {
                s.cal.schedule(Nanos(t), (h, v, 0));
            }
        }
        s
    }

    fn owns(&self, h: usize) -> bool {
        h % self.shards == self.shard
    }

    /// Apply one value to a host and, when divisible by 3, emit a
    /// decreasing follow-up message to a neighbor — through the ingress
    /// channel whether or not the destination is local.
    fn apply(&mut self, now: u64, h: usize, v: u64) {
        self.acc[h] = self.acc[h].wrapping_mul(31).wrapping_add(v);
        self.log[h].push((now, v));
        if v >= 3 && v % 3 == 0 {
            let next = v / 3;
            let dst = (h + 1 + (v as usize % self.hosts.max(2))) % self.hosts;
            let at = now + LOOK + (v % 50);
            let key = ((h as u64) << 32) | self.emit[h];
            self.emit[h] += 1;
            if self.owns(dst) {
                self.ingress(at, key, dst, next);
            } else {
                self.out
                    .push((dst % self.shards, Nanos(at), (dst, next, key)));
            }
        }
    }

    /// Insert into the ordered ingress map, scheduling the front-class
    /// drain if this is the instant's first pending message.
    fn ingress(&mut self, at: u64, key: u64, dst: usize, val: u64) {
        let fresh = self.inbox.range((at, 0)..=(at, u64::MAX)).next().is_none();
        let prev = self.inbox.insert((at, key), (dst, val));
        assert!(prev.is_none(), "canonical key collided");
        if fresh {
            self.cal.schedule_front(Nanos(at), DRAIN);
        }
    }

    /// Apply every pending ingress message of the current instant in
    /// canonical key order.
    fn drain(&mut self, now: u64) {
        while let Some((&k, _)) = self.inbox.range((now, 0)..=(now, u64::MAX)).next() {
            let (dst, val) = self.inbox.remove(&k).expect("key just observed");
            self.apply(now, dst, val);
        }
    }
}

impl ShardWorld for MiniShard {
    type Msg = Msg;

    fn next_time(&mut self) -> Option<Nanos> {
        self.cal.peek_time()
    }

    fn run_window(&mut self, end: Nanos) {
        while let Some(t) = self.cal.peek_time() {
            if t >= end {
                break;
            }
            let (at, (h, v, _)) = self.cal.pop().expect("peeked");
            if h == usize::MAX {
                self.drain(at.as_nanos());
            } else {
                self.apply(at.as_nanos(), h, v);
            }
        }
    }

    fn flush(&mut self) -> Vec<(usize, Nanos, Msg)> {
        std::mem::take(&mut self.out)
    }

    fn accept(&mut self, at: Nanos, (dst, val, key): Msg) {
        assert!(self.owns(dst), "message routed to a non-owning shard");
        self.ingress(at.as_nanos(), key, dst, val);
    }
}

/// Run the model at a given shard count and merge per-host results from
/// each host's owning shard.
fn run(
    shards: usize,
    hosts: usize,
    initial: &[(u64, usize, u64)],
) -> (Vec<u64>, Vec<Vec<(u64, u64)>>) {
    let mut replicas: Vec<MiniShard> = (0..shards)
        .map(|s| MiniShard::new(s, shards, hosts, initial))
        .collect();
    run_sharded(&mut replicas, Nanos(LOOK));
    let mut acc = vec![0u64; hosts];
    let mut log = vec![Vec::new(); hosts];
    for (h, slot) in acc.iter_mut().enumerate() {
        let owner = h % shards;
        *slot = replicas[owner].acc[h];
        log[h] = replicas[owner].log[h].clone();
    }
    (acc, log)
}

proptest! {
    /// Sharded execution at 2, 3, and 4 shards reproduces the
    /// single-calendar reference exactly: same order-sensitive per-host
    /// accumulators, same per-host event sequences.
    #[test]
    fn sharded_run_matches_single_calendar_reference(
        hosts in 2usize..6,
        initial in proptest::collection::vec((1u64..400, 0usize..6, 0u64..2_000), 1..60),
    ) {
        let initial: Vec<(u64, usize, u64)> = initial
            .into_iter()
            .map(|(t, h, v)| (t, h % hosts, v))
            .collect();
        let reference = run(1, hosts, &initial);
        for shards in 2usize..=4 {
            let sharded = run(shards, hosts, &initial);
            prop_assert_eq!(&reference.0, &sharded.0, "accumulators diverged at {} shards", shards);
            prop_assert_eq!(&reference.1, &sharded.1, "per-host logs diverged at {} shards", shards);
        }
    }
}
