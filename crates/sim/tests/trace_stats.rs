//! Coverage for the measurement substrate: tracer stage counters, ring
//! eviction, sampling determinism, and histogram edge bins.

use tengig_sim::stats::LogHistogram;
use tengig_sim::{Nanos, SimRng, Stage, TraceEvent, Tracer};

#[test]
fn per_stage_counters_aggregate_every_emit() {
    let mut t = Tracer::full(8);
    for p in 0..10u64 {
        t.emit(Nanos(p), Stage::TxStack, p, 1448, Nanos(500));
    }
    for p in 0..4u64 {
        t.emit(Nanos(100 + p), Stage::Drop, p, 1448, Nanos::ZERO);
    }
    let tx = t.stage(Stage::TxStack);
    assert_eq!(tx.count, 10);
    assert_eq!(tx.bytes, 10 * 1448);
    assert_eq!(tx.cost, Nanos(5000));
    assert_eq!(tx.mean_cost(), Nanos(500));
    assert_eq!(t.stage(Stage::Drop).count, 4);
    // Untouched stages stay zero.
    assert_eq!(t.stage(Stage::Wire).count, 0);

    // stage_stats lists only observed stages, in pipeline order.
    let listed: Vec<Stage> = t.stage_stats().map(|(s, _)| s).collect();
    assert_eq!(listed, vec![Stage::TxStack, Stage::Drop]);
}

#[test]
fn ring_evicts_oldest_exactly_at_capacity() {
    let mut t = Tracer::full(3);
    for p in 0..7u64 {
        t.emit(Nanos(p), Stage::Wire, p, 100, Nanos(1));
    }
    let kept: Vec<u64> = t.recent().map(|e| e.packet).collect();
    assert_eq!(kept, vec![4, 5, 6], "oldest evicted first, newest kept");
    // Aggregates see everything the ring forgot.
    assert_eq!(t.stage(Stage::Wire).count, 7);
}

#[test]
fn zero_capacity_ring_still_aggregates() {
    let mut t = Tracer::full(0);
    t.emit(Nanos(1), Stage::RxStack, 1, 64, Nanos(10));
    assert_eq!(t.recent().count(), 0);
    assert_eq!(t.stage(Stage::RxStack).count, 1);
}

#[test]
fn sampling_is_deterministic_per_seed() {
    let run = |seed: u64| -> Vec<TraceEvent> {
        let mut t = Tracer::sampling(4096, 8, SimRng::seeded(seed));
        for p in 0..4000u64 {
            t.emit(Nanos(p), Stage::RxDma, p, 1448, Nanos(30));
        }
        t.recent().cloned().collect()
    };
    // Same seed → the exact same sampled ring; a new seed resamples.
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));

    // The sample keeps roughly 1-in-8 (binomial, wide tolerance).
    let kept = run(7).len();
    assert!((250..=750).contains(&kept), "kept={kept}");
    // And every emit still hits the aggregate exactly once.
    let mut t = Tracer::sampling(16, 8, SimRng::seeded(7));
    for p in 0..100u64 {
        t.emit(Nanos(p), Stage::Ack, p, 0, Nanos::ZERO);
    }
    assert_eq!(t.stage(Stage::Ack).count, 100);
}

#[test]
fn stage_all_is_exhaustive_and_ordered() {
    // ALL drives the stats indexing: it must hold every variant once, in
    // declaration (= Ord) order.
    let mut sorted = Stage::ALL.to_vec();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), Stage::ALL.len());
    assert_eq!(sorted, Stage::ALL.to_vec());
}

#[test]
fn histogram_edge_bins() {
    let mut h = LogHistogram::new();
    // Bucket 0 holds both zero and one (the [1,2) bucket also catches 0).
    h.record(0);
    h.record(1);
    assert_eq!(h.count(), 2);
    assert_eq!(h.quantile(1.0), 1, "both land in the lowest bucket");

    // Exact powers of two sit at the bottom of their bucket: the quantile
    // reports the bucket's inclusive upper bound.
    let mut p = LogHistogram::new();
    p.record(1024);
    assert_eq!(p.quantile(0.5), 2047);
    p.record(1023);
    assert_eq!(p.quantile(0.0), 1023, "1023 is in the [512,1024) bucket");

    // The top bucket saturates at u64::MAX without overflow.
    let mut top = LogHistogram::new();
    top.record(u64::MAX);
    top.record(1u64 << 63);
    assert_eq!(top.count(), 2);
    assert_eq!(top.quantile(0.5), u64::MAX);
    assert_eq!(top.quantile(1.0), u64::MAX);

    // Mean survives samples that would overflow a u64 sum.
    let mut big = LogHistogram::new();
    big.record(u64::MAX);
    big.record(u64::MAX);
    assert!((big.mean() - u64::MAX as f64).abs() < 1e4);
}

#[test]
fn empty_histogram_is_sane() {
    let h = LogHistogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.mean(), 0.0);
    assert_eq!(h.quantile(0.5), 0);
}
