//! Property-based tests for the simulation kernel.

use proptest::prelude::*;
use tengig_sim::{Bandwidth, DropTailQueue, Engine, Enqueue, FifoServer, Nanos};

proptest! {
    /// The engine executes events in non-decreasing time order regardless of
    /// insertion order, and ties preserve insertion order.
    #[test]
    fn engine_total_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut eng: Engine<Vec<(u64, usize)>> = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            eng.schedule_at(Nanos(t), move |w: &mut Vec<(u64, usize)>, e: &mut Engine<_>| {
                w.push((e.now().as_nanos(), i));
            });
        }
        let mut log = Vec::new();
        eng.run(&mut log);
        prop_assert_eq!(log.len(), times.len());
        for pair in log.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order violated");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "tie order violated");
            }
        }
    }

    /// A FIFO server never overlaps jobs, never idles while work is queued
    /// (work conservation), and its utilization stays within [0, 1].
    #[test]
    fn server_no_overlap_work_conserving(
        jobs in proptest::collection::vec((0u64..10_000, 1u64..5_000), 1..100)
    ) {
        // Admit in arrival-time order, as the engine would.
        let mut jobs = jobs;
        jobs.sort_by_key(|&(t, _)| t);
        let mut s = FifoServer::new("cpu");
        let mut prev_done = Nanos::ZERO;
        let mut total_service = Nanos::ZERO;
        let mut horizon = Nanos::ZERO;
        for &(t, svc) in &jobs {
            let a = s.admit(Nanos(t), Nanos(svc));
            // No overlap: job starts at or after the previous completion.
            prop_assert!(a.start >= prev_done);
            // Work conservation: start is exactly max(arrival, prev_done).
            prop_assert_eq!(a.start, Nanos(t).max(prev_done));
            prop_assert_eq!(a.done, a.start + Nanos(svc));
            prev_done = a.done;
            total_service += Nanos(svc);
            horizon = a.done.max(Nanos(t));
        }
        prop_assert_eq!(s.busy_total(), total_service);
        let u = s.utilization(horizon);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {}", u);
    }

    /// Serialization time is monotone in bytes and inversely monotone in rate.
    #[test]
    fn bandwidth_monotonicity(bytes in 1u64..10_000_000, gbps in 1u64..100) {
        let bw = Bandwidth::from_gbps(gbps);
        let t1 = bw.time_to_send(bytes);
        let t2 = bw.time_to_send(bytes + 1);
        prop_assert!(t2 >= t1);
        let faster = Bandwidth::from_gbps(gbps + 1);
        prop_assert!(faster.time_to_send(bytes) <= t1);
        // Round-trip: measured rate from (bytes, t) never exceeds the rate.
        let measured = tengig_sim::rate_of(bytes, t1);
        prop_assert!(measured.bps() <= bw.bps() + 1);
    }

    /// Byte conservation in a drop-tail queue: accepted bytes = dequeued +
    /// still-queued, and depth never exceeds capacity.
    #[test]
    fn queue_conserves_bytes(
        ops in proptest::collection::vec((any::<bool>(), 1u64..5_000), 1..300),
        cap in 1_000u64..100_000,
    ) {
        let mut q = DropTailQueue::new(cap);
        let mut accepted_bytes = 0u64;
        let mut dequeued_bytes = 0u64;
        for (deq, bytes) in ops {
            if deq {
                if let Some(item) = q.dequeue() {
                    dequeued_bytes += item.bytes;
                }
            } else if let Enqueue::Accepted { .. } = q.enqueue((), bytes) {
                accepted_bytes += bytes;
            }
            prop_assert!(q.depth_bytes() <= cap);
        }
        prop_assert_eq!(accepted_bytes, dequeued_bytes + q.depth_bytes());
    }

    /// A chain of timers fired through the engine advances the clock by the
    /// exact sum of delays.
    #[test]
    fn engine_clock_is_exact(delays in proptest::collection::vec(1u64..1_000_000, 1..50)) {
        struct W { remaining: Vec<u64> }
        fn tick(w: &mut W, e: &mut Engine<W>) {
            if let Some(d) = w.remaining.pop() {
                e.schedule_in(Nanos(d), tick);
            }
        }
        let total: u64 = delays.iter().sum();
        let mut w = W { remaining: delays };
        let mut eng = Engine::new();
        eng.schedule_at(Nanos::ZERO, tick);
        eng.run(&mut w);
        prop_assert_eq!(eng.now(), Nanos(total));
    }
}
