//! A hand-rolled Rust lexer with exact byte spans.
//!
//! The linter's rules all operate on *code*, never on comments or string
//! contents, and the taint pass needs to know which function a token sits
//! in. Both demands are served here: [`lex`] turns a source file into a
//! flat token stream where every token carries its byte range, 1-based
//! line, and 1-based column, while comments and literals are consumed
//! whole (a `"HashMap"` string is one [`TokKind::Str`] token whose
//! contents no rule ever inspects).
//!
//! The lexer is total: any `&str` input produces a token stream without
//! panicking, and every token's `[start, end)` range lies on character
//! boundaries of the input (pinned by the property test in
//! `tests/lex_props.rs`). Malformed input (an unterminated string, a
//! stray quote) degrades to a best-effort tokenization — the linter never
//! rejects a file for syntax, it just lints what it can see.
//!
//! Suppression and trust markers (`lint:allow(rule)`,
//! `lint:trusted(reason)`) live inside comments, so they are collected
//! here, during comment consumption, rather than by a separate raw-text
//! pass.

/// What a token is. Only the distinctions the rules need are drawn:
/// identifiers (including keywords — `as` and `fn` lex as [`TokKind::Ident`]),
/// the four literal families, lifetimes, and single-character punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `as`, `Instant`, `thread_rng`).
    Ident,
    /// An integer literal (`42`, `0x1F`, `1_000u64`).
    Int,
    /// A float literal (`0.875`, `1e9`, `1.5e-3`).
    Float,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A character or byte literal (`'x'`, `'\n'`, `b'q'`).
    Char,
    /// A lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// A single punctuation character (`.`, `:`, `{`, `!`, …). Multi-char
    /// operators arrive as adjacent tokens; adjacency is recoverable from
    /// the byte ranges.
    Punct(char),
}

/// One lexed token with its exact location in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Kind of token.
    pub kind: TokKind,
    /// Byte offset of the first byte (inclusive), on a char boundary.
    pub start: usize,
    /// Byte offset one past the last byte (exclusive), on a char boundary.
    pub end: usize,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based byte column of the token's first character within its line.
    pub col: usize,
}

impl Token {
    /// The token's text, sliced from the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether this token is the identifier `word`.
    pub fn is_ident(&self, src: &str, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text(src) == word
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A linter control marker found inside a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarkerKind {
    /// `lint:allow(rule)` — suppress `rule` on this line or the next.
    Allow(String),
    /// `lint:trusted(reason)` — declare the next function a reviewed
    /// nondeterminism boundary; the taint pass stops there.
    Trusted(String),
}

/// A marker with the 1-based line it appears on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// 1-based line of the marker text itself.
    pub line: usize,
    /// Which marker, with its parenthesized argument.
    pub kind: MarkerKind,
}

/// The output of [`lex`]: the token stream plus every comment marker.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order, byte ranges strictly increasing.
    pub tokens: Vec<Token>,
    /// `lint:allow` / `lint:trusted` markers in source order.
    pub markers: Vec<Marker>,
}

/// Can `c` start an identifier?
fn ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

/// Can `c` continue an identifier?
fn ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Collect `lint:allow(...)` / `lint:trusted(...)` markers from a
/// comment's text. `start_line` is the line of `text`'s first character;
/// occurrences on later lines of a block comment are attributed to their
/// own line. The argument runs to the first `)` (so it must not contain
/// one) and has its whitespace normalized.
fn scan_markers(text: &str, start_line: usize, out: &mut Vec<Marker>) {
    for (needle, is_trusted) in [("lint:allow(", false), ("lint:trusted(", true)] {
        let mut from = 0;
        while let Some(pos) = text[from..].find(needle) {
            let abs = from + pos;
            let after = &text[abs + needle.len()..];
            let Some(close) = after.find(')') else { break };
            let arg = after[..close]
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" ");
            let line = start_line + text[..abs].bytes().filter(|&b| b == b'\n').count();
            let kind = if is_trusted {
                MarkerKind::Trusted(arg)
            } else {
                MarkerKind::Allow(arg)
            };
            out.push(Marker { line, kind });
            from = abs + needle.len() + close;
        }
    }
    // Keep markers in line order even though the two needles were scanned
    // in separate passes.
    out.sort_by_key(|m| m.line);
}

/// Lex `src` into tokens and comment markers. Total: never panics, for
/// any input. See the module docs for the guarantees.
pub fn lex(src: &str) -> Lexed {
    let cs: Vec<(usize, char)> = src.char_indices().collect();
    let n = cs.len();
    let total = src.len();
    // Byte offset just past character index `i` (start of the next char).
    let end_of = |i: usize| -> usize {
        if i + 1 < n {
            cs[i + 1].0
        } else {
            total
        }
    };

    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1usize;
    let mut line_start = 0usize; // byte offset of the current line's start

    // Push a token spanning char indices [from, to] inclusive.
    macro_rules! push {
        ($kind:expr, $from:expr, $to:expr, $line:expr, $col:expr) => {
            out.tokens.push(Token {
                kind: $kind,
                start: cs[$from].0,
                end: end_of($to),
                line: $line,
                col: cs[$from].0 - $col + 1,
            })
        };
    }

    while i < n {
        let (b, c) = cs[i];
        // Newlines and other whitespace.
        if c == '\n' {
            line += 1;
            line_start = b + 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comment.
        if c == '/' && i + 1 < n && cs[i + 1].1 == '/' {
            let start = i;
            while i < n && cs[i].1 != '\n' {
                i += 1;
            }
            scan_markers(
                &src[cs[start].0..end_of(i.saturating_sub(1))],
                line,
                &mut out.markers,
            );
            continue;
        }

        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && cs[i + 1].1 == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                let ch = cs[i].1;
                if ch == '/' && i + 1 < n && cs[i + 1].1 == '*' {
                    depth += 1;
                    i += 2;
                } else if ch == '*' && i + 1 < n && cs[i + 1].1 == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if ch == '\n' {
                        line += 1;
                        line_start = cs[i].0 + 1;
                    }
                    i += 1;
                }
            }
            let end = if i > 0 { end_of(i - 1) } else { total };
            scan_markers(&src[cs[start].0..end], start_line, &mut out.markers);
            continue;
        }

        // Plain string literal.
        if c == '"' {
            let start = i;
            let tline = line;
            let tcol = line_start;
            i += 1;
            while i < n {
                let ch = cs[i].1;
                if ch == '\\' {
                    i += 2;
                } else if ch == '"' {
                    i += 1;
                    break;
                } else {
                    if ch == '\n' {
                        line += 1;
                        line_start = cs[i].0 + 1;
                    }
                    i += 1;
                }
            }
            let to = i.min(n).saturating_sub(1).max(start);
            push!(TokKind::Str, start, to, tline, tcol);
            continue;
        }

        // Char literal or lifetime.
        if c == '\'' {
            let start = i;
            let tline = line;
            let tcol = line_start;
            if i + 1 < n && cs[i + 1].1 == '\\' {
                // Escaped char literal: scan to the closing quote.
                i += 2;
                while i < n && cs[i].1 != '\'' {
                    if cs[i].1 == '\n' {
                        line += 1;
                        line_start = cs[i].0 + 1;
                    }
                    i += 1;
                }
                i = (i + 1).min(n);
                push!(TokKind::Char, start, i - 1, tline, tcol);
            } else if i + 2 < n && cs[i + 2].1 == '\'' && cs[i + 1].1 != '\'' {
                // One-character literal, e.g. 'x', '"', 'λ'.
                i += 3;
                push!(TokKind::Char, start, i - 1, tline, tcol);
            } else {
                // Lifetime: consume the tick plus identifier characters.
                i += 1;
                while i < n && ident_continue(cs[i].1) {
                    i += 1;
                }
                push!(
                    TokKind::Lifetime,
                    start,
                    i.saturating_sub(1).max(start),
                    tline,
                    tcol
                );
            }
            continue;
        }

        // Number literal.
        if c.is_ascii_digit() {
            let start = i;
            let tline = line;
            let tcol = line_start;
            let radix_prefixed =
                c == '0' && i + 1 < n && matches!(cs[i + 1].1, 'x' | 'X' | 'o' | 'O' | 'b' | 'B');
            let mut is_float = false;
            while i < n && ident_continue(cs[i].1) {
                i += 1;
            }
            // Fractional part: a dot followed by a digit (so `0..10` and
            // tuple access stay separate tokens).
            if !radix_prefixed && i + 1 < n && cs[i].1 == '.' && cs[i + 1].1.is_ascii_digit() {
                is_float = true;
                i += 1;
                while i < n && ident_continue(cs[i].1) {
                    i += 1;
                }
            }
            // Signed exponent (`1e-9`): the alnum scan stops at the sign.
            if !radix_prefixed
                && i > start
                && matches!(cs[i - 1].1, 'e' | 'E')
                && i + 1 < n
                && matches!(cs[i].1, '+' | '-')
                && cs[i + 1].1.is_ascii_digit()
            {
                is_float = true;
                i += 1;
                while i < n && ident_continue(cs[i].1) {
                    i += 1;
                }
            }
            if !is_float && !radix_prefixed {
                let text = &src[cs[start].0..end_of(i - 1)];
                is_float = text.contains(['e', 'E']);
            }
            let kind = if is_float {
                TokKind::Float
            } else {
                TokKind::Int
            };
            push!(kind, start, i - 1, tline, tcol);
            continue;
        }

        // Identifier — possibly a raw/byte string or byte-char prefix.
        if ident_start(c) {
            let start = i;
            let tline = line;
            let tcol = line_start;
            while i < n && ident_continue(cs[i].1) {
                i += 1;
            }
            let text = &src[b..end_of(i - 1)];
            let is_str_prefix = matches!(text, "r" | "b" | "br");
            if is_str_prefix && i < n {
                // Raw string: optional hashes then a quote.
                let mut j = i;
                let mut hashes = 0usize;
                while j < n && cs[j].1 == '#' {
                    hashes += 1;
                    j += 1;
                }
                let raw_allowed = text != "b" || hashes > 0 || (j < n && cs[j].1 == '"');
                if j < n && cs[j].1 == '"' && raw_allowed && (hashes > 0 || text != "b") {
                    // r"…", r#"…"#, br#"…"#, etc. (no escapes inside).
                    i = j + 1;
                    'raw: while i < n {
                        if cs[i].1 == '"' {
                            let mut k = 0;
                            while k < hashes && i + 1 + k < n && cs[i + 1 + k].1 == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        if cs[i].1 == '\n' {
                            line += 1;
                            line_start = cs[i].0 + 1;
                        }
                        i += 1;
                    }
                    push!(
                        TokKind::Str,
                        start,
                        i.saturating_sub(1).max(start),
                        tline,
                        tcol
                    );
                    continue;
                }
                if text == "b" && hashes == 0 && j < n && cs[j].1 == '"' {
                    // b"…" with ordinary escape rules: rejoin the plain
                    // string path by treating the quote as the start.
                    i = j + 1;
                    while i < n {
                        let ch = cs[i].1;
                        if ch == '\\' {
                            i += 2;
                        } else if ch == '"' {
                            i += 1;
                            break;
                        } else {
                            if ch == '\n' {
                                line += 1;
                                line_start = cs[i].0 + 1;
                            }
                            i += 1;
                        }
                    }
                    push!(
                        TokKind::Str,
                        start,
                        i.min(n).saturating_sub(1).max(start),
                        tline,
                        tcol
                    );
                    continue;
                }
                if text == "b" && i < n && cs[i].1 == '\'' {
                    // Byte-char literal b'x' / b'\n'.
                    i += 1;
                    if i < n && cs[i].1 == '\\' {
                        i += 1;
                        while i < n && cs[i].1 != '\'' {
                            i += 1;
                        }
                        i = (i + 1).min(n);
                    } else if i + 1 < n && cs[i + 1].1 == '\'' {
                        i += 2;
                    }
                    push!(
                        TokKind::Char,
                        start,
                        i.saturating_sub(1).max(start),
                        tline,
                        tcol
                    );
                    continue;
                }
            }
            push!(TokKind::Ident, start, i - 1, tline, tcol);
            continue;
        }

        // Anything else: one punctuation character.
        push!(TokKind::Punct(c), i, i, line, line_start);
        i += 1;
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let ks = kinds("fn add(a: u32) -> u32 { a + 0x1F + 1_000u64 }");
        assert_eq!(ks[0], (TokKind::Ident, "fn".to_string()));
        assert_eq!(ks[1], (TokKind::Ident, "add".to_string()));
        assert!(ks.iter().any(|k| k == &(TokKind::Int, "0x1F".to_string())));
        assert!(ks
            .iter()
            .any(|k| k == &(TokKind::Int, "1_000u64".to_string())));
    }

    #[test]
    fn floats_are_distinguished_from_ranges_and_tuple_access() {
        let ks = kinds("0.875 1e9 1.5e-3 0..10 x.0");
        assert_eq!(ks[0], (TokKind::Float, "0.875".to_string()));
        assert_eq!(ks[1], (TokKind::Float, "1e9".to_string()));
        assert_eq!(ks[2], (TokKind::Float, "1.5e-3".to_string()));
        assert!(ks.contains(&(TokKind::Int, "0".to_string())));
        assert!(ks.contains(&(TokKind::Int, "10".to_string())));
        assert!(ks.contains(&(TokKind::Ident, "x".to_string())));
    }

    #[test]
    fn hex_with_e_digits_is_not_a_float() {
        let ks = kinds("0x1e 0x1e-5");
        assert_eq!(ks[0], (TokKind::Int, "0x1e".to_string()));
        assert_eq!(ks[1], (TokKind::Int, "0x1e".to_string()));
        assert_eq!(ks[2], (TokKind::Punct('-'), "-".to_string()));
    }

    #[test]
    fn comments_produce_no_tokens_but_yield_markers() {
        let lexed = lex("let x = 1; // Instant::now() lint:allow(wall-clock)\nlet y;");
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokKind::Ident
            && t.text("let x = 1; // Instant::now() lint:allow(wall-clock)\nlet y;") == "Instant"));
        assert_eq!(
            lexed.markers,
            vec![Marker {
                line: 1,
                kind: MarkerKind::Allow("wall-clock".to_string())
            }]
        );
    }

    #[test]
    fn nested_block_comments_attribute_markers_to_their_line() {
        let src = "a /* outer /* inner */\n lint:trusted(reviewed once) */ b";
        let lexed = lex(src);
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text(src)).collect();
        assert_eq!(texts, vec!["a", "b"]);
        assert_eq!(
            lexed.markers,
            vec![Marker {
                line: 2,
                kind: MarkerKind::Trusted("reviewed once".to_string())
            }]
        );
    }

    #[test]
    fn strings_are_single_tokens_and_hide_their_contents() {
        let src = "let s = \"HashMap\\\" still\"; let r = r#\"thread_rng \"q\" x\"#; f64";
        let lexed = lex(src);
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert!(!idents.contains(&"HashMap"));
        assert!(!idents.contains(&"thread_rng"));
        assert!(idents.contains(&"f64"), "{idents:?}");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Str)
                .count(),
            2
        );
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "b\"bytes\" b'q' b'\\n' br#\"raw\"# x";
        let lexed = lex(src);
        let mut kinds: Vec<TokKind> = lexed.tokens.iter().map(|t| t.kind).collect();
        let last = kinds.pop();
        assert_eq!(
            kinds,
            vec![TokKind::Str, TokKind::Char, TokKind::Char, TokKind::Str]
        );
        assert_eq!(last, Some(TokKind::Ident));
    }

    #[test]
    fn char_literal_quote_does_not_open_a_string() {
        let src = "let c = '\"'; let x = Instant;";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.is_ident(src, "Instant")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { x }";
        let lexed = lex(src);
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
    }

    #[test]
    fn r_and_b_as_plain_identifiers_stay_identifiers() {
        let src = "let r = 1; let b = 2; let brb = 3; r \"s\"";
        let lexed = lex(src);
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert!(idents.contains(&"r"));
        assert!(idents.contains(&"b"));
        assert!(idents.contains(&"brb"));
    }

    #[test]
    fn lines_and_columns_are_one_based_and_accurate() {
        let src = "ab\n  cd = 1;\n\"two\nline\" ef";
        let lexed = lex(src);
        let cd = lexed.tokens.iter().find(|t| t.text(src) == "cd").unwrap();
        assert_eq!((cd.line, cd.col), (2, 3));
        let ef = lexed.tokens.iter().find(|t| t.text(src) == "ef").unwrap();
        assert_eq!(ef.line, 4, "newline inside a string advances the line");
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in [
            "\"open", "r#\"open", "'", "/* open", "b'", "'\\", "0.", "r#",
        ] {
            let _ = lex(src);
        }
    }

    #[test]
    fn token_ranges_are_monotonic_and_on_char_boundaries() {
        let src = "λ → \"日本語\" ident; 'λ' 0.5";
        let lexed = lex(src);
        let mut prev = 0;
        for t in &lexed.tokens {
            assert!(t.start >= prev && t.end > t.start && t.end <= src.len());
            assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
            prev = t.end;
        }
    }
}
