//! Item-level parsing: recover `fn` / `impl` / `mod` boundaries from the
//! token stream.
//!
//! This is not a Rust parser — it only tracks the three structures the
//! linter needs: which function a token belongs to (for span-scoped
//! rules), which type a method is attached to (for qualified names like
//! `Engine::run`), and which inline module a function sits in (for the
//! observability exemption). Everything else — expressions, generics,
//! where clauses — is skipped by depth counting.
//!
//! The parser is as total as the lexer: arbitrary token streams produce a
//! best-effort item list without panicking. Unbalanced braces simply
//! truncate the innermost open items at end-of-file.

use crate::lex::{Lexed, MarkerKind, TokKind, Token};

/// One function item recovered from a source file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The bare function name (`run`, `arm_rto`).
    pub name: String,
    /// Qualified name: `Type::name` when declared inside `impl Type` /
    /// `impl Trait for Type` / `trait Type`, else just `name`.
    pub qname: String,
    /// Whether the declaration carries a `pub` modifier.
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the body's closing brace (or the declaration line
    /// for bodyless signatures).
    pub end_line: usize,
    /// Module path within the file: the file stem plus any enclosing
    /// inline `mod` names, outermost first.
    pub module: Vec<String>,
    /// Token index of the `fn` keyword.
    pub tok_start: usize,
    /// Token indices of the body's `{` and matching `}`, if the function
    /// has a body.
    pub body: Option<(usize, usize)>,
    /// `lint:trusted(reason)` from a comment within three lines above the
    /// declaration, if present.
    pub trusted: Option<String>,
}

/// What kind of scope a brace opened.
#[derive(Debug)]
enum ScopeKind {
    /// `mod name {` — contributes to the module path.
    Mod(String),
    /// `impl Type {`, `impl Trait for Type {`, or `trait Type {` —
    /// contributes the type name for qualified fn names.
    Impl(String),
}

struct Scope {
    kind: ScopeKind,
    /// Brace depth *after* this scope's `{` was consumed; the scope pops
    /// when depth returns below this value.
    depth: usize,
}

/// Parse a lexed file into its function items. `file_stem` seeds the
/// module path (e.g. `"engine"` for `engine.rs`).
pub fn parse_items(src: &str, lexed: &Lexed, file_stem: &str) -> Vec<FnItem> {
    let toks = &lexed.tokens;
    let n = toks.len();
    let mut items: Vec<FnItem> = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;

    while i < n {
        let t = toks[i];
        match t.kind {
            TokKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                while scopes.last().is_some_and(|s| s.depth > depth) {
                    scopes.pop();
                }
                i += 1;
            }
            TokKind::Ident => {
                let word = t.text(src);
                match word {
                    "mod" => {
                        // `mod name {` opens a module scope; `mod name;`
                        // is an out-of-line declaration we ignore.
                        if i + 2 < n
                            && toks[i + 1].kind == TokKind::Ident
                            && toks[i + 2].is_punct('{')
                        {
                            let name = toks[i + 1].text(src).to_string();
                            depth += 1;
                            scopes.push(Scope {
                                kind: ScopeKind::Mod(name),
                                depth,
                            });
                            i += 3;
                        } else {
                            i += 1;
                        }
                    }
                    "impl" | "trait" => {
                        if let Some((name, body_open)) = scan_impl_header(src, toks, i) {
                            depth += 1;
                            scopes.push(Scope {
                                kind: ScopeKind::Impl(name),
                                depth,
                            });
                            i = body_open + 1;
                        } else {
                            i += 1;
                        }
                    }
                    "fn" => {
                        if i + 1 < n && toks[i + 1].kind == TokKind::Ident {
                            let (item, next) = scan_fn(src, lexed, toks, i, &scopes, file_stem);
                            if let Some((open, _)) = item.body {
                                // Resume inside the body so nested items
                                // (closures' inner fns) are still seen,
                                // but the signature — where `impl Trait`
                                // return types and `fn(..)` pointer types
                                // live — is skipped.
                                depth += 1;
                                i = open + 1;
                            } else {
                                i = next;
                            }
                            items.push(item);
                        } else {
                            // `fn(` — a function-pointer type, not an item.
                            i += 1;
                        }
                    }
                    _ => i += 1,
                }
            }
            _ => i += 1,
        }
    }

    items
}

/// Scan an `impl`/`trait` header starting at token `at` (the keyword).
/// Returns the subject type name and the token index of the body `{`.
/// Returns `None` for bodyless forms (`impl Trait for T;` doesn't exist,
/// but truncated files do) or when the header runs off the end.
fn scan_impl_header(src: &str, toks: &[Token], at: usize) -> Option<(String, usize)> {
    let n = toks.len();
    let mut angle = 0i32;
    let mut last_ident: Option<&str> = None;
    let mut after_for: Option<&str> = None;
    let mut seen_for = false;
    let mut seen_where = false;
    let mut j = at + 1;
    while j < n {
        let t = toks[j];
        match t.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => {
                // `->` in e.g. `impl Fn(u32) -> u32` must not close an
                // angle bracket: the `-` token is byte-adjacent.
                let arrow = j > 0 && toks[j - 1].is_punct('-') && toks[j - 1].end == t.start;
                if !arrow {
                    angle -= 1;
                }
            }
            TokKind::Punct('{') if angle <= 0 => {
                let name = after_for.or(last_ident)?;
                return Some((name.to_string(), j));
            }
            TokKind::Punct(';') if angle <= 0 => return None,
            TokKind::Ident if angle <= 0 => {
                let w = t.text(src);
                if w == "where" {
                    // Type name is settled; keep scanning for the `{`
                    // without letting bound types overwrite it.
                    seen_where = true;
                } else if seen_where {
                } else if w == "for" {
                    seen_for = true;
                } else if seen_for && after_for.is_none() {
                    after_for = Some(w);
                } else if !seen_for {
                    last_ident = Some(w);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Scan a `fn` item starting at token `at` (the `fn` keyword, with an
/// identifier following). Returns the item and the token index to resume
/// scanning from when the item has no body.
fn scan_fn(
    src: &str,
    lexed: &Lexed,
    toks: &[Token],
    at: usize,
    scopes: &[Scope],
    file_stem: &str,
) -> (FnItem, usize) {
    let n = toks.len();
    let name_tok = toks[at + 1];
    let name = name_tok.text(src).to_string();

    // Visibility: look back a few tokens for `pub` among modifiers
    // (`pub const unsafe extern "C" fn`). Stop at obvious statement
    // boundaries.
    let mut is_pub = false;
    for k in (at.saturating_sub(6)..at).rev() {
        match toks[k].kind {
            TokKind::Ident => {
                let w = toks[k].text(src);
                if w == "pub" {
                    is_pub = true;
                    break;
                }
                if !matches!(w, "const" | "unsafe" | "extern" | "async" | "default") {
                    break;
                }
            }
            TokKind::Str => {}        // the ABI string in `extern "C"`
            TokKind::Punct(')') => {} // `pub(crate)` — keep looking for `pub`
            TokKind::Punct('(') => {}
            _ => break,
        }
    }

    // Signature: scan forward for the body `{` at zero paren/bracket/angle
    // depth, or a `;` (trait method signatures, extern decls).
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut angle = 0i32;
    let mut j = at + 2;
    let mut body: Option<(usize, usize)> = None;
    let mut resume = at + 2;
    while j < n {
        let t = toks[j];
        match t.kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => {
                let arrow = toks[j - 1].is_punct('-') && toks[j - 1].end == t.start;
                if !arrow {
                    angle -= 1;
                }
            }
            TokKind::Punct('{') if paren <= 0 && bracket <= 0 && angle <= 0 => {
                // Found the body; match braces to find its close.
                let mut d = 1i32;
                let mut k = j + 1;
                while k < n && d > 0 {
                    match toks[k].kind {
                        TokKind::Punct('{') => d += 1,
                        TokKind::Punct('}') => d -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                body = Some((j, k.saturating_sub(1)));
                resume = j + 1;
                break;
            }
            TokKind::Punct(';') if paren <= 0 && bracket <= 0 && angle <= 0 => {
                resume = j + 1;
                break;
            }
            _ => {}
        }
        j += 1;
        resume = j;
    }

    // Qualified name from the innermost impl/trait scope.
    let impl_name = scopes.iter().rev().find_map(|s| match &s.kind {
        ScopeKind::Impl(t) => Some(t.clone()),
        _ => None,
    });
    let qname = match &impl_name {
        Some(t) => format!("{t}::{name}"),
        None => name.clone(),
    };

    // Module path: file stem plus inline mod names, outermost first.
    let mut module = vec![file_stem.to_string()];
    for s in scopes {
        if let ScopeKind::Mod(m) = &s.kind {
            module.push(m.clone());
        }
    }

    // Trusted marker: a lint:trusted within three lines above (or on) the
    // declaration line binds to this function.
    let line = toks[at].line;
    let trusted = lexed.markers.iter().rev().find_map(|m| {
        if let MarkerKind::Trusted(reason) = &m.kind {
            if m.line <= line && line.saturating_sub(m.line) <= 3 {
                return Some(reason.clone());
            }
        }
        None
    });

    let end_line = body
        .map(|(_, close)| toks[close.min(n - 1)].line)
        .unwrap_or(line);

    (
        FnItem {
            name,
            qname,
            is_pub,
            line,
            end_line,
            module,
            tok_start: at,
            body,
            trusted,
        },
        resume,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse(src: &str) -> Vec<FnItem> {
        let lexed = lex(src);
        parse_items(src, &lexed, "test")
    }

    #[test]
    fn free_and_method_fns_get_qualified_names() {
        let src = "fn free() {}\nimpl Engine { pub fn run(&mut self) {} }\n";
        let items = parse(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].qname, "free");
        assert!(!items[0].is_pub);
        assert_eq!(items[1].qname, "Engine::run");
        assert!(items[1].is_pub);
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let src = "impl Default for SweepRunner { fn default() -> Self { x } }";
        let items = parse(src);
        assert_eq!(items[0].qname, "SweepRunner::default");
    }

    #[test]
    fn generic_impl_headers_resolve_the_type() {
        let src = "impl<W, E: EventFire<W>> Engine<W, E> { fn step(&mut self) {} }";
        let items = parse(src);
        assert_eq!(items[0].qname, "Engine::step");
    }

    #[test]
    fn return_position_impl_trait_is_not_an_item() {
        let src = "fn make() -> impl Iterator<Item = u32> { (0..3).map(|x| x) }\nfn after() {}";
        let items = parse(src);
        let qnames: Vec<&str> = items.iter().map(|i| i.qname.as_str()).collect();
        assert_eq!(qnames, vec!["make", "after"]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn takes(f: fn(u32) -> u32) -> u32 { f(1) }";
        let items = parse(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "takes");
    }

    #[test]
    fn inline_mods_extend_the_module_path() {
        let src = "mod obs { pub fn dump() {} }\nfn outer() {}";
        let items = parse(src);
        assert_eq!(items[0].module, vec!["test", "obs"]);
        assert_eq!(items[1].module, vec!["test"]);
    }

    #[test]
    fn where_clauses_and_arrows_do_not_break_header_scan() {
        let src = "impl<F> Runner<F> where F: Fn(u32) -> u32 { fn go(&self) {} }";
        let items = parse(src);
        assert_eq!(items[0].qname, "Runner::go");
    }

    #[test]
    fn body_spans_cover_the_whole_function() {
        let src = "fn a() {\n    let x = 1;\n}\nfn b() {}\n";
        let items = parse(src);
        assert_eq!(items[0].line, 1);
        assert_eq!(items[0].end_line, 3);
        assert_eq!(items[1].line, 4);
    }

    #[test]
    fn trusted_marker_binds_to_the_next_fn_only() {
        let src = "// lint:trusted(pool sizing only)\nfn sized() {}\n\n\n\nfn far() {}";
        let items = parse(src);
        assert_eq!(items[0].trusted.as_deref(), Some("pool sizing only"));
        assert_eq!(items[1].trusted, None);
    }

    #[test]
    fn trait_method_signatures_without_bodies_are_recorded() {
        let src = "trait Fire { fn fire(&mut self, at: u64); fn named(&self) -> u32 { 1 } }";
        let items = parse(src);
        assert_eq!(items[0].qname, "Fire::fire");
        assert!(items[0].body.is_none());
        assert_eq!(items[1].qname, "Fire::named");
        assert!(items[1].body.is_some());
    }

    #[test]
    fn nested_fns_are_attributed_to_the_file() {
        let src = "fn outer() { fn inner() {} inner(); }";
        let items = parse(src);
        let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn unbalanced_input_does_not_panic() {
        for src in ["fn a() {", "impl X {", "mod m { fn q(", "fn", "impl"] {
            let _ = parse(src);
        }
    }
}
