//! A dependency-free determinism linter for the tengig workspace.
//!
//! The simulation's headline guarantee is that every result is a pure
//! function of `(config, seed)` — byte-identical across machines, runs,
//! and sweep-runner thread counts. That guarantee is easy to break with
//! one careless import, so this crate walks the simulation crates'
//! sources and rejects the known footguns at CI time:
//!
//! * **wall-clock** — `std::time::Instant` / `SystemTime` read host time,
//!   which differs every run. The engine's virtual clock (`Nanos`) is the
//!   only time source.
//! * **unseeded-rng** — `thread_rng()`, `OsRng`, `from_entropy()` and
//!   friends draw from the OS entropy pool. All randomness must flow
//!   from `SimRng` with an explicit seed.
//! * **map-iteration** — `HashMap` / `HashSet` iterate in randomized
//!   order (std's hasher is seeded per process). Use `BTreeMap` /
//!   `BTreeSet` or index-keyed `Vec`s.
//! * **unwrap** — `.unwrap()` / `panic!` in the simulation hot paths
//!   (`crates/sim`, `crates/tcp`) abort without context. Use `expect()`
//!   with a message that says what invariant broke, or return an error.
//! * **float-event-loop** — `f32` / `f64` in the engine's event loop
//!   (`crates/sim/src/engine.rs`), the calendar and its timing wheel
//!   (`crates/sim/src/calendar.rs`), or a TCP timer entry point (any
//!   `crates/tcp` function whose name mentions `timer`/`rto`/`rtt`/
//!   `delack` — RTO arming, backoff, RTT estimation, delayed ACKs)
//!   accumulate rounding error that differs across platforms; the event
//!   loop and the retransmission clock stay integer-only (`Nanos`).
//!   Elsewhere in `crates/tcp` floats are fine (window fractions,
//!   goodput math) — the scope is the timer machinery, not the crate.
//! * **printf-debug** — `println!` / `eprintln!` (and `print!` /
//!   `eprint!`) in the simulation hot paths (`crates/sim`, `crates/tcp`,
//!   `crates/net` — the wire and impairment models run inside every
//!   event) outside the observability module (`obs.rs`): ad-hoc printf
//!   debugging must not leak into the deterministic core — diagnostics
//!   flow through the tracer, the flight recorder, and the metrics
//!   timelines.
//! * **sweep-routing** — every public sweep entry point in
//!   `crates/core/src/experiments/` must route through `SweepRunner`, so
//!   parallelism and per-scenario seeding stay centralized.
//!
//! A finding can be suppressed with `// lint:allow(rule-name)` on the
//! same line or the line above. The linter is pure `std` (no syn, no
//! regex): it strips comments, strings, and char literals with a small
//! state machine, then matches identifiers on word boundaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose `src/` trees are subject to the determinism rules
/// (wall-clock, unseeded-rng, map-iteration). The vendored `criterion`
/// and `proptest` shims are excluded: a benchmark harness legitimately
/// reads wall-clock time, and neither runs inside a simulation.
pub const DETERMINISM_CRATES: &[&str] = &[
    "sim", "hw", "ethernet", "nic", "tcp", "net", "tools", "core",
];

/// Crates whose `src/` trees must not contain `.unwrap()` / `panic!`
/// (the simulation hot paths).
pub const NO_UNWRAP_CRATES: &[&str] = &["sim", "tcp"];

/// Crates whose `src/` trees must stay print-free outside `obs.rs`.
/// A superset of [`NO_UNWRAP_CRATES`]: the wire and impairment models in
/// `crates/net` execute inside every link event, so printf debugging
/// there is just as hot — but `net` keeps `expect()`-with-context
/// latitude that the innermost loops do not.
pub const NO_PRINT_CRATES: &[&str] = &["sim", "tcp", "net"];

/// One lint finding, rendered `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path of the offending file, relative to the linted root.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (the token accepted by `lint:allow(...)`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// The result of linting a tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, in (path, line) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Lint the workspace rooted at `root` (the directory containing
/// `crates/`). Returns a report with deterministic file ordering.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    for krate in DETERMINISM_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        for file in rust_files(&src)? {
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            let content = fs::read_to_string(&file)?;
            report.files_scanned += 1;
            report.diagnostics.extend(lint_file(&rel, krate, &content));
        }
    }
    Ok(report)
}

/// All `.rs` files under `dir`, recursively, in sorted (deterministic)
/// order.
pub fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for p in entries {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint a single file's contents. `krate` is the crate directory name
/// (used for rule scoping); `rel` is the path reported in diagnostics.
pub fn lint_file(rel: &Path, krate: &str, content: &str) -> Vec<Diagnostic> {
    let allows = allow_markers(content);
    let code = strip_non_code(content);
    let mut diags = Vec::new();

    let fname = rel.file_name().and_then(|f| f.to_str()).unwrap_or("");
    let in_experiments = krate == "core"
        && rel.components().any(|c| c.as_os_str() == "experiments")
        && fname != "mod.rs";
    let is_event_loop = krate == "sim" && (fname == "engine.rs" || fname == "calendar.rs");
    let no_unwrap = NO_UNWRAP_CRATES.contains(&krate);
    // The observability/flight-recorder module is the one sanctioned place
    // that renders output for humans; everything else in the hot-path
    // crates must stay print-free.
    let no_print = NO_PRINT_CRATES.contains(&krate) && fname != "obs.rs";

    for (idx, line) in code.lines().enumerate() {
        let lineno = idx + 1;
        let mut push = |rule: &'static str, message: String| {
            if !allows
                .iter()
                .any(|(l, r)| r == rule && (*l == lineno || *l + 1 == lineno))
            {
                diags.push(Diagnostic {
                    path: rel.to_path_buf(),
                    line: lineno,
                    rule,
                    message,
                });
            }
        };

        if has_ident(line, "Instant") || has_ident(line, "SystemTime") {
            push(
                "wall-clock",
                "wall-clock time source breaks determinism; use the engine's \
                 virtual clock (Nanos)"
                    .to_string(),
            );
        }
        if has_ident(line, "thread_rng")
            || has_ident(line, "ThreadRng")
            || has_ident(line, "OsRng")
            || has_ident(line, "from_entropy")
            || has_rand_path(line)
        {
            push(
                "unseeded-rng",
                "unseeded or external randomness; draw from SimRng with an \
                 explicit seed"
                    .to_string(),
            );
        }
        if has_ident(line, "HashMap") || has_ident(line, "HashSet") {
            push(
                "map-iteration",
                "hash-map iteration order is randomized per process; use \
                 BTreeMap/BTreeSet or an index-keyed Vec"
                    .to_string(),
            );
        }
        if no_unwrap && (line.contains(".unwrap()") || has_macro(line, "panic")) {
            push(
                "unwrap",
                "unwrap()/panic! in a simulation hot path; use expect() with \
                 context or return an error"
                    .to_string(),
            );
        }
        if no_print
            && (has_macro(line, "println")
                || has_macro(line, "eprintln")
                || has_macro(line, "print")
                || has_macro(line, "eprint"))
        {
            push(
                "printf-debug",
                "print macro in a simulation hot path; diagnostics go through \
                 the tracer / obs module, not stdout"
                    .to_string(),
            );
        }
        if is_event_loop && (has_ident(line, "f32") || has_ident(line, "f64")) {
            push(
                "float-event-loop",
                "float arithmetic in the event loop drifts across platforms; \
                 the calendar is integer nanoseconds only"
                    .to_string(),
            );
        }
    }

    if in_experiments {
        diags.extend(check_sweep_routing(rel, &code, &allows));
    }
    if krate == "tcp" {
        diags.extend(check_timer_floats(rel, &code, &allows));
    }

    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}

/// Every public sweep entry point (a `pub fn` whose name contains
/// `sweep` or `ladder`) must route through the deterministic runner:
/// its signature or body must mention `SweepRunner`, or it must call
/// another `*sweep*` function that does.
fn check_sweep_routing(rel: &Path, code: &str, allows: &[(usize, String)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in public_fns(code) {
        if !(f.name.contains("sweep") || f.name.contains("ladder")) {
            continue;
        }
        let routed = has_ident(&f.text, "SweepRunner") || calls_other_sweep(&f.text, &f.name);
        let allowed = allows
            .iter()
            .any(|(l, r)| r == "sweep-routing" && (*l == f.line || *l + 1 == f.line));
        if !routed && !allowed {
            diags.push(Diagnostic {
                path: rel.to_path_buf(),
                line: f.line,
                rule: "sweep-routing",
                message: format!(
                    "pub fn {} does not route through SweepRunner; all sweeps \
                     go through the deterministic runner",
                    f.name
                ),
            });
        }
    }
    diags
}

/// Function-name substrings marking a `crates/tcp` function as part of
/// the retransmission-clock machinery: RTO arming and backoff, RTT
/// estimation (which feeds the RTO), timer dispatch, delayed ACKs.
const TIMER_FN_MARKERS: &[&str] = &["timer", "rto", "rtt", "delack"];

/// The timer entry points of the TCP stack must compute deadlines in
/// integer `Nanos` — a float-scaled backoff rounds differently across
/// platforms *and* silently saturates its mantissa long before `u64`
/// does. Scoped to functions (by name), not the whole crate: window
/// fractions and goodput math legitimately use `f64`.
fn check_timer_floats(rel: &Path, code: &str, allows: &[(usize, String)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in fn_items(code, "fn ") {
        if !TIMER_FN_MARKERS.iter().any(|m| f.name.contains(m)) {
            continue;
        }
        for (k, line) in f.text.lines().enumerate() {
            if !(has_ident(line, "f32") || has_ident(line, "f64")) {
                continue;
            }
            let lineno = f.line + k;
            let allowed = allows
                .iter()
                .any(|(l, r)| r == "float-event-loop" && (*l == lineno || *l + 1 == lineno));
            if !allowed {
                diags.push(Diagnostic {
                    path: rel.to_path_buf(),
                    line: lineno,
                    rule: "float-event-loop",
                    message: format!(
                        "float arithmetic in timer entry point `{}`; the \
                         retransmission clock is integer nanoseconds only",
                        f.name
                    ),
                });
            }
        }
    }
    diags
}

/// A function item found by the lightweight parser.
struct PubFn {
    name: String,
    /// 1-based line of the `fn` keyword.
    line: usize,
    /// Signature + body text (comments/strings already stripped).
    text: String,
}

/// Find `pub fn` items in stripped source text.
fn public_fns(code: &str) -> Vec<PubFn> {
    fn_items(code, "pub fn ")
}

/// Find function items introduced by `needle` (`"pub fn "` or `"fn "` —
/// the latter matches every visibility, since `pub fn` contains `fn ` at
/// a word boundary). Good enough for lint: no const-generic braces
/// appear in this workspace's signatures.
fn fn_items(code: &str, needle: &str) -> Vec<PubFn> {
    let bytes = code.as_bytes();
    let mut fns = Vec::new();
    let mut search = 0;
    while let Some(off) = code[search..].find(needle) {
        let start = search + off;
        search = start + needle.len();
        // Word boundary before `pub`.
        if start > 0 && is_ident_byte(bytes[start - 1]) {
            continue;
        }
        let name: String = code[search..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        let Some(body_off) = code[start..].find('{') else {
            continue;
        };
        let open = start + body_off;
        let mut depth = 0usize;
        let mut end = open;
        for (i, b) in code[open..].bytes().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        let line = code[..start].bytes().filter(|&b| b == b'\n').count() + 1;
        fns.push(PubFn {
            name,
            line,
            text: code[start..end].to_string(),
        });
    }
    fns
}

/// Does `text` call some *other* function whose name contains `sweep`?
fn calls_other_sweep(text: &str, own_name: &str) -> bool {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if !is_ident_byte(bytes[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
        let ident = &text[start..i];
        if ident.contains("sweep") && ident != own_name {
            // Followed (modulo whitespace) by `(` → it's a call.
            let rest = text[i..].trim_start();
            if rest.starts_with('(') {
                return true;
            }
        }
    }
    false
}

/// Collect `lint:allow(rule)` markers: `(line, rule)` pairs, 1-based.
/// Parsed from the raw source (the markers live inside comments, which
/// the stripper removes).
pub fn allow_markers(content: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in content.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("lint:allow(") {
            let after = &rest[pos + "lint:allow(".len()..];
            if let Some(close) = after.find(')') {
                out.push((idx + 1, after[..close].trim().to_string()));
                rest = &after[close + 1..];
            } else {
                break;
            }
        }
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Word-boundary identifier match.
fn has_ident(line: &str, word: &str) -> bool {
    find_ident(line, word).is_some()
}

/// Byte offset of a word-boundary occurrence of `word` in `line`.
fn find_ident(line: &str, word: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    for (pos, _) in line.match_indices(word) {
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after = pos + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(pos);
        }
    }
    None
}

/// `rand::` as a path root (`rand` followed by `::`), which would pull in
/// the external crate rather than the vendored `SimRng`.
fn has_rand_path(line: &str) -> bool {
    let bytes = line.as_bytes();
    for (pos, _) in line.match_indices("rand") {
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after = pos + "rand".len();
        if before_ok && line[after..].starts_with("::") {
            return true;
        }
    }
    false
}

/// `name!` macro invocation on a word boundary.
fn has_macro(line: &str, name: &str) -> bool {
    if let Some(pos) = find_ident(line, name) {
        return line[pos + name.len()..].starts_with('!');
    }
    false
}

/// Strip comments, string literals, and char literals from Rust source,
/// preserving line structure (stripped characters become spaces, so
/// identifiers never merge across removed regions and line numbers are
/// unchanged). Handles `//`, nested `/* */`, `"..."` with escapes across
/// lines, raw strings `r#"..."#` with any hash count, byte strings, char
/// literals (including `'"'` and escapes), and lifetimes.
pub fn strip_non_code(content: &str) -> String {
    let chars: Vec<char> = content.chars().collect();
    let mut out = String::with_capacity(content.len());
    let mut i = 0;
    let n = chars.len();

    #[derive(PartialEq)]
    enum Mode {
        Code,
        Block(usize),
        Str,
        Raw(usize),
    }
    let mut mode = Mode::Code;
    // Previous non-stripped char in Code mode, for raw-string detection
    // (`r` must not be the tail of an identifier like `attr`).
    let mut prev_code: Option<char> = None;

    while i < n {
        let c = chars[i];
        match mode {
            Mode::Code => {
                if c == '/' && i + 1 < n && chars[i + 1] == '/' {
                    while i < n && chars[i] != '\n' {
                        i += 1;
                    }
                } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
                    mode = Mode::Block(1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    mode = Mode::Str;
                    out.push(' ');
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && !prev_code.is_some_and(|p| p.is_alphanumeric() || p == '_')
                {
                    // Possible raw / byte / byte-raw string prefix.
                    let mut j = i + 1;
                    if c == 'b' && j < n && chars[j] == 'r' {
                        j += 1;
                    }
                    if c == 'b' && j == i + 1 && j < n && chars[j] == '"' {
                        // b"..." — ordinary escape rules.
                        mode = Mode::Str;
                        out.push(' ');
                        out.push(' ');
                        i = j + 1;
                        continue;
                    }
                    let mut hashes = 0;
                    while j < n && chars[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    if (c == 'r' || j > i + 1) && j < n && chars[j] == '"' {
                        mode = Mode::Raw(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c);
                        prev_code = Some(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime.
                    if i + 1 < n && chars[i + 1] == '\\' {
                        // Escaped char literal: skip to the closing quote.
                        i += 2;
                        while i < n && chars[i] != '\'' {
                            i += 1;
                        }
                        i += 1; // closing quote
                        out.push(' ');
                    } else if i + 2 < n && chars[i + 2] == '\'' {
                        // One-char literal, e.g. 'x' or '"'.
                        out.push(' ');
                        i += 3;
                    } else {
                        // Lifetime: keep the tick, code continues.
                        out.push('\'');
                        i += 1;
                    }
                    prev_code = Some('\'');
                } else {
                    out.push(c);
                    if !c.is_whitespace() {
                        prev_code = Some(c);
                    }
                    i += 1;
                }
            }
            Mode::Block(depth) => {
                if c == '/' && i + 1 < n && chars[i + 1] == '*' {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else if c == '*' && i + 1 < n && chars[i + 1] == '/' {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::Block(depth - 1)
                    };
                    i += 2;
                } else {
                    if c == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char
                } else if c == '"' {
                    mode = Mode::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    if c == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
            }
            Mode::Raw(hashes) => {
                if c == '"' {
                    let close = (1..=hashes).all(|k| i + k < n && chars[i + k] == '#');
                    if close {
                        mode = Mode::Code;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                } else {
                    if c == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_stripped() {
        let s = strip_non_code("let x = 1; // Instant::now()\nlet y = 2;");
        assert!(!s.contains("Instant"));
        assert!(s.contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments_are_stripped() {
        let s = strip_non_code("a /* outer /* SystemTime */ still comment */ b");
        assert!(!s.contains("SystemTime"));
        assert!(s.contains('a') && s.contains('b'));
    }

    #[test]
    fn strings_are_stripped_but_lines_survive() {
        let s = strip_non_code("let s = \"HashMap\\\" still string\";\nlet t = 3;");
        assert!(!s.contains("HashMap"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn raw_strings_with_hashes_are_stripped() {
        let s = strip_non_code("let s = r#\"thread_rng \"quoted\" more\"#; f64");
        assert!(!s.contains("thread_rng"));
        assert!(
            s.contains("f64"),
            "code after the raw string must survive: {s}"
        );
    }

    #[test]
    fn char_literal_quote_does_not_open_a_string() {
        let s = strip_non_code("let c = '\"'; let x = Instant;");
        assert!(s.contains("Instant"), "code after '\"' must stay code: {s}");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = strip_non_code("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(s.contains("str"));
    }

    #[test]
    fn ident_matching_respects_word_boundaries() {
        assert!(!has_ident("/// Instantiate runtime state.", "Instant"));
        assert!(has_ident("use std::time::Instant;", "Instant"));
        assert!(!has_ident("my_rand::next()", "rand"));
        assert!(has_rand_path("rand::thread_rng()"));
        assert!(!has_rand_path("my_rand::thread_rng()"));
        assert!(has_macro("panic!(\"boom\")", "panic"));
        assert!(!has_macro("deterministic_panic_free()", "panic"));
    }

    #[test]
    fn allow_markers_are_parsed() {
        let m = allow_markers("x // lint:allow(unwrap)\ny // lint:allow(wall-clock)\n");
        assert_eq!(
            m,
            vec![(1, "unwrap".to_string()), (2, "wall-clock".to_string())]
        );
    }

    #[test]
    fn unwrap_rule_scopes_to_hot_path_crates() {
        let code = "pub fn f(v: &[u8]) -> u8 { *v.first().unwrap() }\n";
        let sim = lint_file(Path::new("crates/sim/src/x.rs"), "sim", code);
        assert_eq!(sim.len(), 1);
        assert_eq!(sim[0].rule, "unwrap");
        let core = lint_file(Path::new("crates/core/src/x.rs"), "core", code);
        assert!(
            core.is_empty(),
            "unwrap is allowed outside sim/tcp: {core:?}"
        );
    }

    #[test]
    fn allow_on_preceding_line_suppresses() {
        let code = "// lint:allow(unwrap)\npub fn f(v: &[u8]) -> u8 { *v.first().unwrap() }\n";
        let d = lint_file(Path::new("crates/sim/src/x.rs"), "sim", code);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn sweep_routing_flags_unrouted_pub_fns() {
        let bad = "pub fn buffer_sweep(xs: &[u64]) -> Vec<u64> {\n    xs.to_vec()\n}\n";
        let d = lint_file(Path::new("crates/core/src/experiments/x.rs"), "core", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "sweep-routing");
        assert_eq!(d[0].line, 1);

        let routed = "pub fn buffer_sweep(r: SweepRunner) -> Vec<u64> { vec![] }\n";
        let d = lint_file(
            Path::new("crates/core/src/experiments/x.rs"),
            "core",
            routed,
        );
        assert!(d.is_empty(), "{d:?}");

        let delegating =
            "pub fn ladder(xs: &[u64]) -> Vec<u64> {\n    buffer_sweep_report(xs)\n}\n";
        let d = lint_file(
            Path::new("crates/core/src/experiments/x.rs"),
            "core",
            delegating,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn sweep_routing_ignores_mod_rs_and_other_crates() {
        let bad = "pub fn buffer_sweep(xs: &[u64]) -> Vec<u64> { xs.to_vec() }\n";
        let d = lint_file(Path::new("crates/core/src/experiments/mod.rs"), "core", bad);
        assert!(d.is_empty());
        let d = lint_file(Path::new("crates/core/src/lab/mod.rs"), "core", bad);
        assert!(d.is_empty());
    }

    #[test]
    fn float_rule_fires_only_in_the_engine() {
        let code = "pub struct S { t: f64 }\n";
        let d = lint_file(Path::new("crates/sim/src/engine.rs"), "sim", code);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "float-event-loop");
        let d = lint_file(Path::new("crates/sim/src/calendar.rs"), "sim", code);
        assert_eq!(d.len(), 1, "the calendar is float-banned too: {d:?}");
        let d = lint_file(Path::new("crates/sim/src/stats.rs"), "sim", code);
        assert!(d.is_empty(), "floats are fine outside the calendar: {d:?}");
    }

    #[test]
    fn float_rule_scopes_to_tcp_timer_functions() {
        // A float inside a timer-named fn fires; the same float in
        // ordinary window math does not — any visibility, not just pub.
        let bad = "fn backed_off_rto(x: u64) -> u64 {\n    (x as f64 * 2.0) as u64\n}\n";
        let d = lint_file(Path::new("crates/tcp/src/conn.rs"), "tcp", bad);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "float-event-loop");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("backed_off_rto"));

        let fine =
            "pub fn window_fraction(s: u32) -> f64 {\n    1.0 - 1.0 / (1u64 << s) as f64\n}\n";
        let d = lint_file(Path::new("crates/tcp/src/conn.rs"), "tcp", fine);
        assert!(d.is_empty(), "non-timer floats are fine in tcp: {d:?}");

        // The same timer fn outside crates/tcp is not in scope.
        let d = lint_file(Path::new("crates/core/src/lab/mod.rs"), "core", bad);
        assert!(d.is_empty(), "{d:?}");
    }
}
