//! A dependency-free determinism linter for the tengig workspace.
//!
//! The simulation's headline guarantee is that every result is a pure
//! function of `(config, seed)` — byte-identical across machines, runs,
//! and sweep-runner thread counts. That guarantee is easy to break with
//! one careless import, so this crate walks the simulation crates'
//! sources and rejects the known footguns at CI time:
//!
//! * **wall-clock** — `std::time::Instant` / `SystemTime` read host time,
//!   which differs every run. The engine's virtual clock (`Nanos`) is the
//!   only time source.
//! * **unseeded-rng** — `thread_rng()`, `OsRng`, `from_entropy()` and
//!   friends draw from the OS entropy pool. All randomness must flow
//!   from `SimRng` with an explicit seed.
//! * **map-iteration** — `HashMap` / `HashSet` iterate in randomized
//!   order (std's hasher is seeded per process). Use `BTreeMap` /
//!   `BTreeSet` or index-keyed `Vec`s.
//! * **unwrap** — `.unwrap()` / `panic!` in the simulation hot paths
//!   (`crates/sim`, `crates/tcp`) abort without context. Use `expect()`
//!   with a message that says what invariant broke, or return an error.
//! * **float-event-loop** — `f32` / `f64` (or a float literal) in the
//!   engine's event loop (`crates/sim/src/engine.rs`), the calendar and
//!   its timing wheel (`crates/sim/src/calendar.rs`), or the TCP timer
//!   machinery accumulates rounding error that differs across platforms;
//!   the event loop and the retransmission clock stay integer-only
//!   (`Nanos`). The TCP scope is *function extents*, not name matching:
//!   the declared timer entry points ([`TIMER_ENTRY_FNS`]) plus their
//!   dominator closure — any `crates/tcp` function whose every caller is
//!   already in the timer set. Window fractions and goodput math
//!   elsewhere in `crates/tcp` legitimately use `f64`.
//! * **lossy-cast** — a truncating `as` cast to an integer type inside
//!   the event-loop files (`engine.rs`, `calendar.rs`, `time.rs` in
//!   `crates/sim`) can silently wrap slot indices or nanosecond counts.
//!   Use `try_from`/`from` conversions, or justify with a comment plus
//!   `lint:allow(lossy-cast)`.
//! * **printf-debug** — `println!` / `eprintln!` (and `print!` /
//!   `eprint!`) in the simulation hot paths (`crates/sim`, `crates/tcp`,
//!   `crates/net`) outside an observability module (a file or inline
//!   `mod` named `obs`): ad-hoc printf debugging must not leak into the
//!   deterministic core — diagnostics flow through the tracer, the
//!   flight recorder, and the metrics timelines.
//! * **sweep-routing** — every public sweep entry point in
//!   `crates/core/src/experiments/` must route through `SweepRunner`, so
//!   parallelism and per-scenario seeding stay centralized.
//! * **taint** — the transitive pass: no declared hot-path root
//!   ([`taint::HOT_PATH_ROOTS`]) may *reach* a nondeterminism source
//!   (wall clocks, OS entropy, hash-order iteration, env/fs/thread-id
//!   reads) through any chain of workspace calls. A
//!   `// lint:trusted(reason)` comment on a function declares a reviewed
//!   boundary that taint does not cross.
//!
//! A per-line finding can be suppressed with `// lint:allow(rule-name)`
//! on the same line or the line above. The linter is pure `std` (no
//! `syn`, no `regex`): [`lex`] hand-rolls a total Rust lexer with exact
//! byte spans, [`parse`] recovers `fn`/`impl`/`mod` item boundaries,
//! [`callgraph`] extracts per-function call edges and source hits, and
//! [`taint`] propagates reachability over the result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod lex;
pub mod parse;
pub mod taint;

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use callgraph::{extract, CallSite};
use lex::{lex, Lexed, MarkerKind, TokKind, Token};
use parse::{parse_items, FnItem};
use taint::FnNode;

/// Crates whose `src/` trees are subject to the determinism rules
/// (wall-clock, unseeded-rng, map-iteration) and contribute nodes to the
/// taint call graph. The vendored `criterion` and `proptest` shims are
/// excluded: a benchmark harness legitimately reads wall-clock time, and
/// neither runs inside a simulation.
pub const DETERMINISM_CRATES: &[&str] = &[
    "sim", "hw", "ethernet", "nic", "tcp", "net", "tools", "core",
];

/// Crates whose `src/` trees must not contain `.unwrap()` / `panic!`
/// (the simulation hot paths).
pub const NO_UNWRAP_CRATES: &[&str] = &["sim", "tcp"];

/// Crates whose `src/` trees must stay print-free outside an `obs`
/// module. A superset of [`NO_UNWRAP_CRATES`]: the wire and impairment
/// models in `crates/net` execute inside every link event, so printf
/// debugging there is just as hot — but `net` keeps `expect()`-with-
/// context latitude that the innermost loops do not.
pub const NO_PRINT_CRATES: &[&str] = &["sim", "tcp", "net"];

/// The declared TCP timer entry points: the seed of the timer-float set.
/// The set then grows by dominator closure — a `crates/tcp` function
/// joins when every one of its callers (at least one) is already in the
/// set — so private helpers reachable only from the retransmission clock
/// are covered without any name heuristics.
pub const TIMER_ENTRY_FNS: &[&str] = &[
    "on_timer",
    "on_timer_into",
    "arm_rto",
    "backed_off_rto",
    "rtt_sample",
];

/// Every rule name the linter can emit (the tokens accepted by
/// `lint:allow(...)` and `--rule`).
pub const RULES: &[&str] = &[
    "wall-clock",
    "unseeded-rng",
    "map-iteration",
    "unwrap",
    "printf-debug",
    "float-event-loop",
    "lossy-cast",
    "sweep-routing",
    "taint",
];

/// Integer destination types of a lossy `as` cast.
const INT_CAST_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// One lint finding, rendered `file:line:col: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path of the offending file, relative to the linted root.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column of the offending token.
    pub column: usize,
    /// Rule name (the token accepted by `lint:allow(...)`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// For taint findings: the call chain from the hot-path root down to
    /// the nondeterminism source. Empty for per-line findings.
    pub chain: Vec<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.column,
            self.rule,
            self.message
        )
    }
}

/// The result of linting a tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, in (path, line, column, rule) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Hot-path roots found in the tree and proven source-free.
    pub roots_proven: Vec<String>,
    /// Declared roots not found in the tree (stale root list or rename).
    pub roots_missing: Vec<String>,
}

impl LintReport {
    /// Full machine-readable report: version, scan stats, the
    /// reachability proof, and every finding.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"version\": 1,\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!(
            "  \"roots_proven\": {},\n",
            json_string_array(&self.roots_proven)
        ));
        s.push_str(&format!(
            "  \"roots_missing\": {},\n",
            json_string_array(&self.roots_missing)
        ));
        s.push_str(&format!(
            "  \"findings\": {}\n",
            self.findings_json_value(2)
        ));
        s.push('}');
        s.push('\n');
        s
    }

    /// Canonical findings-only document, for diffing against the
    /// committed baseline (`goldens/lint_baseline.json`). Byte-stable for
    /// a given tree: file order, line order, and JSON shape are all
    /// deterministic.
    pub fn findings_json(&self) -> String {
        format!("{{\n  \"findings\": {}\n}}\n", self.findings_json_value(2))
    }

    fn findings_json_value(&self, indent: usize) -> String {
        if self.diagnostics.is_empty() {
            return "[]".to_string();
        }
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let rows: Vec<String> = self
            .diagnostics
            .iter()
            .map(|d| {
                format!(
                    "{inner}{{\"path\": {}, \"line\": {}, \"column\": {}, \"rule\": {}, \
                     \"message\": {}, \"chain\": {}}}",
                    json_string(&d.path.display().to_string()),
                    d.line,
                    d.column,
                    json_string(d.rule),
                    json_string(&d.message),
                    json_string_array(&d.chain),
                )
            })
            .collect();
        format!("[\n{}\n{pad}]", rows.join(",\n"))
    }
}

/// Escape a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a `["a", "b"]`-style JSON array of strings.
fn json_string_array(items: &[String]) -> String {
    let rows: Vec<String> = items.iter().map(|s| json_string(s)).collect();
    format!("[{}]", rows.join(", "))
}

/// One scanned file with its lexed and parsed form, kept around for the
/// cross-file passes.
struct FileData {
    rel: PathBuf,
    krate: String,
    content: String,
    lexed: Lexed,
    items: Vec<FnItem>,
}

/// Lint the workspace rooted at `root` (the directory containing
/// `crates/`). Runs the per-line rules on every file, then the
/// cross-file passes (timer-float dominator closure, determinism taint)
/// over the whole call graph. Returns a report with deterministic
/// ordering.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    if !root.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} is not a directory", root.display()),
        ));
    }
    let mut report = LintReport::default();
    let mut files: Vec<FileData> = Vec::new();

    for krate in DETERMINISM_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        for file in rust_files(&src)? {
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            let content = fs::read_to_string(&file)?;
            let lexed = lex(&content);
            let stem = rel
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("")
                .to_string();
            let items = parse_items(&content, &lexed, &stem);
            report.files_scanned += 1;
            files.push(FileData {
                rel,
                krate: (*krate).to_string(),
                content,
                lexed,
                items,
            });
        }
    }

    // Per-file rules.
    for f in &files {
        report
            .diagnostics
            .extend(file_diags(&f.rel, &f.krate, &f.content, &f.lexed, &f.items));
    }

    // Cross-file passes share one call graph over all workspace functions.
    let mut nodes: Vec<FnNode> = Vec::new();
    let mut node_loc: Vec<(usize, usize)> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for (ii, item) in f.items.iter().enumerate() {
            let (calls, hits) = extract(&f.content, &f.lexed.tokens, item, &f.items);
            nodes.push(FnNode {
                path: f.rel.clone(),
                crate_name: f.krate.clone(),
                item: item.clone(),
                calls,
                hits,
            });
            node_loc.push((fi, ii));
        }
    }
    let callers = taint::build_callers(&nodes);

    report
        .diagnostics
        .extend(check_timer_floats(&files, &nodes, &node_loc, &callers));

    let taint_out = taint::analyze(&nodes, &callers);
    report.diagnostics.extend(taint_out.findings);
    report.roots_proven = taint_out.roots_proven;
    report.roots_missing = taint_out.roots_missing;

    report.diagnostics.sort_by(|a, b| {
        (&a.path, a.line, a.column, a.rule).cmp(&(&b.path, b.line, b.column, b.rule))
    });
    Ok(report)
}

/// All `.rs` files under `dir`, recursively, in sorted (deterministic)
/// order.
pub fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for p in entries {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint a single file's contents with the per-line rules and the
/// per-file sweep-routing check. The cross-file passes (timer-float
/// closure, taint) need the whole workspace and run only in
/// [`lint_workspace`]. `krate` is the crate directory name (used for
/// rule scoping); `rel` is the path reported in diagnostics.
pub fn lint_file(rel: &Path, krate: &str, content: &str) -> Vec<Diagnostic> {
    let lexed = lex(content);
    let stem = rel.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    let items = parse_items(content, &lexed, stem);
    file_diags(rel, krate, content, &lexed, &items)
}

/// `lint:allow(rule)` markers as `(line, rule)` pairs.
fn allows_of(lexed: &Lexed) -> Vec<(usize, String)> {
    lexed
        .markers
        .iter()
        .filter_map(|m| match &m.kind {
            MarkerKind::Allow(rule) => Some((m.line, rule.clone())),
            MarkerKind::Trusted(_) => None,
        })
        .collect()
}

/// Is a finding of `rule` at `line` suppressed by an allow marker on the
/// same line or the line above?
fn allowed(allows: &[(usize, String)], rule: &str, line: usize) -> bool {
    allows
        .iter()
        .any(|(l, r)| r == rule && (*l == line || *l + 1 == line))
}

/// The per-line and per-file rules for one file.
fn file_diags(
    rel: &Path,
    krate: &str,
    content: &str,
    lexed: &Lexed,
    items: &[FnItem],
) -> Vec<Diagnostic> {
    let allows = allows_of(lexed);
    let toks = &lexed.tokens;
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut seen: BTreeSet<(usize, &'static str)> = BTreeSet::new();

    let fname = rel.file_name().and_then(|f| f.to_str()).unwrap_or("");
    let in_experiments = krate == "core"
        && rel.components().any(|c| c.as_os_str() == "experiments")
        && fname != "mod.rs";
    let is_event_loop = krate == "sim" && (fname == "engine.rs" || fname == "calendar.rs");
    let cast_scope = krate == "sim" && matches!(fname, "engine.rs" | "calendar.rs" | "time.rs");
    let no_unwrap = NO_UNWRAP_CRATES.contains(&krate);
    let no_print = NO_PRINT_CRATES.contains(&krate);

    let push = |diags: &mut Vec<Diagnostic>,
                seen: &mut BTreeSet<(usize, &'static str)>,
                tok: &Token,
                rule: &'static str,
                message: String| {
        if allowed(&allows, rule, tok.line) || !seen.insert((tok.line, rule)) {
            return;
        }
        diags.push(Diagnostic {
            path: rel.to_path_buf(),
            line: tok.line,
            column: tok.col,
            rule,
            message,
            chain: Vec::new(),
        });
    };

    for (k, t) in toks.iter().enumerate() {
        // Float literals are relevant even though they are not idents.
        if is_event_loop && t.kind == TokKind::Float {
            push(
                &mut diags,
                &mut seen,
                t,
                "float-event-loop",
                "float arithmetic in the event loop drifts across platforms; \
                 the calendar is integer nanoseconds only"
                    .to_string(),
            );
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        let word = t.text(content);
        let next_adjacent =
            |c: char| k + 1 < toks.len() && toks[k + 1].is_punct(c) && toks[k + 1].start == t.end;

        match word {
            "Instant" | "SystemTime" => push(
                &mut diags,
                &mut seen,
                t,
                "wall-clock",
                "wall-clock time source breaks determinism; use the engine's \
                 virtual clock (Nanos)"
                    .to_string(),
            ),
            "thread_rng" | "ThreadRng" | "OsRng" | "from_entropy" => push(
                &mut diags,
                &mut seen,
                t,
                "unseeded-rng",
                "unseeded or external randomness; draw from SimRng with an \
                 explicit seed"
                    .to_string(),
            ),
            "rand" if next_adjacent(':') => push(
                &mut diags,
                &mut seen,
                t,
                "unseeded-rng",
                "unseeded or external randomness; draw from SimRng with an \
                 explicit seed"
                    .to_string(),
            ),
            "HashMap" | "HashSet" => push(
                &mut diags,
                &mut seen,
                t,
                "map-iteration",
                "hash-map iteration order is randomized per process; use \
                 BTreeMap/BTreeSet or an index-keyed Vec"
                    .to_string(),
            ),
            "unwrap"
                if no_unwrap
                    && k > 0
                    && toks[k - 1].is_punct('.')
                    && k + 1 < toks.len()
                    && toks[k + 1].is_punct('(') =>
            {
                push(
                    &mut diags,
                    &mut seen,
                    t,
                    "unwrap",
                    "unwrap()/panic! in a simulation hot path; use expect() with \
                     context or return an error"
                        .to_string(),
                )
            }
            "panic" if no_unwrap && next_adjacent('!') => push(
                &mut diags,
                &mut seen,
                t,
                "unwrap",
                "unwrap()/panic! in a simulation hot path; use expect() with \
                 context or return an error"
                    .to_string(),
            ),
            "println" | "eprintln" | "print" | "eprint"
                if no_print && next_adjacent('!') && !in_obs_module(items, k, fname) =>
            {
                push(
                    &mut diags,
                    &mut seen,
                    t,
                    "printf-debug",
                    "print macro in a simulation hot path; diagnostics go through \
                     the tracer / obs module, not stdout"
                        .to_string(),
                )
            }
            "f32" | "f64" if is_event_loop => push(
                &mut diags,
                &mut seen,
                t,
                "float-event-loop",
                "float arithmetic in the event loop drifts across platforms; \
                 the calendar is integer nanoseconds only"
                    .to_string(),
            ),
            "as" if cast_scope
                && k + 1 < toks.len()
                && toks[k + 1].kind == TokKind::Ident
                && INT_CAST_TARGETS.contains(&toks[k + 1].text(content)) =>
            {
                push(
                    &mut diags,
                    &mut seen,
                    t,
                    "lossy-cast",
                    format!(
                        "`as {}` silently truncates in an event-loop file; use \
                         try_from/from, or justify with a comment and \
                         lint:allow(lossy-cast)",
                        toks[k + 1].text(content)
                    ),
                )
            }
            _ => {}
        }
    }

    if in_experiments {
        diags.extend(check_sweep_routing(rel, content, lexed, items, &allows));
    }

    diags.sort_by(|a, b| (a.line, a.column, a.rule).cmp(&(b.line, b.column, b.rule)));
    diags
}

/// Is the token at index `k` inside an observability module? True when
/// the file itself is `obs.rs` or the enclosing function's module path
/// (file stem + inline `mod` names) contains `obs`.
fn in_obs_module(items: &[FnItem], k: usize, fname: &str) -> bool {
    if fname == "obs.rs" {
        return true;
    }
    // Innermost function whose body token range contains k.
    items
        .iter()
        .filter(|it| it.body.is_some_and(|(open, close)| k > open && k < close))
        .max_by_key(|it| it.tok_start)
        .is_some_and(|it| it.module.iter().any(|m| m == "obs"))
}

/// Every public sweep entry point (a `pub fn` whose name contains
/// `sweep` or `ladder`) must route through the deterministic runner:
/// its signature or body must mention `SweepRunner`, or it must call
/// another `*sweep*` function that does.
fn check_sweep_routing(
    rel: &Path,
    content: &str,
    lexed: &Lexed,
    items: &[FnItem],
    allows: &[(usize, String)],
) -> Vec<Diagnostic> {
    let toks = &lexed.tokens;
    let mut diags = Vec::new();
    for item in items {
        if !item.is_pub || !(item.name.contains("sweep") || item.name.contains("ladder")) {
            continue;
        }
        let span_end = item.body.map(|(_, close)| close).unwrap_or(item.tok_start);
        let mentions_runner = toks[item.tok_start..=span_end.min(toks.len() - 1)]
            .iter()
            .any(|t| t.is_ident(content, "SweepRunner"));
        let (calls, _) = extract(content, toks, item, items);
        let delegates = calls
            .iter()
            .any(|c: &CallSite| c.name.contains("sweep") && c.name != item.name);
        if mentions_runner || delegates || allowed(allows, "sweep-routing", item.line) {
            continue;
        }
        diags.push(Diagnostic {
            path: rel.to_path_buf(),
            line: item.line,
            column: toks[item.tok_start].col,
            rule: "sweep-routing",
            message: format!(
                "pub fn {} does not route through SweepRunner; all sweeps \
                 go through the deterministic runner",
                item.name
            ),
            chain: Vec::new(),
        });
    }
    diags
}

/// The timer-float pass: compute the timer set (declared entry points
/// plus dominator closure over `crates/tcp`) and flag any float type or
/// literal inside a member function's extent.
fn check_timer_floats(
    files: &[FileData],
    nodes: &[FnNode],
    node_loc: &[(usize, usize)],
    callers: &[Vec<usize>],
) -> Vec<Diagnostic> {
    let mut in_set: Vec<bool> = nodes
        .iter()
        .map(|n| n.crate_name == "tcp" && TIMER_ENTRY_FNS.contains(&n.item.name.as_str()))
        .collect();

    // Dominator closure: a tcp function with at least one caller, all of
    // whose callers are already timer functions, is itself part of the
    // retransmission clock — whatever its name.
    loop {
        let mut changed = false;
        for (id, node) in nodes.iter().enumerate() {
            if in_set[id] || node.crate_name != "tcp" {
                continue;
            }
            let cs = &callers[id];
            if !cs.is_empty() && cs.iter().all(|&c| in_set[c]) {
                in_set[id] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut diags = Vec::new();
    for (id, node) in nodes.iter().enumerate() {
        if !in_set[id] {
            continue;
        }
        let Some((_, close)) = node.item.body else {
            continue;
        };
        let (fi, _) = node_loc[id];
        let f = &files[fi];
        let toks = &f.lexed.tokens;
        let allows = allows_of(&f.lexed);
        // Skip tokens belonging to items nested inside this function —
        // they are graph nodes of their own.
        let nested: Vec<(usize, usize)> = f
            .items
            .iter()
            .filter(|it| it.tok_start > node.item.tok_start && it.tok_start < close)
            .map(|it| {
                (
                    it.tok_start,
                    it.body.map(|(_, c)| c).unwrap_or(it.tok_start),
                )
            })
            .collect();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let end = close.min(toks.len() - 1);
        for (k, &t) in toks
            .iter()
            .enumerate()
            .take(end + 1)
            .skip(node.item.tok_start)
        {
            if nested.iter().any(|&(s, e)| k >= s && k <= e) {
                continue;
            }
            let is_float = t.kind == TokKind::Float
                || (t.kind == TokKind::Ident && matches!(t.text(&f.content), "f32" | "f64"));
            if !is_float || allowed(&allows, "float-event-loop", t.line) || !seen.insert(t.line) {
                continue;
            }
            diags.push(Diagnostic {
                path: f.rel.clone(),
                line: t.line,
                column: t.col,
                rule: "float-event-loop",
                message: format!(
                    "float arithmetic in timer entry point `{}`; the \
                     retransmission clock is integer nanoseconds only",
                    node.item.name
                ),
                chain: Vec::new(),
            });
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_rule_scopes_to_hot_path_crates() {
        let code = "pub fn f(v: &[u8]) -> u8 { *v.first().unwrap() }\n";
        let sim = lint_file(Path::new("crates/sim/src/x.rs"), "sim", code);
        assert_eq!(sim.len(), 1);
        assert_eq!(sim[0].rule, "unwrap");
        let core = lint_file(Path::new("crates/core/src/x.rs"), "core", code);
        assert!(
            core.is_empty(),
            "unwrap is allowed outside sim/tcp: {core:?}"
        );
    }

    #[test]
    fn allow_on_preceding_line_suppresses() {
        let code = "// lint:allow(unwrap)\npub fn f(v: &[u8]) -> u8 { *v.first().unwrap() }\n";
        let d = lint_file(Path::new("crates/sim/src/x.rs"), "sim", code);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn banned_tokens_in_comments_and_strings_do_not_fire() {
        let code = "// Instant::now() HashMap\nfn f() { let s = \"SystemTime\"; }\n";
        let d = lint_file(Path::new("crates/sim/src/x.rs"), "sim", code);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn columns_point_at_the_offending_token() {
        let code = "fn f() { let t = Instant::now(); }\n";
        let d = lint_file(Path::new("crates/sim/src/x.rs"), "sim", code);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[0].column, 18);
        let s = d[0].to_string();
        assert!(s.contains("x.rs:1:18: [wall-clock]"), "{s}");
    }

    #[test]
    fn float_rule_fires_in_the_event_loop_files_only() {
        let code = "pub struct S { t: f64 }\nconst K: u64 = 1;\nfn f() -> u64 { 2 }\n";
        let d = lint_file(Path::new("crates/sim/src/engine.rs"), "sim", code);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "float-event-loop");
        let d = lint_file(Path::new("crates/sim/src/calendar.rs"), "sim", code);
        assert_eq!(d.len(), 1, "the calendar is float-banned too: {d:?}");
        let d = lint_file(Path::new("crates/sim/src/stats.rs"), "sim", code);
        assert!(d.is_empty(), "floats are fine outside the calendar: {d:?}");
    }

    #[test]
    fn float_literals_count_as_floats_in_the_event_loop() {
        let code = "fn f() -> u64 { let x = 0.875; 1 }\n";
        let d = lint_file(Path::new("crates/sim/src/engine.rs"), "sim", code);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "float-event-loop");
    }

    #[test]
    fn lossy_cast_fires_on_int_targets_in_event_loop_files() {
        let code = "fn f(x: u64) -> usize { x as usize }\n";
        for file in ["engine.rs", "calendar.rs", "time.rs"] {
            let d = lint_file(Path::new(&format!("crates/sim/src/{file}")), "sim", code);
            assert!(d.iter().any(|x| x.rule == "lossy-cast"), "{file}: {d:?}");
        }
        // Not in scope: other sim files, other crates, float targets.
        let d = lint_file(Path::new("crates/sim/src/stats.rs"), "sim", code);
        assert!(d.is_empty(), "{d:?}");
        let float = "fn f(x: u64) -> f64 { x as f64 }\n";
        let d = lint_file(Path::new("crates/sim/src/time.rs"), "sim", float);
        assert!(
            d.is_empty(),
            "float-destination casts are not lossy-cast: {d:?}"
        );
    }

    #[test]
    fn lossy_cast_respects_allow_with_justification() {
        let code = "fn f(x: u64) -> usize {\n    // bounded by the wheel mask\n    \
                    x as usize // lint:allow(lossy-cast)\n}\n";
        let d = lint_file(Path::new("crates/sim/src/calendar.rs"), "sim", code);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn printf_exemption_is_module_scoped_not_file_named() {
        // An inline `mod obs` exempts its functions; code outside it in
        // the same file still fires.
        let code = "pub mod obs {\n    pub fn dump() { println!(\"ok\"); }\n}\n\
                    pub fn stray() { println!(\"bad\"); }\n";
        let d = lint_file(Path::new("crates/net/src/telemetry.rs"), "net", code);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "printf-debug");
        assert_eq!(d[0].line, 4);
        // A file named obs.rs is exempt wholesale.
        let d = lint_file(Path::new("crates/net/src/obs.rs"), "net", code);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn sweep_routing_flags_unrouted_pub_fns() {
        let bad = "pub fn buffer_sweep(xs: &[u64]) -> Vec<u64> {\n    xs.to_vec()\n}\n";
        let d = lint_file(Path::new("crates/core/src/experiments/x.rs"), "core", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "sweep-routing");
        assert_eq!(d[0].line, 1);

        let routed = "pub fn buffer_sweep(r: SweepRunner) -> Vec<u64> { vec![] }\n";
        let d = lint_file(
            Path::new("crates/core/src/experiments/x.rs"),
            "core",
            routed,
        );
        assert!(d.is_empty(), "{d:?}");

        let delegating =
            "pub fn ladder(xs: &[u64]) -> Vec<u64> {\n    buffer_sweep_report(xs)\n}\n";
        let d = lint_file(
            Path::new("crates/core/src/experiments/x.rs"),
            "core",
            delegating,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn sweep_routing_ignores_mod_rs_and_other_crates() {
        let bad = "pub fn buffer_sweep(xs: &[u64]) -> Vec<u64> { xs.to_vec() }\n";
        let d = lint_file(Path::new("crates/core/src/experiments/mod.rs"), "core", bad);
        assert!(d.is_empty());
        let d = lint_file(Path::new("crates/core/src/lab/mod.rs"), "core", bad);
        assert!(d.is_empty());
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(
            json_string_array(&["x".to_string(), "y\"z".to_string()]),
            "[\"x\", \"y\\\"z\"]"
        );
    }

    #[test]
    fn findings_json_shape_is_stable() {
        let mut report = LintReport::default();
        assert_eq!(report.findings_json(), "{\n  \"findings\": []\n}\n");
        report.diagnostics.push(Diagnostic {
            path: PathBuf::from("crates/sim/src/x.rs"),
            line: 3,
            column: 7,
            rule: "wall-clock",
            message: "msg".to_string(),
            chain: vec!["a".to_string(), "b".to_string()],
        });
        let j = report.findings_json();
        assert!(j.contains("\"path\": \"crates/sim/src/x.rs\""), "{j}");
        assert!(j.contains("\"line\": 3"), "{j}");
        assert!(j.contains("\"chain\": [\"a\", \"b\"]"), "{j}");
    }
}
