//! Determinism taint propagation over the workspace call graph.
//!
//! The lattice has two points — clean and tainted — and taint flows
//! *backwards*: a function is tainted if its body touches a
//! nondeterminism source directly, or if any call it makes can resolve to
//! a tainted function. A `lint:trusted(reason)` marker on a function is a
//! reviewed boundary: that function never becomes tainted, neither from
//! its own body nor from its callees, so taint cannot cross it.
//!
//! The pass then checks every declared hot-path root (the event loop, the
//! calendar, the TCP entry points, the link-layer transmit paths, the
//! sweep workers). A tainted root is a CI failure, reported with the full
//! call chain down to the source; a clean root is recorded in
//! `roots_proven` so the proof is visible in the JSON output.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;

use crate::callgraph::{CallKind, CallSite, SourceHit};
use crate::parse::FnItem;
use crate::Diagnostic;

/// The hot-path roots whose cleanliness the build guarantees: every
/// function that runs per-event, per-segment, or per-frame during a
/// sweep. Qualified names, matched against `Type::method` exactly.
pub const HOT_PATH_ROOTS: &[&str] = &[
    // Event loop.
    "Engine::run",
    "Engine::run_until",
    "Engine::advance_to",
    "Engine::step",
    // Calendar queue, including the timing wheel behind it.
    "Calendar::schedule",
    "Calendar::schedule_timer",
    "Calendar::cancel",
    "Calendar::peek_time",
    "Calendar::pop",
    "Calendar::advance_now_to",
    // TCP segment/timer/app entry points.
    "TcpConn::on_segment",
    "TcpConn::on_segment_into",
    "TcpConn::on_timer",
    "TcpConn::on_timer_into",
    "TcpConn::on_app_write",
    "TcpConn::on_app_write_into",
    "TcpConn::on_app_read",
    "TcpConn::on_app_read_into",
    // Link-layer transmit paths.
    "HopState::offer",
    "HopState::offer_verdict",
    "PathState::send",
    "PathState::send_verdict",
    // Sweep workers.
    "SweepRunner::run",
    "SweepRunner::run_split",
    // Sharded-execution merge loop and the cross-shard ingress channel
    // (window computation, barrier rounds, message drain): nondeterminism
    // here would break the grid byte-identity contract across shard
    // counts, not just across runs.
    "run_sharded",
    "GridShard::accept",
    "ingress_drain",
    // The wall-time profiling variant of the merge loop: it may touch
    // the host clock only through the single `lint:trusted(profiling
    // boundary)` read (`wall_now_ns`), so the root must still prove
    // clean — any other clock read inside the accounting is a failure.
    "run_sharded_wall",
    // Open-loop workload plane: the arrival-schedule builder consumes
    // the forked RNG stream flow by flow (a stray entropy or clock read
    // would shift every arrival after it), and FCT recording runs once
    // per flow completion inside the measurement path.
    "build_schedule",
    "FctStats::record",
];

/// One function in the workspace call graph: its parsed item plus the
/// call sites and source hits extracted from its body.
#[derive(Debug)]
pub struct FnNode {
    /// Path of the file the function lives in, relative to the root.
    pub path: PathBuf,
    /// Workspace crate the file belongs to (`sim`, `tcp`, …).
    pub crate_name: String,
    /// The parsed item.
    pub item: FnItem,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// Direct nondeterminism sources in the body.
    pub hits: Vec<SourceHit>,
}

/// The result of the taint pass.
#[derive(Debug, Default)]
pub struct TaintOutcome {
    /// One finding per tainted hot-path root (plus marker hygiene
    /// findings such as an empty `lint:trusted` reason).
    pub findings: Vec<Diagnostic>,
    /// Qualified names of roots found in the tree and proven clean.
    pub roots_proven: Vec<String>,
    /// Qualified names of declared roots not found in the tree (a root
    /// list typo, or a rename the list hasn't caught up with).
    pub roots_missing: Vec<String>,
}

/// Why a function is tainted: either a direct source, or the first hop
/// of a path toward one.
#[derive(Clone)]
enum Cause {
    Direct(String),
    Via(usize),
}

/// Build the reverse call graph: `callers_of[id]` lists every node with
/// a call site resolving to node `id`. Resolution is name-based and
/// over-approximate (see the module docs of [`crate::callgraph`]).
pub fn build_callers(nodes: &[FnNode]) -> Vec<Vec<usize>> {
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_qname: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, node) in nodes.iter().enumerate() {
        by_qname.entry(&node.item.qname).or_default().push(id);
        if node.item.qname.contains("::") {
            methods_by_name.entry(&node.item.name).or_default().push(id);
        } else {
            free_by_name.entry(&node.item.name).or_default().push(id);
        }
    }

    let resolve = |call: &CallSite| -> Vec<usize> {
        match &call.kind {
            CallKind::Free => free_by_name
                .get(call.name.as_str())
                .cloned()
                .unwrap_or_default(),
            CallKind::Method => methods_by_name
                .get(call.name.as_str())
                .cloned()
                .unwrap_or_default(),
            CallKind::Qualified(q) => {
                let qn = format!("{q}::{}", call.name);
                let direct = by_qname.get(qn.as_str()).cloned().unwrap_or_default();
                if !direct.is_empty() {
                    return direct;
                }
                // `crate::helper(...)`, `self::helper(...)`, or a module
                // path like `util::helper(...)`: resolve as a free fn.
                let modlike = matches!(q.as_str(), "crate" | "self" | "super")
                    || q.chars().next().is_some_and(|c| c.is_lowercase());
                if modlike {
                    free_by_name
                        .get(call.name.as_str())
                        .cloned()
                        .unwrap_or_default()
                } else {
                    Vec::new()
                }
            }
        }
    };

    let mut callers_of: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (caller, node) in nodes.iter().enumerate() {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        for call in &node.calls {
            for callee in resolve(call) {
                if callee != caller && seen.insert(callee) {
                    callers_of[callee].push(caller);
                }
            }
        }
    }
    callers_of
}

/// Run the taint pass over all workspace function nodes. `callers_of`
/// is the reverse call graph from [`build_callers`].
pub fn analyze(nodes: &[FnNode], callers_of: &[Vec<usize>]) -> TaintOutcome {
    let mut out = TaintOutcome::default();

    // Marker hygiene: a trusted boundary with no reason is unreviewable.
    for node in nodes {
        if let Some(reason) = &node.item.trusted {
            if reason.is_empty() {
                out.findings.push(Diagnostic {
                    path: node.path.clone(),
                    line: node.item.line,
                    column: 1,
                    rule: "taint",
                    message: format!(
                        "lint:trusted on `{}` has an empty reason; state what was reviewed",
                        node.item.qname
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }

    // Root lookup needs qualified names.
    let mut by_qname: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, node) in nodes.iter().enumerate() {
        by_qname.entry(&node.item.qname).or_default().push(id);
    }

    // Seed: directly tainted functions (untrusted, body touches a source).
    let mut cause: Vec<Option<Cause>> = vec![None; nodes.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (id, node) in nodes.iter().enumerate() {
        if node.item.trusted.is_some() {
            continue;
        }
        if let Some(hit) = node.hits.first() {
            cause[id] = Some(Cause::Direct(hit.what.clone()));
            queue.push_back(id);
        }
    }

    // Reverse BFS: taint flows to callers, stopping at trusted nodes.
    while let Some(id) = queue.pop_front() {
        for &caller in &callers_of[id] {
            if cause[caller].is_some() || nodes[caller].item.trusted.is_some() {
                continue;
            }
            cause[caller] = Some(Cause::Via(id));
            queue.push_back(caller);
        }
    }

    // Check every declared root.
    for &root in HOT_PATH_ROOTS {
        let ids = by_qname.get(root).cloned().unwrap_or_default();
        if ids.is_empty() {
            out.roots_missing.push(root.to_string());
            continue;
        }
        let mut clean = true;
        for id in ids {
            if cause[id].is_none() {
                continue;
            }
            clean = false;
            let chain = chain_for(nodes, &cause, id);
            let node = &nodes[id];
            out.findings.push(Diagnostic {
                path: node.path.clone(),
                line: node.item.line,
                column: 1,
                rule: "taint",
                message: format!(
                    "hot-path root `{root}` can reach a nondeterminism source: {}",
                    chain.join(" -> ")
                ),
                chain,
            });
        }
        if clean {
            out.roots_proven.push(root.to_string());
        }
    }

    out
}

/// Reconstruct the call chain from a tainted function down to its source.
fn chain_for(nodes: &[FnNode], cause: &[Option<Cause>], start: usize) -> Vec<String> {
    let mut chain = vec![nodes[start].item.qname.clone()];
    let mut cur = start;
    let mut guard = 0usize;
    loop {
        match &cause[cur] {
            Some(Cause::Via(next)) => {
                chain.push(nodes[*next].item.qname.clone());
                cur = *next;
            }
            Some(Cause::Direct(what)) => {
                chain.push(what.clone());
                break;
            }
            None => break,
        }
        guard += 1;
        if guard > nodes.len() + 1 {
            break; // cycle safety; causes form a DAG, but stay total
        }
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::extract;
    use crate::lex::lex;
    use crate::parse::parse_items;

    fn nodes_from(files: &[(&str, &str, &str)]) -> Vec<FnNode> {
        // (crate, stem, src)
        let mut nodes = Vec::new();
        for (krate, stem, src) in files {
            let lexed = lex(src);
            let items = parse_items(src, &lexed, stem);
            for item in &items {
                let (calls, hits) = extract(src, &lexed.tokens, item, &items);
                nodes.push(FnNode {
                    path: PathBuf::from(format!("crates/{krate}/src/{stem}.rs")),
                    crate_name: (*krate).to_string(),
                    item: item.clone(),
                    calls,
                    hits,
                });
            }
        }
        nodes
    }

    fn run(nodes: &[FnNode]) -> TaintOutcome {
        analyze(nodes, &build_callers(nodes))
    }

    #[test]
    fn two_layer_taint_reaches_a_root_across_crates() {
        let nodes = nodes_from(&[
            (
                "tcp",
                "conn",
                "impl TcpConn { pub fn on_segment(&mut self) { shard_hint(); } }\n\
                 fn shard_hint() -> u64 { thread_tag() }",
            ),
            (
                "hw",
                "clocked",
                "pub fn thread_tag() -> u64 { thread::current(); 0 }",
            ),
        ]);
        let out = run(&nodes);
        assert_eq!(out.findings.len(), 1);
        let f = &out.findings[0];
        assert_eq!(f.rule, "taint");
        assert_eq!(
            f.chain,
            vec![
                "TcpConn::on_segment",
                "shard_hint",
                "thread_tag",
                "thread::current"
            ]
        );
        assert!(!out
            .roots_proven
            .contains(&"TcpConn::on_segment".to_string()));
    }

    #[test]
    fn trusted_boundary_cuts_propagation() {
        let nodes = nodes_from(&[(
            "core",
            "sweep",
            "impl SweepRunner { pub fn run(&self) { pool_size(); } }\n\
             // lint:trusted(pool sizing only, order restored downstream)\n\
             fn pool_size() -> usize { thread::available_parallelism(); 1 }",
        )]);
        let out = run(&nodes);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert!(out.roots_proven.contains(&"SweepRunner::run".to_string()));
    }

    #[test]
    fn empty_trusted_reason_is_a_finding() {
        let nodes = nodes_from(&[(
            "sim",
            "util",
            "// lint:trusted()\nfn q() { thread::current(); }",
        )]);
        let out = run(&nodes);
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].message.contains("empty reason"));
    }

    #[test]
    fn missing_roots_are_reported_not_silently_proven() {
        let out = run(&nodes_from(&[("sim", "x", "fn unrelated() {}")]));
        assert!(out.roots_proven.is_empty());
        assert_eq!(out.roots_missing.len(), HOT_PATH_ROOTS.len());
    }

    #[test]
    fn method_calls_over_approximate_across_types() {
        // `.helper()` resolves to every method named helper — including a
        // tainted one on another type. Over-approximation keeps the proof
        // sound.
        let nodes = nodes_from(&[(
            "sim",
            "engine",
            "impl Engine { pub fn run(&mut self) { self.helper(); } }\n\
             impl Other { fn helper(&self) { Instant::now(); } }",
        )]);
        let out = run(&nodes);
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].chain.contains(&"Other::helper".to_string()));
    }

    #[test]
    fn recursion_terminates() {
        let nodes = nodes_from(&[(
            "sim",
            "engine",
            "impl Engine { pub fn step(&mut self) { self.step(); tick(); } }\n\
             fn tick() { tock() }\nfn tock() { tick() }",
        )]);
        let out = run(&nodes);
        assert!(out.findings.is_empty());
        assert!(out.roots_proven.contains(&"Engine::step".to_string()));
    }
}
