//! Call-site and nondeterminism-source extraction from function bodies.
//!
//! For each parsed [`FnItem`](crate::parse::FnItem) this module walks the
//! body's token range and records two things: every call that could be an
//! edge in the workspace call graph, and every direct appearance of a
//! nondeterminism source (wall clocks, OS entropy, hash-order iteration,
//! env/fs/thread-identity reads). The taint pass combines the two.
//!
//! Call resolution is name-based — this is a linter, not a compiler — so
//! the edges are an over-approximation: a method call `.run(` matches
//! every workspace method named `run`. Over-approximation is the safe
//! direction for a reachability proof (it can only produce false
//! positives, never miss a real path); the `lint:trusted` escape hatch
//! exists for the false positives a human has reviewed.

use crate::lex::{TokKind, Token};
use crate::parse::FnItem;

/// How a call site was written, which constrains how it resolves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(...)` — resolves against free functions.
    Free,
    /// `recv.name(...)` — resolves against methods of any type.
    Method,
    /// `Qual::name(...)` — resolves against `Qual`'s methods; falls back
    /// to free functions when `Qual` is a path keyword or module name.
    Qualified(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// How the call was written.
    pub kind: CallKind,
    /// The called name.
    pub name: String,
    /// 1-based line of the call.
    pub line: usize,
}

/// One direct nondeterminism source appearing in a function body.
#[derive(Debug, Clone)]
pub struct SourceHit {
    /// Human-readable description of the source (`Instant::now`,
    /// `HashMap`, `thread::current`, …).
    pub what: String,
    /// 1-based line of the appearance.
    pub line: usize,
}

/// Type identifiers whose mere appearance marks a source: constructors
/// and types that carry wall-clock or hash-order nondeterminism.
const SOURCE_TYPES: &[&str] = &[
    "Instant",
    "SystemTime",
    "HashMap",
    "HashSet",
    "RandomState",
    "OsRng",
    "ThreadRng",
];

/// Function names that are sources wherever they appear, however called.
const SOURCE_FNS: &[&str] = &["thread_rng", "from_entropy", "getrandom", "random"];

/// `qual::name` pairs that are sources only in qualified position —
/// `var` alone is a common local name; `env::var` is an environment read.
const SOURCE_QUALIFIED: &[(&str, &str)] = &[
    ("env", "var"),
    ("env", "var_os"),
    ("env", "vars"),
    ("env", "vars_os"),
    ("thread", "current"),
    ("thread", "available_parallelism"),
];

/// Module quals that are wholesale sources: any `fs::…` is a filesystem
/// read and any `rand::…` is the RNG crate's ambient entropy surface.
const SOURCE_QUALS: &[&str] = &["fs", "rand"];

/// Extract the call sites and source hits from `item`'s body. Bodies of
/// functions nested inside `item` are excluded — they are items of their
/// own and get their own row in the call graph.
pub fn extract(
    src: &str,
    toks: &[Token],
    item: &FnItem,
    all: &[FnItem],
) -> (Vec<CallSite>, Vec<SourceHit>) {
    let Some((open, close)) = item.body else {
        return (Vec::new(), Vec::new());
    };

    // Token ranges of nested fn bodies, to skip.
    let nested: Vec<(usize, usize)> = all
        .iter()
        .filter(|f| f.tok_start > open && f.tok_start < close)
        .filter_map(|f| f.body)
        .collect();
    let in_nested = |k: usize| nested.iter().any(|&(o, c)| k > o && k < c);

    let mut calls = Vec::new();
    let mut hits = Vec::new();

    let mut k = open + 1;
    while k < close {
        if in_nested(k) {
            k += 1;
            continue;
        }
        let t = toks[k];
        if t.kind != TokKind::Ident {
            k += 1;
            continue;
        }
        let word = t.text(src);

        // Source hits by identifier class.
        if SOURCE_TYPES.contains(&word) {
            hits.push(SourceHit {
                what: word.to_string(),
                line: t.line,
            });
        } else if SOURCE_FNS.contains(&word) {
            hits.push(SourceHit {
                what: format!("{word}()"),
                line: t.line,
            });
        } else if let Some(q) = qualifier(src, toks, k) {
            if SOURCE_QUALIFIED
                .iter()
                .any(|&(sq, sn)| sq == q && sn == word)
                || SOURCE_QUALS.contains(&q)
            {
                hits.push(SourceHit {
                    what: format!("{q}::{word}"),
                    line: t.line,
                });
            }
        }

        // Call sites: Ident immediately followed by `(`; macros are
        // `Ident !` and thus excluded here.
        if k + 1 < close && toks[k + 1].is_punct('(') {
            let kind = if is_path_sep(toks, k.saturating_sub(2), k) {
                match qualifier(src, toks, k) {
                    Some(q) => CallKind::Qualified(q.to_string()),
                    None => CallKind::Free,
                }
            } else if k > 0 && toks[k - 1].is_punct('.') {
                CallKind::Method
            } else if k > 0 && toks[k - 1].kind == TokKind::Ident && toks[k - 1].text(src) == "fn" {
                // `fn name(` of a nested item header — not a call.
                k += 1;
                continue;
            } else {
                CallKind::Free
            };
            calls.push(CallSite {
                kind,
                name: word.to_string(),
                line: t.line,
            });
        }

        k += 1;
    }

    (calls, hits)
}

/// Is the token pair at (`a`, `a+1`) a `::` immediately preceding token
/// `at`? (i.e. `toks[at]` is the right side of a path segment.)
fn is_path_sep(toks: &[Token], a: usize, at: usize) -> bool {
    at >= 2
        && toks[a].is_punct(':')
        && toks[a + 1].is_punct(':')
        && toks[a].end == toks[a + 1].start
        && toks[a + 1].end == toks[at].start
}

/// The identifier immediately left of `::` when `toks[at]` is the right
/// side of a path segment: for `env::var`, `qualifier` of `var` is `env`.
fn qualifier<'a>(src: &'a str, toks: &[Token], at: usize) -> Option<&'a str> {
    if at >= 3 && is_path_sep(toks, at - 2, at) && toks[at - 3].kind == TokKind::Ident {
        Some(toks[at - 3].text(src))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::parse::parse_items;

    fn one(src: &str) -> (Vec<CallSite>, Vec<SourceHit>) {
        let lexed = lex(src);
        let items = parse_items(src, &lexed, "test");
        extract(src, &lexed.tokens, &items[0], &items)
    }

    #[test]
    fn free_method_and_qualified_calls_are_classified() {
        let (calls, _) = one("fn f() { helper(); self.step(); Engine::run(e); }");
        assert_eq!(calls.len(), 3);
        assert_eq!(calls[0].kind, CallKind::Free);
        assert_eq!(calls[0].name, "helper");
        assert_eq!(calls[1].kind, CallKind::Method);
        assert_eq!(calls[1].name, "step");
        assert_eq!(calls[2].kind, CallKind::Qualified("Engine".to_string()));
        assert_eq!(calls[2].name, "run");
    }

    #[test]
    fn macros_are_not_calls() {
        let (calls, _) = one("fn f() { println!(\"x\"); assert_eq!(1, 1); real(); }");
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn source_types_and_qualified_sources_are_hit() {
        let (_, hits) = one(
            "fn f() { let t = Instant::now(); let m: HashMap<u32, u32>; \
             let v = env::var(\"X\"); let id = thread::current(); }",
        );
        let whats: Vec<&str> = hits.iter().map(|h| h.what.as_str()).collect();
        assert!(whats.contains(&"Instant"));
        assert!(whats.contains(&"HashMap"));
        assert!(whats.contains(&"env::var"));
        assert!(whats.contains(&"thread::current"));
    }

    #[test]
    fn bare_var_is_not_a_source() {
        let (_, hits) = one("fn f() { let var = 1; current(); vars.push(2); }");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn fs_and_rand_quals_are_wholesale_sources() {
        let (_, hits) = one("fn f() { fs::read(\"p\"); rand::rngs::thing(); }");
        let whats: Vec<&str> = hits.iter().map(|h| h.what.as_str()).collect();
        assert!(whats.contains(&"fs::read"));
        assert!(whats.contains(&"rand::rngs"));
    }

    #[test]
    fn strings_and_comments_never_hit() {
        let (_, hits) = one("fn f() { let s = \"Instant HashMap\"; /* SystemTime */ let x = 1; }");
        assert!(hits.is_empty());
    }

    #[test]
    fn nested_fn_bodies_are_excluded_from_the_outer_fn() {
        let src = "fn outer() { fn inner() { thread_rng(); } inner(); }";
        let lexed = lex(src);
        let items = parse_items(src, &lexed, "test");
        let (calls, hits) = extract(src, &lexed.tokens, &items[0], &items);
        assert!(hits.is_empty(), "inner body's source must not leak out");
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["inner"]);
        let (_, inner_hits) = extract(src, &lexed.tokens, &items[1], &items);
        assert_eq!(inner_hits.len(), 1);
    }

    #[test]
    fn crate_qualified_calls_keep_their_qual() {
        let (calls, _) = one("fn f() { crate::util::go(); self::go2(); }");
        assert_eq!(calls[0].kind, CallKind::Qualified("util".to_string()));
        assert_eq!(calls[1].kind, CallKind::Qualified("self".to_string()));
    }
}
