//! `tengig-lint`: walk the workspace and enforce the determinism rules.
//!
//! Usage: `tengig-lint [ROOT]` (default `.`). Exits 1 if any rule fires.

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let report = match tengig_lint::lint_workspace(Path::new(&root)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tengig-lint: cannot read {root}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for d in &report.diagnostics {
        println!("{d}");
    }
    if report.diagnostics.is_empty() {
        eprintln!("tengig-lint: {} files clean", report.files_scanned);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "tengig-lint: {} violation(s) in {} files scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
