//! `tengig-lint`: walk the workspace and enforce the determinism rules.
//!
//! Usage: `tengig-lint [ROOT] [--json] [--rule NAME] [--baseline FILE]`
//! (default root `.`).
//!
//! * `--json` — print the full machine-readable report instead of the
//!   human `file:line:col: [rule] message` lines.
//! * `--rule NAME` — only report findings of one rule (local iteration).
//! * `--baseline FILE` — compare the canonical findings document against
//!   a committed baseline; the run passes iff they are byte-identical.
//!
//! Exit codes: `0` clean (or matching the baseline), `1` findings (or a
//! baseline mismatch), `2` usage or I/O error — so CI can distinguish
//! "the tree is dirty" from "the linter could not run".

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: tengig-lint [ROOT] [--json] [--rule NAME] [--baseline FILE]";

struct Args {
    root: String,
    json: bool,
    rule: Option<String>,
    baseline: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: ".".to_string(),
        json: false,
        rule: None,
        baseline: None,
    };
    let mut it = std::env::args().skip(1);
    let mut root_seen = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--rule" => {
                let name = it.next().ok_or("--rule needs a rule name")?;
                if !tengig_lint::RULES.contains(&name.as_str()) {
                    return Err(format!(
                        "unknown rule `{name}` (known: {})",
                        tengig_lint::RULES.join(", ")
                    ));
                }
                args.rule = Some(name);
            }
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a file path")?);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            root => {
                if root_seen {
                    return Err(format!("unexpected extra argument `{root}`"));
                }
                args.root = root.to_string();
                root_seen = true;
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tengig-lint: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut report = match tengig_lint::lint_workspace(Path::new(&args.root)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tengig-lint: cannot read {}: {e}", args.root);
            return ExitCode::from(2);
        }
    };

    if let Some(rule) = &args.rule {
        report.diagnostics.retain(|d| d.rule == rule);
    }

    if args.json {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
    }

    if let Some(path) = &args.baseline {
        let expected = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tengig-lint: cannot read baseline {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let actual = report.findings_json();
        if actual == expected {
            eprintln!(
                "tengig-lint: findings match baseline {path} ({} finding(s), {} roots proven)",
                report.diagnostics.len(),
                report.roots_proven.len()
            );
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "tengig-lint: findings diverge from baseline {path}; \
             regenerate it deliberately if the change is intended"
        );
        return ExitCode::FAILURE;
    }

    if report.diagnostics.is_empty() {
        eprintln!(
            "tengig-lint: {} files clean, {} hot-path roots proven source-free",
            report.files_scanned,
            report.roots_proven.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "tengig-lint: {} violation(s) in {} files scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
