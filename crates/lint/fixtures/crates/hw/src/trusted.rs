//! Clean fixture: a reviewed nondeterminism boundary. The environment
//! read below would taint every caller, but the `lint:trusted` marker
//! declares it reviewed — taint stops here and callers stay provable.

// lint:trusted(build banner only; the value never reaches simulation state)
pub fn build_banner() -> u64 {
    if std::env::var_os("TENGIG_BANNER").is_some() {
        1
    } else {
        0
    }
}

pub fn banner_caller() -> u64 {
    build_banner() + 1
}
