//! Fixture helper crate: a thread-identity read two calls below the
//! public surface. `thread_tag` itself looks innocent — the source is
//! one layer further down.

pub fn thread_tag() -> u64 {
    thread_seed()
}

fn thread_seed() -> u64 {
    let _ = std::thread::current();
    7
}
