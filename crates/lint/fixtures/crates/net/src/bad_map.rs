//! Known-bad fixture: hash-ordered containers in the network model.
use std::collections::{HashMap, HashSet};

pub fn tally(keys: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &k in keys {
        seen.insert(k);
        *counts.entry(k).or_insert(0) += 1;
    }
    seen.len() + counts.len()
}
