//! Clean fixture: an impairment model done right — seeded randomness
//! only, no prints, and mentions of banned tokens kept safely inside
//! comments and strings (thread_rng, println!, HashMap).

pub struct Loss {
    p: f64,
}

impl Loss {
    /// Decide a frame's fate from the link's forked `SimRng`.
    pub fn dropped(&self, rng: &mut SimRng) -> bool {
        // A real model would note drops in "println-free" counters.
        let banner = "no println! here, and no thread_rng either";
        let _ = banner;
        rng.chance(self.p)
    }
}
