//! Known-bad fixture: an impairment model with entropy-seeded loss and
//! printf debugging in the per-frame path.

pub fn dropped(p: f64) -> bool {
    let mut rng = rand::thread_rng();
    let hit = rng.gen_bool(p);
    println!("frame dropped: {hit}");
    hit
}
