//! Known-good fixture: sweeps routed through the deterministic runner.

pub struct SweepRunner;

pub fn routed_sweep_report(runner: SweepRunner, xs: &[u64]) -> Vec<u64> {
    let _ = runner;
    xs.to_vec()
}

pub fn routed_sweep(xs: &[u64]) -> Vec<u64> {
    routed_sweep_report(SweepRunner, xs)
}

pub fn delegating_ladder(xs: &[u64]) -> Vec<u64> {
    routed_sweep(xs)
}
