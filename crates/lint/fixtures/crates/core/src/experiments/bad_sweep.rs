//! Known-bad fixture: a sweep entry point that sidesteps the runner.

pub fn buffer_sweep(buffers: &[u64]) -> Vec<u64> {
    buffers.iter().map(|b| b * 2).collect()
}
