//! Known-bad fixture: entropy-seeded randomness in the TCP model.

pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
