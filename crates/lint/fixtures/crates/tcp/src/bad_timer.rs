//! Mixed fixture for the timer-scoped float rule: floats inside timer
//! entry points (RTO backoff, RTT estimation) must fire, while the same
//! `f64` in ordinary window math must not — the rule is scoped to the
//! retransmission-clock functions, not the whole crate.

pub struct Conn {
    rto_ns: u64,
    backoff: u32,
    srtt_ns: u64,
}

impl Conn {
    pub fn arm_rto(&mut self) -> u64 {
        // The classic bug: float scaling of the backed-off RTO.
        (self.rto_ns as f64 * (1u64 << self.backoff) as f64) as u64
    }

    fn rtt_sample(&mut self, sample_ns: u64) {
        self.srtt_ns = ((self.srtt_ns as f64) * 0.875 + (sample_ns as f64) * 0.125) as u64;
    }

    pub fn window_fraction(&self) -> f64 {
        // Floats outside the timer machinery are fine.
        1.0 - 1.0 / 4.0
    }
}
