//! Mixed fixture for the timer-scoped float rule: floats inside timer
//! entry points (RTT estimation) and inside private helpers reachable
//! only from timer entry points (the dominator closure) must fire,
//! while the same `f64` in ordinary window math must not — the scope is
//! true function extents, not name-substring matching.

pub struct Conn {
    rto_ns: u64,
    backoff: u32,
    srtt_ns: u64,
}

impl Conn {
    pub fn arm_rto(&mut self) -> u64 {
        backoff_scale(self.rto_ns, self.backoff)
    }

    fn rtt_sample(&mut self, sample_ns: u64) {
        self.srtt_ns = ((self.srtt_ns as f64) * 0.875 + (sample_ns as f64) * 0.125) as u64;
    }

    pub fn window_fraction(&self) -> f64 {
        // Floats outside the timer machinery are fine.
        1.0 - 1.0 / 4.0
    }
}

/// Only `arm_rto` calls this, so the dominator closure pulls it into the
/// timer set — no timer-ish substring in its name required.
fn backoff_scale(rto_ns: u64, backoff: u32) -> u64 {
    // The classic bug: float scaling of the backed-off RTO.
    (rto_ns as f64 * (1u64 << backoff) as f64) as u64
}
