//! Known-bad fixture: a hot-path root that reaches a thread-identity
//! read two calls deep, through a helper crate (`hw/src/clocked.rs`).
//! No single line here trips a per-line rule — only the transitive
//! taint pass can see the path.

pub struct TcpConn {
    shard: u64,
}

impl TcpConn {
    pub fn on_segment(&mut self, seq: u64) -> u64 {
        self.shard = shard_hint();
        seq.wrapping_add(self.shard)
    }
}

fn shard_hint() -> u64 {
    thread_tag()
}
