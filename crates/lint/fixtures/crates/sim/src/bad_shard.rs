//! Known-bad fixture: a shard worker that reads the wall clock mid-window.

/// The shard merge loop root (mirrors `tengig_sim::shard::run_sharded`).
pub fn run_sharded(windows: usize) -> u64 {
    let mut total = 0;
    for _ in 0..windows {
        total += worker_window();
    }
    total
}

/// One conservative window — except it times itself on the host clock.
fn worker_window() -> u64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs()
}
