//! Clean fixture for the lossy-cast rule: a truncating conversion that
//! is justified with a comment and suppressed with `lint:allow`.

pub fn to_slot(expiry: u64) -> usize {
    // Bounded: masked to the 6-bit slot index before converting.
    (expiry & 63) as usize // lint:allow(lossy-cast)
}
