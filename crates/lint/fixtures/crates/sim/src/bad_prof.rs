//! Known-bad fixture: wall-time profiling accounting that reads the host
//! clock without the sanctioned `lint:trusted` boundary.

/// The profiled shard merge loop root (mirrors
/// `tengig_sim::shard::run_sharded_wall`).
pub fn run_sharded_wall(windows: usize) -> u64 {
    let mut total = 0;
    for _ in 0..windows {
        total += profile_window();
    }
    total
}

/// Barrier/execute accounting — except the clock read is unmarked: no
/// `lint:trusted` boundary, no `lint:allow`, so both the direct rule
/// and the taint proof must fire.
fn profile_window() -> u64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs()
}
