//! Known-bad fixture: a float-keyed event calendar.

pub struct Calendar {
    now: f64,
}

impl Calendar {
    pub fn advance(&mut self, dt: f32) {
        self.now += dt as f64;
    }
}
