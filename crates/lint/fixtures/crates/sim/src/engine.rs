//! Known-bad fixture: a float-keyed event calendar — plus a clean
//! `Engine::run` hot-path root whose only nondeterminism sits behind a
//! `lint:trusted` boundary, so the taint pass can prove it.

pub struct Calendar {
    now: f64,
}

impl Calendar {
    pub fn advance(&mut self, dt: f32) {
        self.now += dt as f64;
    }
}

pub struct Engine {
    ticks: u64,
}

impl Engine {
    pub fn run(&mut self) -> u64 {
        self.ticks += build_tag();
        self.ticks
    }
}

// lint:trusted(build-channel tag; constant per build, reviewed 2026-08)
fn build_tag() -> u64 {
    if std::env::var_os("TENGIG_BUILD_CHANNEL").is_some() {
        1
    } else {
        0
    }
}
