//! Mixed fixture: printf-debug exemption is module-scoped, not
//! file-name-scoped. The inline `mod obs` renders freely; the stray
//! print outside it fires.

pub mod obs {
    pub fn render(count: u64) {
        println!("{count} events");
    }
}

pub fn stray(count: u64) {
    println!("{count} events");
}
