//! Known-bad fixture: unwrap/panic in a hot path, plus one allowed use.

pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

pub fn boom() {
    panic!("no context whatsoever");
}

pub fn allowed(v: &[u64]) -> u64 {
    *v.last().unwrap() // lint:allow(unwrap)
}
