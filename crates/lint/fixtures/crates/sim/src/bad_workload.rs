//! Known-bad fixture: an open-loop arrival-schedule builder that mixes a
//! host-clock read into its gap draws.

/// The workload schedule-builder root (mirrors
/// `tengig_sim::workload::build_schedule`).
pub fn build_schedule(flows: usize) -> u64 {
    let mut at = 0;
    for _ in 0..flows {
        at += jittered_gap();
    }
    at
}

/// The per-flow gap draw — except the "jitter" comes from the wall
/// clock: no `lint:trusted` boundary, no `lint:allow`, so both the
/// direct rule and the taint proof anchored at the root must fire.
fn jittered_gap() -> u64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs()
}
