//! Known-good fixture: every forbidden token appears, but only inside
//! comments, strings, raw strings, and char literals. Instant, HashMap.
/* block comment mentioning SystemTime and thread_rng
   /* nested: OsRng */
   still inside the outer comment: HashSet */

pub fn describe() -> &'static str {
    "Instant HashMap .unwrap() panic! rand::thread_rng f64"
}

pub fn quote_char() -> char {
    '"'
}

pub fn raw() -> &'static str {
    r#"SystemTime "quoted" HashSet from_entropy"#
}

pub fn multiline() -> &'static str {
    "a string with an escaped quote \" and then
     Instant on the continuation line"
}
