//! Known-bad fixture: wall-clock time sources in the simulation.
use std::time::{Instant, SystemTime};

pub fn stamp() -> bool {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    wall.elapsed().is_ok() && t0.elapsed().as_nanos() > 0
}
