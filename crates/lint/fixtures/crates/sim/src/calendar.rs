//! Known-bad fixture: float time in the calendar's timing wheel.

pub struct Wheel {
    horizon: f64,
}

impl Wheel {
    pub fn park(&mut self, at: f32) {
        self.horizon = at as f64;
    }
}
