//! Known-bad fixture: float time in the calendar's timing wheel, plus a
//! truncating slot-index cast for the lossy-cast rule.

pub struct Wheel {
    horizon: f64,
}

impl Wheel {
    pub fn park(&mut self, at: f32) {
        self.horizon = at as f64;
    }

    pub fn slot_of(&self, expiry: u64) -> usize {
        expiry as usize
    }
}
