//! Known-bad: printf debugging in a simulation hot path.

pub fn debug_dump(x: u64) {
    println!("cwnd is now {x}");
    eprintln!("warning: cwnd is {x}");
}
