//! Exemption proof: the observability module is the sanctioned place for
//! human-facing output, so print macros here must NOT be flagged.

pub fn render_flight_dump(events: &[u64]) {
    for e in events {
        println!("trace event {e}");
    }
    eprintln!("{} events dumped", events.len());
}
