//! Self-test: the linter fires on a fixture tree of known-bad snippets
//! and stays silent on the live workspace — where the taint pass must
//! also prove every declared hot-path root source-free.

use std::path::{Path, PathBuf};

use tengig_lint::{lint_workspace, rust_files, taint, Diagnostic};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn diags_for<'a>(diags: &'a [Diagnostic], file: &str) -> Vec<&'a Diagnostic> {
    diags.iter().filter(|d| d.path.ends_with(file)).collect()
}

#[test]
fn fixture_tree_trips_every_rule() {
    let report = lint_workspace(&fixtures_root()).expect("fixture tree readable");
    let d = &report.diagnostics;
    assert!(!d.is_empty(), "the known-bad tree must fail the lint");

    // wall-clock: both the import line and the two use sites.
    let clock = diags_for(d, "bad_clock.rs");
    assert!(clock.iter().all(|x| x.rule == "wall-clock"), "{clock:?}");
    assert!(
        clock.iter().any(|x| x.line == 2),
        "import line flagged: {clock:?}"
    );
    assert!(
        clock.len() >= 3,
        "Instant::now and SystemTime::now flagged: {clock:?}"
    );

    // unwrap: the bare unwrap and the panic!, but NOT the allowed one.
    let unwrap = diags_for(d, "bad_unwrap.rs");
    assert_eq!(
        unwrap.len(),
        2,
        "allowed unwrap must be suppressed: {unwrap:?}"
    );
    assert!(unwrap.iter().all(|x| x.rule == "unwrap"));
    assert!(unwrap.iter().any(|x| x.line == 4), "{unwrap:?}");
    assert!(unwrap.iter().any(|x| x.line == 8), "{unwrap:?}");

    // float-event-loop: file-scoped in the fixture engine.rs and
    // calendar.rs (struct fields, params, casts — one per line).
    let float = diags_for(d, "engine.rs");
    assert_eq!(float.len(), 3, "{float:?}");
    assert!(
        float.iter().all(|x| x.rule == "float-event-loop"),
        "{float:?}"
    );
    let wheel: Vec<_> = diags_for(d, "calendar.rs")
        .into_iter()
        .filter(|x| x.rule == "float-event-loop")
        .collect();
    assert_eq!(wheel.len(), 3, "{wheel:?}");

    // lossy-cast: the truncating slot index in calendar.rs fires; the
    // justified + allowed one in time.rs does not.
    let cast: Vec<_> = diags_for(d, "calendar.rs")
        .into_iter()
        .filter(|x| x.rule == "lossy-cast")
        .collect();
    assert_eq!(cast.len(), 1, "{cast:?}");
    assert_eq!(cast[0].line, 14);
    assert!(cast[0].message.contains("as usize"), "{cast:?}");
    assert!(diags_for(d, "time.rs").is_empty(), "{d:?}");

    // ...and in the TCP timer machinery — by function extent, not name:
    // `rtt_sample` is a declared entry point; `backoff_scale` has no
    // timer-ish substring but its only caller is `arm_rto`, so the
    // dominator closure pulls it in. `window_fraction` stays legal.
    let timer = diags_for(d, "bad_timer.rs");
    assert_eq!(timer.len(), 2, "{timer:?}");
    assert!(
        timer.iter().all(|x| x.rule == "float-event-loop"),
        "{timer:?}"
    );
    assert!(
        timer
            .iter()
            .any(|x| x.line == 19 && x.message.contains("rtt_sample")),
        "{timer:?}"
    );
    assert!(
        timer
            .iter()
            .any(|x| x.line == 32 && x.message.contains("backoff_scale")),
        "closure must reach the helper: {timer:?}"
    );

    // unseeded-rng: rand::thread_rng() — one diagnostic for the line.
    let rng = diags_for(d, "bad_rng.rs");
    assert_eq!(rng.len(), 1, "{rng:?}");
    assert_eq!(rng[0].rule, "unseeded-rng");
    assert_eq!(rng[0].line, 4);

    // map-iteration: import plus declarations.
    let map = diags_for(d, "bad_map.rs");
    assert!(map.len() >= 3, "{map:?}");
    assert!(map.iter().all(|x| x.rule == "map-iteration"));

    // sweep-routing: the runnerless sweep, at its `pub fn` line.
    let sweep = diags_for(d, "bad_sweep.rs");
    assert_eq!(sweep.len(), 1, "{sweep:?}");
    assert_eq!(sweep[0].rule, "sweep-routing");
    assert_eq!(sweep[0].line, 3);
    assert!(sweep[0].message.contains("buffer_sweep"));

    // printf-debug: both print macros, at their own lines.
    let print = diags_for(d, "bad_print.rs");
    assert_eq!(print.len(), 2, "{print:?}");
    assert!(print.iter().all(|x| x.rule == "printf-debug"));
    assert!(print.iter().any(|x| x.line == 4), "{print:?}");
    assert!(print.iter().any(|x| x.line == 5), "{print:?}");

    // ...but the obs/flight-recorder module is exempt: human-facing
    // rendering lives there by design — whether it is a file named
    // obs.rs or an inline `mod obs`. The stray print outside the inline
    // module still fires.
    assert!(diags_for(d, "obs.rs").is_empty(), "{d:?}");
    let inline = diags_for(d, "obs_inline.rs");
    assert_eq!(inline.len(), 1, "{inline:?}");
    assert_eq!(inline[0].rule, "printf-debug");
    assert_eq!(inline[0].line, 12);

    // The net crate's impairment path is print-scoped too: the bad
    // fixture trips exactly unseeded-rng (the entropy-seeded loss
    // process) and printf-debug (the per-frame print), nothing else.
    let impair = diags_for(d, "bad_impair.rs");
    assert_eq!(impair.len(), 2, "{impair:?}");
    assert!(
        impair.iter().any(|x| x.rule == "unseeded-rng"),
        "{impair:?}"
    );
    assert!(
        impair.iter().any(|x| x.rule == "printf-debug"),
        "{impair:?}"
    );
    // ...while the seeded, print-free model sails through, banned tokens
    // in its comments and strings notwithstanding.
    assert!(diags_for(d, "impair.rs").is_empty(), "{d:?}");

    // The shard worker that reads the wall clock mid-window: the direct
    // wall-clock hit on the `Instant::now` line, plus the taint proof
    // anchored at the merge-loop root's declaration — a nondeterminism
    // source inside a shard worker breaks byte-identity across shard
    // counts, so the root list must cover it.
    let shard = diags_for(d, "bad_shard.rs");
    assert_eq!(shard.len(), 2, "{shard:?}");
    assert!(
        shard.iter().any(|x| x.rule == "wall-clock" && x.line == 14),
        "{shard:?}"
    );
    let shard_taint = shard
        .iter()
        .find(|x| x.rule == "taint")
        .expect("merge-loop root must be proven tainted");
    assert_eq!(
        shard_taint.line, 4,
        "finding anchors at run_sharded's declaration"
    );
    assert!(
        shard_taint.chain.iter().any(|c| c == "worker_window"),
        "the proof chain passes through the window worker: {shard_taint:?}"
    );

    // Same contract for the wall-time profiling lane: an unmarked clock
    // read inside the accounting helper trips the direct rule, and the
    // profiled merge-loop root is proven tainted through it. The single
    // sanctioned read in the live tree is the `lint:trusted(profiling
    // boundary)` on `wall_now_ns`; anything else must land here.
    let prof = diags_for(d, "bad_prof.rs");
    assert_eq!(prof.len(), 2, "{prof:?}");
    assert!(
        prof.iter().any(|x| x.rule == "wall-clock" && x.line == 18),
        "{prof:?}"
    );
    let prof_taint = prof
        .iter()
        .find(|x| x.rule == "taint")
        .expect("profiled merge-loop root must be proven tainted");
    assert_eq!(
        prof_taint.line, 6,
        "finding anchors at run_sharded_wall's declaration"
    );
    assert!(
        prof_taint.chain.iter().any(|c| c == "profile_window"),
        "the proof chain passes through the accounting helper: {prof_taint:?}"
    );

    // And for the open-loop workload plane: a wall-clock read folded
    // into the arrival-gap draws trips the direct rule, and the
    // schedule-builder root is proven tainted through the draw helper —
    // a single stray clock read would shift every arrival after it.
    let workload = diags_for(d, "bad_workload.rs");
    assert_eq!(workload.len(), 2, "{workload:?}");
    assert!(
        workload
            .iter()
            .any(|x| x.rule == "wall-clock" && x.line == 18),
        "{workload:?}"
    );
    let workload_taint = workload
        .iter()
        .find(|x| x.rule == "taint")
        .expect("schedule-builder root must be proven tainted");
    assert_eq!(
        workload_taint.line, 6,
        "finding anchors at build_schedule's declaration"
    );
    assert!(
        workload_taint.chain.iter().any(|c| c == "jittered_gap"),
        "the proof chain passes through the gap draw: {workload_taint:?}"
    );

    // The tricky-but-clean file (tokens only in comments/strings/chars)
    // and the properly routed sweeps must not fire at all.
    assert!(diags_for(d, "clean_tricky.rs").is_empty(), "{d:?}");
    assert!(diags_for(d, "good_sweep.rs").is_empty(), "{d:?}");
}

#[test]
fn taint_catches_a_source_two_calls_deep_behind_a_helper_crate() {
    let report = lint_workspace(&fixtures_root()).expect("fixture tree readable");
    let t = diags_for(&report.diagnostics, "bad_taint_conn.rs");
    assert_eq!(t.len(), 1, "{t:?}");
    assert_eq!(t[0].rule, "taint");
    assert_eq!(t[0].line, 11, "finding anchors at the root's declaration");
    assert_eq!(
        t[0].chain,
        vec![
            "TcpConn::on_segment",
            "shard_hint",
            "thread_tag",
            "thread_seed",
            "thread::current"
        ],
        "the proof chain crosses the tcp -> hw crate boundary"
    );
    // The helper crate itself carries no per-line finding: only the
    // transitive pass can see the problem.
    assert!(diags_for(&report.diagnostics, "clocked.rs").is_empty());
}

#[test]
fn taint_trusts_reviewed_boundaries() {
    let report = lint_workspace(&fixtures_root()).expect("fixture tree readable");
    // trusted.rs reads the environment but is a declared boundary; its
    // caller must stay clean, and the fixture Engine::run — whose only
    // nondeterminism is behind a trusted fn — must be proven.
    assert!(diags_for(&report.diagnostics, "trusted.rs").is_empty());
    assert!(
        report.roots_proven.contains(&"Engine::run".to_string()),
        "{:?}",
        report.roots_proven
    );
    assert!(
        !report
            .roots_proven
            .contains(&"TcpConn::on_segment".to_string()),
        "a tainted root must not be listed as proven"
    );
}

#[test]
fn diagnostics_render_file_line_column_rule() {
    let report = lint_workspace(&fixtures_root()).expect("fixture tree readable");
    let rng = report
        .diagnostics
        .iter()
        .find(|x| x.path.ends_with("bad_rng.rs"))
        .expect("bad_rng diagnostic");
    let s = rng.to_string();
    assert!(s.contains("bad_rng.rs:4:"), "{s}");
    assert!(s.contains("[unseeded-rng]"), "{s}");
}

#[test]
fn json_report_carries_findings_and_proofs() {
    let report = lint_workspace(&fixtures_root()).expect("fixture tree readable");
    let json = report.to_json();
    assert!(json.contains("\"files_scanned\""), "{json}");
    assert!(json.contains("\"rule\": \"taint\""), "{json}");
    assert!(json.contains("\"Engine::run\""), "{json}");
    let findings = report.findings_json();
    assert!(findings.starts_with("{\n  \"findings\": [\n"), "{findings}");
    assert!(
        findings.contains("\"chain\": [\"TcpConn::on_segment\""),
        "{findings}"
    );
}

#[test]
fn live_tree_is_clean_and_all_roots_are_proven() {
    let report = lint_workspace(&workspace_root()).expect("workspace readable");
    assert!(
        report.files_scanned > 30,
        "scanned only {} files",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "live tree must pass its own lint:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The acceptance bar for the taint pass: every declared hot-path
    // root exists in the tree and is proven unreachable from every
    // nondeterminism source.
    assert!(
        report.roots_missing.is_empty(),
        "stale root list: {:?}",
        report.roots_missing
    );
    for root in taint::HOT_PATH_ROOTS {
        assert!(
            report.roots_proven.iter().any(|r| r == root),
            "root {root} not proven; proven = {:?}",
            report.roots_proven
        );
    }
}

#[test]
fn no_allow_escapes_in_the_hot_paths() {
    // Acceptance bar: no `lint:allow` markers in crates/sim, crates/tcp
    // and crates/net — the hot paths meet the rules outright. Two
    // sanctioned exceptions: `lint:allow(lossy-cast)` in sim/src/time.rs,
    // where the float<->Nanos conversion constructors truncate by design,
    // and `lint:allow(wall-clock)` in sim/src/prof.rs, where the single
    // `lint:trusted(profiling boundary)` read (`wall_now_ns`) lives. Both
    // carry justifying comments; any other escape hatch fails the bar.
    for krate in ["sim", "tcp", "net"] {
        let src = workspace_root().join("crates").join(krate).join("src");
        for file in rust_files(&src).expect("src readable") {
            let content = std::fs::read_to_string(&file).expect("file readable");
            let is_time_rs = krate == "sim" && file.ends_with("time.rs");
            let is_prof_rs = krate == "sim" && file.ends_with("prof.rs");
            for (idx, line) in content.lines().enumerate() {
                if !line.contains("lint:allow") {
                    continue;
                }
                let sanctioned = (is_time_rs && line.contains("lint:allow(lossy-cast)"))
                    || (is_prof_rs && line.contains("lint:allow(wall-clock)"));
                assert!(
                    sanctioned,
                    "{}:{} carries a lint:allow escape hatch",
                    file.display(),
                    idx + 1
                );
            }
        }
    }
}
