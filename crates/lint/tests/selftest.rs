//! Self-test: the linter fires on a fixture tree of known-bad snippets
//! and stays silent on the live workspace.

use std::path::{Path, PathBuf};

use tengig_lint::{lint_workspace, rust_files, Diagnostic};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn diags_for<'a>(diags: &'a [Diagnostic], file: &str) -> Vec<&'a Diagnostic> {
    diags.iter().filter(|d| d.path.ends_with(file)).collect()
}

#[test]
fn fixture_tree_trips_every_rule() {
    let report = lint_workspace(&fixtures_root()).expect("fixture tree readable");
    let d = &report.diagnostics;
    assert!(!d.is_empty(), "the known-bad tree must fail the lint");

    // wall-clock: both the import line and the two use sites.
    let clock = diags_for(d, "bad_clock.rs");
    assert!(clock.iter().all(|x| x.rule == "wall-clock"), "{clock:?}");
    assert!(
        clock.iter().any(|x| x.line == 2),
        "import line flagged: {clock:?}"
    );
    assert!(
        clock.len() >= 3,
        "Instant::now and SystemTime::now flagged: {clock:?}"
    );

    // unwrap: the bare unwrap and the panic!, but NOT the allowed one.
    let unwrap = diags_for(d, "bad_unwrap.rs");
    assert_eq!(
        unwrap.len(),
        2,
        "allowed unwrap must be suppressed: {unwrap:?}"
    );
    assert!(unwrap.iter().all(|x| x.rule == "unwrap"));
    assert!(unwrap.iter().any(|x| x.line == 4), "{unwrap:?}");
    assert!(unwrap.iter().any(|x| x.line == 8), "{unwrap:?}");

    // float-event-loop: inside the fixture engine.rs and calendar.rs.
    let float = diags_for(d, "engine.rs");
    assert!(!float.is_empty());
    assert!(
        float.iter().all(|x| x.rule == "float-event-loop"),
        "{float:?}"
    );
    let wheel = diags_for(d, "calendar.rs");
    assert_eq!(wheel.len(), 3, "{wheel:?}");
    assert!(
        wheel.iter().all(|x| x.rule == "float-event-loop"),
        "{wheel:?}"
    );

    // ...and in the TCP timer entry points — but only there: the float
    // in `window_fraction` (line 22) is legitimate window math.
    let timer = diags_for(d, "bad_timer.rs");
    assert_eq!(timer.len(), 2, "{timer:?}");
    assert!(
        timer.iter().all(|x| x.rule == "float-event-loop"),
        "{timer:?}"
    );
    assert!(
        timer
            .iter()
            .any(|x| x.line == 15 && x.message.contains("arm_rto")),
        "{timer:?}"
    );
    assert!(
        timer
            .iter()
            .any(|x| x.line == 19 && x.message.contains("rtt_sample")),
        "{timer:?}"
    );

    // unseeded-rng: rand::thread_rng() — one diagnostic for the line.
    let rng = diags_for(d, "bad_rng.rs");
    assert_eq!(rng.len(), 1, "{rng:?}");
    assert_eq!(rng[0].rule, "unseeded-rng");
    assert_eq!(rng[0].line, 4);

    // map-iteration: import plus declarations.
    let map = diags_for(d, "bad_map.rs");
    assert!(map.len() >= 3, "{map:?}");
    assert!(map.iter().all(|x| x.rule == "map-iteration"));

    // sweep-routing: the runnerless sweep, at its `pub fn` line.
    let sweep = diags_for(d, "bad_sweep.rs");
    assert_eq!(sweep.len(), 1, "{sweep:?}");
    assert_eq!(sweep[0].rule, "sweep-routing");
    assert_eq!(sweep[0].line, 3);
    assert!(sweep[0].message.contains("buffer_sweep"));

    // printf-debug: both print macros, at their own lines.
    let print = diags_for(d, "bad_print.rs");
    assert_eq!(print.len(), 2, "{print:?}");
    assert!(print.iter().all(|x| x.rule == "printf-debug"));
    assert!(print.iter().any(|x| x.line == 4), "{print:?}");
    assert!(print.iter().any(|x| x.line == 5), "{print:?}");

    // ...but the obs/flight-recorder module is exempt: human-facing
    // rendering lives there by design.
    assert!(diags_for(d, "obs.rs").is_empty(), "{d:?}");

    // The net crate's impairment path is print-scoped too: the bad
    // fixture trips exactly unseeded-rng (the entropy-seeded loss
    // process) and printf-debug (the per-frame print), nothing else.
    let impair = diags_for(d, "bad_impair.rs");
    assert_eq!(impair.len(), 2, "{impair:?}");
    assert!(
        impair.iter().any(|x| x.rule == "unseeded-rng"),
        "{impair:?}"
    );
    assert!(
        impair.iter().any(|x| x.rule == "printf-debug"),
        "{impair:?}"
    );
    // ...while the seeded, print-free model sails through, banned tokens
    // in its comments and strings notwithstanding.
    assert!(diags_for(d, "impair.rs").is_empty(), "{d:?}");

    // The tricky-but-clean file (tokens only in comments/strings/chars)
    // and the properly routed sweeps must not fire at all.
    assert!(diags_for(d, "clean_tricky.rs").is_empty(), "{d:?}");
    assert!(diags_for(d, "good_sweep.rs").is_empty(), "{d:?}");
}

#[test]
fn diagnostics_render_file_line_rule() {
    let report = lint_workspace(&fixtures_root()).expect("fixture tree readable");
    let rng = report
        .diagnostics
        .iter()
        .find(|x| x.path.ends_with("bad_rng.rs"))
        .expect("bad_rng diagnostic");
    let s = rng.to_string();
    assert!(s.contains("bad_rng.rs:4: [unseeded-rng]"), "{s}");
}

#[test]
fn live_tree_is_clean() {
    let report = lint_workspace(&workspace_root()).expect("workspace readable");
    assert!(
        report.files_scanned > 30,
        "scanned only {} files",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "live tree must pass its own lint:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn no_allow_escapes_in_the_hot_paths() {
    // Acceptance bar: zero `lint:allow` markers in crates/sim, crates/tcp
    // and crates/net — the hot paths meet the rules outright.
    for krate in ["sim", "tcp", "net"] {
        let src = workspace_root().join("crates").join(krate).join("src");
        for file in rust_files(&src).expect("src readable") {
            let content = std::fs::read_to_string(&file).expect("file readable");
            assert!(
                !content.contains("lint:allow"),
                "{} contains a lint:allow escape hatch",
                file.display()
            );
        }
    }
}
