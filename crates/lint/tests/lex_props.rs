//! Property tests for the hand-rolled lexer: totality and span
//! integrity on adversarial inputs.
//!
//! Two generators attack from different angles. The fragment generator
//! splices Rust-ish shards — unterminated strings, raw-string prefixes
//! with mismatched hashes, lifetimes next to char literals, multibyte
//! identifiers — into dense pathological files. The codepoint generator
//! throws arbitrary Unicode scalar values, so byte offsets and char
//! boundaries are exercised on text no grammar would produce. In both
//! cases the lexer must return (never panic), and every token's byte
//! range must be in-bounds, strictly ordered, and on char boundaries of
//! the input — the properties the span-scoped rules and the taint
//! anchors depend on.

use proptest::prelude::*;
use tengig_lint::lex::{lex, TokKind};

/// Rust-ish shards, multibyte-adversarial on purpose: `λ`, `日本語`,
/// and `é` sit next to quotes, hashes, and escapes so that any
/// byte-indexed (rather than char-indexed) scan slices mid-character.
const FRAGS: &[&str] = &[
    "fn ",
    "impl ",
    "mod ",
    "{",
    "}",
    "(",
    ")",
    "<",
    ">",
    "->",
    "::",
    ".",
    ";",
    "//x",
    "/*",
    "*/",
    "\"",
    "\\\"",
    "r#\"",
    "\"#",
    "r\"",
    "b\"",
    "b'",
    "br#\"",
    "'a",
    "'x'",
    "'\\n'",
    "'",
    "\\",
    "#",
    "!",
    "0.5",
    "1e9",
    "0x1F",
    "0",
    "_",
    "λ",
    "日本語",
    "é",
    "\n",
    " ",
    "ident",
    "r",
    "b",
    "br",
    "e",
    "lint:allow(",
    ")",
    "lint:trusted(",
    "Instant",
    "as",
    "u64",
];

/// Join picked fragments into one source string.
fn assemble(picks: &[u8]) -> String {
    picks
        .iter()
        .map(|&b| FRAGS[b as usize % FRAGS.len()])
        .collect()
}

/// The invariants every lex result must satisfy for its input.
fn check_spans(src: &str) -> Result<(), String> {
    let lexed = lex(src); // must not panic, whatever src is
    let mut prev_end = 0usize;
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.start < prev_end {
            return Err(format!("token {i} overlaps its predecessor: {t:?}"));
        }
        if t.end <= t.start || t.end > src.len() {
            return Err(format!("token {i} has a degenerate range: {t:?}"));
        }
        if !src.is_char_boundary(t.start) || !src.is_char_boundary(t.end) {
            return Err(format!("token {i} splits a character: {t:?}"));
        }
        if t.line == 0 || t.col == 0 {
            return Err(format!("token {i} has 0-based position: {t:?}"));
        }
        // An ident token's text must round-trip through the slice the
        // span claims (i.e. the span really is the token).
        if t.kind == TokKind::Ident && t.text(src).is_empty() {
            return Err(format!("token {i} claims an empty ident: {t:?}"));
        }
        prev_end = t.end;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Dense Rust-ish shard soup: the lexer returns and all spans hold.
    #[test]
    fn lexer_is_total_on_fragment_soup(
        picks in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        let src = assemble(&picks);
        if let Err(msg) = check_spans(&src) {
            prop_assert!(false, "{msg}\nsource: {src:?}");
        }
    }

    /// Arbitrary Unicode scalar values: spans stay on char boundaries.
    #[test]
    fn lexer_is_total_on_arbitrary_codepoints(
        points in proptest::collection::vec(0u32..0x11_0000, 0..48)
    ) {
        let src: String = points.iter().filter_map(|&p| char::from_u32(p)).collect();
        if let Err(msg) = check_spans(&src) {
            prop_assert!(false, "{msg}\nsource: {src:?}");
        }
    }

    /// Lexing a valid prefix plus garbage never disturbs earlier spans:
    /// every token of the combined input that ends inside the prefix
    /// must lie on the prefix's char boundaries too (offset preservation
    /// under truncation — what the selftests' line anchoring relies on).
    #[test]
    fn prefix_tokens_stay_within_the_prefix(
        picks in proptest::collection::vec(any::<u8>(), 0..24),
        tail in proptest::collection::vec(0u32..0x11_0000, 0..16)
    ) {
        let prefix = assemble(&picks);
        let garbage: String = tail.iter().filter_map(|&p| char::from_u32(p)).collect();
        let combined = format!("{prefix}{garbage}");
        let lexed = lex(&combined);
        for t in &lexed.tokens {
            if t.end <= prefix.len() {
                prop_assert!(
                    prefix.is_char_boundary(t.start) && prefix.is_char_boundary(t.end),
                    "token {t:?} crosses the prefix boundary\nprefix: {prefix:?}"
                );
            }
        }
    }
}
