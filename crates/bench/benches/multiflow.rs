//! §3.5.2 regenerator: multi-flow aggregation through the FastIron — GbE
//! hosts into one 10GbE host and back, demonstrating the tx/rx parity the
//! paper found "unexpected".

use criterion::{criterion_group, criterion_main, Criterion};
use tengig::config::LadderRung;
use tengig::experiments::multiflow::{aggregate, Direction};
use tengig::report::Table;
use tengig_ethernet::Mtu;
use tengig_sim::Nanos;

fn tengbe() -> tengig::config::HostConfig {
    LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000)
}

fn regenerate() {
    let w = Nanos::from_millis(30);
    let mut t = Table::new(
        "§3.5.2 multi-flow aggregation (PE2650, jumbo frames)",
        &["GbE peers", "direction", "aggregate Gb/s", "10GbE host CPU"],
    );
    for peers in [1usize, 2, 4, 6, 8] {
        let r = aggregate(tengbe(), peers, Direction::IntoTenGbe, w, w);
        t.row(vec![
            peers.to_string(),
            "into 10GbE (rx)".into(),
            format!("{:.2}", r.aggregate_gbps),
            format!("{:.2}", r.tengbe_cpu_load),
        ]);
    }
    for peers in [4usize, 8] {
        let r = aggregate(tengbe(), peers, Direction::OutOfTenGbe, w, w);
        t.row(vec![
            peers.to_string(),
            "out of 10GbE (tx)".into(),
            format!("{:.2}", r.aggregate_gbps),
            format!("{:.2}", r.tengbe_cpu_load),
        ]);
    }
    println!("{}", t.render());
    println!("paper: tx and rx paths statistically equal; aggregate tops out near the\nsingle-flow host ceiling (~4 Gb/s on a PE2650)\n");
}

fn bench(c: &mut Criterion) {
    regenerate();
    let w = Nanos::from_millis(15);
    c.bench_function("multiflow/4_senders_into_10gbe", |b| {
        b.iter(|| aggregate(tengbe(), 4, Direction::IntoTenGbe, w, w))
    });
}

criterion_group! {
    name = benches;
    config = tengig_bench::criterion();
    targets = bench
}
criterion_main!(benches);
