//! Fig. 6 regenerator: end-to-end latency vs payload (1 B - 1 KiB),
//! back-to-back and through the FastIron 1500, with the default 5 µs
//! interrupt-coalescing delay. Paper: 19 µs / 25 µs at one byte, growing
//! ~20% to 1 KiB.

use criterion::{criterion_group, criterion_main, Criterion};
use tengig::config::LadderRung;
use tengig::experiments::latency::{latency_sweep, netpipe_point, paper_latency_payloads};
use tengig::report::figure;
use tengig_ethernet::Mtu;

fn regenerate() {
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let payloads = paper_latency_payloads();
    let series = vec![
        latency_sweep(cfg, "back-to-back (us)", &payloads, false),
        latency_sweep(cfg, "through FastIron 1500 (us)", &payloads, true),
    ];
    println!(
        "{}",
        figure("Fig. 6: end-to-end latency (us vs payload bytes)", &series)
    );
    println!(
        "1-byte: b2b {:.1} us (paper 19), switch {:.1} us (paper 25); 1 KiB b2b {:.1} us (paper ~23)\n",
        series[0].at(1.0).unwrap(),
        series[1].at(1.0).unwrap(),
        series[0].at(1024.0).unwrap()
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    c.bench_function("fig6/netpipe_1byte_b2b", |b| {
        b.iter(|| netpipe_point(cfg, 1, false))
    });
    c.bench_function("fig6/netpipe_1byte_switch", |b| {
        b.iter(|| netpipe_point(cfg, 1, true))
    });
}

criterion_group! {
    name = benches;
    config = tengig_bench::criterion();
    targets = bench
}
criterion_main!(benches);
