//! §3.5.4 regenerator: 10GbE against GbE, Myrinet, and QsNet — the
//! published baselines with our simulated 10GbE numbers and the paper's
//! advantage percentages recomputed.

use criterion::{criterion_group, criterion_main, Criterion};
use tengig::config::LadderRung;
use tengig::experiments::latency::netpipe_point;
use tengig::experiments::throughput::nttcp_point;
use tengig::report::Table;
use tengig_bench::BENCH_COUNT;
use tengig_ethernet::Mtu;
use tengig_nic::Interconnect;

fn regenerate() {
    let cfg = LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160);
    let thr = nttcp_point(cfg, 8108, BENCH_COUNT, 7).throughput;
    let lat = netpipe_point(cfg, 1, false);
    let mut t = Table::new(
        "§3.5.4 interconnect comparison",
        &[
            "interconnect",
            "unidirectional",
            "latency",
            "10GbE thr advantage",
            "10GbE lat advantage",
        ],
    );
    for ic in Interconnect::all_baselines() {
        let thr_adv = (thr.gbps() / ic.unidirectional.gbps() - 1.0) * 100.0;
        let lat_adv = (1.0 - lat.as_nanos() as f64 / ic.latency.as_nanos() as f64) * 100.0;
        t.row(vec![
            ic.name.to_string(),
            ic.unidirectional.to_string(),
            format!("{:.1} us", ic.latency.as_micros_f64()),
            format!("{thr_adv:+.0}%"),
            format!("{lat_adv:+.0}%"),
        ]);
    }
    t.row(vec![
        "10GbE/TCP (simulated)".into(),
        thr.to_string(),
        format!("{:.1} us", lat.as_micros_f64()),
        "—".into(),
        "—".into(),
    ]);
    println!("{}", t.render());
    println!("paper: >300% vs GbE, >120% vs Myrinet/IP, >80% vs QsNet/IP throughput;\n~40% better latency than GbE, worse than the native GM/Elan3 APIs\n");
}

fn bench(c: &mut Criterion) {
    regenerate();
    let cfg = LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160);
    c.bench_function("comparison/tuned_10gbe_measurement", |b| {
        b.iter(|| nttcp_point(cfg, 8108, BENCH_COUNT, 7))
    });
}

criterion_group! {
    name = benches;
    config = tengig_bench::criterion();
    targets = bench
}
criterion_main!(benches);
