//! Fig. 5 regenerator: non-standard MTUs 8160 and 16000 with the full
//! tuning stack, against the theoretical GbE/Myrinet/QsNet reference
//! lines. Paper peaks: 4.11 / 4.09 Gb/s, with the 16000 curve's average
//! clearly higher.

use criterion::{criterion_group, criterion_main, Criterion};
use tengig::config::LadderRung;
use tengig::experiments::throughput::{nttcp_point, throughput_sweep};
use tengig::report::figure;
use tengig_bench::BENCH_COUNT;
use tengig_ethernet::Mtu;
use tengig_sim::stats::Series;

fn regenerate() {
    let mut payloads: Vec<u64> = (1_024..=16_384).step_by(1_024).collect();
    payloads.extend([8_108, 15_948]);
    payloads.sort_unstable();
    payloads.dedup();
    let m16000 = throughput_sweep(
        LadderRung::Mtu16000.pe2650_config(Mtu::MAX_INTEL_16000),
        "16000MTU,UP,4096PCI,256kbuf",
        &payloads,
        BENCH_COUNT,
    );
    let m8160 = throughput_sweep(
        LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160),
        "8160MTU,UP,4096PCI,256kbuf",
        &payloads,
        BENCH_COUNT,
    );
    let mut series = vec![m16000, m8160];
    for (label, gbps) in [
        ("Quadrics (theoretical)", 3.2),
        ("Myrinet (theoretical)", 2.0),
        ("GbE (theoretical)", 1.0),
    ] {
        let mut s = Series::new(label);
        s.push(1_024.0, gbps * 1000.0);
        s.push(16_384.0, gbps * 1000.0);
        series.push(s);
    }
    println!(
        "{}",
        figure(
            "Fig. 5: cumulative optimizations with non-standard MTUs (Mb/s)",
            &series
        )
    );
    println!(
        "peaks: 16000 {:.0} Mb/s (paper 4090), 8160 {:.0} Mb/s (paper 4110); \
         means: 16000 {:.0} vs 8160 {:.0}\n",
        series[0].peak(),
        series[1].peak(),
        series[0].mean(),
        series[1].mean()
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let cfg = LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160);
    c.bench_function("fig5/tuned_8160_mss_point", |b| {
        b.iter(|| nttcp_point(cfg, 8108, BENCH_COUNT, 1))
    });
    let cfg16 = LadderRung::Mtu16000.pe2650_config(Mtu::MAX_INTEL_16000);
    c.bench_function("fig5/tuned_16000_mss_point", |b| {
        b.iter(|| nttcp_point(cfg16, 15948, BENCH_COUNT, 1))
    });
}

criterion_group! {
    name = benches;
    config = tengig_bench::criterion();
    targets = bench
}
criterion_main!(benches);
