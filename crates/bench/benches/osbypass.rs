//! §5 projection regenerator: RDMA-over-IP / OS-bypass on the same 10GbE
//! hardware — "throughput approaching 8 Gb/s, end-to-end latencies below
//! 10 µs, and a CPU load approaching zero".

use criterion::{criterion_group, criterion_main, Criterion};
use tengig::config::LadderRung;
use tengig::experiments::latency::netpipe_point;
use tengig::experiments::osbypass;
use tengig::experiments::throughput::nttcp_point;
use tengig::report::Table;
use tengig_bench::BENCH_COUNT;
use tengig_ethernet::Mtu;

fn regenerate() {
    let mut t = Table::new(
        "§5 projection: OS-bypass (RDMA over IP) vs the best TCP result",
        &["path", "Gb/s", "one-way latency", "CPU load"],
    );
    let tcp = nttcp_point(
        LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160),
        8108,
        BENCH_COUNT,
        7,
    );
    let tcp_lat = netpipe_point(LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160), 1, false);
    t.row(vec![
        "TCP/IP, tuned (measured)".into(),
        format!("{:.2}", tcp.throughput.gbps()),
        format!("{:.1} us", tcp_lat.as_micros_f64()),
        format!("{:.2}", tcp.rx_cpu_load),
    ]);
    for mtu in [Mtu::JUMBO_9000, Mtu::MAX_INTEL_16000] {
        let r = osbypass::throughput(mtu, 4_000);
        t.row(vec![
            format!("OS-bypass, {} MTU (projected)", mtu.get()),
            format!("{:.2}", r.gbps),
            format!("{:.1} us", r.latency.as_micros_f64()),
            format!("{:.2}", r.cpu_load),
        ]);
    }
    println!("{}", t.render());
    println!("paper §5: \"throughput approaching 8 Gb/s, end-to-end latencies below 10 µs,\nand a CPU load approaching zero\"\n");
}

fn bench(c: &mut Criterion) {
    regenerate();
    c.bench_function("osbypass/16000_projection", |b| {
        b.iter(|| osbypass::throughput(Mtu::MAX_INTEL_16000, 2_000))
    });
}

criterion_group! {
    name = benches;
    config = tengig_bench::criterion();
    targets = bench
}
criterion_main!(benches);
