//! §3.5.2 regenerator: the Linux packet generator — the single-copy upper
//! bound (paper: 5.5 Gb/s, ~88,400 packets/s with 8160-byte packets) and
//! the TCP/pktgen ratio (~75%).

use criterion::{criterion_group, criterion_main, Criterion};
use tengig::config::LadderRung;
use tengig::experiments::throughput::{nttcp_point, pktgen_run};
use tengig::report::Table;
use tengig_bench::BENCH_COUNT;
use tengig_ethernet::Mtu;

fn regenerate() {
    let cfg = LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160);
    let mut t = Table::new(
        "§3.5.2 packet generator (single copy, TCP bypass)",
        &["packet payload", "packets/s", "Gb/s"],
    );
    for payload in [1472u64, 4068, 8132] {
        let r = pktgen_run(cfg, payload, 6_000);
        t.row(vec![
            payload.to_string(),
            format!("{:.0}", r.pps),
            format!("{:.2}", r.gbps),
        ]);
    }
    println!("{}", t.render());
    let pg = pktgen_run(cfg, 8132, 6_000);
    let tcp = nttcp_point(cfg, 8108, BENCH_COUNT, 1).throughput.gbps();
    println!(
        "8160-byte packets: {:.2} Gb/s at {:.0} pps (paper: 5.5 Gb/s, 88,400 pps)\n\
         TCP/pktgen ratio: {:.0}% (paper ~75%)\n",
        pg.gbps,
        pg.pps,
        tcp / pg.gbps * 100.0
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let cfg = LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160);
    c.bench_function("pktgen/8160_burst", |b| {
        b.iter(|| pktgen_run(cfg, 8132, 4_000))
    });
}

criterion_group! {
    name = benches;
    config = tengig_bench::criterion();
    targets = bench
}
criterion_main!(benches);
