//! Fig. 4 regenerator: TCP with oversized (256 KB) windows, MMRBC 4096,
//! uniprocessor kernel. Paper peaks: 2.47 / 3.9 Gb/s — and the 7436-8948 B
//! dip of Fig. 3 is gone.

use criterion::{criterion_group, criterion_main, Criterion};
use tengig::config::LadderRung;
use tengig::experiments::throughput::{nttcp_point, throughput_sweep};
use tengig::report::figure;
use tengig_bench::BENCH_COUNT;
use tengig_ethernet::Mtu;

fn regenerate() {
    let mut payloads: Vec<u64> = (512..=16_384).step_by(1_024).collect();
    payloads.extend([1448, 7436, 8192, 8948]);
    payloads.sort_unstable();
    payloads.dedup();
    let series = vec![
        throughput_sweep(
            LadderRung::OversizedWindows.pe2650_config(Mtu::STANDARD),
            "1500MTU,UP,4096PCI,256kbuf,medres",
            &payloads,
            BENCH_COUNT,
        ),
        throughput_sweep(
            LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000),
            "9000MTU,UP,4096PCI,256kbuf,medres",
            &payloads,
            BENCH_COUNT,
        ),
    ];
    println!(
        "{}",
        figure(
            "Fig. 4: oversized windows + MMRBC 4096 + UP (Mb/s)",
            &series
        )
    );
    let dip = series[1].min_in(7_436.0, 8_947.0).unwrap_or(0.0);
    println!(
        "peaks: 1500 {:.0} Mb/s (paper 2470), 9000 {:.0} Mb/s (paper 3900); \
         9000 dip region min {:.0} Mb/s vs peak {:.0}\n",
        series[0].peak(),
        series[1].peak(),
        dip,
        series[1].peak()
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    c.bench_function("fig4/tuned_9000_mss_point", |b| {
        b.iter(|| nttcp_point(cfg, 8948, BENCH_COUNT, 1))
    });
}

criterion_group! {
    name = benches;
    config = tengig_bench::criterion();
    targets = bench
}
criterion_main!(benches);
