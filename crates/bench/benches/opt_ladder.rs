//! §3.3 regenerator: the whole optimization ladder, peak/mean throughput
//! and CPU loads per cumulative tuning step.

use criterion::{criterion_group, criterion_main, Criterion};
use tengig::experiments::throughput::ladder;
use tengig::report::Table;
use tengig_bench::BENCH_COUNT;
use tengig_ethernet::Mtu;

fn regenerate() {
    let payloads = [1448, 4096, 8108, 8948, 15948];
    let results = ladder(Mtu::JUMBO_9000, &payloads, BENCH_COUNT);
    let mut t = Table::new(
        "§3.3 optimization ladder (base MTU 9000)",
        &[
            "configuration",
            "peak Mb/s",
            "mean Mb/s",
            "tx CPU",
            "rx CPU",
        ],
    );
    for r in &results {
        t.row(vec![
            r.label.clone(),
            format!("{:.0}", r.peak_mbps),
            format!("{:.0}", r.mean_mbps),
            format!("{:.2}", r.tx_cpu_load),
            format!("{:.2}", r.rx_cpu_load),
        ]);
    }
    println!("{}", t.render());
    println!("paper peaks: 2.7 → 3.6 → (+10% avg) → 3.9 → 4.11 → 4.09 Gb/s\n");
}

fn bench(c: &mut Criterion) {
    regenerate();
    c.bench_function("ladder/full_six_rungs_single_payload", |b| {
        b.iter(|| ladder(Mtu::JUMBO_9000, &[8948], 800))
    });
}

criterion_group! {
    name = benches;
    config = tengig_bench::criterion();
    targets = bench
}
criterion_main!(benches);
