//! Ablations over the design choices DESIGN.md calls out — the knobs the
//! paper discusses beyond its main ladder:
//!
//! * MMRBC sweep across all four legal burst sizes,
//! * interrupt-coalescing delay sweep (latency vs CPU trade),
//! * socket-buffer sweep (the window-limited → resource-limited crossover),
//! * TSO on/off (§3.3: "the implementation of TSO should reduce the CPU
//!   load on transmitting systems").

use criterion::{criterion_group, criterion_main, Criterion};
use tengig::config::{LadderRung, TuningStep};
use tengig::experiments::latency::netpipe_point;
use tengig::experiments::throughput::nttcp_point;
use tengig::report::Table;
use tengig_bench::BENCH_COUNT;
use tengig_ethernet::Mtu;
use tengig_sim::Nanos;

fn mmrbc_sweep() {
    let mut t = Table::new("ablation: MMRBC burst size (9000 MTU)", &["MMRBC", "Gb/s"]);
    for mmrbc in [512u64, 1024, 2048, 4096] {
        let cfg = LadderRung::OversizedWindows
            .pe2650_config(Mtu::JUMBO_9000)
            .tuned(TuningStep::Mmrbc(mmrbc));
        let r = nttcp_point(cfg, 8948, BENCH_COUNT, 1);
        t.row(vec![
            mmrbc.to_string(),
            format!("{:.2}", r.throughput.gbps()),
        ]);
    }
    println!("{}", t.render());
}

fn coalescing_sweep() {
    let mut t = Table::new(
        "ablation: interrupt-coalescing delay",
        &["delay (us)", "1B latency (us)", "bulk Gb/s", "rx CPU"],
    );
    for us in [0u64, 1, 5, 10, 20] {
        let cfg = LadderRung::OversizedWindows
            .pe2650_config(Mtu::JUMBO_9000)
            .tuned(TuningStep::Coalescing(Nanos::from_micros(us)));
        let lat = netpipe_point(cfg, 1, false);
        let thr = nttcp_point(cfg, 8948, BENCH_COUNT, 1);
        t.row(vec![
            us.to_string(),
            format!("{:.1}", lat.as_micros_f64()),
            format!("{:.2}", thr.throughput.gbps()),
            format!("{:.2}", thr.rx_cpu_load),
        ]);
    }
    println!("{}", t.render());
}

fn buffer_sweep() {
    let mut t = Table::new(
        "ablation: socket buffer size (9000 MTU)",
        &["buffers (KB)", "Gb/s"],
    );
    for kb in [64u64, 128, 256, 512, 1024] {
        let cfg = LadderRung::Uniprocessor
            .pe2650_config(Mtu::JUMBO_9000)
            .tuned(TuningStep::Buffers(kb * 1024));
        let r = nttcp_point(cfg, 8948, BENCH_COUNT, 1);
        t.row(vec![kb.to_string(), format!("{:.2}", r.throughput.gbps())]);
    }
    println!("{}", t.render());
}

fn tso_ablation() {
    let mut t = Table::new(
        "ablation: TCP segmentation offload (sender side)",
        &["TSO", "Gb/s", "tx CPU", "rx CPU"],
    );
    for tso in [false, true] {
        let mut cfg = LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160);
        cfg.nic = cfg.nic.with_tso(tso);
        let r = nttcp_point(cfg, 8108, BENCH_COUNT, 1);
        t.row(vec![
            if tso { "on" } else { "off" }.into(),
            format!("{:.2}", r.throughput.gbps()),
            format!("{:.2}", r.tx_cpu_load),
            format!("{:.2}", r.rx_cpu_load),
        ]);
    }
    println!("{}", t.render());
    println!("paper §3.3: \"the implementation of TSO should reduce the CPU load on\ntransmitting systems, and in many cases, will increase throughput\"\n");
}

fn bench(c: &mut Criterion) {
    mmrbc_sweep();
    coalescing_sweep();
    buffer_sweep();
    tso_ablation();
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    c.bench_function("ablation/single_tuned_point", |b| {
        b.iter(|| nttcp_point(cfg, 8948, BENCH_COUNT, 1))
    });
}

criterion_group! {
    name = benches;
    config = tengig_bench::criterion();
    targets = bench
}
criterion_main!(benches);
