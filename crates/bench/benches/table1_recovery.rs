//! Table 1 regenerator: time to recover from a single packet loss under
//! AIMD, for the paper's five path/MSS combinations, plus a simulation
//! cross-check of the sawtooth at a miniature operating point.

use criterion::{criterion_group, criterion_main, Criterion};
use tengig::analytic::{recovery_time, table1};
use tengig::experiments::wan::record_run;
use tengig::report::{humanize, Table};
use tengig_net::{Impairments, WanSpec};
use tengig_sim::{Bandwidth, Nanos};

fn regenerate() {
    let mut t = Table::new(
        "Table 1: time to recover from a single packet loss",
        &[
            "path",
            "bandwidth",
            "RTT (ms)",
            "MSS (bytes)",
            "time to recover",
            "paper",
        ],
    );
    let paper = ["ms-scale", "1 hr 42 min", "17 min", "3 hr 51 min", "38 min"];
    for (row, p) in table1().into_iter().zip(paper) {
        t.row(vec![
            row.path.to_string(),
            row.bandwidth.to_string(),
            format!("{:.1}", row.rtt.as_millis_f64()),
            row.mss.to_string(),
            humanize(row.time),
            p.to_string(),
        ]);
    }
    println!("{}", t.render());

    // Simulation cross-check: sparse random loss on a 10 ms-RTT miniature
    // of the WAN depresses the mean below the clean rate (the sawtooth).
    let mini = WanSpec {
        prop_svl_chi: Nanos::from_millis(2),
        prop_chi_gva: Nanos::from_millis(3),
        bottleneck_buffer: 64 << 20,
        random_loss: 0.0,
        impair: Impairments::none(),
    };
    let clean = record_run(
        &mini,
        None,
        Nanos::from_millis(600),
        Nanos::from_millis(600),
    );
    let lossy = record_run(
        &mini.with_random_loss(2e-5),
        None,
        Nanos::from_millis(600),
        Nanos::from_secs(2),
    );
    println!(
        "sawtooth cross-check at 10 ms RTT: clean {:.2} Gb/s, with sparse loss {:.2} Gb/s \
         ({} retransmits)\n",
        clean.gbps, lossy.gbps, lossy.retransmits
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    c.bench_function("table1/analytic_all_rows", |b| b.iter(table1));
    c.bench_function("table1/single_row", |b| {
        b.iter(|| recovery_time(Bandwidth::from_gbps(10), Nanos::from_millis(180), 1460))
    });
}

criterion_group! {
    name = benches;
    config = tengig_bench::criterion();
    targets = bench
}
criterion_main!(benches);
