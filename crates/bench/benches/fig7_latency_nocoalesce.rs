//! Fig. 7 regenerator: end-to-end latency with interrupt coalescing
//! turned off — "we trivially shave off an additional 5 µs (down to 14 µs
//! end-to-end)".

use criterion::{criterion_group, criterion_main, Criterion};
use tengig::config::LadderRung;
use tengig::experiments::latency::{
    latency_sweep, netpipe_point, paper_latency_payloads, without_coalescing,
};
use tengig::report::figure;
use tengig_ethernet::Mtu;

fn regenerate() {
    let base = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let cfg = without_coalescing(base);
    let payloads = paper_latency_payloads();
    let series = vec![
        latency_sweep(cfg, "back-to-back, no coalescing (us)", &payloads, false),
        latency_sweep(cfg, "through switch, no coalescing (us)", &payloads, true),
    ];
    println!(
        "{}",
        figure(
            "Fig. 7: latency without interrupt coalescing (us vs payload bytes)",
            &series
        )
    );
    let with = netpipe_point(base, 1, false).as_micros_f64();
    let without = series[0].at(1.0).unwrap();
    println!(
        "1-byte b2b: {without:.1} us (paper 14); coalescing delta {:.1} us (paper 5)\n",
        with - without
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let cfg = without_coalescing(LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000));
    c.bench_function("fig7/netpipe_1byte_nocoalesce", |b| {
        b.iter(|| netpipe_point(cfg, 1, false))
    });
}

criterion_group! {
    name = benches;
    config = tengig_bench::criterion();
    targets = bench
}
criterion_main!(benches);
