//! §3.4 regenerator: the Intel E7505 loaners (4.64 Gb/s out of the box,
//! timestamps off) and the quad Itanium-II aggregation (7.2 Gb/s), plus
//! the §3.1 STREAM memory-bandwidth sanity numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use tengig::experiments::anecdotal::{
    e7505_out_of_box, e7505_with_timestamps, itanium_aggregation,
};
use tengig::report::Table;
use tengig_bench::BENCH_COUNT;
use tengig_hw::MemorySpec;
use tengig_sim::Nanos;
use tengig_tools::run_stream;

fn regenerate() {
    let mut t = Table::new("§3.4 anecdotal hosts", &["measurement", "Gb/s", "paper"]);
    let e7 = e7505_out_of_box(BENCH_COUNT);
    t.row(vec![
        "E7505 out of the box (ts off)".into(),
        format!("{:.2}", e7.throughput.gbps()),
        "4.64".into(),
    ]);
    let e7ts = e7505_with_timestamps(BENCH_COUNT);
    t.row(vec![
        "E7505 with timestamps".into(),
        format!("{:.2}", e7ts.throughput.gbps()),
        "~-10%".into(),
    ]);
    let w = Nanos::from_millis(30);
    let it = itanium_aggregation(8, w, w);
    t.row(vec![
        "Itanium-II x4, 8 GbE senders".into(),
        format!("{:.2}", it.aggregate_gbps),
        "7.2".into(),
    ]);
    println!("{}", t.render());

    let mut s = Table::new("§3.1 STREAM copy bandwidth", &["host", "Gb/s", "paper"]);
    for (name, mem, paper) in [
        ("PE2650 (GC-LE)", MemorySpec::gc_le(), "~8.5"),
        ("PE4600 (GC-HE)", MemorySpec::gc_he(), "12.8"),
        ("E7505", MemorySpec::e7505(), "≈PE2650"),
    ] {
        s.row(vec![
            name.into(),
            format!("{:.1}", run_stream(&mem).copy.gbps()),
            paper.into(),
        ]);
    }
    println!("{}", s.render());
}

fn bench(c: &mut Criterion) {
    regenerate();
    c.bench_function("anecdotal/e7505_point", |b| {
        b.iter(|| e7505_out_of_box(BENCH_COUNT))
    });
    c.bench_function("anecdotal/itanium_aggregation_8", |b| {
        b.iter(|| itanium_aggregation(8, Nanos::from_millis(10), Nanos::from_millis(10)))
    });
}

criterion_group! {
    name = benches;
    config = tengig_bench::criterion();
    targets = bench
}
criterion_main!(benches);
