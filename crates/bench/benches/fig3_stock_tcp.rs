//! Fig. 3 regenerator: throughput of stock TCP, 1500- vs 9000-byte MTU,
//! as a function of payload size. Paper peaks: 1.8 / 2.7 Gb/s.

use criterion::{criterion_group, criterion_main, Criterion};
use tengig::config::LadderRung;
use tengig::experiments::throughput::{nttcp_point, throughput_sweep};
use tengig::report::figure;
use tengig_bench::BENCH_COUNT;
use tengig_ethernet::Mtu;

fn regenerate() {
    let payloads: Vec<u64> = (512..=16_384).step_by(1_024).chain([1448, 8948]).collect();
    let mut payloads = payloads;
    payloads.sort_unstable();
    let series = vec![
        throughput_sweep(
            LadderRung::Stock.pe2650_config(Mtu::STANDARD),
            "1500MTU,SMP,512PCI",
            &payloads,
            BENCH_COUNT,
        ),
        throughput_sweep(
            LadderRung::Stock.pe2650_config(Mtu::JUMBO_9000),
            "9000MTU,SMP,512PCI",
            &payloads,
            BENCH_COUNT,
        ),
    ];
    println!(
        "{}",
        figure(
            "Fig. 3: throughput of stock TCP (Mb/s vs payload bytes)",
            &series
        )
    );
    println!(
        "peaks: 1500 MTU {:.0} Mb/s (paper 1800), 9000 MTU {:.0} Mb/s (paper 2700)\n",
        series[0].peak(),
        series[1].peak()
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let std_cfg = LadderRung::Stock.pe2650_config(Mtu::STANDARD);
    let jumbo_cfg = LadderRung::Stock.pe2650_config(Mtu::JUMBO_9000);
    c.bench_function("fig3/stock_1500_mss_point", |b| {
        b.iter(|| nttcp_point(std_cfg, 1448, BENCH_COUNT, 1))
    });
    c.bench_function("fig3/stock_9000_mss_point", |b| {
        b.iter(|| nttcp_point(jumbo_cfg, 8948, BENCH_COUNT, 1))
    });
}

criterion_group! {
    name = benches;
    config = tengig_bench::criterion();
    targets = bench
}
criterion_main!(benches);
