//! §4 regenerator: the Internet2 Land Speed Record run — single-stream
//! TCP, Sunnyvale ↔ Geneva, and its mistuned variants.

use criterion::{criterion_group, criterion_main, Criterion};
use tengig::experiments::wan::record_run;
use tengig::report::{humanize, Table};
use tengig_net::WanSpec;
use tengig_sim::Nanos;

fn regenerate() {
    let wan = WanSpec::record_run();
    let warmup = Nanos::from_secs(3);
    let window = Nanos::from_secs(3);
    let mut t = Table::new(
        "§4: single-stream TCP over the OC-192/OC-48 circuit (180 ms RTT)",
        &[
            "buffers",
            "steady Gb/s",
            "payload eff.",
            "rtx",
            "drops",
            "1 TB takes",
        ],
    );
    let rec = record_run(&wan, None, warmup, window);
    t.row(vec![
        "tuned (≈2×BDP)".into(),
        format!("{:.3}", rec.gbps),
        format!("{:.1}%", rec.payload_efficiency * 100.0),
        rec.retransmits.to_string(),
        rec.drops.to_string(),
        humanize(rec.terabyte_time),
    ]);
    let small = record_run(&wan, Some(8 << 20), warmup, window);
    t.row(vec![
        "undersized (8 MB)".into(),
        format!("{:.3}", small.gbps),
        format!("{:.1}%", small.payload_efficiency * 100.0),
        small.retransmits.to_string(),
        small.drops.to_string(),
        humanize(small.terabyte_time),
    ]);
    println!("{}", t.render());
    println!("paper: 2.38 Gb/s, ≈99% payload efficiency, a terabyte in <1 hour\n");
}

fn bench(c: &mut Criterion) {
    regenerate();
    let wan = WanSpec::record_run();
    c.bench_function("wan/record_run_2s_window", |b| {
        b.iter(|| record_run(&wan, None, Nanos::from_secs(2), Nanos::from_secs(1)))
    });
}

criterion_group! {
    name = benches;
    config = tengig_bench::criterion();
    targets = bench
}
criterion_main!(benches);
