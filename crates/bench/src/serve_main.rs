//! `tengig-serve` — determinism gate for the open-loop serve workload
//! family, used by `make serve-check` and the CI shard matrix.
//!
//! ```text
//! tengig-serve check GOLDEN [--shards N] [--write-golden]
//! ```
//!
//! `check` runs the pinned serve sweep (`serve/openloop`, master seed
//! 2003: the four-rung load ladder plus the four-rung striping ladder)
//! at the requested shard count on 1 and then 4 sweep worker threads,
//! requires the combined document — the primary report followed by the
//! per-host CPU-saturation sidecar — to be byte-identical across thread
//! counts, and byte-compares it against the checked-in golden. CI runs
//! it at `--shards 1` and `--shards 4` against the *same* golden: the
//! FCT percentiles, goodput figures, and CPU series must not move by a
//! byte when the fabric is partitioned differently. On mismatch the
//! computed document lands in `target/serve_current.jsonl` for artifact
//! upload; exit status is 1 (2 for operational errors).

use tengig::experiments::serve::{serve_sweep_report, standard_rungs};
use tengig::SweepRunner;
use tengig_bench::golden;

/// Master seed for the pinned serve sweep (the publication year,
/// matching every other pinned workload in the repo).
const SEED: u64 = 2003;

/// Where the computed document lands on mismatch, for CI upload.
const CURRENT_OUT: &str = "target/serve_current.jsonl";

/// The pinned sweep at a given shard count and sweep thread count:
/// primary report lines, then the CPU-saturation sidecar lines, as one
/// gated document.
fn sweep(shards: usize, threads: usize) -> String {
    let rungs = standard_rungs();
    let (_, report, sidecar) = serve_sweep_report(&rungs, shards, SEED, SweepRunner::new(threads));
    format!("{}{}", report.to_jsonl(), sidecar.concatenated())
}

fn check(golden_path: &str, shards: usize, write_golden: bool) -> Result<bool, String> {
    eprintln!("serve-check: pinned sweep, shards={shards}, 1 sweep thread ...");
    let doc_1 = sweep(shards, 1);
    eprintln!("serve-check: pinned sweep, shards={shards}, 4 sweep threads ...");
    let doc_4 = sweep(shards, 4);

    if write_golden {
        golden::write_golden("serve-check", golden_path, &doc_1)?;
    }

    let mut ok = golden::require_identical(
        "serve-check",
        &format!("report+sidecar differs between 1 and 4 sweep threads (shards={shards})"),
        &doc_1,
        &doc_4,
    );
    if !golden::require_golden(
        "serve-check",
        &format!("shards={shards} sweep"),
        golden_path,
        &format!("tengig-serve check {golden_path} --write-golden"),
        &doc_1,
    )? {
        golden::dump_current(CURRENT_OUT, &doc_1)?;
        ok = false;
    }
    if ok {
        println!(
            "serve-check: PASS (shards={shards}: byte-identical across 1/4 sweep threads, \
             matches {golden_path})"
        );
    }
    Ok(ok)
}

fn usage() -> ! {
    eprintln!("usage: tengig-serve check GOLDEN [--shards N] [--write-golden]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (golden, rest) = match strs.as_slice() {
        ["check", golden, rest @ ..] => (*golden, rest),
        _ => usage(),
    };
    let mut shards = 1usize;
    let mut write_golden = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--shards" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    usage();
                };
                shards = n;
            }
            "--write-golden" => write_golden = true,
            _ => usage(),
        }
    }
    if shards == 0 {
        usage();
    }
    golden::exit_check("tengig-serve", check(golden, shards, write_golden));
}
