//! `tengig-bench` — the wall-clock benchmark harness behind `make bench`.
//!
//! Runs one fixed, pinned-seed workload per experiment family (throughput
//! sweep, multiflow aggregation, WAN record, pktgen), times each with the
//! wall clock, and writes the results as JSON (`BENCH_sim.json`).
//!
//! ```text
//! tengig-bench [--out PATH] [--check BASELINE] [--tolerance FRACTION]
//! ```
//!
//! With `--check`, the run is additionally gated against a baseline
//! report: event/byte counts must match exactly and events/sec must stay
//! within the tolerance band (default ±15%) — in both directions, so an
//! unclaimed speedup fails just as loudly as a regression. Exit status 1
//! signals a gate violation.
//!
//! Every workload is deterministic (fixed seeds, fixed counts), so the
//! only run-to-run variance is the wall clock itself.

use std::time::Instant;
use tengig::experiments::faults::{faults_lab, scaled_wan};
use tengig::experiments::grid::{run_grid, run_grid_prof, GridPreset};
use tengig::experiments::multiflow::{aggregate_seeded, Direction};
use tengig::experiments::serve::{serve_sweep_report, standard_rungs, ServeOutcome};
use tengig::experiments::wan::wan_lab_seeded;
use tengig::experiments::{b2b_lab, run_to_completion};
use tengig::lab::{self, App};
use tengig::LadderRung;
use tengig_bench::gate::{self, BenchReport, FamilyResult, DEFAULT_TOLERANCE};
use tengig_ethernet::Mtu;
use tengig_net::{GilbertElliott, Impairments, WanSpec};
use tengig_sim::{Calendar, EventId, Nanos};
use tengig_tools::{NttcpReceiver, NttcpSender, Pktgen};

/// Master seed for every bench workload (the publication year, as used by
/// the paper sweeps).
const SEED: u64 = 2003;

/// Packet count per throughput-sweep point. Chosen so the whole family
/// runs in seconds while still executing millions of events.
const SWEEP_COUNT: u64 = 200_000;

/// pktgen packet count.
const PKTGEN_COUNT: u64 = 5_000_000;

fn time<F: FnOnce() -> (u64, u64)>(name: &str, work: F) -> FamilyResult {
    eprintln!("bench: running {name} ...");
    let t0 = Instant::now();
    let (events, sim_bytes) = work();
    let wall_secs = t0.elapsed().as_secs_f64();
    FamilyResult {
        name: name.to_string(),
        events,
        sim_bytes,
        wall_secs,
    }
}

/// Fig. 3-5 shape: an NTTCP payload sweep, back-to-back, tuned windows.
fn throughput_sweep() -> (u64, u64) {
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let mut events = 0;
    let mut bytes = 0;
    for (i, payload) in [512u64, 1448, 8948].into_iter().enumerate() {
        let app = App::Nttcp {
            tx: NttcpSender::new(payload, SWEEP_COUNT),
            rx: NttcpReceiver::new(payload * SWEEP_COUNT),
        };
        let (mut lab, mut eng) = b2b_lab(cfg, app, SEED + i as u64);
        run_to_completion(&mut lab, &mut eng);
        events += eng.executed();
        bytes += payload * SWEEP_COUNT;
    }
    (events, bytes)
}

/// The same payload sweep with the observability layer enabled: per-flow
/// metrics timelines sampled every 100 µs plus detail tracing 1-in-16.
/// Exists to price the obs tax — its events/sec is gated like any other
/// family, and the workload bytes match `throughput_sweep` exactly.
fn throughput_sweep_obs() -> (u64, u64) {
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let obs = tengig_sim::ObsConfig {
        sample_interval: Nanos::from_micros(100),
        ring_capacity: 256,
        sample_every: 16,
    };
    let mut events = 0;
    let mut bytes = 0;
    for (i, payload) in [512u64, 1448, 8948].into_iter().enumerate() {
        let app = App::Nttcp {
            tx: NttcpSender::new(payload, SWEEP_COUNT),
            rx: NttcpReceiver::new(payload * SWEEP_COUNT),
        };
        let seed = SEED + i as u64;
        let (mut lab, mut eng) = b2b_lab(cfg, app, seed);
        lab.enable_obs(&obs, seed);
        run_to_completion(&mut lab, &mut eng);
        events += eng.executed();
        bytes += payload * SWEEP_COUNT;
    }
    (events, bytes)
}

/// §3.5.2 aggregation: GbE senders into the 10GbE host, windowed.
fn multiflow() -> (u64, u64) {
    let tengbe = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let w = Nanos::from_millis(800);
    let mut events = 0;
    let mut bytes = 0;
    for peers in [1usize, 2, 4] {
        let r = aggregate_seeded(
            tengbe,
            peers,
            Direction::IntoTenGbe,
            w,
            w,
            SEED + peers as u64,
        );
        events += r.events;
        bytes += r.window_bytes;
    }
    (events, bytes)
}

/// §4 Internet2 Land Speed Record: a windowed single-stream WAN run.
fn wan_record() -> (u64, u64) {
    let (mut lab, mut eng) = wan_lab_seeded(&WanSpec::record_run(), None, SEED);
    lab::kick(&mut lab, &mut eng);
    let warmup = Nanos::from_secs(3);
    let window = Nanos::from_secs(5);
    eng.advance_to(&mut lab, warmup);
    let received = |lab: &lab::Lab| match &lab.flows[0].app {
        App::Nttcp { rx, .. } => rx.received,
        _ => 0,
    };
    let b0 = received(&lab);
    eng.advance_to(&mut lab, warmup + window);
    lab::check_sanitizer(&lab, &mut eng, false);
    (eng.executed(), received(&lab) - b0)
}

/// The windowed WAN run again, but with Gilbert–Elliott burst loss on
/// the data path: prices the impairment tax next to the clean
/// `wan_record` family above. The control is `wan_record` itself —
/// `Impairments::none()` short-circuits before any per-frame RNG draw,
/// so that family's event count must not move when the impairment layer
/// changes (the gate's exact event-count match enforces it).
fn wan_burst_loss() -> (u64, u64) {
    let mut wan = scaled_wan(Nanos::from_millis(20), 64 << 20);
    wan.impair = Impairments::none().with_burst(GilbertElliott::bursty(3e-3, 8.0));
    let (mut lab, mut eng) = faults_lab(&wan, Some(256 << 10), SEED);
    lab::kick(&mut lab, &mut eng);
    let warmup = Nanos::from_secs(2);
    let window = Nanos::from_secs(5);
    eng.advance_to(&mut lab, warmup);
    let received = |lab: &lab::Lab| match &lab.flows[0].app {
        App::Nttcp { rx, .. } => rx.received,
        _ => 0,
    };
    let b0 = received(&lab);
    eng.advance_to(&mut lab, warmup + window);
    lab::check_sanitizer(&lab, &mut eng, false);
    (eng.executed(), received(&lab) - b0)
}

/// Iterations of the raw arm/cancel churn benchmark. Sized so the
/// *wheel* variant still runs long enough for a stable wall-clock read.
const CHURN_ITERS: u64 = 8_000_000;

/// The timer-dominated hot path, isolated on a raw `Calendar`: each
/// iteration pops one near event (the "segment"), cancels the previous
/// retransmission timer (the "ACK" killed it) and arms a fresh one
/// 200 ms out — exactly the arm-then-cancel churn TCP generates per
/// acknowledged segment, where virtually no timer ever fires. The
/// `_slab` variant routes timers through the binary heap (`schedule`),
/// the `_wheel` variant through the timing wheel (`schedule_timer`); the
/// pop stream is identical by construction (the wheel's ordering
/// contract), so the family pair prices the wheel lane directly: heap
/// churn drags ~200 ms of tombstones through every sift, the wheel
/// tombstones them in buckets and reaps in bulk.
fn timer_churn(wheel: bool) -> (u64, u64) {
    let mut cal: Calendar<u64> = Calendar::new();
    let mut pending: Option<EventId> = None;
    let mut popped = 0u64;
    for i in 0..CHURN_ITERS {
        if let Some(id) = pending.take() {
            cal.cancel(id);
        }
        let rto = cal.now() + Nanos::from_millis(200);
        pending = Some(if wheel {
            cal.schedule_timer(rto, i)
        } else {
            cal.schedule(rto, i)
        });
        cal.schedule(cal.now() + Nanos::from_micros(1), i);
        cal.pop();
        popped += 1;
    }
    while cal.pop().is_some() {
        popped += 1;
    }
    (popped, 0)
}

/// The pinned fat-tree fabric of the `grid_fabric` family pair: 64 GbE
/// workstations in 4 racks feeding 2 10GbE spines, ~1.3M events.
fn grid_fabric_preset() -> GridPreset {
    GridPreset::FatTree {
        spec: tengig_net::FatTreeSpec::gbe_into_tengbe(4, 16, 2),
        payload: 8948,
        count: 1500,
    }
}

/// Sharded grid execution at a given shard count, on the pinned fat-tree
/// scenario. The family pair (`grid_fabric_1shard` / `grid_fabric_4shard`)
/// prices conservative-window parallel execution: events/sec across the
/// pair is the scaling figure, and because merged event counts are
/// shard-count-invariant by contract, the gate's exact event-count match
/// between the two families doubles as a determinism check inside the
/// bench itself. The speedup this pair can show is bounded by the
/// runner's core count — on a single-core machine the 4-shard figure
/// prices pure synchronization overhead instead.
fn grid_fabric(shards: usize) -> (u64, u64) {
    let r = run_grid(&grid_fabric_preset(), shards, SEED);
    (r.events, r.payload_bytes)
}

/// The `grid_fabric_4shard` workload again with the full self-profiling
/// plane collected — deterministic counters, batch histograms, and the
/// wall-time barrier accounting. Prices the enabled profiler tax: the
/// gate's exact event-count match against `grid_fabric_4shard` proves
/// profiling changes no event, and the events/sec delta between the two
/// families is the tax itself (target ≤5%).
fn grid_prof() -> (u64, u64) {
    let (r, _prof) = run_grid_prof(&grid_fabric_preset(), 4, SEED);
    (r.events, r.payload_bytes)
}

/// The open-loop serve family: the pinned four-rung load ladder (seeded
/// Poisson arrivals, bounded-Pareto mice/elephants, FCT percentiles)
/// plus the four-rung disk-to-disk striping ladder, exactly the
/// `serve-check` sweep at one shard. Events are the workload figure the
/// golden gates on (obs sampling netted out), so the gate's exact
/// event-count match doubles as a determinism check here too.
fn serve_openloop() -> (u64, u64) {
    let rungs = standard_rungs();
    let (outcomes, _, _) = serve_sweep_report(&rungs, 1, SEED, tengig::SweepRunner::new(4));
    let mut events = 0;
    let mut bytes = 0;
    for o in &outcomes {
        let (e, b) = match o {
            ServeOutcome::Load(r) => (r.events, r.payload_bytes),
            ServeOutcome::Stripe(r) => (r.events, r.payload_bytes),
        };
        events += e;
        bytes += b;
    }
    (events, bytes)
}

/// §3.5.2 packet generator: single-copy TCP-bypass blast.
fn pktgen() -> (u64, u64) {
    let cfg = LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160);
    let payload = 8132u64;
    let (mut lab, mut eng) = b2b_lab(cfg, App::Pktgen(Pktgen::new(payload, PKTGEN_COUNT)), SEED);
    run_to_completion(&mut lab, &mut eng);
    (eng.executed(), payload * PKTGEN_COUNT)
}

struct Args {
    out: String,
    check: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_sim.json".to_string(),
        check: None,
        tolerance: DEFAULT_TOLERANCE,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |what: &str| it.next().ok_or(format!("{what} needs a value"));
        match flag.as_str() {
            "--out" => args.out = take("--out")?,
            "--check" => args.check = Some(take("--check")?),
            "--tolerance" => {
                args.tolerance = take("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tengig-bench: {e}");
            eprintln!("usage: tengig-bench [--out PATH] [--check BASELINE] [--tolerance FRAC]");
            std::process::exit(2);
        }
    };

    let report = BenchReport {
        families: vec![
            time("throughput_sweep", throughput_sweep),
            time("throughput_sweep_obs", throughput_sweep_obs),
            time("multiflow", multiflow),
            time("wan_record", wan_record),
            time("wan_burst_loss", wan_burst_loss),
            time("pktgen", pktgen),
            time("timer_churn_slab", || timer_churn(false)),
            time("timer_churn_wheel", || timer_churn(true)),
            time("grid_fabric_1shard", || grid_fabric(1)),
            time("grid_fabric_4shard", || grid_fabric(4)),
            time("grid_prof", grid_prof),
            time("serve_openloop", serve_openloop),
        ],
        peak_rss_kb: gate::peak_rss_kb(),
    };

    print!("{}", gate::summary(&report));
    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("tengig-bench: writing {}: {e}", args.out);
        std::process::exit(2);
    }
    eprintln!("bench: wrote {}", args.out);

    if let Some(path) = args.check {
        let baseline = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {path}: {e}"))
            .and_then(|s| BenchReport::from_json(&s))
            .unwrap_or_else(|e| {
                eprintln!("tengig-bench: baseline: {e}");
                std::process::exit(2);
            });
        let violations = gate::compare(&baseline, &report, args.tolerance);
        if violations.is_empty() {
            println!(
                "bench gate: PASS (all families within ±{:.0}% of {path})",
                args.tolerance * 100.0
            );
        } else {
            println!("bench gate: FAIL against {path}");
            for v in &violations {
                println!("  - {v}");
            }
            std::process::exit(1);
        }
    }
}
