//! `tengig-chaos` — the seeded chaos-campaign runner.
//!
//! Drives N randomly drawn impairment cocktails (burst loss, reordering,
//! duplication, corruption, scripted outages) through the simulator with
//! the sanitizer and TCP invariants armed, reports survivors and
//! failures, and prints the exact command line that reproduces any
//! failure from its scenario seed:
//!
//! ```text
//! tengig-chaos run [--scenarios N] [--seed S] [--threads T] [--out PATH]
//!                  [--inject INDEX]     campaign; exit 1 if any scenario fails
//! tengig-chaos repro --seed SEED [--inject]
//!                  re-run one scenario standalone from its seed
//! tengig-chaos check GOLDENS_DIR [--write-golden]
//!                  faults determinism + golden gate (`make faults-check`)
//! ```
//!
//! `check` runs the pinned faults family — the burst-length sweep, the
//! flap-recovery sweep, and a 64-scenario campaign — on 1 and 4 worker
//! threads, requires every report byte-identical across thread counts,
//! and byte-compares each against its checked-in golden
//! (`faults_burst.jsonl`, `faults_flap.jsonl`, `faults_chaos.jsonl`).
//! `--inject INDEX` deliberately fails one scenario through the same
//! panic-capture path a real invariant violation takes — the self-test
//! that the printed repro line actually works.

use tengig::experiments::faults::{
    burst_sweep_report, chaos_campaign, chaos_run, chaos_spec, flap_recovery_sweep_report,
    ChaosRow, BURST_LENGTHS, FLAP_RTTS,
};
use tengig::SweepRunner;
use tengig_bench::golden;
use tengig_sim::Nanos;

/// Master seed for the pinned `check` sweeps (the publication year,
/// matching the paper sweeps and `tengig-bench`).
const SEED: u64 = 2003;

/// Master seed for the default campaign (and the pinned `check` one).
const CAMPAIGN_SEED: u64 = 77;

/// Scenario count for the default campaign and the pinned `check` one.
const CAMPAIGN_N: usize = 64;

/// Pinned burst-sweep operating point: 0.3% mean loss, measured over a
/// 90 s window after a 2 s warmup (see `BURST_LENGTHS` for why the grid
/// brackets the window).
fn pinned_burst(threads: usize) -> String {
    let (_, report) = burst_sweep_report(
        3e-3,
        &BURST_LENGTHS,
        Nanos::from_secs(2),
        Nanos::from_secs(90),
        SEED,
        SweepRunner::new(threads),
    );
    report.to_jsonl()
}

fn pinned_flap(threads: usize) -> String {
    let (_, report) = flap_recovery_sweep_report(&FLAP_RTTS, SEED, SweepRunner::new(threads));
    report.to_jsonl()
}

fn pinned_campaign(threads: usize) -> String {
    let (_, report) = chaos_campaign(CAMPAIGN_N, CAMPAIGN_SEED, None, SweepRunner::new(threads));
    report.to_jsonl()
}

fn print_failures(rows: &[ChaosRow]) {
    for row in rows {
        if let Err(text) = &row.outcome {
            let first = text.lines().next().unwrap_or("");
            println!("FAIL scenario {:03} seed {}: {first}", row.index, row.seed);
            println!("  repro: tengig-chaos repro --seed {}", row.seed);
        }
    }
}

fn run_campaign(
    n: usize,
    master_seed: u64,
    threads: usize,
    out: Option<&str>,
    inject: Option<usize>,
) -> Result<bool, String> {
    // Scenario panics are captured into rows; keep the default hook from
    // spraying backtraces over the campaign summary. `repro` leaves the
    // hook alone so a reproduced failure prints its full report.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let (rows, report) = chaos_campaign(n, master_seed, inject, SweepRunner::new(threads));
    std::panic::set_hook(hook);
    let failures = rows.iter().filter(|r| r.outcome.is_err()).count();
    if let Some(path) = out {
        std::fs::write(path, report.to_jsonl()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote campaign report to {path}");
    }
    print_failures(&rows);
    println!(
        "chaos campaign: {n} scenarios, master seed {master_seed}, {} survived, {failures} failed",
        n - failures
    );
    Ok(failures == 0)
}

/// Re-run a single scenario from its seed, exactly as the campaign did.
fn repro(seed: u64, inject: bool) -> Result<bool, String> {
    let spec = chaos_spec(seed);
    println!(
        "scenario seed {seed}: mean_loss={:.5} burst={:.2} reorder_p={:.4} \
         dup={:.4} corrupt={:.4} outage={:?}",
        spec.mean_loss,
        spec.burst_len,
        spec.reorder_p,
        spec.duplicate,
        spec.corrupt,
        spec.outage_at.map(|at| (at, spec.outage_len)),
    );
    match chaos_run(seed, inject) {
        Ok(o) => {
            println!(
                "survived: {:.4} Gb/s over {}, {} rtx, {} rto, {} impair drops, \
                 {} dups, {} reordered, {} crc drops, {} events",
                o.gbps,
                o.duration,
                o.retransmits,
                o.timeouts,
                o.impair_drops,
                o.dup_frames,
                o.reordered,
                o.crc_drops,
                o.events
            );
            Ok(true)
        }
        Err(text) => {
            println!("FAILED:\n{text}");
            Ok(false)
        }
    }
}

fn check_one(
    name: &str,
    golden_path: &str,
    write_golden: bool,
    sweep: impl Fn(usize) -> String,
) -> Result<bool, String> {
    eprintln!("faults-check: {name}, 1 thread ...");
    let one = sweep(1);
    eprintln!("faults-check: {name}, 4 threads ...");
    let four = sweep(4);
    let mut ok = golden::require_identical(
        "faults-check",
        &format!("{name} differs between 1 and 4 threads"),
        &one,
        &four,
    );
    if write_golden {
        golden::write_golden("faults-check", golden_path, &one)?;
    }
    ok &= golden::require_golden(
        "faults-check",
        name,
        golden_path,
        "tengig-chaos check <dir> --write-golden",
        &one,
    )?;
    Ok(ok)
}

fn check(dir: &str, write_golden: bool) -> Result<bool, String> {
    let burst = check_one(
        "burst sweep",
        &format!("{dir}/faults_burst.jsonl"),
        write_golden,
        pinned_burst,
    )?;
    let flap = check_one(
        "flap recovery sweep",
        &format!("{dir}/faults_flap.jsonl"),
        write_golden,
        pinned_flap,
    )?;
    let chaos = check_one(
        "chaos campaign",
        &format!("{dir}/faults_chaos.jsonl"),
        write_golden,
        pinned_campaign,
    )?;
    let ok = burst && flap && chaos;
    if ok {
        println!(
            "faults-check: PASS (burst/flap/chaos reports byte-identical \
             across 1/4 threads and match {dir}/faults_*.jsonl)"
        );
    }
    Ok(ok)
}

fn usage() -> ! {
    eprintln!(
        "usage: tengig-chaos run [--scenarios N] [--seed S] [--threads T] [--out PATH] \
         [--inject INDEX]\n\
        \x20      tengig-chaos repro --seed SEED [--inject]\n\
        \x20      tengig-chaos check GOLDENS_DIR [--write-golden]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(value: &str, what: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("tengig-chaos: bad {what}: {value}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let outcome = match strs.split_first() {
        Some((&"run", rest)) => {
            let mut n = CAMPAIGN_N;
            let mut seed = CAMPAIGN_SEED;
            let mut threads = 4;
            let mut out = None;
            let mut inject = None;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let mut arg = |what| match it.next() {
                    Some(v) => v,
                    None => {
                        eprintln!("tengig-chaos: {what} needs a value");
                        std::process::exit(2);
                    }
                };
                match *flag {
                    "--scenarios" => n = parse(arg("--scenarios"), "scenario count"),
                    "--seed" => seed = parse(arg("--seed"), "seed"),
                    "--threads" => threads = parse(arg("--threads"), "thread count"),
                    "--out" => out = Some(*arg("--out")),
                    "--inject" => inject = Some(parse(arg("--inject"), "inject index")),
                    _ => usage(),
                }
            }
            run_campaign(n, seed, threads, out, inject)
        }
        Some((&"repro", rest)) => match rest {
            ["--seed", seed] => repro(parse(seed, "seed"), false),
            ["--seed", seed, "--inject"] => repro(parse(seed, "seed"), true),
            _ => usage(),
        },
        Some((&"check", rest)) => match rest {
            [dir] => check(dir, false),
            [dir, "--write-golden"] => check(dir, true),
            _ => usage(),
        },
        _ => usage(),
    };
    golden::exit_check("tengig-chaos", outcome);
}
