//! `tengig-obs` — command-line companion to the observability layer.
//!
//! Works on the metrics-timeline JSONL written by the obs side-channel
//! (`Timelines::to_jsonl`), plus a determinism self-check used by
//! `make obs-check`:
//!
//! ```text
//! tengig-obs summarize FILE          pretty-print one run's timelines
//! tengig-obs diff A B                compare two runs' timelines
//! tengig-obs run [--out PATH]        record the WAN cwnd timeline
//! tengig-obs check GOLDEN [--write-golden]
//!                                    obs determinism + golden gate
//! ```
//!
//! `check` runs the pinned throughput sweep with metrics enabled on 1 and
//! 4 worker threads and requires the sidecars (and primary reports) to be
//! byte-identical, then runs the same sweep with obs disabled and requires
//! its report to byte-match the checked-in golden — proving the metrics
//! side-channel never touches the primary report bytes. Exit status 1
//! signals a mismatch.

use tengig::experiments::throughput::{throughput_sweep_report, throughput_sweep_with_metrics};
use tengig::experiments::wan::record_timeline;
use tengig::{LadderRung, SweepRunner};
use tengig_bench::golden;
use tengig_ethernet::Mtu;
use tengig_net::WanSpec;
use tengig_sim::{Nanos, ObsConfig, Timelines};

/// Master seed for every pinned workload (the publication year, matching
/// the paper sweeps and `tengig-bench`).
const SEED: u64 = 2003;

/// Packet count per throughput point in `check`. Small enough for CI,
/// large enough that every probe stage fires and timelines have shape.
const CHECK_COUNT: u64 = 20_000;

/// Obs cadence for the pinned workloads: a 100 µs sampling interval with
/// 1-in-4 detail sampling keeps the timelines compact but non-trivial.
fn obs_config() -> ObsConfig {
    ObsConfig {
        sample_interval: Nanos::from_micros(100),
        ring_capacity: 256,
        sample_every: 4,
    }
}

fn read_timelines(path: &str) -> Result<Timelines, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Timelines::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

fn summarize(path: &str) -> Result<(), String> {
    let tl = read_timelines(path)?;
    print!("{}", tl.summary());
    Ok(())
}

fn diff(a: &str, b: &str) -> Result<bool, String> {
    let left = read_timelines(a)?;
    let right = read_timelines(b)?;
    let lines = left.diff(&right);
    if lines.is_empty() {
        println!("timelines identical: {a} == {b}");
        return Ok(true);
    }
    println!("timelines differ ({a} vs {b}):");
    for line in &lines {
        println!("  - {line}");
    }
    Ok(false)
}

/// Record the Internet2 land-speed-record run with metrics enabled and
/// write its timelines — including the cwnd-vs-time series of the paper's
/// AIMD plot — as JSONL.
fn run(out: &str) -> Result<(), String> {
    let obs = obs_config();
    let (result, tl) = record_timeline(
        &WanSpec::record_run(),
        None,
        Nanos::from_secs(1),
        Nanos::from_secs(2),
        SEED,
        &obs,
    );
    std::fs::write(out, tl.to_jsonl()).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wan record: {:.3} Gb/s, {} retransmits, {} drops",
        result.gbps, result.retransmits, result.drops
    );
    println!("wrote {} series to {out}", tl.len());
    Ok(())
}

/// The pinned `check` sweep at a given thread count. Returns the primary
/// report bytes and the concatenated metrics sidecar bytes.
fn check_sweep(threads: usize) -> (String, String) {
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let (_, report, sidecar) = throughput_sweep_with_metrics(
        cfg,
        "obs-check",
        &[512, 1448, 8948],
        CHECK_COUNT,
        SEED,
        SweepRunner::new(threads),
        &obs_config(),
    );
    (report.to_jsonl(), sidecar.concatenated())
}

fn check(golden_path: &str, write_golden: bool) -> Result<bool, String> {
    eprintln!("obs-check: pinned sweep, obs enabled, 1 thread ...");
    let (report_1, sidecar_1) = check_sweep(1);
    eprintln!("obs-check: pinned sweep, obs enabled, 4 threads ...");
    let (report_4, sidecar_4) = check_sweep(4);
    eprintln!("obs-check: pinned sweep, obs disabled ...");
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let (_, plain) = throughput_sweep_report(
        cfg,
        "obs-check",
        &[512, 1448, 8948],
        CHECK_COUNT,
        SEED,
        SweepRunner::new(4),
    );
    let plain = plain.to_jsonl();

    if write_golden {
        golden::write_golden("obs-check", golden_path, &plain)?;
    }

    let mut ok = golden::require_identical(
        "obs-check",
        "metrics sidecar differs between 1 and 4 threads",
        &sidecar_1,
        &sidecar_4,
    );
    ok &= golden::require_identical(
        "obs-check",
        "primary report differs between 1 and 4 threads",
        &report_1,
        &report_4,
    );
    ok &= golden::require_identical(
        "obs-check",
        "enabling obs changed the primary report bytes",
        &plain,
        &report_4,
    );
    ok &= golden::require_golden(
        "obs-check",
        "obs-disabled sweep",
        golden_path,
        &format!("tengig-obs check {golden_path} --write-golden"),
        &plain,
    )?;
    if ok {
        println!(
            "obs-check: PASS (sidecar byte-identical across 1/4 threads; \
             primary report untouched and matches {golden_path})"
        );
    }
    Ok(ok)
}

fn usage() -> ! {
    eprintln!(
        "usage: tengig-obs summarize FILE\n\
        \x20      tengig-obs diff A B\n\
        \x20      tengig-obs run [--out PATH]\n\
        \x20      tengig-obs check GOLDEN [--write-golden]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let outcome = match strs.as_slice() {
        ["summarize", path] => summarize(path).map(|()| true),
        ["diff", a, b] => diff(a, b),
        ["run"] => run("wan_record.obs.jsonl").map(|()| true),
        ["run", "--out", path] => run(path).map(|()| true),
        ["check", golden] => check(golden, false),
        ["check", golden, "--write-golden"] => check(golden, true),
        _ => usage(),
    };
    golden::exit_check("tengig-obs", outcome);
}
