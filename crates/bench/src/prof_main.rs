//! `tengig-prof` — command-line companion to the engine self-profiling
//! plane, and the determinism gate behind `make prof-check`.
//!
//! ```text
//! tengig-prof summarize FILE         pretty-print a profile (histogram
//!                                    percentiles, wall-plane readout)
//! tengig-prof diff A B               compare two profile documents
//! tengig-prof check GOLDEN [--shards N] [--write-golden]
//!                                    prof determinism + golden gate
//! ```
//!
//! `check` runs the pinned grid sweep with the profiling plane collected
//! at the requested shard count on 1 and then 4 sweep worker threads,
//! requires the gated "sim" profiling sidecar to be byte-identical
//! across thread counts and to byte-match the checked-in golden, and
//! requires the profiled run's primary report to byte-match
//! `goldens/grid.jsonl` — proving that collecting the profile never
//! perturbs the sweep bytes. Only the deterministic "sim" section is
//! gated; the per-shard "local" and host-domain "wall" sections are
//! reported by `summarize` and never compared. On mismatch the computed
//! sidecar is written to `target/prof_current.jsonl` for CI artifact
//! upload; exit status is 1 (2 for operational errors).

use tengig::experiments::grid::{grid_prof_sweep, standard_presets};
use tengig::SweepRunner;
use tengig_bench::golden;
use tengig_sim::Hist;

/// Master seed for the pinned grid sweep (the publication year, matching
/// every other pinned workload in the repo).
const SEED: u64 = 2003;

/// Where the computed gated sidecar lands on mismatch, for CI upload.
const CURRENT_OUT: &str = "target/prof_current.jsonl";

/// The primary-report golden the profiled sweep must also byte-match.
const GRID_GOLDEN: &str = "goldens/grid.jsonl";

/// The pinned profiled sweep: returns `(report, gated sidecar, host
/// sidecar)` as strings.
fn sweep(shards: usize, threads: usize) -> (String, String, String) {
    let presets = standard_presets();
    let (report, gated, host) = grid_prof_sweep(&presets, shards, SEED, SweepRunner::new(threads));
    (report.to_jsonl(), gated.concatenated(), host.concatenated())
}

/// Extract an unsigned integer field from a single-line JSON object.
fn field_u64(line: &str, name: &str) -> Option<u64> {
    let pat = format!("\"{name}\":");
    let at = line.find(&pat)?;
    let digits: String = line[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Extract a string field from a single-line JSON object.
fn field_str<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("\"{name}\":\"");
    let at = line.find(&pat)?;
    let rest = &line[at + pat.len()..];
    rest.split('"').next()
}

/// Parse an embedded histogram field out of a profile line.
fn field_hist(line: &str, name: &str) -> Option<Hist> {
    let pat = format!("\"{name}\":");
    let at = line.find(&pat)?;
    Hist::parse(&line[at + pat.len()..]).ok()
}

/// Pretty-print one profile document: per-preset sim sections with the
/// p50/p90/p99/max histogram readout, then local and wall sections.
fn summarize(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    for line in text.lines() {
        if line.contains("\"prof\":\"sim\"") {
            println!(
                "{} executed={}",
                field_str(line, "preset").unwrap_or("?"),
                field_u64(line, "executed").unwrap_or(0),
            );
            for h in ["rx_batch", "drain_batch"] {
                if let Some(hist) = field_hist(line, h) {
                    println!("  {h}: {}", hist.summary());
                }
            }
        } else if line.contains("\"prof\":\"local\"") {
            println!(
                "  shard {} windows={} msgs_sent={} pool={}h/{}m",
                field_u64(line, "shard").unwrap_or(0),
                field_u64(line, "windows").unwrap_or(0),
                field_u64(line, "msgs_sent").unwrap_or(0),
                field_u64(line, "pool_hits").unwrap_or(0),
                field_u64(line, "pool_misses").unwrap_or(0),
            );
        } else if line.contains("\"wall\":\"shard\"") {
            let ms = |n: u64| n as f64 / 1e6;
            println!(
                "  wall shard {}: windows={} barrier_wait={:.3}ms execute={:.3}ms",
                field_u64(line, "shard").unwrap_or(0),
                field_u64(line, "windows").unwrap_or(0),
                ms(field_u64(line, "barrier_wait_ns").unwrap_or(0)),
                ms(field_u64(line, "execute_ns").unwrap_or(0)),
            );
        }
    }
    Ok(())
}

/// Compare two profile documents line by line; on the first divergence,
/// show both lines and — when histograms are present — their percentile
/// readouts, which usually localize a drift faster than raw bucket lists.
fn diff(a: &str, b: &str) -> Result<bool, String> {
    let left = std::fs::read_to_string(a).map_err(|e| format!("reading {a}: {e}"))?;
    let right = std::fs::read_to_string(b).map_err(|e| format!("reading {b}: {e}"))?;
    if left == right {
        println!("profiles identical: {a} == {b}");
        return Ok(true);
    }
    let l: Vec<&str> = left.lines().collect();
    let r: Vec<&str> = right.lines().collect();
    println!("profiles differ ({a} vs {b}):");
    for i in 0..l.len().max(r.len()) {
        let le = l.get(i).copied();
        let rg = r.get(i).copied();
        if le != rg {
            println!("  first divergence at line {}:", i + 1);
            println!("    left:  {}", le.unwrap_or("<line missing>"));
            println!("    right: {}", rg.unwrap_or("<line missing>"));
            for name in ["rx_batch", "drain_batch"] {
                if let (Some(lh), Some(rh)) = (
                    le.and_then(|s| field_hist(s, name)),
                    rg.and_then(|s| field_hist(s, name)),
                ) {
                    if lh != rh {
                        println!("    {name} left:  {}", lh.summary());
                        println!("    {name} right: {}", rh.summary());
                    }
                }
            }
            break;
        }
    }
    Ok(false)
}

fn check(golden_path: &str, shards: usize, write_golden: bool) -> Result<bool, String> {
    eprintln!("prof-check: pinned profiled sweep, shards={shards}, 1 sweep thread ...");
    let (report_1, gated_1, _) = sweep(shards, 1);
    eprintln!("prof-check: pinned profiled sweep, shards={shards}, 4 sweep threads ...");
    let (report_4, gated_4, _) = sweep(shards, 4);

    if write_golden {
        golden::write_golden("prof-check", golden_path, &gated_1)?;
    }

    let mut ok = golden::require_identical(
        "prof-check",
        &format!("gated sidecar differs between 1 and 4 sweep threads (shards={shards})"),
        &gated_1,
        &gated_4,
    );
    ok &= golden::require_identical(
        "prof-check",
        &format!("primary report differs between 1 and 4 sweep threads (shards={shards})"),
        &report_1,
        &report_4,
    );
    ok &= golden::require_golden(
        "prof-check",
        &format!("shards={shards} profiling sidecar"),
        golden_path,
        &format!("tengig-prof check {golden_path} --write-golden"),
        &gated_1,
    )?;
    // The profiled run's primary report must match the plain grid golden:
    // collecting the profile may not perturb a byte of the sweep.
    match golden::require_golden(
        "prof-check",
        "profiled sweep report (profiling must not change the sweep bytes)",
        GRID_GOLDEN,
        "tengig-grid check goldens/grid.jsonl --write-golden",
        &report_1,
    ) {
        Ok(matched) => ok &= matched,
        Err(e) => println!("prof-check: note: {GRID_GOLDEN} not checked ({e})"),
    }
    if !ok {
        golden::dump_current(CURRENT_OUT, &gated_1)?;
    } else {
        println!(
            "prof-check: PASS (shards={shards}: gated sidecar byte-identical across 1/4 \
             sweep threads, matches {golden_path}; report untouched)"
        );
    }
    Ok(ok)
}

fn usage() -> ! {
    eprintln!(
        "usage: tengig-prof summarize FILE\n\
        \x20      tengig-prof diff A B\n\
        \x20      tengig-prof check GOLDEN [--shards N] [--write-golden]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let outcome = match strs.as_slice() {
        ["summarize", path] => summarize(path).map(|()| true),
        ["diff", a, b] => diff(a, b),
        ["check", golden, rest @ ..] => {
            let mut shards = 1usize;
            let mut write_golden = false;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match *arg {
                    "--shards" => {
                        let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                            usage();
                        };
                        shards = n;
                    }
                    "--write-golden" => write_golden = true,
                    _ => usage(),
                }
            }
            if shards == 0 {
                usage();
            }
            check(golden, shards, write_golden)
        }
        _ => usage(),
    };
    golden::exit_check("tengig-prof", outcome);
}
