//! Shared machinery for the determinism golden gates (`make
//! {grid,prof,obs,faults,serve}-check`).
//!
//! Every gate binary follows the same contract: recompute a pinned
//! deterministic document at two worker-thread counts, require the bytes
//! identical, byte-compare against a checked-in golden, dump the computed
//! bytes next to the build artifacts on mismatch (for CI upload), and
//! exit 0 on pass, 1 on mismatch, 2 on operational error. This module
//! holds the pieces each `*_main.rs` used to duplicate: first-divergence
//! diff printing, golden read/write with directory creation, the
//! current-bytes dump, and the exit-code mapping. The gates themselves
//! stay in their binaries — what is pinned, and against which golden, is
//! the interesting part of each tool.

/// Print the first few differing lines of two JSONL documents, plus a
/// note when the line counts differ — enough to localize a drift without
/// rerunning anything.
pub fn print_diff(expected: &str, got: &str) {
    let e: Vec<&str> = expected.lines().collect();
    let g: Vec<&str> = got.lines().collect();
    let mut shown = 0;
    for i in 0..e.len().max(g.len()) {
        let le = e.get(i).copied();
        let lg = g.get(i).copied();
        if le != lg {
            if shown == 0 && i > 0 {
                println!("  first divergence at line {}:", i + 1);
                println!("    context:  {}", e.get(i - 1).or(g.get(i - 1)).unwrap());
            }
            println!("  line {}:", i + 1);
            println!("    expected: {}", le.unwrap_or("<line missing>"));
            println!("    got:      {}", lg.unwrap_or("<line missing>"));
            shown += 1;
            if shown >= 5 {
                break;
            }
        }
    }
    if e.len() != g.len() {
        println!(
            "  line counts differ: expected {}, got {}",
            e.len(),
            g.len()
        );
    }
}

/// Write `bytes` as the new golden at `path`, creating parent
/// directories as needed, and announce it under the tool's banner.
pub fn write_golden(tool: &str, path: &str, bytes: &str) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    std::fs::write(path, bytes).map_err(|e| format!("writing {path}: {e}"))?;
    println!("{tool}: wrote golden {path}");
    Ok(())
}

/// Byte-compare two freshly computed documents that the determinism
/// contract requires identical (e.g. 1 vs 4 sweep threads). On mismatch,
/// print the FAIL banner and the first divergence; returns whether they
/// matched.
pub fn require_identical(tool: &str, what: &str, expected: &str, got: &str) -> bool {
    if expected == got {
        return true;
    }
    println!("{tool}: FAIL: {what}");
    print_diff(expected, got);
    false
}

/// Byte-compare a computed document against the checked-in golden at
/// `path`. On mismatch, print the FAIL banner, the regeneration hint
/// (`regen` is the exact command to run deliberately), and the first
/// divergence; returns whether it matched. Failing to *read* the golden
/// is an operational error, not a mismatch.
pub fn require_golden(
    tool: &str,
    what: &str,
    path: &str,
    regen: &str,
    got: &str,
) -> Result<bool, String> {
    let checked_in = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if got == checked_in {
        return Ok(true);
    }
    println!("{tool}: FAIL: {what} diverged from golden {path}");
    println!("  (regenerate deliberately with `{regen}`)");
    print_diff(&checked_in, got);
    Ok(false)
}

/// Dump the computed bytes where CI expects the failure artifact
/// (conventionally `target/<family>_current.jsonl`).
pub fn dump_current(path: &str, bytes: &str) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, bytes).map_err(|e| format!("writing {path}: {e}"))?;
    println!("  computed document written to {path}");
    Ok(())
}

/// Map a check outcome onto the shared exit-code convention: 0 when the
/// gate passed, 1 when bytes mismatched, 2 for operational errors
/// (unreadable golden, unwritable artifact, bad usage).
pub fn exit_check(tool: &str, outcome: Result<bool, String>) -> ! {
    match outcome {
        Ok(true) => std::process::exit(0),
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("{tool}: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_documents_pass() {
        assert!(require_identical("t", "x", "a\nb\n", "a\nb\n"));
        assert!(!require_identical("t", "x", "a\nb\n", "a\nc\n"));
    }

    #[test]
    fn golden_roundtrip_and_mismatch() {
        let dir = std::env::temp_dir().join("tengig-golden-test");
        let path = dir.join("g.jsonl");
        let path = path.to_str().unwrap();
        write_golden("t", path, "row\n").unwrap();
        assert!(require_golden("t", "doc", path, "regen", "row\n").unwrap());
        assert!(!require_golden("t", "doc", path, "regen", "other\n").unwrap());
        assert!(require_golden("t", "doc", "/nonexistent/g.jsonl", "regen", "x").is_err());
    }
}
