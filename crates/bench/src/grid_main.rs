//! `tengig-grid` — determinism gate for the sharded grid experiment
//! family, used by `make grid-check` and the CI determinism thread-matrix.
//!
//! ```text
//! tengig-grid check GOLDEN [--shards N] [--write-golden]
//! ```
//!
//! `check` runs the pinned grid sweep (`grid/fabric`, master seed 2003)
//! at the requested shard count on 1 and then 4 sweep worker threads,
//! requires both reports to be byte-identical, and byte-compares the
//! result against the checked-in golden. CI invokes it once with
//! `--shards 1` and once with `--shards 4` against the *same* golden —
//! which is exactly the tentpole contract: shard count and sweep thread
//! count must both be invisible in the output bytes. On mismatch the
//! computed report is written next to the build artifacts
//! (`target/grid_current.jsonl`) so CI can upload the diff, and the exit
//! status is 1 (2 for operational errors).

use tengig::experiments::grid::{grid_sweep_report, standard_presets};
use tengig::SweepRunner;
use tengig_bench::golden;

/// Master seed for the pinned grid sweep (the publication year, matching
/// every other pinned workload in the repo).
const SEED: u64 = 2003;

/// Where the computed report lands on mismatch, for CI artifact upload.
const CURRENT_OUT: &str = "target/grid_current.jsonl";

/// The pinned sweep at a given shard count and sweep thread count.
fn sweep(shards: usize, threads: usize) -> String {
    let presets = standard_presets();
    grid_sweep_report(&presets, shards, SEED, SweepRunner::new(threads))
        .1
        .to_jsonl()
}

fn check(golden_path: &str, shards: usize, write_golden: bool) -> Result<bool, String> {
    eprintln!("grid-check: pinned sweep, shards={shards}, 1 sweep thread ...");
    let report_1 = sweep(shards, 1);
    eprintln!("grid-check: pinned sweep, shards={shards}, 4 sweep threads ...");
    let report_4 = sweep(shards, 4);

    if write_golden {
        golden::write_golden("grid-check", golden_path, &report_1)?;
    }

    let mut ok = golden::require_identical(
        "grid-check",
        &format!("report differs between 1 and 4 sweep threads (shards={shards})"),
        &report_1,
        &report_4,
    );
    if !golden::require_golden(
        "grid-check",
        &format!("shards={shards} sweep"),
        golden_path,
        &format!("tengig-grid check {golden_path} --write-golden"),
        &report_1,
    )? {
        golden::dump_current(CURRENT_OUT, &report_1)?;
        ok = false;
    }
    if ok {
        println!(
            "grid-check: PASS (shards={shards}: byte-identical across 1/4 sweep threads, \
             matches {golden_path})"
        );
    }
    Ok(ok)
}

fn usage() -> ! {
    eprintln!("usage: tengig-grid check GOLDEN [--shards N] [--write-golden]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (golden, rest) = match strs.as_slice() {
        ["check", golden, rest @ ..] => (*golden, rest),
        _ => usage(),
    };
    let mut shards = 1usize;
    let mut write_golden = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--shards" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    usage();
                };
                shards = n;
            }
            "--write-golden" => write_golden = true,
            _ => usage(),
        }
    }
    if shards == 0 {
        usage();
    }
    golden::exit_check("tengig-grid", check(golden, shards, write_golden));
}
