//! `tengig-grid` — determinism gate for the sharded grid experiment
//! family, used by `make grid-check` and the CI determinism thread-matrix.
//!
//! ```text
//! tengig-grid check GOLDEN [--shards N] [--write-golden]
//! ```
//!
//! `check` runs the pinned grid sweep (`grid/fabric`, master seed 2003)
//! at the requested shard count on 1 and then 4 sweep worker threads,
//! requires both reports to be byte-identical, and byte-compares the
//! result against the checked-in golden. CI invokes it once with
//! `--shards 1` and once with `--shards 4` against the *same* golden —
//! which is exactly the tentpole contract: shard count and sweep thread
//! count must both be invisible in the output bytes. On mismatch the
//! computed report is written next to the build artifacts
//! (`target/grid_current.jsonl`) so CI can upload the diff, and the exit
//! status is 1 (2 for operational errors).

use tengig::experiments::grid::{grid_sweep_report, standard_presets};
use tengig::SweepRunner;

/// Master seed for the pinned grid sweep (the publication year, matching
/// every other pinned workload in the repo).
const SEED: u64 = 2003;

/// Where the computed report lands on mismatch, for CI artifact upload.
const CURRENT_OUT: &str = "target/grid_current.jsonl";

/// The pinned sweep at a given shard count and sweep thread count.
fn sweep(shards: usize, threads: usize) -> String {
    let presets = standard_presets();
    grid_sweep_report(&presets, shards, SEED, SweepRunner::new(threads))
        .1
        .to_jsonl()
}

/// Print the first few differing lines of two JSONL documents.
fn print_diff(expected: &str, got: &str) {
    let mut shown = 0;
    for (i, (e, g)) in expected.lines().zip(got.lines()).enumerate() {
        if e != g && shown < 5 {
            println!("  line {}:", i + 1);
            println!("    expected: {e}");
            println!("    got:      {g}");
            shown += 1;
        }
    }
    let (el, gl) = (expected.lines().count(), got.lines().count());
    if el != gl {
        println!("  line counts differ: expected {el}, got {gl}");
    }
}

fn check(golden: &str, shards: usize, write_golden: bool) -> Result<bool, String> {
    eprintln!("grid-check: pinned sweep, shards={shards}, 1 sweep thread ...");
    let report_1 = sweep(shards, 1);
    eprintln!("grid-check: pinned sweep, shards={shards}, 4 sweep threads ...");
    let report_4 = sweep(shards, 4);

    if write_golden {
        if let Some(dir) = std::path::Path::new(golden).parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
        std::fs::write(golden, &report_1).map_err(|e| format!("writing {golden}: {e}"))?;
        println!("grid-check: wrote golden {golden}");
    }

    let mut ok = true;
    if report_1 != report_4 {
        println!(
            "grid-check: FAIL: report differs between 1 and 4 sweep threads (shards={shards})"
        );
        ok = false;
    }
    let checked_in =
        std::fs::read_to_string(golden).map_err(|e| format!("reading {golden}: {e}"))?;
    if report_1 != checked_in {
        println!("grid-check: FAIL: shards={shards} sweep diverged from golden {golden}");
        println!("  (regenerate deliberately with `tengig-grid check {golden} --write-golden`)");
        print_diff(&checked_in, &report_1);
        if let Some(dir) = std::path::Path::new(CURRENT_OUT).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(CURRENT_OUT, &report_1)
            .map_err(|e| format!("writing {CURRENT_OUT}: {e}"))?;
        println!("  computed report written to {CURRENT_OUT}");
        ok = false;
    }
    if ok {
        println!(
            "grid-check: PASS (shards={shards}: byte-identical across 1/4 sweep threads, \
             matches {golden})"
        );
    }
    Ok(ok)
}

fn usage() -> ! {
    eprintln!("usage: tengig-grid check GOLDEN [--shards N] [--write-golden]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (golden, rest) = match strs.as_slice() {
        ["check", golden, rest @ ..] => (*golden, rest),
        _ => usage(),
    };
    let mut shards = 1usize;
    let mut write_golden = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--shards" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    usage();
                };
                shards = n;
            }
            "--write-golden" => write_golden = true,
            _ => usage(),
        }
    }
    if shards == 0 {
        usage();
    }
    match check(golden, shards, write_golden) {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("tengig-grid: {e}");
            std::process::exit(2);
        }
    }
}
