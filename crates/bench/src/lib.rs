//! `tengig-bench` — Criterion benchmarks that regenerate every table and
//! figure of the SC'03 10GbE paper.
//!
//! Each bench target prints the regenerated rows/series once (the figure
//! data, in the paper's units) and then benchmarks the simulation that
//! produces them. Run a single artifact with e.g.
//! `cargo bench -p tengig-bench --bench fig3_stock_tcp`.

/// Packet count per throughput point in bench mode. Reduced from the
/// paper's 32,768 — the measured rates converge well before this.
pub const BENCH_COUNT: u64 = 2_000;

/// Criterion configured for simulation-scale iterations: each iteration is
/// a whole deterministic simulation, so small samples suffice.
pub fn criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3))
}

pub mod gate;
pub mod golden;
