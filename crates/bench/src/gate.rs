//! The wall-clock benchmark report and its regression gate.
//!
//! `tengig-bench` (the binary in this crate) runs one fixed, pinned-seed
//! workload per experiment family and emits a [`BenchReport`] as
//! `BENCH_sim.json`. CI re-runs the workload and compares it against the
//! checked-in baseline with [`compare`]: event and byte counts must match
//! the baseline *exactly* (they are pure functions of the seeds — any
//! drift is a determinism bug, not noise), while events/sec may move
//! within a symmetric tolerance band. Both a slowdown beyond the band and
//! a speedup beyond it fail the gate, so wins must be claimed by
//! refreshing the baseline (`make bench`, then commit `BENCH_sim.json`).

use std::fmt::Write as _;
use tengig::Json;

/// Default gate tolerance: ±15% on events/sec.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// One experiment family's measured workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyResult {
    /// Family name (`throughput_sweep`, `multiflow`, `wan_record`,
    /// `pktgen`).
    pub name: String,
    /// Engine events executed — a deterministic function of the workload.
    pub events: u64,
    /// Simulated payload bytes moved — deterministic as well.
    pub sim_bytes: u64,
    /// Wall-clock seconds the workload took.
    pub wall_secs: f64,
}

impl FamilyResult {
    /// Events executed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(1e-9)
    }

    /// Simulated bytes moved per wall-clock second.
    pub fn sim_bytes_per_sec(&self) -> f64 {
        self.sim_bytes as f64 / self.wall_secs.max(1e-9)
    }
}

/// A full benchmark run: every family plus process-wide peak RSS.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Per-family results, in run order.
    pub families: Vec<FamilyResult>,
    /// Peak resident set size in KiB (`VmHWM`), 0 where unavailable.
    /// Reported for trending; not gated (it varies across machines and
    /// allocators in ways wall-clock on one runner does not).
    pub peak_rss_kb: u64,
}

impl BenchReport {
    /// Serialize as a single JSON object (stable field order).
    pub fn to_json(&self) -> String {
        let families: Vec<Json> = self
            .families
            .iter()
            .map(|f| {
                Json::Object(vec![
                    ("name".to_string(), Json::from(f.name.as_str())),
                    ("events".to_string(), Json::U64(f.events)),
                    ("sim_bytes".to_string(), Json::U64(f.sim_bytes)),
                    ("wall_secs".to_string(), Json::F64(f.wall_secs)),
                    ("events_per_sec".to_string(), Json::F64(f.events_per_sec())),
                    (
                        "sim_bytes_per_sec".to_string(),
                        Json::F64(f.sim_bytes_per_sec()),
                    ),
                ])
            })
            .collect();
        let root = Json::Object(vec![
            ("bench".to_string(), Json::from("tengig-sim")),
            ("peak_rss_kb".to_string(), Json::U64(self.peak_rss_kb)),
            ("families".to_string(), Json::Array(families)),
        ]);
        format!("{root}\n")
    }

    /// Parse a report previously written by [`BenchReport::to_json`].
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let value = parse::json(text)?;
        let root = value.as_object("report root")?;
        let mut families = Vec::new();
        for (i, fam) in parse::get(root, "families")?
            .as_array("families")?
            .iter()
            .enumerate()
        {
            let f = fam.as_object(&format!("family #{i}"))?;
            families.push(FamilyResult {
                name: parse::get(f, "name")?.as_str("name")?.to_string(),
                events: parse::get(f, "events")?.as_u64("events")?,
                sim_bytes: parse::get(f, "sim_bytes")?.as_u64("sim_bytes")?,
                wall_secs: parse::get(f, "wall_secs")?.as_f64("wall_secs")?,
            });
        }
        Ok(BenchReport {
            families,
            peak_rss_kb: parse::get(root, "peak_rss_kb")?.as_u64("peak_rss_kb")?,
        })
    }
}

/// Peak resident set size of this process in KiB, from `/proc/self/status`
/// (`VmHWM`). Returns 0 on platforms without procfs.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")
                    .and_then(|rest| rest.trim().trim_end_matches(" kB").trim().parse().ok())
            })
        })
        .unwrap_or(0)
}

/// Gate a current run against the checked-in baseline.
///
/// Returns the list of violations (empty = pass). Rules:
///
/// * every baseline family must be present, and no new ones may appear
///   unannounced — the baseline must be refreshed when workloads change;
/// * `events` and `sim_bytes` must match exactly (determinism, not perf);
/// * `events_per_sec` must stay within `±tolerance` of the baseline —
///   a regression *or* an unclaimed improvement beyond the band fails.
pub fn compare(baseline: &BenchReport, current: &BenchReport, tolerance: f64) -> Vec<String> {
    let mut violations = Vec::new();
    for base in &baseline.families {
        let Some(cur) = current.families.iter().find(|f| f.name == base.name) else {
            violations.push(format!("family `{}` missing from current run", base.name));
            continue;
        };
        if cur.events != base.events {
            violations.push(format!(
                "{}: events {} != baseline {} (workload drifted — determinism bug \
                 or unrefreshed baseline)",
                base.name, cur.events, base.events
            ));
        }
        if cur.sim_bytes != base.sim_bytes {
            violations.push(format!(
                "{}: sim_bytes {} != baseline {} (workload drifted — determinism \
                 bug or unrefreshed baseline)",
                base.name, cur.sim_bytes, base.sim_bytes
            ));
        }
        let ratio = cur.events_per_sec() / base.events_per_sec().max(1e-9);
        if ratio < 1.0 - tolerance {
            violations.push(format!(
                "{}: events/sec regressed {:.1}% ({:.0} vs baseline {:.0}, \
                 tolerance ±{:.0}%)",
                base.name,
                (1.0 - ratio) * 100.0,
                cur.events_per_sec(),
                base.events_per_sec(),
                tolerance * 100.0
            ));
        } else if ratio > 1.0 + tolerance {
            violations.push(format!(
                "{}: events/sec improved {:.1}% ({:.0} vs baseline {:.0}) beyond \
                 the ±{:.0}% band — claim the win by refreshing BENCH_sim.json \
                 (`make bench`, commit the result)",
                base.name,
                (ratio - 1.0) * 100.0,
                cur.events_per_sec(),
                base.events_per_sec(),
                tolerance * 100.0
            ));
        }
    }
    for cur in &current.families {
        if !baseline.families.iter().any(|f| f.name == cur.name) {
            violations.push(format!(
                "family `{}` not in baseline — refresh BENCH_sim.json",
                cur.name
            ));
        }
    }
    violations
}

/// Render a human-readable summary table of a report.
pub fn summary(report: &BenchReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>14} {:>9} {:>14}",
        "family", "events", "sim MB", "wall s", "events/sec"
    );
    for f in &report.families {
        let _ = writeln!(
            out,
            "{:<18} {:>12} {:>14.1} {:>9.2} {:>14.0}",
            f.name,
            f.events,
            f.sim_bytes as f64 / 1e6,
            f.wall_secs,
            f.events_per_sec()
        );
    }
    let _ = writeln!(out, "peak RSS: {} KiB", report.peak_rss_kb);
    out
}

/// A minimal recursive-descent JSON reader, just enough to round-trip the
/// reports this crate emits (objects, arrays, strings, numbers, booleans).
mod parse {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (kept as f64; exact for the integers we emit).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, field order preserved.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self, what: &str) -> Result<&[(String, Value)], String> {
            match self {
                Value::Obj(fields) => Ok(fields),
                other => Err(format!("{what}: expected object, got {other:?}")),
            }
        }

        pub fn as_array(&self, what: &str) -> Result<&[Value], String> {
            match self {
                Value::Arr(items) => Ok(items),
                other => Err(format!("{what}: expected array, got {other:?}")),
            }
        }

        pub fn as_str(&self, what: &str) -> Result<&str, String> {
            match self {
                Value::Str(s) => Ok(s),
                other => Err(format!("{what}: expected string, got {other:?}")),
            }
        }

        pub fn as_f64(&self, what: &str) -> Result<f64, String> {
            match self {
                Value::Num(x) => Ok(*x),
                other => Err(format!("{what}: expected number, got {other:?}")),
            }
        }

        pub fn as_u64(&self, what: &str) -> Result<u64, String> {
            let x = self.as_f64(what)?;
            if x < 0.0 || x.fract() != 0.0 || x > u64::MAX as f64 {
                return Err(format!("{what}: expected unsigned integer, got {x}"));
            }
            Ok(x as u64)
        }
    }

    /// Look up a field in an object.
    pub fn get<'v>(fields: &'v [(String, Value)], key: &str) -> Result<&'v Value, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    /// Parse a complete JSON document.
    pub fn json(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && b[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {pos}", c as char))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => literal(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            fields.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {pos}")),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *b.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = b
                                .get(*pos..*pos + 4)
                                .ok_or("truncated \\u escape")
                                .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad utf8"))?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| format!("\\u: {e}"))?;
                            *pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                c => {
                    // Re-join multi-byte UTF-8 sequences.
                    let start = *pos - 1;
                    let len = utf8_len(c);
                    let chunk = b.get(start..start + len).ok_or("truncated utf8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    *pos = start + len;
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7f => 1,
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            _ => 4,
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while let Some(&c) = b.get(*pos) {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                *pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BenchReport {
        BenchReport {
            families: vec![
                FamilyResult {
                    name: "throughput_sweep".to_string(),
                    events: 1_000_000,
                    sim_bytes: 50_000_000,
                    wall_secs: 2.0,
                },
                FamilyResult {
                    name: "pktgen".to_string(),
                    events: 400_000,
                    sim_bytes: 80_000_000,
                    wall_secs: 0.5,
                },
            ],
            peak_rss_kb: 10_240,
        }
    }

    #[test]
    fn json_round_trips() {
        let r = report();
        let parsed = BenchReport::from_json(&r.to_json()).expect("parse back");
        assert_eq!(parsed, r);
    }

    #[test]
    fn identical_runs_pass_the_gate() {
        let r = report();
        assert!(compare(&r, &r, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let base = report();
        let mut cur = report();
        for f in &mut cur.families {
            f.wall_secs *= 1.10; // 10% slower — inside the ±15% band
        }
        assert!(compare(&base, &cur, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = report();
        let mut cur = report();
        cur.families[0].wall_secs *= 1.25; // ~20% fewer events/sec
        let v = compare(&base, &cur, DEFAULT_TOLERANCE);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("regressed"), "{v:?}");
    }

    #[test]
    fn unclaimed_improvement_beyond_tolerance_fails() {
        let base = report();
        let mut cur = report();
        cur.families[1].wall_secs /= 1.30; // 30% more events/sec
        let v = compare(&base, &cur, DEFAULT_TOLERANCE);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("improved"), "{v:?}");
        assert!(v[0].contains("refreshing"), "{v:?}");
    }

    #[test]
    fn perturbed_baseline_beyond_tolerance_fails_both_ways() {
        // The acceptance criterion demands the gate demonstrably fail when
        // the baseline is perturbed beyond ±15% in either direction.
        let cur = report();
        for scale in [0.8, 1.2] {
            let mut base = report();
            for f in &mut base.families {
                f.wall_secs *= scale;
            }
            let v = compare(&base, &cur, DEFAULT_TOLERANCE);
            assert_eq!(v.len(), 2, "scale {scale}: {v:?}");
        }
    }

    #[test]
    fn event_count_drift_is_flagged_as_determinism_failure() {
        let base = report();
        let mut cur = report();
        cur.families[0].events += 1;
        let v = compare(&base, &cur, DEFAULT_TOLERANCE);
        assert!(v.iter().any(|m| m.contains("drifted")), "{v:?}");
    }

    #[test]
    fn family_set_mismatch_fails() {
        let base = report();
        let mut cur = report();
        cur.families[1].name = "wan_record".to_string();
        let v = compare(&base, &cur, DEFAULT_TOLERANCE);
        assert!(v.iter().any(|m| m.contains("missing")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("not in baseline")), "{v:?}");
    }
}
