//! Iperf — time-bounded raw-bandwidth measurement.
//!
//! "Iperf measures the amount of data sent over a consistent stream in a
//! set time. … Iperf is well suited for measuring raw bandwidth." (§3.2)
//! The paper notes NTTCP and Iperf typically agree within 2-3%.

use tengig_sim::{rate_of, Bandwidth, Nanos};

/// An Iperf-style timed stream measurement.
#[derive(Debug, Clone)]
pub struct Iperf {
    /// Start of the measurement window.
    pub start: Nanos,
    /// Length of the window.
    pub duration: Nanos,
    /// Application write size.
    pub payload: u64,
    bytes_in_window: u64,
}

impl Iperf {
    /// Measure for `duration` starting at `start`, writing `payload`-byte
    /// chunks.
    pub fn new(start: Nanos, duration: Nanos, payload: u64) -> Self {
        Iperf {
            start,
            duration,
            payload,
            bytes_in_window: 0,
        }
    }

    /// End of the measurement window.
    pub fn deadline(&self) -> Nanos {
        self.start + self.duration
    }

    /// Whether the sender should keep writing at `now`.
    pub fn keep_writing(&self, now: Nanos) -> bool {
        now < self.deadline()
    }

    /// `bytes` were delivered at `now`; counted only inside the window.
    pub fn on_delivered(&mut self, now: Nanos, bytes: u64) {
        if now >= self.start && now <= self.deadline() {
            self.bytes_in_window += bytes;
        }
    }

    /// Bytes delivered within the window.
    pub fn bytes(&self) -> u64 {
        self.bytes_in_window
    }

    /// Measured throughput over the window.
    pub fn throughput(&self) -> Bandwidth {
        rate_of(self.bytes_in_window, self.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_only_inside_window() {
        let mut ip = Iperf::new(Nanos::from_micros(100), Nanos::from_micros(1000), 8948);
        ip.on_delivered(Nanos::from_micros(50), 5000); // before window
        ip.on_delivered(Nanos::from_micros(500), 100_000);
        ip.on_delivered(Nanos::from_micros(1200), 10_000); // after deadline
        assert_eq!(ip.bytes(), 100_000);
        // 100 KB in 1 ms = 800 Mb/s.
        assert!((ip.throughput().gbps() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn keep_writing_until_deadline() {
        let ip = Iperf::new(Nanos::ZERO, Nanos::from_millis(1), 1448);
        assert!(ip.keep_writing(Nanos::from_micros(999)));
        assert!(!ip.keep_writing(Nanos::from_millis(1)));
    }
}
