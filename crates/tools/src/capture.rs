//! tcpdump analog — wire-level segment capture with filters.
//!
//! "tcpdump is commonly available and used for analyzing protocols at the
//! wire level" (§3.2). The capture records every segment crossing an
//! observation point with its timestamp and direction; filters select
//! subsets, and the analysis helpers reproduce what the authors did with
//! the dumps: watching advertised windows and spotting retransmissions.

use tengig_sim::Nanos;
use tengig_tcp::Segment;

/// Direction of a captured segment relative to the observation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// From host A to host B.
    AtoB,
    /// From host B to host A.
    BtoA,
}

/// One captured record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapturedSegment {
    /// Capture timestamp.
    pub at: Nanos,
    /// Direction.
    pub dir: Direction,
    /// The segment.
    pub seg: Segment,
}

/// A bounded capture buffer.
#[derive(Debug, Clone, Default)]
pub struct Capture {
    records: Vec<CapturedSegment>,
    /// Optional bound on stored records (like `tcpdump -c`).
    pub limit: Option<usize>,
}

impl Capture {
    /// An unbounded capture.
    pub fn new() -> Self {
        Capture::default()
    }

    /// A capture bounded to `limit` records.
    pub fn with_limit(limit: usize) -> Self {
        Capture {
            records: Vec::new(),
            limit: Some(limit),
        }
    }

    /// Record a segment.
    pub fn record(&mut self, at: Nanos, dir: Direction, seg: Segment) {
        if let Some(l) = self.limit {
            if self.records.len() >= l {
                return;
            }
        }
        self.records.push(CapturedSegment { at, dir, seg });
    }

    /// All records in capture order.
    pub fn records(&self) -> &[CapturedSegment] {
        &self.records
    }

    /// Records matching a predicate ("filter expression").
    pub fn filter<'a>(
        &'a self,
        pred: impl Fn(&CapturedSegment) -> bool + 'a,
    ) -> impl Iterator<Item = &'a CapturedSegment> {
        self.records.iter().filter(move |r| pred(r))
    }

    /// Count retransmissions seen in a direction.
    pub fn retransmissions(&self, dir: Direction) -> usize {
        self.filter(move |r| r.dir == dir && r.seg.retransmit && r.seg.len > 0)
            .count()
    }

    /// The advertised-window time series in a direction — what the authors
    /// used (with MAGNET) to diagnose the §3.5.1 window behaviour.
    pub fn window_series(&self, dir: Direction) -> Vec<(Nanos, u64)> {
        self.filter(move |r| r.dir == dir)
            .map(|r| (r.at, r.seg.wnd))
            .collect()
    }

    /// Maximum payload observed in a direction (the wire view of MSS).
    pub fn max_payload(&self, dir: Direction) -> u64 {
        self.filter(move |r| r.dir == dir)
            .map(|r| r.seg.len)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tengig_tcp::Flags;

    fn seg(len: u64, wnd: u64, rtx: bool) -> Segment {
        Segment {
            seq: 0,
            len,
            ack: 0,
            wnd,
            flags: Flags {
                ack: true,
                psh: false,
                fin: false,
            },
            ts: None,
            retransmit: rtx,
        }
    }

    #[test]
    fn records_and_filters() {
        let mut cap = Capture::new();
        cap.record(Nanos(1), Direction::AtoB, seg(1448, 0, false));
        cap.record(Nanos(2), Direction::BtoA, seg(0, 65535, false));
        cap.record(Nanos(3), Direction::AtoB, seg(1448, 0, true));
        assert_eq!(cap.records().len(), 3);
        assert_eq!(cap.retransmissions(Direction::AtoB), 1);
        assert_eq!(cap.retransmissions(Direction::BtoA), 0);
        assert_eq!(cap.max_payload(Direction::AtoB), 1448);
        let w = cap.window_series(Direction::BtoA);
        assert_eq!(w, vec![(Nanos(2), 65535)]);
    }

    #[test]
    fn limit_stops_recording() {
        let mut cap = Capture::with_limit(2);
        for i in 0..5 {
            cap.record(Nanos(i), Direction::AtoB, seg(100, 0, false));
        }
        assert_eq!(cap.records().len(), 2);
    }
}
