//! MAGNET analog — per-packet stack-path profiling.
//!
//! "MAGNET allowed us to trace and profile the paths taken by individual
//! packets through the TCP stack with negligible effect on network
//! performance. By observing a random sampling of packets, we were able to
//! quantify how many packets take each possible path, the cost of each
//! path, and the conditions necessary for a packet to take a faster path."
//! (§3.2)
//!
//! The substrate lives in `tengig_sim::trace`; this module adds the
//! analysis MAGNET users run on the data: path classification and the
//! per-stage cost breakdown that identified the receive path's expense.

use tengig_sim::trace::{Stage, Tracer};
use tengig_sim::Nanos;

/// A classified packet path through the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathClass {
    /// Clean transmit: app → stack → DMA → wire.
    FastTx,
    /// Clean receive: DMA → interrupt → stack → app.
    FastRx,
    /// Packet was retransmitted at least once.
    Retransmitted,
    /// Packet was dropped somewhere.
    Dropped,
    /// Anything else (partial observation).
    Other,
}

/// Classify one packet's observed path.
pub fn classify_path(tracer: &Tracer, packet: u64) -> PathClass {
    let stages: Vec<Stage> = tracer.packet_path(packet).iter().map(|e| e.stage).collect();
    if stages.is_empty() {
        return PathClass::Other;
    }
    if stages.contains(&Stage::Drop) {
        return PathClass::Dropped;
    }
    if stages.contains(&Stage::Retransmit) {
        return PathClass::Retransmitted;
    }
    let has_tx = stages.contains(&Stage::TxStack);
    let has_rx = stages.contains(&Stage::RxStack);
    match (has_tx, has_rx) {
        (true, false) => PathClass::FastTx,
        (false, true) => PathClass::FastRx,
        _ => PathClass::Other,
    }
}

/// The headline MAGNET report: per-stage mean costs plus the tx/rx split.
#[derive(Debug, Clone, PartialEq)]
pub struct StackProfile {
    /// Mean cost of the transmit-side stack work per packet.
    pub tx_stack_mean: Nanos,
    /// Mean cost of the receive-side stack work per packet.
    pub rx_stack_mean: Nanos,
    /// Packets observed on the transmit stack.
    pub tx_packets: u64,
    /// Packets observed on the receive stack.
    pub rx_packets: u64,
    /// Drops observed.
    pub drops: u64,
    /// Retransmissions observed.
    pub retransmits: u64,
}

impl StackProfile {
    /// Build the profile from a tracer.
    pub fn from_tracer(tracer: &Tracer) -> Self {
        let tx = tracer.stage(Stage::TxStack);
        let rx = tracer.stage(Stage::RxStack);
        StackProfile {
            tx_stack_mean: tx.mean_cost(),
            rx_stack_mean: rx.mean_cost(),
            tx_packets: tx.count,
            rx_packets: rx.count,
            drops: tracer.stage(Stage::Drop).count,
            retransmits: tracer.stage(Stage::Retransmit).count,
        }
    }

    /// The paper's observation: the receive path is costlier than transmit.
    pub fn rx_heavier_than_tx(&self) -> bool {
        self.rx_stack_mean > self.tx_stack_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        let mut t = Tracer::full(64);
        // Packet 1: clean tx.
        t.emit(Nanos(1), Stage::TxStack, 1, 1448, Nanos(2000));
        t.emit(Nanos(2), Stage::TxDma, 1, 1448, Nanos(1000));
        // Packet 2: clean rx.
        t.emit(Nanos(3), Stage::RxDma, 2, 1448, Nanos(1000));
        t.emit(Nanos(4), Stage::RxStack, 2, 1448, Nanos(4000));
        // Packet 3: dropped.
        t.emit(Nanos(5), Stage::TxStack, 3, 1448, Nanos(2000));
        t.emit(Nanos(6), Stage::Drop, 3, 1448, Nanos::ZERO);
        // Packet 4: retransmitted.
        t.emit(Nanos(7), Stage::TxStack, 4, 1448, Nanos(2000));
        t.emit(Nanos(8), Stage::Retransmit, 4, 1448, Nanos::ZERO);
        assert_eq!(classify_path(&t, 1), PathClass::FastTx);
        assert_eq!(classify_path(&t, 2), PathClass::FastRx);
        assert_eq!(classify_path(&t, 3), PathClass::Dropped);
        assert_eq!(classify_path(&t, 4), PathClass::Retransmitted);
        assert_eq!(classify_path(&t, 99), PathClass::Other);
    }

    #[test]
    fn profile_reports_rx_expense() {
        let mut t = Tracer::full(16);
        for p in 0..10 {
            t.emit(Nanos(p), Stage::TxStack, p, 1448, Nanos(2000));
            t.emit(Nanos(p + 100), Stage::RxStack, p, 1448, Nanos(4500));
        }
        let prof = StackProfile::from_tracer(&t);
        assert_eq!(prof.tx_packets, 10);
        assert_eq!(prof.rx_packets, 10);
        assert!(prof.rx_heavier_than_tx());
        assert_eq!(prof.rx_stack_mean, Nanos(4500));
    }
}
