//! NTTCP — the paper's primary throughput tool.
//!
//! "NTTCP, a ttcp variant, measures the time required to send a set number
//! of fixed-size packets. … In our tests, NTTCP is better suited for
//! optimizing the performance between the application and the network."
//! (§3.2) "In each single-flow experiment, NTTCP transfers 32,768 packets
//! ranging in size from 128 bytes to 16 KB" (§3.3).
//!
//! The sender issues fixed-size application writes as the socket accepts
//! them; the receiver reads promptly. Throughput is payload bytes over the
//! interval from the first write to the last delivered byte.

use tengig_sim::{rate_of, Bandwidth, Nanos};

/// The transmitting side of an NTTCP run.
#[derive(Debug, Clone)]
pub struct NttcpSender {
    /// Bytes per application write ("packet" in NTTCP terms).
    pub payload: u64,
    /// Writes remaining to issue.
    remaining: u64,
    /// Time of the first write.
    started: Option<Nanos>,
    /// Writes issued so far.
    pub writes: u64,
    /// Whether a write is logically blocked on socket-buffer space.
    blocked: bool,
}

impl NttcpSender {
    /// A sender that will issue `count` writes of `payload` bytes.
    pub fn new(payload: u64, count: u64) -> Self {
        NttcpSender {
            payload,
            remaining: count,
            started: None,
            writes: 0,
            blocked: false,
        }
    }

    /// Ask for the next write. `space` is the socket's free send-buffer
    /// space; NTTCP blocks (returns `None`) until a whole write fits.
    pub fn next_write(&mut self, now: Nanos, space: u64) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        if space < self.payload {
            self.blocked = true;
            return None;
        }
        self.blocked = false;
        self.remaining -= 1;
        self.writes += 1;
        if self.started.is_none() {
            self.started = Some(now);
        }
        Some(self.payload)
    }

    /// Whether the sender still has writes to issue.
    pub fn finished_writing(&self) -> bool {
        self.remaining == 0
    }

    /// Whether the last attempt blocked on buffer space.
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }

    /// Time of the first write.
    pub fn started_at(&self) -> Option<Nanos> {
        self.started
    }

    /// Total payload bytes this run will transfer.
    pub fn total_bytes(&self) -> u64 {
        self.payload * (self.writes + self.remaining)
    }
}

/// The receiving side of an NTTCP run.
#[derive(Debug, Clone)]
pub struct NttcpReceiver {
    /// Total payload bytes expected.
    pub expected: u64,
    /// Bytes delivered so far.
    pub received: u64,
    /// Completion time.
    done_at: Option<Nanos>,
}

impl NttcpReceiver {
    /// A receiver expecting `expected` bytes.
    pub fn new(expected: u64) -> Self {
        NttcpReceiver {
            expected,
            received: 0,
            done_at: None,
        }
    }

    /// `bytes` of in-order data were delivered at `now`.
    pub fn on_delivered(&mut self, now: Nanos, bytes: u64) {
        self.received += bytes;
        if self.received >= self.expected && self.done_at.is_none() {
            self.done_at = Some(now);
        }
    }

    /// Whether the run is complete.
    pub fn is_done(&self) -> bool {
        self.done_at.is_some()
    }

    /// Completion time.
    pub fn done_at(&self) -> Option<Nanos> {
        self.done_at
    }
}

/// The result of one NTTCP run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NttcpResult {
    /// Application write size.
    pub payload: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Wall time from first write to last delivery.
    pub elapsed: Nanos,
    /// Achieved application-level throughput.
    pub throughput: Bandwidth,
    /// Sender CPU load over the run (mean utilization).
    pub tx_cpu_load: f64,
    /// Receiver CPU load over the run.
    pub rx_cpu_load: f64,
}

impl NttcpResult {
    /// Assemble a result from the two halves.
    pub fn from_run(
        sender: &NttcpSender,
        receiver: &NttcpReceiver,
        tx_cpu_load: f64,
        rx_cpu_load: f64,
    ) -> Option<NttcpResult> {
        let start = sender.started_at()?;
        let end = receiver.done_at()?;
        let elapsed = end.saturating_sub(start);
        Some(NttcpResult {
            payload: sender.payload,
            bytes: receiver.received,
            elapsed,
            throughput: rate_of(receiver.received, elapsed),
            tx_cpu_load,
            rx_cpu_load,
        })
    }
}

/// The paper's §3.3 payload sweep: "32,768 packets ranging in size from
/// 128 bytes to 16 KB at increments ranging in size from 32 to 128 bytes".
/// We sweep 128 B → 16 KiB in 128-byte steps.
pub fn paper_payload_sweep() -> Vec<u64> {
    (128..=16_384).step_by(128).collect()
}

/// The canonical packet count (reduced runs may scale it down).
pub const PAPER_PACKET_COUNT: u64 = 32_768;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sender_issues_exact_count() {
        let mut s = NttcpSender::new(1000, 3);
        assert_eq!(s.next_write(Nanos(1), 1 << 20), Some(1000));
        assert_eq!(s.next_write(Nanos(2), 1 << 20), Some(1000));
        assert_eq!(s.next_write(Nanos(3), 1 << 20), Some(1000));
        assert_eq!(s.next_write(Nanos(4), 1 << 20), None);
        assert!(s.finished_writing());
        assert_eq!(s.started_at(), Some(Nanos(1)));
        assert_eq!(s.writes, 3);
    }

    #[test]
    fn sender_blocks_on_partial_space() {
        let mut s = NttcpSender::new(1000, 2);
        assert_eq!(s.next_write(Nanos(1), 999), None);
        assert!(s.is_blocked());
        assert!(!s.finished_writing());
        assert_eq!(s.next_write(Nanos(2), 1000), Some(1000));
        assert!(!s.is_blocked());
    }

    #[test]
    fn receiver_completes_and_result_computes() {
        let mut s = NttcpSender::new(1000, 10);
        let mut r = NttcpReceiver::new(10_000);
        while s.next_write(Nanos(100), 1 << 20).is_some() {}
        r.on_delivered(Nanos(4_100), 4_000);
        assert!(!r.is_done());
        r.on_delivered(Nanos(8_100), 6_000);
        assert!(r.is_done());
        let res = NttcpResult::from_run(&s, &r, 0.5, 0.9).unwrap();
        assert_eq!(res.bytes, 10_000);
        assert_eq!(res.elapsed, Nanos(8_000));
        // 10 KB in 8 µs = 10 Gb/s.
        assert!((res.throughput.gbps() - 10.0).abs() < 0.01);
    }

    #[test]
    fn paper_sweep_bounds() {
        let sweep = paper_payload_sweep();
        assert_eq!(*sweep.first().unwrap(), 128);
        assert_eq!(*sweep.last().unwrap(), 16_384);
        assert_eq!(sweep.len(), 128);
    }
}
