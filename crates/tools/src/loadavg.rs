//! `/proc/loadavg` sampling analog.
//!
//! "To estimate the CPU load across our throughput tests, we sample
//! /proc/loadavg at five- to ten-second intervals." (§3.2)
//!
//! The model's equivalent of run-queue occupancy is the utilization of the
//! busiest CPU (a saturated single-threaded receive path shows a load near
//! 1.0 even on a dual-CPU host, which is exactly what the paper reports:
//! ≈0.9 at 1500 MTU, ≈0.4 at 9000).

use tengig_sim::stats::Summary;
use tengig_sim::{Nanos, ServerBank};

/// Periodic load sampler over a CPU bank.
#[derive(Debug, Clone)]
pub struct LoadAvg {
    /// Sampling interval.
    pub interval: Nanos,
    next_sample: Nanos,
    samples: Summary,
    last_busy_total: Nanos,
}

impl LoadAvg {
    /// A sampler with the given interval, starting at `start`.
    pub fn new(start: Nanos, interval: Nanos) -> Self {
        LoadAvg {
            interval,
            next_sample: start + interval,
            samples: Summary::new(),
            last_busy_total: Nanos::ZERO,
        }
    }

    /// Offer the sampler a look at the CPU bank at time `now`; takes all
    /// due samples (interval-based windowed load over the hot CPU).
    pub fn observe(&mut self, now: Nanos, cpus: &ServerBank) {
        while now >= self.next_sample {
            // Windowed load: busy time actually delivered by the sample
            // instant (scheduled-but-future work excluded) on the hottest
            // CPU, over the window length.
            let t = self.next_sample;
            let busy_total: Nanos = (0..cpus.len())
                .map(|i| {
                    let s = cpus.server(i);
                    s.busy_total().saturating_sub(s.backlog(t))
                })
                .max()
                .unwrap_or(Nanos::ZERO);
            let delta = busy_total.saturating_sub(self.last_busy_total);
            self.last_busy_total = busy_total;
            let load = (delta.as_nanos() as f64 / self.interval.as_nanos() as f64).min(1.0);
            self.samples.record(load);
            self.next_sample += self.interval;
        }
    }

    /// Mean sampled load.
    pub fn mean(&self) -> f64 {
        self.samples.mean()
    }

    /// Number of samples taken.
    pub fn count(&self) -> u64 {
        self.samples.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_windowed_load() {
        let mut bank = ServerBank::new("cpu", 2);
        let mut la = LoadAvg::new(Nanos::ZERO, Nanos::from_millis(10));
        // CPU 0 busy 40% of each window.
        for w in 0..10u64 {
            bank.admit_pinned(0, Nanos::from_millis(10 * w), Nanos::from_millis(4));
            la.observe(Nanos::from_millis(10 * (w + 1)), &bank);
        }
        assert_eq!(la.count(), 10);
        assert!((la.mean() - 0.4).abs() < 0.05, "mean load {}", la.mean());
    }

    #[test]
    fn saturated_cpu_reads_near_one() {
        let mut bank = ServerBank::new("cpu", 2);
        let mut la = LoadAvg::new(Nanos::ZERO, Nanos::from_millis(10));
        bank.admit_pinned(0, Nanos::ZERO, Nanos::from_millis(100));
        la.observe(Nanos::from_millis(100), &bank);
        assert!(la.mean() > 0.9, "mean {}", la.mean());
    }
}
