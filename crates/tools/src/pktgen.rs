//! The Linux kernel packet generator.
//!
//! "The packet generator bypasses the TCP/IP and UDP/IP stacks entirely.
//! It is a kernel-level loop that transmits pre-formed dummy UDP packets
//! directly to the adapter (that is, it is single-copy). We observe a
//! maximum bandwidth of 5.5 Gb/s (8160-byte packets at approximately
//! 88,400 packets/sec) on the PE2650s." (§3.5.2)
//!
//! The generator is a self-clocked loop: each iteration pays a small fixed
//! CPU cost and hands one pre-formed frame to the descriptor ring; the ring
//! (bounded) drains over the PCI-X bus. The loop blocks when the ring is
//! full, so the achieved rate is min(CPU loop rate, PCI-X packet rate).

use tengig_sim::{rate_of, Bandwidth, Nanos};

/// Descriptor-ring depth the generator keeps in flight.
pub const RING_DEPTH: usize = 64;

/// Per-iteration CPU cost of the generator loop at the reference clock
/// (allocate-free pre-formed skb, fill descriptor, doorbell amortized).
pub const LOOP_COST: Nanos = Nanos::from_micros(1);

/// State of a pktgen run.
#[derive(Debug, Clone)]
pub struct Pktgen {
    /// UDP payload per packet.
    pub payload: u64,
    /// Packets remaining to send.
    remaining: u64,
    /// Packets handed to the ring so far.
    pub sent: u64,
    /// First-packet time.
    started: Option<Nanos>,
    /// Completion time of the last packet on the wire.
    last_done: Nanos,
}

impl Pktgen {
    /// A run of `count` packets of `payload` UDP payload bytes.
    pub fn new(payload: u64, count: u64) -> Self {
        Pktgen {
            payload,
            remaining: count,
            sent: 0,
            started: None,
            last_done: Nanos::ZERO,
        }
    }

    /// The IP-packet size of each generated packet.
    pub fn ip_bytes(&self) -> u64 {
        tengig_tcp::Datagram {
            flow: 0,
            index: 0,
            payload: self.payload,
        }
        .ip_bytes()
    }

    /// Take the next packet if any remain. Records the start time.
    pub fn next_packet(&mut self, now: Nanos) -> bool {
        if self.remaining == 0 {
            return false;
        }
        if self.started.is_none() {
            self.started = Some(now);
        }
        self.remaining -= 1;
        self.sent += 1;
        true
    }

    /// Record the wire-completion time of a packet.
    pub fn on_wire_done(&mut self, done: Nanos) {
        self.last_done = self.last_done.max(done);
    }

    /// Whether all packets have been generated.
    pub fn finished(&self) -> bool {
        self.remaining == 0
    }

    /// Achieved packet rate (packets/second).
    pub fn packets_per_sec(&self) -> f64 {
        match self.started {
            Some(s) if self.last_done > s => self.sent as f64 / (self.last_done - s).as_secs_f64(),
            _ => 0.0,
        }
    }

    /// Achieved payload bandwidth.
    pub fn throughput(&self) -> Bandwidth {
        match self.started {
            Some(s) if self.last_done > s => rate_of(self.sent * self.payload, self.last_done - s),
            _ => Bandwidth::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_accounting() {
        let mut pg = Pktgen::new(8132, 3);
        assert!(pg.next_packet(Nanos::from_micros(10)));
        assert!(pg.next_packet(Nanos::from_micros(20)));
        assert!(pg.next_packet(Nanos::from_micros(30)));
        assert!(!pg.next_packet(Nanos::from_micros(40)));
        assert!(pg.finished());
        assert_eq!(pg.sent, 3);
        pg.on_wire_done(Nanos::from_micros(45));
        // 3 packets over 35 µs ≈ 85.7 kpps.
        let pps = pg.packets_per_sec();
        assert!((85_000.0..87_000.0).contains(&pps), "{pps}");
    }

    #[test]
    fn ip_bytes_fill_the_mtu() {
        // 8132 payload + 8 UDP + 20 IP = 8160 — exactly the tuned MTU.
        let pg = Pktgen::new(8132, 1);
        assert_eq!(pg.ip_bytes(), 8160);
    }

    #[test]
    fn empty_run_reports_zero() {
        let pg = Pktgen::new(1000, 5);
        assert_eq!(pg.packets_per_sec(), 0.0);
        assert_eq!(pg.throughput(), Bandwidth::ZERO);
    }
}
