//! NetPipe — the paper's latency tool.
//!
//! "To estimate the end-to-end latency between a pair of 10GbE adapters, we
//! use NetPipe to obtain an averaged round-trip time over several
//! single-byte, ping-pong tests and then divide by two." (§3.2)

use tengig_sim::stats::Summary;
use tengig_sim::Nanos;

/// Which endpoint an event happened at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PingPongSide {
    /// The initiating side (measures RTT).
    Initiator,
    /// The echoing side.
    Echoer,
}

/// Ping-pong driver state.
#[derive(Debug, Clone)]
pub struct NetPipe {
    /// Payload per ping.
    pub payload: u64,
    /// Rounds remaining.
    remaining: u64,
    /// Time the current ping was sent.
    ping_sent: Option<Nanos>,
    /// RTT samples.
    rtts: Summary,
    /// Bytes accumulated toward the current message at each side.
    acc_initiator: u64,
    acc_echoer: u64,
}

impl NetPipe {
    /// A ping-pong of `rounds` exchanges of `payload` bytes each way.
    pub fn new(payload: u64, rounds: u64) -> Self {
        NetPipe {
            payload,
            remaining: rounds,
            ping_sent: None,
            rtts: Summary::new(),
            acc_initiator: 0,
            acc_echoer: 0,
        }
    }

    /// Should the initiator send a ping now? Returns the payload to write.
    pub fn start_ping(&mut self, now: Nanos) -> Option<u64> {
        if self.remaining == 0 || self.ping_sent.is_some() {
            return None;
        }
        self.ping_sent = Some(now);
        Some(self.payload)
    }

    /// `bytes` arrived at `side` at `now`. Returns `Some(payload)` when that
    /// side should write a message (echo, or next ping).
    pub fn on_delivered(&mut self, now: Nanos, side: PingPongSide, bytes: u64) -> Option<u64> {
        match side {
            PingPongSide::Echoer => {
                self.acc_echoer += bytes;
                if self.acc_echoer >= self.payload {
                    self.acc_echoer -= self.payload;
                    Some(self.payload) // echo back
                } else {
                    None
                }
            }
            PingPongSide::Initiator => {
                self.acc_initiator += bytes;
                if self.acc_initiator >= self.payload {
                    self.acc_initiator -= self.payload;
                    let sent = self.ping_sent.take().expect("pong without ping");
                    self.rtts.record(now.saturating_sub(sent).as_nanos() as f64);
                    self.remaining -= 1;
                    self.start_ping(now)
                } else {
                    None
                }
            }
        }
    }

    /// Whether all rounds completed.
    pub fn is_done(&self) -> bool {
        self.remaining == 0 && self.ping_sent.is_none()
    }

    /// Mean one-way latency: mean RTT / 2 — the paper's reported metric.
    pub fn one_way_latency(&self) -> Nanos {
        Nanos::from_nanos((self.rtts.mean() / 2.0).round() as u64)
    }

    /// Number of RTT samples.
    pub fn samples(&self) -> u64 {
        self.rtts.count()
    }

    /// RTT spread (standard deviation), for jitter checks.
    pub fn rtt_stddev(&self) -> Nanos {
        Nanos::from_nanos(self.rtts.stddev().round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_round_pingpong() {
        let mut np = NetPipe::new(1, 3);
        let mut now = Nanos::ZERO;
        let w = np.start_ping(now);
        assert_eq!(w, Some(1));
        assert_eq!(np.start_ping(now), None, "one ping in flight at a time");
        for _ in 0..3 {
            now += Nanos::from_micros(19);
            let echo = np.on_delivered(now, PingPongSide::Echoer, 1);
            assert_eq!(echo, Some(1));
            now += Nanos::from_micros(19);
            // The pong returning triggers the next ping (or completion).
            let _next = np.on_delivered(now, PingPongSide::Initiator, 1);
        }
        assert!(np.is_done());
        assert_eq!(np.samples(), 3);
        // RTT 38 µs → one-way 19 µs.
        assert_eq!(np.one_way_latency(), Nanos::from_micros(19));
        assert_eq!(np.rtt_stddev(), Nanos::ZERO);
    }

    #[test]
    fn partial_deliveries_accumulate() {
        let mut np = NetPipe::new(1000, 1);
        np.start_ping(Nanos::ZERO);
        assert_eq!(np.on_delivered(Nanos(10), PingPongSide::Echoer, 400), None);
        assert_eq!(
            np.on_delivered(Nanos(20), PingPongSide::Echoer, 600),
            Some(1000)
        );
        assert_eq!(
            np.on_delivered(Nanos(30), PingPongSide::Initiator, 999),
            None
        );
        assert_eq!(np.on_delivered(Nanos(40), PingPongSide::Initiator, 1), None);
        assert!(np.is_done());
    }
}
