//! STREAM — the memory-bandwidth microbenchmark (§3.2: "To measure the
//! memory bandwidth of our Dell PowerEdge systems, we use STREAM").
//!
//! The simulated STREAM run exercises the host's memory-subsystem model and
//! reports the canonical four kernels. Copy is the figure the paper quotes;
//! the others scale by their arithmetic intensity on 2003-era chipsets.

use tengig_hw::MemorySpec;
use tengig_sim::Bandwidth;

/// Results of a STREAM run, in the benchmark's four kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamResult {
    /// `c[i] = a[i]` — the figure the paper quotes.
    pub copy: Bandwidth,
    /// `b[i] = q*c[i]`.
    pub scale: Bandwidth,
    /// `c[i] = a[i] + b[i]`.
    pub add: Bandwidth,
    /// `a[i] = b[i] + q*c[i]`.
    pub triad: Bandwidth,
}

/// Run STREAM against a host memory model.
///
/// Scale tracks copy; add/triad move three streams instead of two and on
/// these chipsets achieve slightly higher total traffic (the classic
/// STREAM signature), modeled at +5%.
pub fn run_stream(mem: &MemorySpec) -> StreamResult {
    let copy = mem.stream_copy;
    StreamResult {
        copy,
        scale: copy.scale(0.99),
        add: copy.scale(1.05),
        triad: copy.scale(1.05),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe4600_copy_matches_paper() {
        // §3.5.2: "the STREAM memory benchmark reports 12.8-Gb/s memory
        // bandwidth on these systems".
        let r = run_stream(&MemorySpec::gc_he());
        assert!((r.copy.gbps() - 12.8).abs() < 1e-9);
    }

    #[test]
    fn pe4600_beats_pe2650_by_half() {
        let he = run_stream(&MemorySpec::gc_he());
        let le = run_stream(&MemorySpec::gc_le());
        let ratio = he.copy.gbps() / le.copy.gbps();
        assert!((1.4..1.6).contains(&ratio), "{ratio}");
    }

    #[test]
    fn kernel_ordering() {
        let r = run_stream(&MemorySpec::gc_le());
        assert!(r.scale <= r.copy);
        assert!(r.add >= r.copy);
        assert_eq!(r.add, r.triad);
    }
}
