//! `tengig-tools` — the measurement and workload tools of the paper, as
//! sans-IO state machines the laboratory drives:
//!
//! * [`nttcp`] — timed fixed-size-write bulk transfer (the primary
//!   throughput tool of §3.2/§3.3),
//! * [`iperf`] — time-bounded raw-bandwidth streams,
//! * [`netpipe`] — single-byte ping-pong latency (Figs. 6-7),
//! * [`pktgen`] — the single-copy kernel packet generator (§3.5.2),
//! * [`stream`] — the STREAM memory benchmark,
//! * [`loadavg`] — `/proc/loadavg` sampling,
//! * [`magnet`] — per-packet stack profiling (MAGNET),
//! * [`capture`] — tcpdump-style wire capture and filters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod iperf;
pub mod loadavg;
pub mod magnet;
pub mod netpipe;
pub mod nttcp;
pub mod pktgen;
pub mod stream;

pub use capture::{Capture, CapturedSegment, Direction};
pub use iperf::Iperf;
pub use loadavg::LoadAvg;
pub use magnet::{classify_path, PathClass, StackProfile};
pub use netpipe::{NetPipe, PingPongSide};
pub use nttcp::{paper_payload_sweep, NttcpReceiver, NttcpResult, NttcpSender, PAPER_PACKET_COUNT};
pub use pktgen::Pktgen;
pub use stream::{run_stream, StreamResult};
