//! Grid fabrics: multi-stage topologies for the `grid` experiment family.
//!
//! Two shapes, both taken from the "networks of workstations, clusters,
//! and grids" side of the paper's title:
//!
//! * [`FatTreeSpec`] — a folded-Clos/fat-tree fabric where racks of GbE
//!   workstations aggregate through leaf switches into 10GbE spine
//!   hosts (the paper's §5 forward-look: farms of commodity nodes feeding
//!   a few 10GigE-attached servers).
//! * [`TorusSpec`] — an APENet-style 3D torus of nearest-neighbor links
//!   (hep-lat/0409071, hep-lat/0509130): every node talks to its +x
//!   neighbor over a point-to-point link with a fixed per-hop card
//!   latency.
//!
//! A spec hands out *per-flow* [`Path`] templates plus a conservative
//! [`lookahead`](FatTreeSpec::lookahead) bound — the minimum
//! [`Path::base_latency`] over every directional path in the fabric.
//! Serialization time is excluded from the bound, so it is a true lower
//! bound on any frame's flight time and therefore a safe conservative
//! synchronization window for sharded execution: a frame emitted inside
//! a window `[T, T + L)` can only arrive at or after `T + L`.
//!
//! Paths are templates: the laboratory instantiates one link state per
//! flow per direction, which keeps every link private to one
//! transmitting host — the partition-safety rule sharded execution
//! relies on.

use crate::link::{Hop, Path};
use tengig_sim::{Bandwidth, Nanos};

/// A folded-Clos (fat-tree) fabric: `leaves` racks of `hosts_per_leaf`
/// GbE workstations, each rack's leaf switch uplinked at 10GbE to one of
/// `spines` spine hosts (round-robin by rack).
#[derive(Debug, Clone, Copy)]
pub struct FatTreeSpec {
    /// Leaf switches (racks).
    pub leaves: usize,
    /// Workstations per leaf.
    pub hosts_per_leaf: usize,
    /// 10GbE spine hosts the racks aggregate into.
    pub spines: usize,
    /// Workstation access rate (GbE).
    pub edge: Bandwidth,
    /// Uplink/spine rate (10GbE).
    pub core: Bandwidth,
}

/// Access-hop propagation: a few metres of rack copper.
const ACCESS_PROP: Nanos = Nanos::from_nanos(100);
/// Leaf→spine run: cross-machine-room fibre.
const UPLINK_PROP: Nanos = Nanos::from_nanos(500);
/// Spine-port patch into the 10GbE host.
const SPINE_PROP: Nanos = Nanos::from_nanos(50);
/// Store-and-forward lookup latency per switch stage (the FastIron-class
/// figure the calibrated two-host lab uses).
const SWITCH_FIXED: Nanos = Nanos::from_nanos(5_850);
/// Leaf uplink egress buffer.
const UPLINK_BUFFER: u64 = 1 << 20;
/// Spine-port egress buffer.
const SPINE_BUFFER: u64 = 2 << 20;

impl FatTreeSpec {
    /// The canonical "GbE workstations into 10GbE spines" fabric.
    pub fn gbe_into_tengbe(leaves: usize, hosts_per_leaf: usize, spines: usize) -> Self {
        assert!(leaves > 0 && hosts_per_leaf > 0 && spines > 0);
        FatTreeSpec {
            leaves,
            hosts_per_leaf,
            spines,
            edge: Bandwidth::from_gbps(1),
            core: Bandwidth::from_gbps(10),
        }
    }

    /// Total workstation count.
    pub fn workstations(&self) -> usize {
        self.leaves * self.hosts_per_leaf
    }

    /// The rack (leaf index) of workstation `w`.
    pub fn leaf_of(&self, w: usize) -> usize {
        w / self.hosts_per_leaf
    }

    /// The spine host workstation `w` aggregates into (round-robin by
    /// rack, so a spine serves whole racks).
    pub fn spine_of(&self, w: usize) -> usize {
        self.leaf_of(w) % self.spines
    }

    /// Upstream path template: workstation → leaf switch → spine port →
    /// 10GbE spine host. The access hop serializes at GbE; both switch
    /// stages store-and-forward at 10GbE behind bounded egress buffers.
    pub fn up_path(&self) -> Path {
        Path {
            hops: vec![
                Hop::wire("ft-access", self.edge, ACCESS_PROP),
                Hop::wire("ft-uplink", self.core, UPLINK_PROP)
                    .with_fixed(SWITCH_FIXED)
                    .with_buffer(UPLINK_BUFFER),
                Hop::wire("ft-spine", self.core, SPINE_PROP)
                    .with_fixed(SWITCH_FIXED)
                    .with_buffer(SPINE_BUFFER),
            ],
        }
    }

    /// Downstream path template (ACK direction): spine host → spine port
    /// → leaf switch → workstation. The final hop serializes at the
    /// workstation's GbE access rate.
    pub fn down_path(&self) -> Path {
        Path {
            hops: vec![
                Hop::wire("ft-spine", self.core, SPINE_PROP)
                    .with_fixed(SWITCH_FIXED)
                    .with_buffer(SPINE_BUFFER),
                Hop::wire("ft-downlink", self.core, UPLINK_PROP)
                    .with_fixed(SWITCH_FIXED)
                    .with_buffer(UPLINK_BUFFER),
                Hop::wire("ft-access", self.edge, ACCESS_PROP),
            ],
        }
    }

    /// Conservative lookahead: the minimum base latency over both
    /// directions — a lower bound on any frame's flight time through the
    /// fabric, and therefore a safe sharding window.
    pub fn lookahead(&self) -> Nanos {
        self.up_path()
            .base_latency()
            .min(self.down_path().base_latency())
    }
}

/// An APENet-style 3D torus: `dims` nodes per axis, nearest-neighbor
/// point-to-point links with a fixed per-hop card latency.
#[derive(Debug, Clone, Copy)]
pub struct TorusSpec {
    /// Nodes per axis (x, y, z).
    pub dims: [usize; 3],
    /// Link rate.
    pub link: Bandwidth,
}

/// Torus cable propagation (neighbor cards in adjacent crates).
const TORUS_PROP: Nanos = Nanos::from_nanos(500);
/// Per-hop network-card latency (the APENet remote-write budget).
const TORUS_FIXED: Nanos = Nanos::from_nanos(3_000);

impl TorusSpec {
    /// The canonical torus preset: 10GbE-class links between neighbors.
    pub fn apenet(dims: [usize; 3]) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "torus axes must be non-empty");
        TorusSpec {
            dims,
            link: Bandwidth::from_gbps(10),
        }
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Linear index of node `(x, y, z)`.
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.dims[1] + y) * self.dims[0] + x
    }

    /// Coordinates of linear index `i`.
    pub fn coords(&self, i: usize) -> (usize, usize, usize) {
        let x = i % self.dims[0];
        let y = (i / self.dims[0]) % self.dims[1];
        let z = i / (self.dims[0] * self.dims[1]);
        (x, y, z)
    }

    /// The +x neighbor of node `i` (wrapping): the partner in the
    /// nearest-neighbor exchange pattern.
    pub fn plus_x(&self, i: usize) -> usize {
        let (x, y, z) = self.coords(i);
        self.index((x + 1) % self.dims[0], y, z)
    }

    /// Path template for one torus link.
    pub fn link_path(&self) -> Path {
        Path {
            hops: vec![Hop::wire("ape-link", self.link, TORUS_PROP).with_fixed(TORUS_FIXED)],
        }
    }

    /// Conservative lookahead: the link's base latency.
    pub fn lookahead(&self) -> Nanos {
        self.link_path().base_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_lookahead_is_the_base_latency_floor() {
        let ft = FatTreeSpec::gbe_into_tengbe(4, 8, 2);
        assert_eq!(ft.workstations(), 32);
        let expect = ACCESS_PROP + UPLINK_PROP + SPINE_PROP + SWITCH_FIXED + SWITCH_FIXED;
        assert_eq!(ft.up_path().base_latency(), expect);
        assert_eq!(ft.lookahead(), expect);
        assert!(ft.lookahead() > Nanos::ZERO);
    }

    #[test]
    fn fat_tree_spines_serve_whole_racks() {
        let ft = FatTreeSpec::gbe_into_tengbe(4, 2, 2);
        // Rack 0 → spine 0, rack 1 → spine 1, rack 2 → spine 0, ...
        assert_eq!(ft.spine_of(0), 0);
        assert_eq!(ft.spine_of(1), 0);
        assert_eq!(ft.spine_of(2), 1);
        assert_eq!(ft.spine_of(6), 1);
    }

    #[test]
    fn torus_indexing_round_trips_and_wraps() {
        let t = TorusSpec::apenet([3, 2, 2]);
        assert_eq!(t.nodes(), 12);
        for i in 0..t.nodes() {
            let (x, y, z) = t.coords(i);
            assert_eq!(t.index(x, y, z), i);
        }
        // +x wraps around the ring.
        assert_eq!(t.plus_x(t.index(2, 1, 0)), t.index(0, 1, 0));
        assert_eq!(t.lookahead(), TORUS_PROP + TORUS_FIXED);
    }
}
