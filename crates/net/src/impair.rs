//! Deterministic per-hop fault injection.
//!
//! The paper's WAN results hinge on how TCP survives *pathological* path
//! behavior — correlated loss bursts, reordering, and outright outages —
//! yet an independent Bernoulli drop ([`crate::Hop::with_random_loss`])
//! captures none of that correlation structure. This module provides the
//! missing impairment models, composable per hop via [`Impairments`]:
//!
//! * [`GilbertElliott`] — the classic two-state Markov burst-loss chain.
//!   A hop is either in the *good* or *bad* state; each offered frame is
//!   lost with the state's loss probability, then the chain may flip
//!   state. Mean loss and mean burst length are independent dials
//!   ([`GilbertElliott::bursty`]).
//! * [`Reorder`] — netem-style reordering: with some probability a frame
//!   picks up bounded extra latency, so it arrives *after* frames
//!   serialized later. No reorder queue is needed; the extra delay is the
//!   reordering.
//! * duplication — with probability [`Impairments::duplicate`] a hop
//!   mints one extra copy of a forwarded frame (at most one duplicate per
//!   frame per path walk; the copy queues behind the original).
//! * corruption — with probability [`Impairments::corrupt`] a forwarded
//!   frame is marked bit-damaged. It still occupies the wire and arrives
//!   at the far end, where the receiving NIC's MAC discards it on the bad
//!   FCS *before* DMA — the byte-conservation ledger retires it as a drop
//!   at arrival time, never as a delivery.
//! * [`ImpairmentSchedule`] — time-scripted link flaps: absolute
//!   sim-time carrier-down windows during which every offered frame is
//!   dropped. Flaps draw no randomness at all.
//!
//! # Determinism contract
//!
//! Every random decision draws from the owning path's [`SimRng`], which
//! labs fork from the scenario seed — the impairment pattern is a pure
//! function of `(spec, seed)` and is byte-identical whether a sweep runs
//! on 1 thread or 4. [`Impairments::none`] draws **zero** randomness and
//! schedules zero extra work, so un-impaired scenarios consume exactly
//! the RNG stream and event sequence they did before this module existed.

use tengig_sim::stats::Counter;
use tengig_sim::{Nanos, SimRng};

/// Clamp a probability into `[0.0, 1.0]`; NaN maps to `0.0`.
///
/// Every probability dial in this crate funnels through here so a typo'd
/// `1.5` or a divide-by-zero NaN cannot silently corrupt an RNG stream.
#[inline]
pub fn clamp01(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

/// Two-state Gilbert–Elliott burst-loss chain.
///
/// The chain sits in the *good* or *bad* state. Each offered frame is
/// first lost with the current state's loss probability, then the chain
/// flips state with the current state's transition probability. With
/// `loss_good = 0` and `loss_bad = 1` (the [`GilbertElliott::bursty`]
/// parameterization) the stationary loss rate is
/// `p_enter_bad / (p_enter_bad + p_exit_bad)` and the mean burst length
/// is `1 / p_exit_bad` frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Probability of flipping good → bad after a frame in the good state.
    pub p_enter_bad: f64,
    /// Probability of flipping bad → good after a frame in the bad state.
    pub p_exit_bad: f64,
    /// Per-frame loss probability while in the good state.
    pub loss_good: f64,
    /// Per-frame loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// The common two-dial parameterization: a target `mean_loss` rate
    /// delivered in bursts of mean length `mean_burst` frames
    /// (`loss_good = 0`, `loss_bad = 1`).
    ///
    /// `mean_loss` is clamped into `[0, 0.5]` and `mean_burst` floored at
    /// 1 so the derived transition probabilities stay valid.
    pub fn bursty(mean_loss: f64, mean_burst: f64) -> Self {
        let p = clamp01(mean_loss).min(0.5);
        let burst = if mean_burst.is_nan() {
            1.0
        } else {
            mean_burst.max(1.0)
        };
        let p_exit_bad = 1.0 / burst;
        // Stationary bad-state occupancy must equal the mean loss:
        // p_enter / (p_enter + p_exit) = p  =>  p_enter = p_exit * p/(1-p).
        let p_enter_bad = if p <= 0.0 {
            0.0
        } else {
            clamp01(p_exit_bad * p / (1.0 - p))
        };
        GilbertElliott {
            p_enter_bad,
            p_exit_bad,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
    }

    /// Stationary mean loss rate of the chain.
    pub fn mean_loss(&self) -> f64 {
        let denom = self.p_enter_bad + self.p_exit_bad;
        if denom <= 0.0 {
            return self.loss_good;
        }
        let pi_bad = self.p_enter_bad / denom;
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }

    /// Mean bad-state dwell time in frames (the burst-length dial).
    pub fn mean_burst(&self) -> f64 {
        if self.p_exit_bad <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.p_exit_bad
        }
    }
}

/// Bounded-jitter reordering spec.
///
/// With probability `probability` a forwarded frame picks up extra
/// latency drawn uniformly from `[min_extra, max_extra]`, landing it
/// behind frames serialized after it — the receiver sees out-of-order
/// arrivals and emits dup ACKs, exactly the stimulus NewReno's 3-dupack
/// threshold exists to absorb.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reorder {
    /// Per-frame probability of being delayed.
    pub probability: f64,
    /// Minimum extra latency for a delayed frame.
    pub min_extra: Nanos,
    /// Maximum extra latency for a delayed frame (inclusive).
    pub max_extra: Nanos,
}

impl Reorder {
    /// A reorder spec; `probability` is clamped into `[0, 1]` and the
    /// window is normalized so `min_extra <= max_extra`.
    pub fn new(probability: f64, min_extra: Nanos, max_extra: Nanos) -> Self {
        let (lo, hi) = if min_extra <= max_extra {
            (min_extra, max_extra)
        } else {
            (max_extra, min_extra)
        };
        Reorder {
            probability: clamp01(probability),
            min_extra: lo,
            max_extra: hi,
        }
    }
}

/// Maximum number of scripted outage windows per schedule.
///
/// A small fixed array keeps [`Impairments`] `Copy` (hop specs are copied
/// by value throughout the lab); four windows cover every flap scenario
/// in the experiment families.
pub const MAX_OUTAGES: usize = 4;

/// Time-scripted link flaps: absolute sim-time windows during which the
/// carrier is down and every offered frame is dropped.
///
/// Flap decisions draw no randomness — an empty schedule is completely
/// free, and a populated one costs a bounded scan of at most
/// [`MAX_OUTAGES`] windows per frame.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ImpairmentSchedule {
    outages: [Option<(Nanos, Nanos)>; MAX_OUTAGES],
    len: usize,
}

impl ImpairmentSchedule {
    /// An empty schedule (carrier always up).
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a carrier-down window starting at absolute sim time `down_at`
    /// lasting `duration`. Panics if the schedule already holds
    /// [`MAX_OUTAGES`] windows.
    pub fn with_outage(mut self, down_at: Nanos, duration: Nanos) -> Self {
        assert!(
            self.len < MAX_OUTAGES,
            "ImpairmentSchedule holds at most {MAX_OUTAGES} outages"
        );
        self.outages[self.len] = Some((down_at, down_at + duration));
        self.len += 1;
        self
    }

    /// Whether the schedule contains no outage windows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of scripted outage windows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the carrier is down at `now`. Windows are half-open:
    /// `down_at <= now < down_at + duration`.
    pub fn carrier_down(&self, now: Nanos) -> bool {
        self.outages[..self.len]
            .iter()
            .flatten()
            .any(|&(start, end)| start <= now && now < end)
    }

    /// The scripted windows as `(down_at, up_at)` pairs.
    pub fn windows(&self) -> impl Iterator<Item = (Nanos, Nanos)> + '_ {
        self.outages[..self.len].iter().flatten().copied()
    }
}

/// Composable per-hop impairment spec. `Copy`, like the [`crate::Hop`]
/// that carries it.
///
/// The default ([`Impairments::none`]) enables nothing: the fast path
/// checks [`Impairments::is_none`] once and touches neither the RNG nor
/// any per-frame state, so un-impaired runs are bit-for-bit unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Impairments {
    /// Gilbert–Elliott burst loss, if enabled.
    pub burst: Option<GilbertElliott>,
    /// Bounded-jitter reordering, if enabled.
    pub reorder: Option<Reorder>,
    /// Per-frame duplication probability (at most one duplicate is minted
    /// per frame per path walk).
    pub duplicate: f64,
    /// Per-frame bit-corruption probability (frame arrives, NIC drops it
    /// on the bad FCS before DMA).
    pub corrupt: f64,
    /// Scripted carrier-down windows.
    pub schedule: ImpairmentSchedule,
}

impl Impairments {
    /// No impairments at all — the zero-cost, zero-draw default.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether every impairment is disabled (the fast-path check).
    pub fn is_none(&self) -> bool {
        self.burst.is_none()
            && self.reorder.is_none()
            && self.duplicate <= 0.0
            && self.corrupt <= 0.0
            && self.schedule.is_empty()
    }

    /// Enable Gilbert–Elliott burst loss.
    pub fn with_burst(mut self, ge: GilbertElliott) -> Self {
        self.burst = Some(ge);
        self
    }

    /// Enable bounded-jitter reordering.
    pub fn with_reorder(mut self, reorder: Reorder) -> Self {
        self.reorder = Some(reorder);
        self
    }

    /// Set the per-frame duplication probability (clamped into `[0, 1]`).
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = clamp01(p);
        self
    }

    /// Set the per-frame corruption probability (clamped into `[0, 1]`).
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt = clamp01(p);
        self
    }

    /// Attach a flap schedule.
    pub fn with_schedule(mut self, schedule: ImpairmentSchedule) -> Self {
        self.schedule = schedule;
        self
    }
}

/// Why a hop refused a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// Drop-tail buffer overflow (congestion — the only drop the paper's
    /// WAN premise allows).
    Buffer,
    /// Legacy independent Bernoulli loss (`Hop::with_random_loss`).
    Random,
    /// Gilbert–Elliott bad-state burst loss.
    Burst,
    /// Scripted carrier-down window.
    Flap,
}

impl DropCause {
    /// Whether this cause comes from the impairment layer (as opposed to
    /// congestion or the legacy Bernoulli dial).
    pub fn is_impairment(self) -> bool {
        matches!(self, DropCause::Burst | DropCause::Flap)
    }
}

/// Per-hop impairment runtime: the Gilbert–Elliott state bit plus
/// per-cause counters.
#[derive(Debug, Default)]
pub struct ImpairState {
    /// Whether the burst-loss chain is currently in the bad state.
    in_bad: bool,
    /// Frames eaten by the burst-loss chain.
    pub burst_drops: Counter,
    /// Frames eaten by scripted carrier-down windows.
    pub flap_drops: Counter,
    /// Duplicate copies minted by this hop.
    pub dups: Counter,
    /// Frames delayed by the reordering model.
    pub reorders: Counter,
    /// Frames marked bit-corrupted by this hop.
    pub corrupts: Counter,
}

impl ImpairState {
    /// Fresh state: chain in the good state, all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the burst-loss chain is currently in the bad state.
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }

    /// Advance the Gilbert–Elliott chain by one offered frame; returns
    /// `true` when the frame is lost. Loss is decided with the *current*
    /// state's probability, then the chain may flip — so a burst of mean
    /// length `1/p_exit_bad` frames is eaten contiguously.
    pub fn burst_loss(&mut self, ge: &GilbertElliott, rng: &mut SimRng) -> bool {
        let lose = if self.in_bad {
            rng.chance(ge.loss_bad)
        } else {
            rng.chance(ge.loss_good)
        };
        let flip = if self.in_bad {
            rng.chance(ge.p_exit_bad)
        } else {
            rng.chance(ge.p_enter_bad)
        };
        if flip {
            self.in_bad = !self.in_bad;
        }
        if lose {
            self.burst_drops.bump();
        }
        lose
    }

    /// Total frames dropped by the impairment layer (burst + flap).
    pub fn drops(&self) -> u64 {
        self.burst_drops.get() + self.flap_drops.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp01_normalizes_everything() {
        assert_eq!(clamp01(-0.5), 0.0);
        assert_eq!(clamp01(0.25), 0.25);
        assert_eq!(clamp01(1.5), 1.0);
        assert_eq!(clamp01(f64::NAN), 0.0);
        assert_eq!(clamp01(f64::INFINITY), 1.0);
    }

    #[test]
    fn bursty_parameterization_hits_its_dials() {
        let ge = GilbertElliott::bursty(0.01, 8.0);
        assert!((ge.mean_loss() - 0.01).abs() < 1e-12);
        assert!((ge.mean_burst() - 8.0).abs() < 1e-12);
        assert_eq!(ge.loss_good, 0.0);
        assert_eq!(ge.loss_bad, 1.0);
        // Degenerate dials clamp instead of exploding.
        let z = GilbertElliott::bursty(0.0, 0.0);
        assert_eq!(z.p_enter_bad, 0.0);
        assert_eq!(z.mean_loss(), 0.0);
        let n = GilbertElliott::bursty(f64::NAN, f64::NAN);
        assert_eq!(n.mean_loss(), 0.0);
    }

    #[test]
    fn gilbert_elliott_empirical_loss_and_burst_length() {
        let ge = GilbertElliott::bursty(0.02, 5.0);
        let mut st = ImpairState::new();
        let mut rng = SimRng::seeded(7);
        let n = 200_000u64;
        let mut lost = 0u64;
        let mut bursts = 0u64;
        let mut prev_lost = false;
        for _ in 0..n {
            let l = st.burst_loss(&ge, &mut rng);
            if l {
                lost += 1;
                if !prev_lost {
                    bursts += 1;
                }
            }
            prev_lost = l;
        }
        let rate = lost as f64 / n as f64;
        assert!(
            (rate - 0.02).abs() < 0.005,
            "empirical loss {rate} far from 0.02"
        );
        let mean_burst = lost as f64 / bursts as f64;
        assert!(
            (mean_burst - 5.0).abs() < 1.0,
            "empirical burst {mean_burst} far from 5"
        );
        assert_eq!(st.burst_drops.get(), lost);
    }

    #[test]
    fn schedule_windows_are_half_open_and_bounded() {
        let sched = ImpairmentSchedule::none()
            .with_outage(Nanos(100), Nanos(50))
            .with_outage(Nanos(400), Nanos(10));
        assert_eq!(sched.len(), 2);
        assert!(!sched.carrier_down(Nanos(99)));
        assert!(sched.carrier_down(Nanos(100)));
        assert!(sched.carrier_down(Nanos(149)));
        assert!(!sched.carrier_down(Nanos(150)));
        assert!(sched.carrier_down(Nanos(405)));
        assert!(!sched.carrier_down(Nanos(410)));
        assert_eq!(
            sched.windows().collect::<Vec<_>>(),
            vec![(Nanos(100), Nanos(150)), (Nanos(400), Nanos(410))]
        );
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn schedule_rejects_a_fifth_outage() {
        let mut s = ImpairmentSchedule::none();
        for i in 0..5 {
            s = s.with_outage(Nanos(i * 100), Nanos(10));
        }
    }

    #[test]
    fn none_is_none_and_builders_clamp() {
        assert!(Impairments::none().is_none());
        assert!(!Impairments::none().with_duplicate(0.1).is_none());
        assert!(!Impairments::none().with_corrupt(0.1).is_none());
        assert!(!Impairments::none()
            .with_burst(GilbertElliott::bursty(0.01, 2.0))
            .is_none());
        assert!(!Impairments::none()
            .with_reorder(Reorder::new(0.1, Nanos(1), Nanos(2)))
            .is_none());
        assert!(!Impairments::none()
            .with_schedule(ImpairmentSchedule::none().with_outage(Nanos(1), Nanos(1)))
            .is_none());
        // Out-of-range dials clamp.
        assert_eq!(Impairments::none().with_duplicate(7.0).duplicate, 1.0);
        assert_eq!(Impairments::none().with_corrupt(-3.0).corrupt, 0.0);
        let r = Reorder::new(2.0, Nanos(50), Nanos(10));
        assert_eq!(r.probability, 1.0);
        assert_eq!(r.min_extra, Nanos(10));
        assert_eq!(r.max_extra, Nanos(50));
    }

    #[test]
    fn drop_cause_classification() {
        assert!(DropCause::Burst.is_impairment());
        assert!(DropCause::Flap.is_impairment());
        assert!(!DropCause::Buffer.is_impairment());
        assert!(!DropCause::Random.is_impairment());
    }
}
