//! The §4 wide-area network: Sunnyvale → Geneva, 10,037 km.
//!
//! "The WAN utilized a loaned Level3 OC-192 POS (10 Gb/s) circuit from the
//! Level3 PoP at Sunnyvale to StarLight in Chicago and then traversed the
//! transatlantic LHCnet OC-48 POS (2.5 Gb/s) circuit between Chicago and
//! Geneva." End-to-end RTT: 180 ms. The bottleneck is the OC-48 whose
//! SONET-payload capacity is ≈ 2.4 Gb/s — the paper's 2.38 Gb/s record is
//! "roughly 99% payload efficiency" of that circuit.

use crate::impair::{clamp01, Impairments};
use crate::link::{Hop, Path};
use tengig_sim::{Bandwidth, Nanos};

/// SONET OC-48 line rate.
pub const OC48_LINE: u64 = 2_488_320_000;
/// SONET OC-192 line rate.
pub const OC192_LINE: u64 = 9_953_280_000;

/// Payload (SPE) rate of an OC-n circuit: the SONET section/line/path
/// overhead consumes ≈ 3.7% of the line rate.
pub fn pos_payload(line_bps: u64) -> Bandwidth {
    Bandwidth::from_bps((line_bps as f64 * 0.966) as u64)
}

/// Per-frame PPP/HDLC framing overhead on a POS circuit.
pub const POS_FRAMING: u64 = 9;

/// Parameters of the record run's path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WanSpec {
    /// One-way propagation Sunnyvale → Chicago.
    pub prop_svl_chi: Nanos,
    /// One-way propagation Chicago → Geneva.
    pub prop_chi_gva: Nanos,
    /// Bottleneck router egress buffer (Chicago, onto the OC-48).
    pub bottleneck_buffer: u64,
    /// Random (non-congestion) loss probability per frame.
    pub random_loss: f64,
    /// Fault-injection spec applied to the bottleneck OC-48 hop (the
    /// circuit segment where the record run's pathologies would live).
    pub impair: Impairments,
}

impl Default for WanSpec {
    fn default() -> Self {
        Self::record_run()
    }
}

impl WanSpec {
    /// The February 27, 2003 record run: 180 ms RTT (90 ms one way),
    /// loss-free except for congestion.
    pub fn record_run() -> Self {
        WanSpec {
            // ~3,000 km Sunnyvale→Chicago, ~7,000 km Chicago→Geneva;
            // split the 90 ms one-way budget accordingly (router and
            // regeneration delays folded in).
            prop_svl_chi: Nanos::from_millis(27),
            prop_chi_gva: Nanos::from_millis(63),
            bottleneck_buffer: 64 << 20,
            random_loss: 0.0,
            impair: Impairments::none(),
        }
    }

    /// Replace the bottleneck buffer size.
    pub fn with_bottleneck_buffer(mut self, bytes: u64) -> Self {
        self.bottleneck_buffer = bytes;
        self
    }

    /// Add random loss (for Table 1-style recovery studies), clamped
    /// into `[0, 1]` (NaN maps to 0).
    pub fn with_random_loss(mut self, p: f64) -> Self {
        self.random_loss = clamp01(p);
        self
    }

    /// Attach a fault-injection spec to the bottleneck OC-48 hop.
    pub fn with_impairments(mut self, impair: Impairments) -> Self {
        self.impair = impair;
        self
    }

    /// The forward path (data direction): GbE-attached host → Cisco GSR
    /// 12406 → OC-192 to StarLight → Juniper T640 → Cisco 7609 → OC-48 →
    /// Cisco 7606 Geneva.
    pub fn forward_path(&self) -> Path {
        Path {
            hops: vec![
                // Host uplink into the Sunnyvale GSR.
                Hop::wire(
                    "svl-uplink",
                    Bandwidth::from_gbps(10),
                    Nanos::from_micros(5),
                )
                .with_fixed(Nanos::from_micros(10)),
                // Level3 OC-192 POS to Chicago.
                Hop::wire("oc192-svl-chi", pos_payload(OC192_LINE), self.prop_svl_chi)
                    .with_framing(POS_FRAMING)
                    .with_fixed(Nanos::from_micros(20)),
                // StarLight: TeraGrid T640 → Cisco 7609, then the
                // transatlantic OC-48 — the bottleneck, with a finite
                // egress buffer where congestion loss happens.
                Hop::wire("oc48-chi-gva", pos_payload(OC48_LINE), self.prop_chi_gva)
                    .with_framing(POS_FRAMING)
                    .with_fixed(Nanos::from_micros(30))
                    .with_buffer(self.bottleneck_buffer)
                    .with_random_loss(self.random_loss)
                    .with_impairments(self.impair),
                // Geneva access hop.
                Hop::wire(
                    "gva-access",
                    Bandwidth::from_gbps(10),
                    Nanos::from_micros(5),
                )
                .with_fixed(Nanos::from_micros(10)),
            ],
        }
    }

    /// The reverse (ACK) path: same circuit, ACKs are small so the OC-48 is
    /// never binding for them.
    pub fn reverse_path(&self) -> Path {
        self.forward_path()
    }

    /// Round-trip time for a small frame, unloaded.
    pub fn rtt_small(&self) -> Nanos {
        self.forward_path().one_way(90) + self.reverse_path().one_way(90)
    }

    /// The path's bandwidth-delay product at the bottleneck payload rate.
    pub fn bdp(&self) -> u64 {
        pos_payload(OC48_LINE).delay_product(self.rtt_small())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_is_180ms() {
        let wan = WanSpec::record_run();
        let rtt = wan.rtt_small().as_millis_f64();
        assert!((179.0..182.0).contains(&rtt), "RTT {rtt} ms");
    }

    #[test]
    fn bottleneck_is_the_oc48_payload_rate() {
        let wan = WanSpec::record_run();
        let b = wan.forward_path().bottleneck().gbps();
        assert!((2.35..2.45).contains(&b), "bottleneck {b} Gb/s");
        // 2.38 Gb/s over this is ≈ 99% payload efficiency.
        assert!(2.38 / b > 0.98, "record vs bottleneck: {}", 2.38 / b);
    }

    #[test]
    fn bdp_near_56_megabytes() {
        // The §4.1 tuning sets socket buffers to ≈ BDP; at 2.4 Gb/s and
        // 180 ms that is ~54 MB.
        let bdp = WanSpec::record_run().bdp();
        assert!((50_000_000..58_000_000).contains(&bdp), "BDP {bdp}");
    }

    #[test]
    fn pos_payload_overhead() {
        assert!((pos_payload(OC48_LINE).gbps() - 2.4).abs() < 0.01);
        assert!((pos_payload(OC192_LINE).gbps() - 9.61).abs() < 0.05);
    }

    #[test]
    fn with_random_loss_clamps_and_impairments_reach_the_bottleneck() {
        use crate::impair::{GilbertElliott, Impairments};
        // Regression: out-of-range probabilities used to be stored verbatim.
        assert_eq!(WanSpec::record_run().with_random_loss(2.0).random_loss, 1.0);
        assert_eq!(
            WanSpec::record_run().with_random_loss(-1.0).random_loss,
            0.0
        );
        assert_eq!(
            WanSpec::record_run().with_random_loss(f64::NAN).random_loss,
            0.0
        );
        // The impairment spec lands on the OC-48 hop and nowhere else.
        let imp = Impairments::none().with_burst(GilbertElliott::bursty(0.01, 4.0));
        let path = WanSpec::record_run().with_impairments(imp).forward_path();
        for hop in &path.hops {
            if hop.name == "oc48-chi-gva" {
                assert_eq!(hop.impair, imp);
            } else {
                assert!(hop.impair.is_none(), "{} impaired", hop.name);
            }
        }
    }

    #[test]
    fn small_buffer_forces_congestion_loss_under_overdrive() {
        use tengig_sim::SimRng;
        let wan = WanSpec::record_run().with_bottleneck_buffer(64_000);
        let path = wan.forward_path();
        let mut st = crate::link::PathState::new(&path, SimRng::seeded(3));
        // Blast 100 jumbo frames instantaneously: the OC-48 egress buffer
        // (64 KB) cannot hold them.
        let mut dropped = 0;
        for _ in 0..100 {
            if st.send(Nanos::ZERO, 9038).is_none() {
                dropped += 1;
            }
        }
        assert!(dropped > 50, "dropped {dropped}");
    }
}
