//! `tengig-net` — the network fabric between hosts.
//!
//! * [`link`] — store-and-forward hops and multi-hop paths with FIFO
//!   serialization, drop-tail buffers, POS framing, and random loss,
//! * [`fabric`] — grid fabrics: the GbE-into-10GbE fat-tree and the
//!   APENet-style 3D torus, with conservative lookahead bounds for
//!   sharded execution,
//! * [`impair`] — deterministic fault injection: Gilbert–Elliott burst
//!   loss, bounded-jitter reordering, duplication, bit-corruption, and
//!   time-scripted link flaps, composable per hop,
//! * [`switch`] — the Foundry FastIron 1500 (480 Gb/s backplane, per-port
//!   egress queues, ~6 µs forwarding latency),
//! * [`wan`] — the Sunnyvale → Chicago → Geneva OC-192/OC-48 circuit of the
//!   Internet2 Land Speed Record run (§4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod impair;
pub mod link;
pub mod switch;
pub mod wan;

pub use fabric::{FatTreeSpec, TorusSpec};
pub use impair::{
    DropCause, GilbertElliott, ImpairState, ImpairmentSchedule, Impairments, Reorder, MAX_OUTAGES,
};
pub use link::{Delivery, Hop, HopOutcome, HopState, Path, PathState, PathVerdict};
pub use switch::{PortSpec, Switch, SwitchSpec};
pub use wan::{pos_payload, WanSpec, OC192_LINE, OC48_LINE, POS_FRAMING};
