//! `tengig-net` — the network fabric between hosts.
//!
//! * [`link`] — store-and-forward hops and multi-hop paths with FIFO
//!   serialization, drop-tail buffers, POS framing, and random loss,
//! * [`switch`] — the Foundry FastIron 1500 (480 Gb/s backplane, per-port
//!   egress queues, ~6 µs forwarding latency),
//! * [`wan`] — the Sunnyvale → Chicago → Geneva OC-192/OC-48 circuit of the
//!   Internet2 Land Speed Record run (§4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod switch;
pub mod wan;

pub use link::{Hop, HopState, Path, PathState};
pub use switch::{PortSpec, Switch, SwitchSpec};
pub use wan::{pos_payload, WanSpec, OC192_LINE, OC48_LINE, POS_FRAMING};
