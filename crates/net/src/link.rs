//! Links and multi-hop paths.
//!
//! A [`Path`] is a sequence of store-and-forward [`Hop`]s. Each hop
//! serializes the frame at its rate (a FIFO server, so frames queue behind
//! each other), optionally bounded by a drop-tail buffer, then the frame
//! propagates for the hop's delay. This is enough to model everything from
//! a crossover cable to the Sunnyvale–Geneva OC-192/OC-48 circuit.

use tengig_sim::stats::Counter;
use tengig_sim::{Bandwidth, FifoServer, Nanos, SimRng};

/// Static description of one hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// Display name ("xover", "OC-48", …).
    pub name: &'static str,
    /// Serialization rate (payload rate for POS circuits).
    pub rate: Bandwidth,
    /// Propagation delay.
    pub prop: Nanos,
    /// Fixed per-frame forwarding latency (switch/router lookup etc.).
    pub fixed: Nanos,
    /// Egress buffer in bytes; `None` = effectively unbounded.
    pub buffer_bytes: Option<u64>,
    /// Per-frame framing overhead added on this medium (e.g. PPP/HDLC on
    /// POS), in bytes.
    pub framing: u64,
    /// Independent random loss probability per frame (bit errors); the WAN
    /// experiment's premise is that this is ~0 and all loss is congestion.
    pub random_loss: f64,
}

impl Hop {
    /// A plain wire at `rate` with propagation `prop` and no buffer limit.
    pub fn wire(name: &'static str, rate: Bandwidth, prop: Nanos) -> Self {
        Hop {
            name,
            rate,
            prop,
            fixed: Nanos::ZERO,
            buffer_bytes: None,
            framing: 0,
            random_loss: 0.0,
        }
    }

    /// Bound the egress buffer.
    pub fn with_buffer(mut self, bytes: u64) -> Self {
        self.buffer_bytes = Some(bytes);
        self
    }

    /// Add fixed forwarding latency.
    pub fn with_fixed(mut self, fixed: Nanos) -> Self {
        self.fixed = fixed;
        self
    }

    /// Add per-frame media framing overhead.
    pub fn with_framing(mut self, bytes: u64) -> Self {
        self.framing = bytes;
        self
    }

    /// Add a random per-frame loss probability.
    pub fn with_random_loss(mut self, p: f64) -> Self {
        self.random_loss = p;
        self
    }
}

/// Runtime state of one hop.
#[derive(Debug)]
pub struct HopState {
    /// The hop description.
    pub spec: Hop,
    server: FifoServer,
    /// Frames dropped at this hop (buffer overflow).
    pub drops: Counter,
    /// Frames dropped by the random-loss process.
    pub random_drops: Counter,
    /// Frames forwarded.
    pub forwarded: Counter,
    /// Peak backlog observed, in bytes.
    pub peak_backlog_bytes: u64,
}

impl HopState {
    /// Fresh state for a hop.
    pub fn new(spec: Hop) -> Self {
        HopState {
            spec,
            server: FifoServer::new(spec.name),
            drops: Counter::default(),
            random_drops: Counter::default(),
            forwarded: Counter::default(),
            peak_backlog_bytes: 0,
        }
    }

    /// Current backlog in bytes (queue occupancy approximated through the
    /// serialization backlog).
    pub fn backlog_bytes(&self, now: Nanos) -> u64 {
        self.spec.rate.bytes_in(self.server.backlog(now))
    }

    /// Offer a frame of `wire_bytes` to this hop at `now`.
    ///
    /// Returns the arrival time at the far end, or `None` if the frame was
    /// dropped (buffer overflow or random loss).
    pub fn offer(&mut self, now: Nanos, wire_bytes: u64, rng: &mut SimRng) -> Option<Nanos> {
        if self.spec.random_loss > 0.0 && rng.chance(self.spec.random_loss) {
            self.random_drops.bump();
            return None;
        }
        let bytes = wire_bytes + self.spec.framing;
        if let Some(cap) = self.spec.buffer_bytes {
            let backlog = self.backlog_bytes(now);
            if backlog + bytes > cap {
                self.drops.bump();
                return None;
            }
        }
        let backlog = self.backlog_bytes(now);
        self.peak_backlog_bytes = self.peak_backlog_bytes.max(backlog + bytes);
        let service = self.spec.rate.time_to_send(bytes);
        let adm = self.server.admit(now, service);
        self.forwarded.bump();
        Some(adm.done + self.spec.prop + self.spec.fixed)
    }

    /// Utilization of the hop's serializer over `[0, now]`.
    pub fn utilization(&self, now: Nanos) -> f64 {
        self.server.utilization(now)
    }
}

/// A static path description.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Hops in order from sender to receiver.
    pub hops: Vec<Hop>,
}

impl Path {
    /// One-way propagation + fixed latency (excluding serialization).
    pub fn base_latency(&self) -> Nanos {
        self.hops.iter().map(|h| h.prop + h.fixed).sum()
    }

    /// The rate of the slowest hop — the path's bottleneck bandwidth.
    pub fn bottleneck(&self) -> Bandwidth {
        self.hops
            .iter()
            .map(|h| h.rate)
            .min()
            .unwrap_or(Bandwidth::ZERO)
    }

    /// Serialization time for a frame across all hops (store-and-forward).
    pub fn serialization(&self, wire_bytes: u64) -> Nanos {
        self.hops
            .iter()
            .map(|h| h.rate.time_to_send(wire_bytes + h.framing))
            .sum()
    }

    /// Unloaded one-way delay for a frame of `wire_bytes`.
    pub fn one_way(&self, wire_bytes: u64) -> Nanos {
        self.base_latency() + self.serialization(wire_bytes)
    }
}

/// Runtime state of a path.
#[derive(Debug)]
pub struct PathState {
    /// Hop states in order.
    pub hops: Vec<HopState>,
    rng: SimRng,
}

impl PathState {
    /// Instantiate runtime state for `path`.
    pub fn new(path: &Path, rng: SimRng) -> Self {
        PathState {
            hops: path.hops.iter().map(|&h| HopState::new(h)).collect(),
            rng,
        }
    }

    /// Walk a frame of `wire_bytes` down the path starting at `now`.
    /// Returns the delivery time, or `None` if any hop dropped it.
    pub fn send(&mut self, now: Nanos, wire_bytes: u64) -> Option<Nanos> {
        let mut t = now;
        for hop in &mut self.hops {
            t = hop.offer(t, wire_bytes, &mut self.rng)?;
        }
        Some(t)
    }

    /// Total frames dropped across all hops.
    pub fn total_drops(&self) -> u64 {
        self.hops
            .iter()
            .map(|h| h.drops.get() + h.random_drops.get())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gbps10() -> Bandwidth {
        Bandwidth::from_gbps(10)
    }

    #[test]
    fn single_wire_delivery_time() {
        let path = Path {
            hops: vec![Hop::wire("xover", gbps10(), Nanos::from_nanos(50))],
        };
        let mut st = PathState::new(&path, SimRng::seeded(1));
        // 1538 wire bytes at 10 Gb/s = 1230.4 → 1231 ns, + 50 ns prop.
        let t = st.send(Nanos::ZERO, 1538).unwrap();
        assert_eq!(t, Nanos(1281));
    }

    #[test]
    fn frames_queue_behind_each_other() {
        let path = Path {
            hops: vec![Hop::wire("xover", gbps10(), Nanos::ZERO)],
        };
        let mut st = PathState::new(&path, SimRng::seeded(1));
        let t1 = st.send(Nanos::ZERO, 12_500).unwrap(); // 10 µs serialization
        let t2 = st.send(Nanos::ZERO, 12_500).unwrap();
        assert_eq!(t1, Nanos::from_micros(10));
        assert_eq!(
            t2,
            Nanos::from_micros(20),
            "second frame waits for the first"
        );
    }

    #[test]
    fn store_and_forward_adds_per_hop_serialization() {
        let two = Path {
            hops: vec![
                Hop::wire("a", gbps10(), Nanos::ZERO),
                Hop::wire("b", gbps10(), Nanos::ZERO),
            ],
        };
        let one = Path {
            hops: vec![Hop::wire("a", gbps10(), Nanos::ZERO)],
        };
        assert_eq!(two.one_way(12_500), one.one_way(12_500) * 2);
    }

    #[test]
    fn drop_tail_buffer_overflow() {
        // 1 Gb/s hop with a 20 KB buffer: a burst of 10 × 9 KB frames
        // overflows.
        let hop = Hop::wire("slow", Bandwidth::from_gbps(1), Nanos::ZERO).with_buffer(20_000);
        let path = Path { hops: vec![hop] };
        let mut st = PathState::new(&path, SimRng::seeded(1));
        let mut delivered = 0;
        for _ in 0..10 {
            if st.send(Nanos::ZERO, 9018).is_some() {
                delivered += 1;
            }
        }
        assert_eq!(
            delivered, 2,
            "only two 9 KB frames fit a 20 KB buffer at t=0"
        );
        assert_eq!(st.total_drops(), 8);
        // After the queue drains, frames flow again.
        let later = Nanos::from_millis(10);
        assert!(st.send(later, 9018).is_some());
    }

    #[test]
    fn bottleneck_and_base_latency() {
        let path = Path {
            hops: vec![
                Hop::wire(
                    "oc192",
                    Bandwidth::from_gbps_f64(9.6),
                    Nanos::from_millis(30),
                ),
                Hop::wire(
                    "oc48",
                    Bandwidth::from_gbps_f64(2.4),
                    Nanos::from_millis(60),
                ),
            ],
        };
        assert_eq!(path.bottleneck(), Bandwidth::from_gbps_f64(2.4));
        assert_eq!(path.base_latency(), Nanos::from_millis(90));
    }

    #[test]
    fn random_loss_drops_roughly_p_fraction() {
        let hop = Hop::wire("lossy", gbps10(), Nanos::ZERO).with_random_loss(0.1);
        let path = Path { hops: vec![hop] };
        let mut st = PathState::new(&path, SimRng::seeded(42));
        let mut dropped = 0;
        for i in 0..10_000u64 {
            if st.send(Nanos::from_micros(10 * i), 1538).is_none() {
                dropped += 1;
            }
        }
        assert!(
            (800..1200).contains(&dropped),
            "dropped {dropped}/10000 at p=0.1"
        );
    }

    #[test]
    fn framing_overhead_charged_per_hop() {
        let plain = Hop::wire("pos", gbps10(), Nanos::ZERO);
        let pos = plain.with_framing(9);
        let p1 = Path { hops: vec![plain] };
        let p2 = Path { hops: vec![pos] };
        assert!(p2.serialization(9018) > p1.serialization(9018));
    }
}
