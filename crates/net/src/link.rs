//! Links and multi-hop paths.
//!
//! A [`Path`] is a sequence of store-and-forward [`Hop`]s. Each hop
//! serializes the frame at its rate (a FIFO server, so frames queue behind
//! each other), optionally bounded by a drop-tail buffer, then the frame
//! propagates for the hop's delay. This is enough to model everything from
//! a crossover cable to the Sunnyvale–Geneva OC-192/OC-48 circuit.

use crate::impair::{clamp01, DropCause, ImpairState, Impairments};
use tengig_sim::stats::Counter;
use tengig_sim::{Bandwidth, FifoServer, Nanos, SimRng};

/// Static description of one hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// Display name ("xover", "OC-48", …).
    pub name: &'static str,
    /// Serialization rate (payload rate for POS circuits).
    pub rate: Bandwidth,
    /// Propagation delay.
    pub prop: Nanos,
    /// Fixed per-frame forwarding latency (switch/router lookup etc.).
    pub fixed: Nanos,
    /// Egress buffer in bytes; `None` = effectively unbounded.
    pub buffer_bytes: Option<u64>,
    /// Per-frame framing overhead added on this medium (e.g. PPP/HDLC on
    /// POS), in bytes.
    pub framing: u64,
    /// Independent random loss probability per frame (bit errors); the WAN
    /// experiment's premise is that this is ~0 and all loss is congestion.
    pub random_loss: f64,
    /// Composable fault-injection spec ([`crate::impair`]); defaults to
    /// [`Impairments::none`], which costs nothing.
    pub impair: Impairments,
}

impl Hop {
    /// A plain wire at `rate` with propagation `prop` and no buffer limit.
    pub fn wire(name: &'static str, rate: Bandwidth, prop: Nanos) -> Self {
        Hop {
            name,
            rate,
            prop,
            fixed: Nanos::ZERO,
            buffer_bytes: None,
            framing: 0,
            random_loss: 0.0,
            impair: Impairments::none(),
        }
    }

    /// Bound the egress buffer.
    pub fn with_buffer(mut self, bytes: u64) -> Self {
        self.buffer_bytes = Some(bytes);
        self
    }

    /// Add fixed forwarding latency.
    pub fn with_fixed(mut self, fixed: Nanos) -> Self {
        self.fixed = fixed;
        self
    }

    /// Add per-frame media framing overhead.
    pub fn with_framing(mut self, bytes: u64) -> Self {
        self.framing = bytes;
        self
    }

    /// Add a random per-frame loss probability, clamped into `[0, 1]`
    /// (NaN maps to 0 — see [`clamp01`]).
    pub fn with_random_loss(mut self, p: f64) -> Self {
        self.random_loss = clamp01(p);
        self
    }

    /// Attach a fault-injection spec.
    pub fn with_impairments(mut self, impair: Impairments) -> Self {
        self.impair = impair;
        self
    }
}

/// Outcome of offering one frame copy to a hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopOutcome {
    /// The hop forwarded the frame.
    Forward {
        /// Arrival time at the far end of the hop.
        at: Nanos,
        /// The frame was bit-corrupted on this hop (it still travels; the
        /// receiving NIC discards it on the bad FCS).
        corrupted: bool,
        /// The hop minted one duplicate copy of the frame.
        duplicated: bool,
        /// The frame picked up extra reordering latency on this hop.
        reordered: bool,
    },
    /// The hop dropped the frame.
    Drop(DropCause),
}

/// Runtime state of one hop.
#[derive(Debug)]
pub struct HopState {
    /// The hop description.
    pub spec: Hop,
    server: FifoServer,
    /// Frames dropped at this hop (buffer overflow).
    pub drops: Counter,
    /// Frames dropped by the random-loss process.
    pub random_drops: Counter,
    /// Frames forwarded.
    pub forwarded: Counter,
    /// Peak backlog observed, in bytes.
    pub peak_backlog_bytes: u64,
    /// Impairment runtime (burst-loss chain state + per-cause counters).
    pub impair: ImpairState,
}

impl HopState {
    /// Fresh state for a hop.
    pub fn new(spec: Hop) -> Self {
        HopState {
            spec,
            server: FifoServer::new(spec.name),
            drops: Counter::default(),
            random_drops: Counter::default(),
            forwarded: Counter::default(),
            peak_backlog_bytes: 0,
            impair: ImpairState::new(),
        }
    }

    /// Current backlog in bytes (queue occupancy approximated through the
    /// serialization backlog).
    pub fn backlog_bytes(&self, now: Nanos) -> u64 {
        self.spec.rate.bytes_in(self.server.backlog(now))
    }

    /// Offer a frame of `wire_bytes` to this hop at `now`.
    ///
    /// Returns the arrival time at the far end, or `None` if the frame was
    /// dropped (buffer overflow, random loss, burst loss, or a scripted
    /// flap). A corrupted frame still "arrives" here; callers that care
    /// about corruption use [`HopState::offer_verdict`].
    pub fn offer(&mut self, now: Nanos, wire_bytes: u64, rng: &mut SimRng) -> Option<Nanos> {
        match self.offer_verdict(now, wire_bytes, rng, false) {
            HopOutcome::Forward { at, .. } => Some(at),
            HopOutcome::Drop(_) => None,
        }
    }

    /// Offer a frame to this hop, reporting the full impairment verdict.
    ///
    /// `allow_dup` gates the duplication draw so a path walk mints at
    /// most one duplicate per frame. Draw order is fixed and documented:
    /// legacy random loss, then (only when impairments are active) the
    /// flap check (no draw), burst chain, corruption, duplication,
    /// reordering — so un-impaired hops consume exactly the legacy RNG
    /// stream.
    pub fn offer_verdict(
        &mut self,
        now: Nanos,
        wire_bytes: u64,
        rng: &mut SimRng,
        allow_dup: bool,
    ) -> HopOutcome {
        if self.spec.random_loss > 0.0 && rng.chance(self.spec.random_loss) {
            self.random_drops.bump();
            return HopOutcome::Drop(DropCause::Random);
        }
        let active = !self.spec.impair.is_none();
        if active {
            if self.spec.impair.schedule.carrier_down(now) {
                self.impair.flap_drops.bump();
                return HopOutcome::Drop(DropCause::Flap);
            }
            if let Some(ge) = self.spec.impair.burst {
                if self.impair.burst_loss(&ge, rng) {
                    return HopOutcome::Drop(DropCause::Burst);
                }
            }
        }
        let bytes = wire_bytes + self.spec.framing;
        if let Some(cap) = self.spec.buffer_bytes {
            let backlog = self.backlog_bytes(now);
            if backlog + bytes > cap {
                self.drops.bump();
                return HopOutcome::Drop(DropCause::Buffer);
            }
        }
        let backlog = self.backlog_bytes(now);
        self.peak_backlog_bytes = self.peak_backlog_bytes.max(backlog + bytes);
        let service = self.spec.rate.time_to_send(bytes);
        let adm = self.server.admit(now, service);
        self.forwarded.bump();
        let mut at = adm.done + self.spec.prop + self.spec.fixed;
        let mut corrupted = false;
        let mut duplicated = false;
        let mut reordered = false;
        if active {
            let imp = self.spec.impair;
            if imp.corrupt > 0.0 && rng.chance(imp.corrupt) {
                self.impair.corrupts.bump();
                corrupted = true;
            }
            if allow_dup && imp.duplicate > 0.0 && rng.chance(imp.duplicate) {
                self.impair.dups.bump();
                duplicated = true;
            }
            if let Some(r) = imp.reorder {
                if r.probability > 0.0 && rng.chance(r.probability) {
                    let extra = if r.min_extra == r.max_extra {
                        r.min_extra
                    } else {
                        Nanos(rng.range(r.min_extra.as_nanos(), r.max_extra.as_nanos() + 1))
                    };
                    self.impair.reorders.bump();
                    at += extra;
                    reordered = true;
                }
            }
        }
        HopOutcome::Forward {
            at,
            corrupted,
            duplicated,
            reordered,
        }
    }

    /// Utilization of the hop's serializer over `[0, now]`.
    pub fn utilization(&self, now: Nanos) -> f64 {
        self.server.utilization(now)
    }
}

/// A static path description.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Hops in order from sender to receiver.
    pub hops: Vec<Hop>,
}

impl Path {
    /// One-way propagation + fixed latency (excluding serialization).
    pub fn base_latency(&self) -> Nanos {
        self.hops.iter().map(|h| h.prop + h.fixed).sum()
    }

    /// The rate of the slowest hop — the path's bottleneck bandwidth.
    pub fn bottleneck(&self) -> Bandwidth {
        self.hops
            .iter()
            .map(|h| h.rate)
            .min()
            .unwrap_or(Bandwidth::ZERO)
    }

    /// Serialization time for a frame across all hops (store-and-forward).
    pub fn serialization(&self, wire_bytes: u64) -> Nanos {
        self.hops
            .iter()
            .map(|h| h.rate.time_to_send(wire_bytes + h.framing))
            .sum()
    }

    /// Unloaded one-way delay for a frame of `wire_bytes`.
    pub fn one_way(&self, wire_bytes: u64) -> Nanos {
        self.base_latency() + self.serialization(wire_bytes)
    }
}

/// Runtime state of a path.
#[derive(Debug)]
pub struct PathState {
    /// Hop states in order.
    pub hops: Vec<HopState>,
    rng: SimRng,
}

impl PathState {
    /// Instantiate runtime state for `path`.
    pub fn new(path: &Path, rng: SimRng) -> Self {
        PathState {
            hops: path.hops.iter().map(|&h| HopState::new(h)).collect(),
            rng,
        }
    }

    /// Walk a frame of `wire_bytes` down the path starting at `now`.
    /// Returns the delivery time, or `None` if any hop dropped it.
    ///
    /// Never mints duplicates; a corrupted frame still counts as
    /// delivered here. Callers that model the receiving NIC use
    /// [`PathState::send_verdict`].
    pub fn send(&mut self, now: Nanos, wire_bytes: u64) -> Option<Nanos> {
        let v = self.send_verdict(now, wire_bytes, false);
        v.deliveries[0].map(|d| d.at)
    }

    /// Walk a frame down the path, reporting every copy's fate.
    ///
    /// When `allow_dup` is set, the impairment layer may mint at most one
    /// duplicate; the copy re-traverses the path from the hop that minted
    /// it (queueing behind the original in that hop's serializer), so a
    /// frame yields at most two deliveries. Every copy terminates in
    /// exactly one of: a [`Delivery`] slot, or a drop counted in
    /// [`PathVerdict::dropped`].
    pub fn send_verdict(&mut self, now: Nanos, wire_bytes: u64, allow_dup: bool) -> PathVerdict {
        let mut v = PathVerdict::default();
        let mut dup_from: Option<(usize, Nanos)> = None;
        let mut t = now;
        let mut corrupted = false;
        let mut reordered = false;
        let mut delivered = true;
        for (i, hop) in self.hops.iter_mut().enumerate() {
            let dup_ok = allow_dup && dup_from.is_none();
            match hop.offer_verdict(t, wire_bytes, &mut self.rng, dup_ok) {
                HopOutcome::Forward {
                    at,
                    corrupted: c,
                    duplicated,
                    reordered: r,
                } => {
                    if duplicated {
                        dup_from = Some((i, t));
                    }
                    corrupted |= c;
                    reordered |= r;
                    t = at;
                }
                HopOutcome::Drop(cause) => {
                    v.dropped += 1;
                    if cause.is_impairment() {
                        v.dropped_impair += 1;
                    }
                    delivered = false;
                    break;
                }
            }
        }
        let mut filled = 0;
        if delivered {
            v.deliveries[0] = Some(Delivery {
                at: t,
                corrupted,
                reordered,
            });
            filled = 1;
        }
        if let Some((start, t0)) = dup_from {
            v.duplicated = true;
            let mut t = t0;
            let mut corrupted = false;
            let mut reordered = false;
            let mut delivered = true;
            for hop in self.hops[start..].iter_mut() {
                match hop.offer_verdict(t, wire_bytes, &mut self.rng, false) {
                    HopOutcome::Forward {
                        at,
                        corrupted: c,
                        reordered: r,
                        ..
                    } => {
                        corrupted |= c;
                        reordered |= r;
                        t = at;
                    }
                    HopOutcome::Drop(cause) => {
                        v.dropped += 1;
                        if cause.is_impairment() {
                            v.dropped_impair += 1;
                        }
                        delivered = false;
                        break;
                    }
                }
            }
            if delivered {
                v.deliveries[filled] = Some(Delivery {
                    at: t,
                    corrupted,
                    reordered,
                });
            }
        }
        v
    }

    /// Total frames dropped across all hops, every cause included.
    pub fn total_drops(&self) -> u64 {
        self.hops
            .iter()
            .map(|h| h.drops.get() + h.random_drops.get() + h.impair.drops())
            .sum()
    }

    /// Frames dropped by the impairment layer (burst + flap) across all
    /// hops; excludes buffer overflow and legacy random loss.
    pub fn impair_drops(&self) -> u64 {
        self.hops.iter().map(|h| h.impair.drops()).sum()
    }

    /// Duplicate copies minted across all hops.
    pub fn dup_frames(&self) -> u64 {
        self.hops.iter().map(|h| h.impair.dups.get()).sum()
    }

    /// Frames delayed by the reordering model across all hops.
    pub fn reordered_frames(&self) -> u64 {
        self.hops.iter().map(|h| h.impair.reorders.get()).sum()
    }

    /// Frames marked bit-corrupted across all hops.
    pub fn corrupt_marks(&self) -> u64 {
        self.hops.iter().map(|h| h.impair.corrupts.get()).sum()
    }
}

/// One delivered frame copy at the end of a path walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Arrival time at the far end of the path.
    pub at: Nanos,
    /// The copy was bit-corrupted en route; the receiving NIC will
    /// discard it on the bad FCS before DMA.
    pub corrupted: bool,
    /// The copy picked up reordering latency on some hop.
    pub reordered: bool,
}

/// Outcome of [`PathState::send_verdict`]: the fate of every copy of one
/// offered frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PathVerdict {
    /// Delivered copies (at most two: the original and one duplicate).
    pub deliveries: [Option<Delivery>; 2],
    /// A duplicate copy was minted during this walk (it may still have
    /// been dropped downstream).
    pub duplicated: bool,
    /// Copies dropped at some hop, any cause.
    pub dropped: u32,
    /// Of [`PathVerdict::dropped`], how many were impairment-caused
    /// (burst or flap) rather than buffer overflow / legacy random loss.
    pub dropped_impair: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gbps10() -> Bandwidth {
        Bandwidth::from_gbps(10)
    }

    #[test]
    fn single_wire_delivery_time() {
        let path = Path {
            hops: vec![Hop::wire("xover", gbps10(), Nanos::from_nanos(50))],
        };
        let mut st = PathState::new(&path, SimRng::seeded(1));
        // 1538 wire bytes at 10 Gb/s = 1230.4 → 1231 ns, + 50 ns prop.
        let t = st.send(Nanos::ZERO, 1538).unwrap();
        assert_eq!(t, Nanos(1281));
    }

    #[test]
    fn frames_queue_behind_each_other() {
        let path = Path {
            hops: vec![Hop::wire("xover", gbps10(), Nanos::ZERO)],
        };
        let mut st = PathState::new(&path, SimRng::seeded(1));
        let t1 = st.send(Nanos::ZERO, 12_500).unwrap(); // 10 µs serialization
        let t2 = st.send(Nanos::ZERO, 12_500).unwrap();
        assert_eq!(t1, Nanos::from_micros(10));
        assert_eq!(
            t2,
            Nanos::from_micros(20),
            "second frame waits for the first"
        );
    }

    #[test]
    fn store_and_forward_adds_per_hop_serialization() {
        let two = Path {
            hops: vec![
                Hop::wire("a", gbps10(), Nanos::ZERO),
                Hop::wire("b", gbps10(), Nanos::ZERO),
            ],
        };
        let one = Path {
            hops: vec![Hop::wire("a", gbps10(), Nanos::ZERO)],
        };
        assert_eq!(two.one_way(12_500), one.one_way(12_500) * 2);
    }

    #[test]
    fn drop_tail_buffer_overflow() {
        // 1 Gb/s hop with a 20 KB buffer: a burst of 10 × 9 KB frames
        // overflows.
        let hop = Hop::wire("slow", Bandwidth::from_gbps(1), Nanos::ZERO).with_buffer(20_000);
        let path = Path { hops: vec![hop] };
        let mut st = PathState::new(&path, SimRng::seeded(1));
        let mut delivered = 0;
        for _ in 0..10 {
            if st.send(Nanos::ZERO, 9018).is_some() {
                delivered += 1;
            }
        }
        assert_eq!(
            delivered, 2,
            "only two 9 KB frames fit a 20 KB buffer at t=0"
        );
        assert_eq!(st.total_drops(), 8);
        // After the queue drains, frames flow again.
        let later = Nanos::from_millis(10);
        assert!(st.send(later, 9018).is_some());
    }

    #[test]
    fn bottleneck_and_base_latency() {
        let path = Path {
            hops: vec![
                Hop::wire(
                    "oc192",
                    Bandwidth::from_gbps_f64(9.6),
                    Nanos::from_millis(30),
                ),
                Hop::wire(
                    "oc48",
                    Bandwidth::from_gbps_f64(2.4),
                    Nanos::from_millis(60),
                ),
            ],
        };
        assert_eq!(path.bottleneck(), Bandwidth::from_gbps_f64(2.4));
        assert_eq!(path.base_latency(), Nanos::from_millis(90));
    }

    #[test]
    fn random_loss_drops_roughly_p_fraction() {
        let hop = Hop::wire("lossy", gbps10(), Nanos::ZERO).with_random_loss(0.1);
        let path = Path { hops: vec![hop] };
        let mut st = PathState::new(&path, SimRng::seeded(42));
        let mut dropped = 0;
        for i in 0..10_000u64 {
            if st.send(Nanos::from_micros(10 * i), 1538).is_none() {
                dropped += 1;
            }
        }
        assert!(
            (800..1200).contains(&dropped),
            "dropped {dropped}/10000 at p=0.1"
        );
    }

    #[test]
    fn framing_overhead_charged_per_hop() {
        let plain = Hop::wire("pos", gbps10(), Nanos::ZERO);
        let pos = plain.with_framing(9);
        let p1 = Path { hops: vec![plain] };
        let p2 = Path { hops: vec![pos] };
        assert!(p2.serialization(9018) > p1.serialization(9018));
    }

    #[test]
    fn with_random_loss_clamps_out_of_range_probabilities() {
        // Regression: these used to be stored verbatim, quietly skewing
        // the RNG stream and the drop accounting.
        let h = Hop::wire("h", gbps10(), Nanos::ZERO);
        assert_eq!(h.with_random_loss(1.5).random_loss, 1.0);
        assert_eq!(h.with_random_loss(-0.25).random_loss, 0.0);
        assert_eq!(h.with_random_loss(f64::NAN).random_loss, 0.0);
        // p = 1 (after clamping) drops every frame.
        let path = Path {
            hops: vec![h.with_random_loss(7.0)],
        };
        let mut st = PathState::new(&path, SimRng::seeded(1));
        assert!(st.send(Nanos::ZERO, 1538).is_none());
        assert_eq!(st.total_drops(), 1);
    }

    #[test]
    fn burst_loss_eats_contiguous_runs() {
        use crate::impair::{GilbertElliott, Impairments};
        let hop = Hop::wire("ge", gbps10(), Nanos::ZERO)
            .with_impairments(Impairments::none().with_burst(GilbertElliott::bursty(0.05, 6.0)));
        let path = Path { hops: vec![hop] };
        let mut st = PathState::new(&path, SimRng::seeded(9));
        let mut dropped = 0u64;
        let mut bursts = 0u64;
        let mut prev = false;
        for i in 0..20_000u64 {
            let lost = st.send(Nanos::from_micros(10 * i), 1538).is_none();
            if lost {
                dropped += 1;
                if !prev {
                    bursts += 1;
                }
            }
            prev = lost;
        }
        let rate = dropped as f64 / 20_000.0;
        assert!((0.03..0.07).contains(&rate), "loss rate {rate}");
        let mean_burst = dropped as f64 / bursts as f64;
        assert!((4.0..8.0).contains(&mean_burst), "mean burst {mean_burst}");
        assert_eq!(st.impair_drops(), dropped);
        assert_eq!(st.total_drops(), dropped);
    }

    #[test]
    fn flap_schedule_drops_only_inside_the_window() {
        use crate::impair::{ImpairmentSchedule, Impairments};
        let sched =
            ImpairmentSchedule::none().with_outage(Nanos::from_micros(100), Nanos::from_micros(50));
        let hop = Hop::wire("flappy", gbps10(), Nanos::ZERO)
            .with_impairments(Impairments::none().with_schedule(sched));
        let path = Path { hops: vec![hop] };
        let mut st = PathState::new(&path, SimRng::seeded(1));
        assert!(st.send(Nanos::from_micros(99), 1538).is_some());
        assert!(st.send(Nanos::from_micros(100), 1538).is_none());
        assert!(st.send(Nanos::from_micros(149), 1538).is_none());
        assert!(st.send(Nanos::from_micros(150), 1538).is_some());
        assert_eq!(st.impair_drops(), 2);
        assert_eq!(st.hops[0].impair.flap_drops.get(), 2);
    }

    #[test]
    fn duplication_mints_at_most_one_extra_copy() {
        use crate::impair::Impairments;
        let hop = Hop::wire("dup", gbps10(), Nanos::ZERO)
            .with_impairments(Impairments::none().with_duplicate(1.0));
        let path = Path { hops: vec![hop] };
        let mut st = PathState::new(&path, SimRng::seeded(1));
        let v = st.send_verdict(Nanos::ZERO, 1538, true);
        assert!(v.duplicated);
        let copies: Vec<_> = v.deliveries.iter().flatten().collect();
        assert_eq!(copies.len(), 2, "exactly original + one duplicate");
        // The duplicate queues behind the original on the same serializer.
        assert!(copies[1].at > copies[0].at);
        assert_eq!(st.dup_frames(), 1);
        // Without allow_dup (the legacy send path) no copy is minted.
        let v2 = st.send_verdict(Nanos::from_micros(50), 1538, false);
        assert!(!v2.duplicated);
        assert_eq!(v2.deliveries.iter().flatten().count(), 1);
    }

    #[test]
    fn corruption_marks_but_still_delivers_to_the_nic() {
        use crate::impair::Impairments;
        let hop = Hop::wire("dirty", gbps10(), Nanos::ZERO)
            .with_impairments(Impairments::none().with_corrupt(1.0));
        let path = Path { hops: vec![hop] };
        let mut st = PathState::new(&path, SimRng::seeded(1));
        let v = st.send_verdict(Nanos::ZERO, 1538, true);
        let d = v.deliveries[0].expect("corrupted frames still arrive");
        assert!(d.corrupted);
        assert_eq!(v.dropped, 0);
        assert_eq!(st.corrupt_marks(), 1);
        // The legacy send facade treats it as delivered (it reached the
        // far end; the NIC-level discard is the lab's job).
        assert!(st.send(Nanos::from_micros(10), 1538).is_some());
    }

    #[test]
    fn reordering_delays_a_frame_past_its_successor() {
        use crate::impair::{Impairments, Reorder};
        // Half the frames get exactly 10 µs of extra latency; with sends
        // 5 µs apart a delayed frame lands after its undelayed successor,
        // so reordering shows up as arrival-order inversions.
        let hop = Hop::wire("jitter", gbps10(), Nanos::ZERO).with_impairments(
            Impairments::none().with_reorder(Reorder::new(
                0.5,
                Nanos::from_micros(10),
                Nanos::from_micros(10),
            )),
        );
        let path = Path { hops: vec![hop] };
        let mut st = PathState::new(&path, SimRng::seeded(3));
        let mut inversions = 0;
        let mut prev_arrival = Nanos::ZERO;
        for i in 0..200u64 {
            let v = st.send_verdict(Nanos::from_micros(5 * i), 1538, true);
            let d = v.deliveries[0].expect("no loss configured");
            if d.at < prev_arrival {
                inversions += 1;
            }
            prev_arrival = d.at;
        }
        assert!(inversions > 10, "saw only {inversions} inversions");
        assert!(st.reordered_frames() > 50);
    }

    #[test]
    fn none_impairments_leave_the_rng_stream_untouched() {
        // A path with Impairments::none() must consume exactly the same
        // RNG stream as one built before the impair module existed —
        // byte-identical JSONL across sweeps depends on it.
        let lossy = Hop::wire("l", gbps10(), Nanos::ZERO).with_random_loss(0.3);
        let path = Path { hops: vec![lossy] };
        let mut a = PathState::new(&path, SimRng::seeded(77));
        let mut b = SimRng::seeded(77);
        for i in 0..1000u64 {
            let sent = a.send(Nanos::from_micros(10 * i), 1538).is_some();
            // Reference: the only draw the legacy path makes.
            let dropped = b.chance(0.3);
            assert_eq!(sent, !dropped, "frame {i} diverged");
        }
    }
}
