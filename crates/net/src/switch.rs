//! The Foundry FastIron 1500 switch model.
//!
//! §3.1: "we use a Foundry FastIron 1500 switch for both our indirect
//! single-flow and multi-flow tests. In the latter case, the switch
//! aggregates GbE and 10GbE streams from (or to) many hosts into a 10GbE
//! stream to (or from) a single host. The total backplane bandwidth
//! (480 Gb/s) in the switch far exceeds the needs of our tests."
//!
//! The model: store-and-forward ingress, a (non-binding) backplane server,
//! per-egress-port FIFO serializers with finite buffers, and a fixed
//! port-to-port forwarding latency calibrated to the paper's observation
//! that the switch adds ~6 µs to a small-frame one-way trip
//! (25 µs through the switch vs 19 µs back-to-back).

use tengig_sim::stats::Counter;
use tengig_sim::{Bandwidth, FifoServer, Nanos};

/// Per-port static configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortSpec {
    /// Line rate of the port.
    pub rate: Bandwidth,
    /// Egress buffer in bytes.
    pub buffer_bytes: u64,
}

/// Static switch description.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchSpec {
    /// Display name.
    pub name: &'static str,
    /// Aggregate backplane bandwidth.
    pub backplane: Bandwidth,
    /// Fixed port-to-port forwarding latency (lookup + scheduling),
    /// excluding store-and-forward serialization.
    pub forward_latency: Nanos,
    /// Ports, indexed by port id.
    pub ports: Vec<PortSpec>,
}

impl SwitchSpec {
    /// A FastIron 1500 with `n10` 10GbE ports and `n1` GbE ports
    /// (10GbE ports come first).
    pub fn fastiron_1500(n10: usize, n1: usize) -> Self {
        let mut ports = Vec::with_capacity(n10 + n1);
        for _ in 0..n10 {
            ports.push(PortSpec {
                rate: Bandwidth::from_gbps(10),
                buffer_bytes: 2 << 20,
            });
        }
        for _ in 0..n1 {
            ports.push(PortSpec {
                rate: Bandwidth::from_gbps(1),
                buffer_bytes: 1 << 20,
            });
        }
        SwitchSpec {
            name: "FastIron-1500",
            backplane: Bandwidth::from_gbps(480),
            forward_latency: Nanos::from_nanos(5_850),
            ports,
        }
    }
}

/// Runtime switch state.
#[derive(Debug)]
pub struct Switch {
    /// The static description.
    pub spec: SwitchSpec,
    backplane: FifoServer,
    egress: Vec<FifoServer>,
    /// Frames dropped per egress port.
    pub drops: Vec<Counter>,
    /// Frames forwarded per egress port.
    pub forwarded: Vec<Counter>,
}

impl Switch {
    /// Instantiate runtime state.
    pub fn new(spec: SwitchSpec) -> Self {
        let egress = spec
            .ports
            .iter()
            .map(|_| FifoServer::new("egress"))
            .collect();
        let drops = spec.ports.iter().map(|_| Counter::default()).collect();
        let forwarded = spec.ports.iter().map(|_| Counter::default()).collect();
        Switch {
            spec,
            backplane: FifoServer::new("backplane"),
            egress,
            drops,
            forwarded,
        }
    }

    /// A frame of `wire_bytes` fully received on an ingress port at `now`
    /// (store-and-forward: the caller accounts ingress serialization) wants
    /// to leave via `out_port`. Returns the time the frame has fully left
    /// the egress port, or `None` on buffer overflow.
    pub fn forward(&mut self, now: Nanos, out_port: usize, wire_bytes: u64) -> Option<Nanos> {
        let port = self.spec.ports[out_port];
        // Egress queue occupancy check (drop-tail).
        let backlog_bytes = port.rate.bytes_in(self.egress[out_port].backlog(now));
        if backlog_bytes + wire_bytes > port.buffer_bytes {
            self.drops[out_port].bump();
            return None;
        }
        // Cross the backplane (never binding in the paper's tests, but the
        // model keeps it honest).
        let bp = self
            .backplane
            .admit(now, self.spec.backplane.time_to_send(wire_bytes));
        let ready = bp.done + self.spec.forward_latency;
        // Serialize out the egress port.
        let adm = self.egress[out_port].admit(ready, port.rate.time_to_send(wire_bytes));
        self.forwarded[out_port].bump();
        Some(adm.done)
    }

    /// Utilization of an egress port over `[0, now]`.
    pub fn egress_utilization(&self, port: usize, now: Nanos) -> f64 {
        self.egress[port].utilization(now)
    }

    /// Total drops across all ports.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().map(|c| c.get()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adds_about_six_microseconds_for_small_frames() {
        // Paper: 19 µs back-to-back vs 25 µs through the switch — the
        // switch contributes ~6 µs for a minimum-size frame.
        let mut sw = Switch::new(SwitchSpec::fastiron_1500(2, 0));
        let t = sw.forward(Nanos::ZERO, 1, 84).unwrap();
        let us = t.as_micros_f64();
        assert!((5.5..6.5).contains(&us), "switch latency {us} µs");
    }

    #[test]
    fn egress_serialization_dominates_for_jumbo() {
        let mut sw = Switch::new(SwitchSpec::fastiron_1500(2, 0));
        let t = sw.forward(Nanos::ZERO, 1, 9038).unwrap();
        // 5.85 µs fixed + ~7.2 µs egress serialization + backplane.
        assert!((12.0..14.0).contains(&t.as_micros_f64()), "{t}");
    }

    #[test]
    fn aggregation_queues_at_the_10gbe_egress() {
        // 8 GbE senders burst into one 10GbE port: frames serialize
        // back-to-back at the egress.
        let mut sw = Switch::new(SwitchSpec::fastiron_1500(1, 8));
        let mut last = Nanos::ZERO;
        for _ in 0..8 {
            last = sw.forward(Nanos::ZERO, 0, 1538).unwrap();
        }
        // 8 frames × ~1.23 µs ≈ 9.8 µs of egress serialization after the
        // fixed latency.
        let us = last.as_micros_f64();
        assert!((15.0..17.0).contains(&us), "{us}");
        assert_eq!(sw.forwarded[0].get(), 8);
    }

    #[test]
    fn egress_overflow_drops() {
        let mut sw = Switch::new(SwitchSpec::fastiron_1500(1, 0));
        // The 10GbE egress buffer is 2 MiB; a burst of 300 jumbo frames
        // at one instant exceeds it.
        let mut dropped = 0;
        for _ in 0..300 {
            if sw.forward(Nanos::ZERO, 0, 9038).is_none() {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "expected drops");
        assert_eq!(sw.total_drops(), dropped);
        // Conservation: forwarded + dropped = offered.
        assert_eq!(sw.forwarded[0].get() + dropped, 300);
    }

    #[test]
    fn backplane_far_exceeds_test_needs() {
        let sw = Switch::new(SwitchSpec::fastiron_1500(2, 8));
        // Two 10GbE + eight GbE = 28 Gb/s max offered; backplane 480.
        let offered: u64 = sw.spec.ports.iter().map(|p| p.rate.bps()).sum();
        assert!(sw.spec.backplane.bps() > 10 * offered / 2);
    }
}
