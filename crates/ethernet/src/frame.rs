//! Simulated Ethernet frames.
//!
//! Frames carry sizes and identifiers, not payload bytes: every quantity the
//! laboratory measures (throughput, latency, loss, CPU cost) depends only on
//! byte *counts*, so materializing payloads would be pure overhead. The
//! `kind` field carries the encapsulated protocol unit so receivers can
//! dispatch without parsing.

use crate::mtu::Mtu;
use std::fmt;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// A locally administered address derived from a small host index —
    /// handy for building topologies.
    pub const fn host(idx: u8) -> MacAddr {
        MacAddr([0x02, 0x10, 0x6e, 0x00, 0x00, idx])
    }

    /// The broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// What a frame encapsulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A TCP segment: connection id within the lab, plus a segment token the
    /// TCP layer uses to identify the segment on delivery.
    Tcp {
        /// Laboratory-wide connection identifier.
        conn: u32,
        /// Opaque token minted by the sending TCP (sequence-number based).
        token: u64,
    },
    /// A UDP datagram (the pktgen workload).
    Udp {
        /// Flow identifier.
        flow: u32,
        /// Datagram index within the flow.
        index: u64,
    },
    /// A raw test frame (NetPipe-style ping-pong payloads).
    Raw {
        /// Exchange identifier.
        id: u64,
    },
}

/// A simulated Ethernet frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Source address.
    pub src: MacAddr,
    /// Destination address.
    pub dst: MacAddr,
    /// IP-packet bytes carried (headers + payload; excludes Ethernet framing).
    pub ip_bytes: u64,
    /// Encapsulated protocol unit.
    pub kind: FrameKind,
}

impl Frame {
    /// Byte-times this frame consumes on a wire (framing + preamble + IFG,
    /// with runt padding).
    pub const fn wire_bytes(&self) -> u64 {
        Mtu::wire_bytes_for(self.ip_bytes)
    }

    /// Bytes of buffer the frame occupies in a kernel receive ring
    /// (IP packet + Ethernet header + FCS).
    pub const fn buffer_bytes(&self) -> u64 {
        self.ip_bytes + crate::mtu::ETH_HEADER + crate::mtu::ETH_FCS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_and_identity() {
        let a = MacAddr::host(3);
        assert_eq!(a, MacAddr::host(3));
        assert_ne!(a, MacAddr::host(4));
        assert!(a.to_string().ends_with(":03"));
        assert_eq!(MacAddr::BROADCAST.to_string(), "ff:ff:ff:ff:ff:ff");
    }

    #[test]
    fn frame_sizes() {
        let f = Frame {
            src: MacAddr::host(0),
            dst: MacAddr::host(1),
            ip_bytes: 1500,
            kind: FrameKind::Tcp { conn: 0, token: 42 },
        };
        assert_eq!(f.wire_bytes(), 1538);
        assert_eq!(f.buffer_bytes(), 1518);
    }

    #[test]
    fn runt_frames_pad_on_wire() {
        let f = Frame {
            src: MacAddr::host(0),
            dst: MacAddr::host(1),
            ip_bytes: 40,
            kind: FrameKind::Raw { id: 1 },
        };
        assert_eq!(f.wire_bytes(), 84); // 46 min payload + 18 framing + 20 preamble/IFG
    }
}
