//! `tengig-ethernet` — Ethernet/IP/TCP framing arithmetic.
//!
//! The SC'03 case study turns on byte-accurate framing: MTU → MSS
//! derivation (with and without TCP timestamps), wire overhead per frame
//! (preamble, inter-frame gap, FCS), and the non-standard MTUs (8160, 16000)
//! whose value comes from how frames fit power-of-2 kernel buffers. This
//! crate is the single source of truth for those numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod mtu;

pub use frame::{Frame, FrameKind, MacAddr};
pub use mtu::{
    Mtu, WireOverheads, ETH_FCS, ETH_HEADER, ETH_PREAMBLE_IFG, IP_HEADER, TCP_HEADER,
    TCP_TIMESTAMP_OPTION,
};
