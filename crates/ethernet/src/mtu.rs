//! MTU/MSS arithmetic and per-frame wire overheads.

/// Ethernet II header: destination MAC (6) + source MAC (6) + EtherType (2).
pub const ETH_HEADER: u64 = 14;
/// Frame check sequence (CRC-32) appended to every frame.
pub const ETH_FCS: u64 = 4;
/// Preamble (7) + start-frame delimiter (1) + minimum inter-frame gap (12):
/// 20 byte-times consumed on the wire per frame but never seen by software.
pub const ETH_PREAMBLE_IFG: u64 = 20;
/// IPv4 header without options.
pub const IP_HEADER: u64 = 20;
/// TCP header without options.
pub const TCP_HEADER: u64 = 20;
/// TCP timestamp option as carried on every segment when RFC 1323
/// timestamps are enabled: 10 bytes of option + 2 bytes of NOP padding.
/// Linux deducts these 12 bytes from the MSS — the reason disabling
/// timestamps on the Intel-loaned hosts was worth ~10% (§3.4).
pub const TCP_TIMESTAMP_OPTION: u64 = 12;
/// Minimum Ethernet payload (frames are padded up to this).
pub const ETH_MIN_PAYLOAD: u64 = 46;

/// A maximum transfer unit, in bytes of IP packet (the Linux `ifconfig mtu`
/// meaning: IP header + TCP header + payload, excluding Ethernet framing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mtu(pub u64);

impl Mtu {
    /// Standard Ethernet MTU.
    pub const STANDARD: Mtu = Mtu(1500);
    /// Conventional jumboframe MTU.
    pub const JUMBO_9000: Mtu = Mtu(9000);
    /// The paper's tuned MTU: payload + headers of a full frame fit exactly
    /// in a single 8 KiB kernel block (§3.3 "Tuning the MTU Size").
    pub const TUNED_8160: Mtu = Mtu(8160);
    /// The largest MTU the Intel PRO/10GbE adapter supports.
    pub const MAX_INTEL_16000: Mtu = Mtu(16000);

    /// Maximum segment size: the TCP payload that fits in one MTU.
    ///
    /// `MSS = MTU − IP header − TCP header`, further reduced by the
    /// timestamp option when enabled (Linux advertises the full MSS but
    /// effectively carries 12 bytes of options per segment; we fold that in
    /// here, which is how the paper quotes "8948-byte MSS with options" for
    /// a 9000-byte MTU — 9000 − 40 − 12 = 8948).
    ///
    /// Degenerate MTUs smaller than the headers (which cannot carry any
    /// payload) clamp to an MSS of 1 byte rather than wrapping: an MSS of 0
    /// would divide-by-zero in segment-count math downstream, and a real
    /// stack refuses such MTUs at configuration time anyway.
    pub const fn mss(self, timestamps: bool) -> u64 {
        let opts = if timestamps { TCP_TIMESTAMP_OPTION } else { 0 };
        let headers = IP_HEADER + TCP_HEADER + opts;
        if self.0 <= headers + 1 {
            1
        } else {
            self.0 - headers
        }
    }

    /// The raw MTU value in bytes.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Size of the Ethernet frame carrying a full MTU, as stored in a kernel
    /// receive buffer: MTU + Ethernet header + FCS.
    pub const fn frame_bytes(self) -> u64 {
        self.0 + ETH_HEADER + ETH_FCS
    }

    /// Byte-times consumed on the wire by a frame with `ip_bytes` of IP
    /// packet: framing + preamble + IFG, with runt padding.
    pub const fn wire_bytes_for(ip_bytes: u64) -> u64 {
        let payload = if ip_bytes < ETH_MIN_PAYLOAD {
            ETH_MIN_PAYLOAD
        } else {
            ip_bytes
        };
        payload + ETH_HEADER + ETH_FCS + ETH_PREAMBLE_IFG
    }
}

/// Byte overheads for one TCP segment at every level of the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireOverheads {
    /// TCP payload bytes.
    pub payload: u64,
    /// IP packet bytes (payload + TCP/IP headers + options).
    pub ip_bytes: u64,
    /// Byte-times on the wire including Ethernet framing, preamble, and IFG.
    pub wire_bytes: u64,
}

impl WireOverheads {
    /// Overheads for a segment carrying `payload` bytes with or without the
    /// timestamp option.
    pub const fn for_segment(payload: u64, timestamps: bool) -> WireOverheads {
        let opts = if timestamps { TCP_TIMESTAMP_OPTION } else { 0 };
        let ip_bytes = payload + TCP_HEADER + opts + IP_HEADER;
        WireOverheads {
            payload,
            ip_bytes,
            wire_bytes: Mtu::wire_bytes_for(ip_bytes),
        }
    }

    /// Payload efficiency on the wire: `payload / wire_bytes`.
    pub fn efficiency(&self) -> f64 {
        self.payload as f64 / self.wire_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mss_values() {
        // §3.5.1: "a 9-byte [9000] MTU (8948-byte MSS with options)".
        assert_eq!(Mtu::JUMBO_9000.mss(true), 8948);
        assert_eq!(Mtu::JUMBO_9000.mss(false), 8960);
        // §3.5.1 example: sender MSS 8960 vs receiver MSS 8948.
        assert_eq!(Mtu::STANDARD.mss(true), 1448);
        assert_eq!(Mtu::STANDARD.mss(false), 1460);
        assert_eq!(Mtu::TUNED_8160.mss(true), 8108);
        assert_eq!(Mtu::MAX_INTEL_16000.mss(true), 15948);
    }

    #[test]
    fn degenerate_mtus_clamp_instead_of_wrapping() {
        // MTU < 40 (or < 52 with timestamps) used to wrap around u64 (or
        // panic in debug builds); it must clamp to a 1-byte MSS instead.
        assert_eq!(Mtu(0).mss(false), 1);
        assert_eq!(Mtu(0).mss(true), 1);
        assert_eq!(Mtu(39).mss(false), 1);
        assert_eq!(Mtu(40).mss(false), 1); // exactly headers: no payload room
        assert_eq!(Mtu(41).mss(false), 1);
        assert_eq!(Mtu(42).mss(false), 2);
        assert_eq!(Mtu(51).mss(true), 1);
        assert_eq!(Mtu(52).mss(true), 1);
        assert_eq!(Mtu(54).mss(true), 2);
    }

    #[test]
    fn frame_fits_8k_block_at_8160() {
        // The whole point of the 8160 MTU: payload + TCP/IP headers +
        // Ethernet headers fit in a single 8192-byte block.
        assert!(Mtu::TUNED_8160.frame_bytes() <= 8192);
        assert!(Mtu::JUMBO_9000.frame_bytes() > 8192);
        assert!(Mtu::MAX_INTEL_16000.frame_bytes() <= 16384);
    }

    #[test]
    fn wire_bytes_includes_framing_and_pads_runts() {
        // Full standard frame: 1500 + 14 + 4 + 20 = 1538 byte-times.
        assert_eq!(Mtu::wire_bytes_for(1500), 1538);
        // A single-byte ping (41 bytes of IP) pads to the 46-byte minimum.
        assert_eq!(Mtu::wire_bytes_for(41), 46 + 14 + 4 + 20);
    }

    #[test]
    fn efficiency_grows_with_payload() {
        let small = WireOverheads::for_segment(64, true);
        let big = WireOverheads::for_segment(8948, true);
        assert!(big.efficiency() > small.efficiency());
        // Full jumbo segment is ~99% efficient on the wire.
        assert!(big.efficiency() > 0.98, "{}", big.efficiency());
        assert_eq!(big.ip_bytes, 9000);
    }

    #[test]
    fn segment_overheads_with_and_without_timestamps() {
        let with = WireOverheads::for_segment(1000, true);
        let without = WireOverheads::for_segment(1000, false);
        assert_eq!(with.ip_bytes - without.ip_bytes, TCP_TIMESTAMP_OPTION);
    }
}
