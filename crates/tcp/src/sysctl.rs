//! The tunable surface of the stack — the knobs the paper turns.
//!
//! Mirrors the `/proc/sys/net/{core,ipv4}` parameters the paper's WAN
//! tuning script sets (§4.1) plus the connection-level options of §3.3.

use tengig_ethernet::Mtu;

/// Socket-buffer triple, as in `tcp_rmem`/`tcp_wmem`: min / default / max.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufTriple {
    /// Floor under memory pressure.
    pub min: u64,
    /// Default for new sockets.
    pub default: u64,
    /// Ceiling `setsockopt` can reach (subject to `core` limits).
    pub max: u64,
}

/// The stack-wide tuning state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sysctls {
    /// `net.ipv4.tcp_rmem` — receive buffer triple.
    pub tcp_rmem: BufTriple,
    /// `net.ipv4.tcp_wmem` — send buffer triple.
    pub tcp_wmem: BufTriple,
    /// `net.ipv4.tcp_timestamps` (RFC 1323).
    pub timestamps: bool,
    /// `net.ipv4.tcp_window_scaling` (RFC 1323).
    pub window_scaling: bool,
    /// `net.ipv4.tcp_adv_win_scale`: the fraction of the receive buffer
    /// advertised as window is `1 - 2^-scale` (2 → 3/4).
    pub adv_win_scale: u32,
    /// Initial congestion window in segments (Linux 2.4: 2).
    pub initial_cwnd: u64,
    /// Interface MTU (`ifconfig eth1 mtu N`).
    pub mtu: Mtu,
    /// Device transmit queue length in packets (`ifconfig txqueuelen N`).
    pub txqueuelen: u64,
    /// Delayed-ACK: acknowledge every n-th full segment.
    pub delack_segs: u32,
    /// Delayed-ACK timeout.
    pub delack_timeout_ms: u64,
    /// Minimum retransmission timeout (Linux: 200 ms).
    pub rto_min_ms: u64,
    /// Maximum retransmission timeout, the RFC 6298 §5.5 ceiling on the
    /// backed-off RTO (the RFC names 60 s; without it, exponential
    /// backoff can park a flow behind an hours-long timer).
    pub rto_max_ms: u64,
    /// The "New API" for network processing (§3.3): softirq packet
    /// processing scheduled outside the interrupt context. Not present in
    /// the 2.4 kernels the paper measured ("which we have yet to test").
    pub napi: bool,
    /// `TCP_NODELAY`-style push-per-write, as NTTCP drives the socket.
    /// With `false`, writes coalesce into MSS-sized stream segments and a
    /// trailing partial segment is held while data is in flight (Nagle).
    pub nodelay: bool,
}

impl Default for Sysctls {
    fn default() -> Self {
        Self::linux24_defaults()
    }
}

impl Sysctls {
    /// Stock Linux 2.4 settings on the paper's testbed.
    pub fn linux24_defaults() -> Self {
        Sysctls {
            tcp_rmem: BufTriple {
                min: 4096,
                default: 87_380,
                max: 174_760,
            },
            tcp_wmem: BufTriple {
                min: 4096,
                default: 65_536,
                max: 131_072,
            },
            timestamps: true,
            window_scaling: true,
            adv_win_scale: 2,
            initial_cwnd: 2,
            mtu: Mtu::STANDARD,
            txqueuelen: 100,
            delack_segs: 2,
            delack_timeout_ms: 40,
            rto_min_ms: 200,
            rto_max_ms: 60_000,
            napi: false,
            nodelay: true,
        }
    }

    /// Enable the NAPI receive path (a newer-kernel feature, §3.3).
    pub fn with_napi(mut self, on: bool) -> Self {
        self.napi = on;
        self
    }

    /// Enable/disable push-per-write (`false` = Nagle-style coalescing).
    pub fn with_nodelay(mut self, on: bool) -> Self {
        self.nodelay = on;
        self
    }

    /// §3.3 "oversized windows": 256 KB socket buffers — "we set the receive
    /// socket buffer to 256 KB in /proc/sys/net/ipv4/tcp_rmem".
    pub fn with_buffers(mut self, bytes: u64) -> Self {
        self.tcp_rmem.default = bytes;
        self.tcp_rmem.max = self.tcp_rmem.max.max(bytes);
        self.tcp_wmem.default = bytes;
        self.tcp_wmem.max = self.tcp_wmem.max.max(bytes);
        self
    }

    /// Change the interface MTU.
    pub fn with_mtu(mut self, mtu: Mtu) -> Self {
        self.mtu = mtu;
        self
    }

    /// Enable/disable RFC 1323 timestamps.
    pub fn with_timestamps(mut self, on: bool) -> Self {
        self.timestamps = on;
        self
    }

    /// The §4.1 WAN tuning: socket buffers sized to the path's
    /// bandwidth-delay product (double it, as practitioners do, so the
    /// 3/4 advertised fraction and skb-truesize accounting still leave a
    /// full BDP of usable window), jumbo frames, a deep transmit queue.
    pub fn wan_tuned(bdp_bytes: u64) -> Self {
        Sysctls::linux24_defaults()
            .with_buffers(2 * bdp_bytes)
            .with_mtu(Mtu::JUMBO_9000)
            .with_txqueuelen(10_000)
    }

    /// Change the device transmit queue length.
    pub fn with_txqueuelen(mut self, len: u64) -> Self {
        self.txqueuelen = len;
        self
    }

    /// Change the RTO ceiling (tests use a large value to demonstrate
    /// what unclamped backoff would do).
    pub fn with_rto_max_ms(mut self, ms: u64) -> Self {
        self.rto_max_ms = ms;
        self
    }

    /// The window fraction of the receive buffer: `1 - 2^-adv_win_scale`.
    pub fn window_fraction(&self) -> f64 {
        1.0 - 1.0 / (1u64 << self.adv_win_scale) as f64
    }

    /// The maximum window advertisable given buffer size and scaling: with
    /// window scaling the clamp is the buffer-derived window; without it,
    /// 65535 bytes.
    pub fn window_clamp(&self) -> u64 {
        let w = (self.tcp_rmem.default as f64 * self.window_fraction()) as u64;
        if self.window_scaling {
            w
        } else {
            w.min(65_535)
        }
    }

    /// The effective MSS under these settings.
    pub fn mss(&self) -> u64 {
        self.mtu.mss(self.timestamps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_defaults_match_linux24() {
        let s = Sysctls::default();
        assert_eq!(s.tcp_rmem.default, 87_380);
        assert!(s.timestamps);
        assert_eq!(s.mss(), 1448);
        // Default window clamp ≈ 64 KB, the paper's "default window
        // setting of 64 KB".
        let w = s.window_clamp();
        assert!((60_000..70_000).contains(&w), "clamp {w}");
    }

    #[test]
    fn oversized_windows() {
        let s = Sysctls::default()
            .with_buffers(256 * 1024)
            .with_mtu(Mtu::JUMBO_9000);
        assert_eq!(s.tcp_rmem.default, 262_144);
        assert_eq!(s.mss(), 8948);
        assert_eq!(s.window_clamp(), 196_608);
    }

    #[test]
    fn no_window_scaling_caps_at_64k() {
        let mut s = Sysctls::default().with_buffers(1 << 20);
        s.window_scaling = false;
        assert_eq!(s.window_clamp(), 65_535);
        s.window_scaling = true;
        assert!(s.window_clamp() > 65_535);
    }

    #[test]
    fn wan_tuning_sets_bdp_buffers() {
        // OC-48 at 180 ms RTT: BDP ≈ 56 MB.
        let s = Sysctls::wan_tuned(56_250_000);
        assert_eq!(s.tcp_rmem.default, 112_500_000);
        assert_eq!(s.mtu, Mtu::JUMBO_9000);
        assert_eq!(s.txqueuelen, 10_000);
        assert!(s.window_clamp() > 40_000_000);
    }

    #[test]
    fn window_fraction_from_adv_win_scale() {
        let mut s = Sysctls::default();
        assert!((s.window_fraction() - 0.75).abs() < 1e-12);
        s.adv_win_scale = 1;
        assert!((s.window_fraction() - 0.5).abs() < 1e-12);
    }
}
