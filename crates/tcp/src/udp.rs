//! A minimal UDP layer — the substrate of the pktgen workload.
//!
//! The paper's packet generator "bypasses the TCP/IP and UDP/IP stacks
//! entirely … transmits pre-formed dummy UDP packets directly to the
//! adapter". The datagram type here carries the byte accounting for that
//! path (UDP header + IP header + payload).

/// UDP header size.
pub const UDP_HEADER: u64 = 8;

/// A UDP datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Datagram {
    /// Flow identifier.
    pub flow: u32,
    /// Index within the flow.
    pub index: u64,
    /// Payload bytes.
    pub payload: u64,
}

impl Datagram {
    /// Size as an IP packet.
    pub fn ip_bytes(&self) -> u64 {
        self.payload + UDP_HEADER + tengig_ethernet::IP_HEADER
    }

    /// The largest payload that fits a given MTU.
    pub fn max_payload(mtu: u64) -> u64 {
        mtu - UDP_HEADER - tengig_ethernet::IP_HEADER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let d = Datagram {
            flow: 0,
            index: 0,
            payload: 1000,
        };
        assert_eq!(d.ip_bytes(), 1028);
        assert_eq!(Datagram::max_payload(8160), 8132);
    }

    #[test]
    fn pktgen_packet_fills_mtu() {
        let d = Datagram {
            flow: 1,
            index: 7,
            payload: Datagram::max_payload(8160),
        };
        assert_eq!(d.ip_bytes(), 8160);
    }
}
