//! The TCP connection state machine (sans-IO).
//!
//! One [`TcpConn`] is one endpoint of an established connection. It is a
//! pure state machine: inputs are application writes/reads, arriving
//! segments, and timer expirations; outputs are [`Action`]s (segments to
//! hand to the NIC, timers to arm, data to deliver). The composition layer
//! (the `tengig` core crate) turns actions into engine events and charges
//! hardware costs; unit tests drive the machine directly.
//!
//! Linux 2.4 semantics the paper's analysis depends on, all implemented
//! here:
//!
//! * **Per-write segmentation.** Each application write is segmented
//!   independently (NTTCP-style pushed writes): a 7000-byte write on an
//!   8948-MSS connection yields one 7000-byte segment, not part of a packed
//!   stream. This is what makes throughput a function of payload size in
//!   Figs. 3-5.
//! * **cwnd in packets.** The congestion window counts segments
//!   ([`crate::cc`]), so sub-MSS segments waste window slots (§3.5.1).
//! * **truesize buffer accounting.** Received frames charge the socket
//!   buffer with their kernel block size plus skb overhead, not their
//!   payload (`tengig_hw::BlockAllocator::truesize`), so a 9000-byte MTU
//!   halves the usable window of a default buffer.
//! * **MSS-aligned advertised window with SWS avoidance.** The advertised
//!   window is rounded down to a multiple of the estimated peer MSS and the
//!   right edge never retreats — the paper's §3.5.1 formula
//!   `advertised = ⌊available/MSS⌋·MSS`.
//! * **Delayed ACKs** every second full segment (or a 40 ms timer), with
//!   immediate duplicate ACKs on out-of-order arrival.
//! * **Jacobson RTO** with exponential backoff, Karn's rule, and
//!   timestamp-based RTT samples when RFC 1323 timestamps are on.

use crate::cc::{CcAction, Reno};
use crate::segment::{Flags, Segment, Timestamps};
use crate::sysctl::Sysctls;
use std::collections::VecDeque;
use tengig_ethernet::{ETH_FCS, ETH_HEADER};
use tengig_hw::BlockAllocator;
use tengig_sim::Nanos;

/// Ceiling on the RTO backoff counter. With the 200 ms `rto_min` floor,
/// shift 9 already puts the backed-off RTO past the 60 s `rto_max`
/// clamp; 16 leaves generous headroom for unusual sysctl combinations
/// while keeping `1 << backoff` far from overflow.
const MAX_RTO_BACKOFF: u32 = 16;

/// Timers a connection can arm. The engine cannot cancel events, so each
/// timer carries a generation; stale generations are ignored on expiry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Retransmission timeout.
    Rto,
    /// Delayed-ACK timeout.
    DelAck,
}

/// Outputs of the state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Hand this segment to the NIC for transmission.
    Send(Segment),
    /// Arm a timer to fire at `at` with generation `gen`.
    SetTimer {
        /// Which timer.
        kind: TimerKind,
        /// Absolute expiry time.
        at: Nanos,
        /// Generation to pass back to [`TcpConn::on_timer`].
        gen: u64,
    },
    /// `bytes` of new in-order data are available for the application.
    DeliverData {
        /// Newly in-order byte count.
        bytes: u64,
    },
    /// Send-buffer space was freed; a blocked writer may continue.
    SndBufSpace,
}

/// One entry of the retransmission queue.
#[derive(Debug, Clone, Copy)]
struct TxRecord {
    seq: u64,
    len: u64,
    sent_at: Nanos,
    retransmitted: bool,
    /// Closes an application write (PSH).
    psh: bool,
}

/// Aggregate connection statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnStats {
    /// Segments transmitted (including retransmissions).
    pub segs_out: u64,
    /// Data segments received in order.
    pub segs_in: u64,
    /// Pure ACKs received.
    pub acks_in: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// Duplicate ACKs sent.
    pub dup_acks_out: u64,
    /// Bytes acknowledged by the peer.
    pub bytes_acked: u64,
    /// Bytes delivered to the application in order.
    pub bytes_delivered: u64,
    /// Times the sender found itself blocked by the peer's window.
    pub rwnd_limited: u64,
    /// Times the sender found itself blocked by cwnd.
    pub cwnd_limited: u64,
    /// Receive-queue prune (collapse) episodes — in-order data accepted
    /// beyond the buffer budget.
    pub prunes: u64,
    /// Out-of-order segments dropped for lack of buffer space.
    pub ooo_dropped: u64,
}

/// An established TCP connection endpoint.
#[derive(Debug, Clone)]
pub struct TcpConn {
    cfg: Sysctls,
    /// Sender MSS: min(own MSS, peer's advertised MSS).
    mss: u64,
    /// Estimate of the peer's MSS for window rounding (Linux
    /// `tcp_measure_rcv_mss`: the largest payload seen).
    rcv_mss_est: u64,

    // ---- send half ----
    snd_una: u64,
    snd_nxt: u64,
    /// Pending application writes, each segmented independently:
    /// (remaining bytes of this write).
    write_queue: VecDeque<u64>,
    queued_bytes: u64,
    /// Peer's advertised window right edge (absolute offset).
    snd_wnd_right: u64,
    rtxq: VecDeque<TxRecord>,
    /// Congestion control.
    pub cc: Reno,
    /// Smoothed RTT (None until the first sample).
    srtt: Option<Nanos>,
    rttvar: Nanos,
    rto: Nanos,
    rto_gen: u64,
    rto_armed: bool,
    backoff: u32,
    /// Latest peer timestamp to echo.
    ts_recent: Nanos,

    // ---- receive half ----
    rcv_nxt: u64,
    /// Out-of-order ranges (start → end), non-overlapping, non-adjacent.
    ooo: std::collections::BTreeMap<u64, u64>,
    /// Bytes in order, not yet read by the application.
    rcv_buffered: u64,
    /// truesize charge of those bytes.
    rcv_truesize: u64,
    /// Window right edge promised to the peer (never retreats).
    rcv_adv: u64,
    segs_since_ack: u32,
    delack_gen: u64,
    delack_armed: bool,
    fin_seen: bool,

    // ---- lifecycle ----
    /// When the flow using this connection was opened (admitted to the
    /// laboratory), if the owner marked it.
    opened_at: Option<Nanos>,
    /// When the flow's transfer completed, if the owner marked it.
    closed_at: Option<Nanos>,

    /// Statistics.
    pub stats: ConnStats,
}

impl TcpConn {
    /// A freshly established connection under `cfg`, with the peer
    /// advertising `peer_mss`.
    pub fn new(cfg: Sysctls, peer_mss: u64) -> Self {
        let mss = cfg.mss().min(peer_mss);
        let clamp_segs = (cfg.tcp_wmem.default / mss).max(2);
        let initial_wnd = cfg.window_clamp().min(4 * mss);
        TcpConn {
            cfg,
            mss,
            rcv_mss_est: mss,
            snd_una: 0,
            snd_nxt: 0,
            write_queue: VecDeque::new(),
            queued_bytes: 0,
            snd_wnd_right: initial_wnd,
            rtxq: VecDeque::new(),
            cc: Reno::new(cfg.initial_cwnd, clamp_segs),
            srtt: None,
            rttvar: Nanos::ZERO,
            // Conservative pre-sample RTO (RFC 6298 initial value).
            rto: Nanos::from_secs(1),
            rto_gen: 0,
            rto_armed: false,
            backoff: 0,
            ts_recent: Nanos::ZERO,
            rcv_nxt: 0,
            ooo: std::collections::BTreeMap::new(),
            rcv_buffered: 0,
            rcv_truesize: 0,
            rcv_adv: initial_wnd,
            segs_since_ack: 0,
            delack_gen: 0,
            delack_armed: false,
            fin_seen: false,
            opened_at: None,
            closed_at: None,
            stats: ConnStats::default(),
        }
    }

    /// The effective (negotiated) MSS.
    pub fn mss(&self) -> u64 {
        self.mss
    }

    /// Bytes in flight (sent, unacknowledged).
    pub fn inflight_bytes(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Segments in flight.
    pub fn inflight_segs(&self) -> u64 {
        self.rtxq.len() as u64
    }

    /// Free send-buffer space.
    pub fn snd_buf_space(&self) -> u64 {
        let used = self.inflight_bytes() + self.queued_bytes;
        self.cfg.tcp_wmem.default.saturating_sub(used)
    }

    /// Bytes buffered in order awaiting an application read.
    pub fn rcv_buffered(&self) -> u64 {
        self.rcv_buffered
    }

    /// Next in-order receive offset.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// First unacknowledged send offset.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Next send offset.
    pub fn snd_nxt(&self) -> u64 {
        self.snd_nxt
    }

    /// The current retransmission timeout.
    pub fn rto(&self) -> Nanos {
        self.rto
    }

    /// Smoothed RTT estimate, if any sample has been taken.
    pub fn srtt(&self) -> Option<Nanos> {
        self.srtt
    }

    /// RTT variance estimate (RFC 6298 `rttvar`; zero before any sample).
    pub fn rttvar(&self) -> Nanos {
        self.rttvar
    }

    /// Whether the peer's FIN has been received.
    pub fn fin_seen(&self) -> bool {
        self.fin_seen
    }

    // ------------------------------------------------------------------
    // lifecycle hooks
    // ------------------------------------------------------------------

    /// Flow-open hook: record when the flow using this connection was
    /// admitted. Pure bookkeeping (no segments, no timers, no actions) —
    /// the open-loop workload plane uses it to cross-check its
    /// completion-time accounting. First call wins; later calls are
    /// ignored so re-entrant start events stay idempotent.
    pub fn on_open(&mut self, now: Nanos) {
        if self.opened_at.is_none() {
            self.opened_at = Some(now);
        }
    }

    /// Flow-close hook: record when the flow's transfer completed. Pure
    /// bookkeeping, idempotent like [`TcpConn::on_open`].
    pub fn on_close(&mut self, now: Nanos) {
        if self.closed_at.is_none() {
            self.closed_at = Some(now);
        }
    }

    /// When the flow was opened, if marked.
    pub fn opened_at(&self) -> Option<Nanos> {
        self.opened_at
    }

    /// When the flow completed, if marked.
    pub fn closed_at(&self) -> Option<Nanos> {
        self.closed_at
    }

    /// Open-to-close lifetime, once both lifecycle marks are present.
    pub fn lifetime(&self) -> Option<Nanos> {
        match (self.opened_at, self.closed_at) {
            (Some(open), Some(close)) => Some(close.saturating_sub(open)),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // application side
    // ------------------------------------------------------------------

    /// The application wrote `bytes`. Returns the accepted byte count
    /// (bounded by send-buffer space) and resulting actions.
    pub fn on_app_write(&mut self, now: Nanos, bytes: u64) -> (u64, Vec<Action>) {
        let mut out = Vec::new();
        let accepted = self.on_app_write_into(now, bytes, &mut out);
        (accepted, out)
    }

    /// Allocation-free variant of [`TcpConn::on_app_write`]: actions are
    /// appended to `out`, so the composition layer can recycle one buffer
    /// across calls instead of allocating per write.
    pub fn on_app_write_into(&mut self, now: Nanos, bytes: u64, out: &mut Vec<Action>) -> u64 {
        let accepted = bytes.min(self.snd_buf_space());
        if accepted > 0 {
            if self.cfg.nodelay {
                // Push-per-write: each write segments independently.
                self.write_queue.push_back(accepted);
            } else {
                // Stream coalescing: merge into one chunk so segmentation
                // always cuts full-MSS segments regardless of write size.
                match self.write_queue.back_mut() {
                    Some(tail) => *tail += accepted,
                    None => self.write_queue.push_back(accepted),
                }
            }
            self.queued_bytes += accepted;
        }
        self.try_send(now, out);
        accepted
    }

    /// The application read `bytes` from the receive queue. Frees buffer
    /// space and may emit a window update.
    pub fn on_app_read(&mut self, now: Nanos, bytes: u64) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_app_read_into(now, bytes, &mut out);
        out
    }

    /// Allocation-free variant of [`TcpConn::on_app_read`]; see
    /// [`TcpConn::on_app_write_into`].
    pub fn on_app_read_into(&mut self, _now: Nanos, bytes: u64, out: &mut Vec<Action>) {
        let bytes = bytes.min(self.rcv_buffered);
        if bytes == 0 {
            return;
        }
        // Free truesize proportionally to the bytes drained.
        let ts_freed = if self.rcv_buffered == bytes {
            self.rcv_truesize
        } else {
            (self.rcv_truesize as u128 * bytes as u128 / self.rcv_buffered as u128) as u64
        };
        self.rcv_buffered -= bytes;
        self.rcv_truesize -= ts_freed;
        // Receiver-side SWS rule (Linux `tcp_new_space`): after a read, if
        // the advertisable right edge has grown at least two segments past
        // the last promise, tell the sender with a window update. Without
        // this, every ACK understates the window by the transient unread
        // backlog and the flow self-limits far below the path capacity.
        let edge = self.rcv_nxt + self.window_to_advertise();
        if edge >= self.rcv_adv + 2 * self.rcv_mss_est {
            out.push(Action::Send(self.make_ack(false)));
        }
    }

    // ------------------------------------------------------------------
    // window arithmetic (§3.5.1 faithfully)
    // ------------------------------------------------------------------

    /// Free receive-buffer space in truesize terms, scaled by
    /// `adv_win_scale` (Linux reserves 1/2^n of the buffer for metadata
    /// and application slack).
    fn free_rcv_space(&self) -> u64 {
        let budget = (self.cfg.tcp_rmem.default as f64 * self.cfg.window_fraction()) as u64;
        budget.saturating_sub(self.rcv_truesize)
    }

    /// The window we would advertise right now: free space rounded **down**
    /// to a multiple of the estimated peer MSS (SWS avoidance), right edge
    /// never retreating, capped by the clamp.
    fn window_to_advertise(&self) -> u64 {
        let free = self.free_rcv_space().min(self.cfg.window_clamp());
        let mss = self.rcv_mss_est.max(1);
        let rounded = (free / mss) * mss;
        // Never shrink: if the previously promised right edge exceeds
        // rcv_nxt + rounded, keep honouring it.
        let promised = self.rcv_adv.saturating_sub(self.rcv_nxt);
        rounded.max(promised)
    }

    /// Usable send window from the peer's advertisements.
    fn peer_window_remaining(&self) -> u64 {
        self.snd_wnd_right.saturating_sub(self.snd_nxt)
    }

    // ------------------------------------------------------------------
    // transmit path
    // ------------------------------------------------------------------

    /// Compute the window to put on an outgoing segment and record the
    /// promised right edge (the no-shrink guarantee covers every
    /// advertisement actually sent).
    fn advertise(&mut self) -> u64 {
        let w = self.window_to_advertise();
        let edge = self.rcv_nxt + w;
        if edge > self.rcv_adv {
            self.rcv_adv = edge;
        }
        w
    }

    fn make_data_segment(
        &mut self,
        now: Nanos,
        seq: u64,
        len: u64,
        psh: bool,
        rtx: bool,
    ) -> Segment {
        Segment {
            seq,
            len,
            ack: self.rcv_nxt,
            wnd: self.advertise(),
            flags: Flags {
                ack: true,
                psh,
                fin: false,
            },
            ts: self.cfg.timestamps.then_some(Timestamps {
                tsval: now,
                tsecr: self.ts_recent,
            }),
            retransmit: rtx,
        }
    }

    fn make_ack(&mut self, dup: bool) -> Segment {
        Segment {
            seq: self.snd_nxt,
            len: 0,
            ack: self.rcv_nxt,
            wnd: self.advertise(),
            flags: Flags {
                ack: true,
                psh: false,
                fin: false,
            },
            ts: self.cfg.timestamps.then_some(Timestamps {
                tsval: self.ts_recent,
                tsecr: self.ts_recent,
            }),
            retransmit: dup,
        }
    }

    /// Transmit as much as windows allow. Appends `Send` and timer actions.
    #[allow(clippy::while_let_loop)] // multiple distinct break conditions
    fn try_send(&mut self, now: Nanos, out: &mut Vec<Action>) {
        loop {
            let Some(&chunk) = self.write_queue.front() else {
                break;
            };
            let len = chunk.min(self.mss);
            // Nagle (RFC 896): without nodelay, hold a trailing sub-MSS
            // segment while data is outstanding — more may coalesce.
            if !self.cfg.nodelay && len < self.mss && self.inflight_segs() > 0 {
                break;
            }
            if !self.cc.can_send(self.inflight_segs()) {
                self.stats.cwnd_limited += 1;
                break;
            }
            if self.peer_window_remaining() < len {
                self.stats.rwnd_limited += 1;
                break;
            }
            let psh = len == chunk; // closes this application write
            let seq = self.snd_nxt;
            self.snd_nxt += len;
            self.queued_bytes -= len;
            if psh {
                self.write_queue.pop_front();
            } else {
                *self.write_queue.front_mut().expect("checked above") -= len;
            }
            self.rtxq.push_back(TxRecord {
                seq,
                len,
                sent_at: now,
                retransmitted: false,
                psh,
            });
            self.stats.segs_out += 1;
            out.push(Action::Send(
                self.make_data_segment(now, seq, len, psh, false),
            ));
            // Data carries the latest ACK; any pending delayed ACK is moot.
            self.segs_since_ack = 0;
        }
        if !self.rto_armed && !self.rtxq.is_empty() {
            self.arm_rto(now, out);
        }
    }

    fn arm_rto(&mut self, now: Nanos, out: &mut Vec<Action>) {
        self.rto_gen += 1;
        self.rto_armed = true;
        out.push(Action::SetTimer {
            kind: TimerKind::Rto,
            at: now + self.backed_off_rto(),
            gen: self.rto_gen,
        });
    }

    /// The RTO with exponential backoff applied, clamped to the RFC 6298
    /// §5.5 ceiling (`rto_max_ms`). Integer shift only — the timer path
    /// does no float arithmetic — and `backoff` itself is capped (in
    /// [`TcpConn::on_timer_into`]) rather than the shift silently pinned.
    fn backed_off_rto(&self) -> Nanos {
        self.rto
            .saturating_mul(1u64 << self.backoff)
            .min(Nanos::from_millis(self.cfg.rto_max_ms))
    }

    // ------------------------------------------------------------------
    // receive path
    // ------------------------------------------------------------------

    /// A segment arrived from the peer at `now`.
    pub fn on_segment(&mut self, now: Nanos, seg: &Segment) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_segment_into(now, seg, &mut out);
        out
    }

    /// Allocation-free variant of [`TcpConn::on_segment`]; see
    /// [`TcpConn::on_app_write_into`].
    pub fn on_segment_into(&mut self, now: Nanos, seg: &Segment, out: &mut Vec<Action>) {
        if let Some(ts) = seg.ts {
            // Echo policy: remember the latest in-window timestamp.
            self.ts_recent = ts.tsval;
        }
        // --- sender half: process the acknowledgment ---
        if seg.flags.ack {
            self.process_ack(now, seg, out);
        }
        // --- receiver half: process payload ---
        if seg.len > 0 {
            self.process_data(now, seg, out);
        } else if seg.flags.fin {
            self.fin_seen = true;
            out.push(Action::Send(self.make_ack(false)));
        } else {
            self.stats.acks_in += 1;
        }
        // Window may have opened; send what we can.
        self.try_send(now, out);
    }

    fn process_ack(&mut self, now: Nanos, seg: &Segment, out: &mut Vec<Action>) {
        // Update the peer's advertised window (right edge never retreats).
        let right = seg.ack + seg.wnd;
        let window_update = right > self.snd_wnd_right;
        if window_update {
            self.snd_wnd_right = right;
        }
        if seg.ack > self.snd_una {
            let acked_bytes = seg.ack - self.snd_una;
            self.snd_una = seg.ack;
            self.stats.bytes_acked += acked_bytes;
            // Retire fully acked records and take an RTT sample.
            let mut acked_segs = 0u64;
            let mut sample: Option<Nanos> = None;
            while let Some(front) = self.rtxq.front() {
                if front.seq + front.len <= seg.ack {
                    // Karn: never sample a retransmitted segment's timing.
                    if !front.retransmitted {
                        sample = Some(now.saturating_sub(front.sent_at));
                    }
                    acked_segs += 1;
                    self.rtxq.pop_front();
                } else {
                    break;
                }
            }
            // Timestamp echo beats segment timing when available.
            if let Some(ts) = seg.ts {
                if ts.tsecr > Nanos::ZERO {
                    sample = Some(now.saturating_sub(ts.tsecr));
                }
            }
            if let Some(rtt) = sample {
                self.rtt_sample(rtt);
            }
            self.backoff = 0;
            if let CcAction::FastRetransmit = self.cc.on_new_ack(seg.ack, acked_segs) {
                // NewReno partial ACK: the next hole is lost too.
                self.retransmit_first(now, out);
            }
            // Restart the RTO from the newest left edge.
            self.rto_armed = false;
            if !self.rtxq.is_empty() {
                self.arm_rto(now, out);
            }
            out.push(Action::SndBufSpace);
        } else if seg.is_pure_ack()
            && seg.ack == self.snd_una
            && !window_update
            && !self.rtxq.is_empty()
        {
            // Duplicate ACK (RFC 5681: an ACK that changes the advertised
            // window is a window update, not a duplicate).
            match self.cc.on_dup_ack(self.inflight_segs(), self.snd_nxt) {
                CcAction::FastRetransmit => {
                    self.retransmit_first(now, out);
                }
                CcAction::None => {}
            }
        }
    }

    fn retransmit_first(&mut self, now: Nanos, out: &mut Vec<Action>) {
        let Some(front) = self.rtxq.front_mut() else {
            return;
        };
        front.retransmitted = true;
        front.sent_at = now;
        let (seq, len, psh) = (front.seq, front.len, front.psh);
        self.stats.retransmits += 1;
        self.stats.segs_out += 1;
        let seg = self.make_data_segment(now, seq, len, psh, true);
        out.push(Action::Send(seg));
    }

    fn process_data(&mut self, now: Nanos, seg: &Segment, out: &mut Vec<Action>) {
        // Linux measures the peer's MSS as the largest payload observed.
        if seg.len > self.rcv_mss_est {
            self.rcv_mss_est = seg.len;
        }
        let frame_bytes = seg.ip_bytes() + ETH_HEADER + ETH_FCS;
        let truesize = BlockAllocator::truesize(frame_bytes);

        if seg.end_seq() <= self.rcv_nxt {
            // Entirely old: re-ACK immediately so the peer resyncs.
            out.push(Action::Send(self.make_ack(true)));
            self.stats.dup_acks_out += 1;
            return;
        }
        // Buffer exhausted? In-order data is never discarded: Linux prunes
        // (collapses skbs into dense buffers — `tcp_prune_queue`), paying
        // CPU instead of a retransmission storm. Out-of-order data beyond
        // the budget is dropped.
        let budget = (self.cfg.tcp_rmem.default as f64 * self.cfg.window_fraction()) as u64;
        let over_budget = self.rcv_truesize + truesize > budget + self.cfg.tcp_rmem.default / 4;
        if over_budget {
            if seg.seq > self.rcv_nxt {
                self.stats.ooo_dropped += 1;
                return;
            }
            self.stats.prunes += 1;
        }

        if seg.seq <= self.rcv_nxt {
            // In order (possibly partially overlapping).
            let new_bytes = seg.end_seq() - self.rcv_nxt;
            self.rcv_nxt = seg.end_seq();
            self.rcv_buffered += new_bytes;
            self.rcv_truesize += truesize;
            self.stats.segs_in += 1;
            // Absorb any now-contiguous out-of-order ranges.
            let mut absorbed = 0u64;
            while let Some((&start, &end)) = self.ooo.first_key_value() {
                if start > self.rcv_nxt {
                    break;
                }
                self.ooo.pop_first();
                if end > self.rcv_nxt {
                    absorbed += end - self.rcv_nxt;
                    self.rcv_nxt = end;
                }
            }
            self.rcv_buffered += absorbed;
            let delivered = new_bytes + absorbed;
            self.stats.bytes_delivered += delivered;
            out.push(Action::DeliverData { bytes: delivered });

            if !self.ooo.is_empty() {
                // Still a hole: keep the dupack pressure up.
                out.push(Action::Send(self.make_ack(true)));
                self.stats.dup_acks_out += 1;
                return;
            }
            // Delayed-ACK policy: ack every `delack_segs` full segments,
            // or arm the timer.
            self.segs_since_ack += 1;
            if self.segs_since_ack >= self.cfg.delack_segs {
                self.segs_since_ack = 0;
                self.advance_rcv_adv();
                out.push(Action::Send(self.make_ack(false)));
            } else if !self.delack_armed {
                self.delack_armed = true;
                self.delack_gen += 1;
                out.push(Action::SetTimer {
                    kind: TimerKind::DelAck,
                    at: now + Nanos::from_millis(self.cfg.delack_timeout_ms),
                    gen: self.delack_gen,
                });
            }
        } else {
            // Out of order: buffer the range and send an immediate dup ACK.
            self.insert_ooo(seg.seq, seg.end_seq());
            self.rcv_truesize += truesize;
            out.push(Action::Send(self.make_ack(true)));
            self.stats.dup_acks_out += 1;
        }
    }

    fn insert_ooo(&mut self, start: u64, end: u64) {
        // Merge overlapping/adjacent ranges.
        let mut start = start;
        let mut end = end;
        let keys: Vec<u64> = self
            .ooo
            .range(..=end)
            .filter(|(_, &e)| e >= start)
            .map(|(&s, _)| s)
            .collect();
        for k in keys {
            let e = self.ooo.remove(&k).expect("key just observed");
            start = start.min(k);
            end = end.max(e);
        }
        self.ooo.insert(start, end);
    }

    fn advance_rcv_adv(&mut self) {
        let adv = self.rcv_nxt + self.window_to_advertise();
        if adv > self.rcv_adv {
            self.rcv_adv = adv;
        }
    }

    // ------------------------------------------------------------------
    // timers
    // ------------------------------------------------------------------

    fn rtt_sample(&mut self, rtt: Nanos) {
        // Jacobson/Karels.
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let err = if rtt >= srtt { rtt - srtt } else { srtt - rtt };
                self.rttvar = Nanos((3 * self.rttvar.as_nanos() + err.as_nanos()) / 4);
                self.srtt = Some(Nanos((7 * srtt.as_nanos() + rtt.as_nanos()) / 8));
            }
        }
        // Linux-style RTO: srtt plus the variance term floored at rto_min,
        // so a long-RTT path with low jitter (the WAN) never times out
        // spuriously on delayed ACKs — and ceilinged at rto_max, so a
        // pathological rttvar spike cannot outrun the RFC 6298 clamp that
        // `backed_off_rto` enforces on the armed timer.
        let var_term = (self.rttvar * 4).max(Nanos::from_millis(self.cfg.rto_min_ms));
        self.rto =
            (self.srtt.expect("just set") + var_term).min(Nanos::from_millis(self.cfg.rto_max_ms));
    }

    /// A timer fired. Pass back the generation from the `SetTimer` action;
    /// stale generations are ignored.
    pub fn on_timer(&mut self, now: Nanos, kind: TimerKind, gen: u64) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_timer_into(now, kind, gen, &mut out);
        out
    }

    /// Allocation-free variant of [`TcpConn::on_timer`]; see
    /// [`TcpConn::on_app_write_into`].
    pub fn on_timer_into(&mut self, now: Nanos, kind: TimerKind, gen: u64, out: &mut Vec<Action>) {
        match kind {
            TimerKind::Rto => {
                if gen != self.rto_gen || !self.rto_armed {
                    return;
                }
                self.rto_armed = false;
                if self.rtxq.is_empty() {
                    return;
                }
                self.cc.on_timeout(self.inflight_segs());
                // Cap the counter itself: past MAX_RTO_BACKOFF the clamp
                // in `backed_off_rto` binds anyway, and an unbounded
                // counter would eventually overflow the shift.
                self.backoff = (self.backoff + 1).min(MAX_RTO_BACKOFF);
                self.retransmit_first(now, out);
                self.arm_rto(now, out);
            }
            TimerKind::DelAck => {
                if gen != self.delack_gen || !self.delack_armed {
                    return;
                }
                self.delack_armed = false;
                if self.segs_since_ack > 0 {
                    self.segs_since_ack = 0;
                    self.advance_rcv_adv();
                    out.push(Action::Send(self.make_ack(false)));
                }
            }
        }
    }

    /// Expose the current advertised window (for instrumentation).
    pub fn advertised_window(&self) -> u64 {
        self.window_to_advertise()
    }

    /// Expose the peer's usable window (for instrumentation).
    pub fn peer_window(&self) -> u64 {
        self.peer_window_remaining()
    }

    // ------------------------------------------------------------------
    // invariants (runtime sanitizer hook)
    // ------------------------------------------------------------------

    /// Check the connection's sequence-space invariants.
    ///
    /// Called by the composition layer at every ACK when a runtime
    /// sanitizer is installed, and by property tests after random traces.
    /// Returns a description of the first violated invariant, or `Ok` when
    /// the state is consistent. The checks:
    ///
    /// * `snd_una ≤ snd_nxt`, and the retransmission queue exactly tiles
    ///   `(snd_una, snd_nxt]` — contiguous records whose tail ends at
    ///   `snd_nxt` (empty only when everything sent is acknowledged);
    /// * congestion state bounds: `cwnd ≥ 1`, `ssthresh ≥ 2`, and `cwnd`
    ///   never exceeds the clamp beyond legal fast-recovery inflation
    ///   (`ssthresh + 3`);
    /// * send-buffer accounting: queued bytes match the write queue and
    ///   in-flight + queued never exceeds `tcp_wmem`;
    /// * SWS rounding: the advertised window is a multiple of the
    ///   estimated peer MSS unless it is pinned to a previously promised
    ///   right edge, and the promised edge never falls behind `rcv_nxt`;
    /// * out-of-order ranges are non-empty, disjoint, and strictly beyond
    ///   `rcv_nxt`.
    pub fn check_invariants(&self) -> Result<(), String> {
        // --- send sequence space ---
        if self.snd_una > self.snd_nxt {
            return Err(format!(
                "snd_una {} > snd_nxt {}",
                self.snd_una, self.snd_nxt
            ));
        }
        if let Some(last) = self.rtxq.back() {
            if last.seq + last.len != self.snd_nxt {
                return Err(format!(
                    "rtxq tail ends at {} but snd_nxt is {}",
                    last.seq + last.len,
                    self.snd_nxt
                ));
            }
            let front = self.rtxq.front().expect("non-empty queue has a front");
            if front.seq + front.len <= self.snd_una {
                return Err(format!(
                    "rtxq front [{}, {}) is fully acknowledged at snd_una {}",
                    front.seq,
                    front.seq + front.len,
                    self.snd_una
                ));
            }
            let mut expected = front.seq;
            for rec in &self.rtxq {
                if rec.seq != expected || rec.len == 0 {
                    return Err(format!(
                        "rtxq gap: record [{}, {}) does not start at {}",
                        rec.seq,
                        rec.seq + rec.len,
                        expected
                    ));
                }
                expected = rec.seq + rec.len;
            }
        } else if self.snd_una != self.snd_nxt {
            return Err(format!(
                "empty rtxq with unacknowledged data: snd_una {} != snd_nxt {}",
                self.snd_una, self.snd_nxt
            ));
        }
        // --- congestion control bounds ---
        if self.cc.cwnd < 1 {
            return Err("cwnd fell to 0".to_string());
        }
        if self.cc.ssthresh < 2 {
            return Err(format!(
                "ssthresh {} below the floor of 2",
                self.cc.ssthresh
            ));
        }
        let cwnd_bound = self.cc.cwnd_clamp.max(self.cc.ssthresh.saturating_add(3));
        if self.cc.cwnd > cwnd_bound {
            return Err(format!(
                "cwnd {} exceeds clamp {} (+ recovery inflation)",
                self.cc.cwnd, self.cc.cwnd_clamp
            ));
        }
        // --- send-buffer accounting ---
        let queued_sum: u64 = self.write_queue.iter().sum();
        if queued_sum != self.queued_bytes {
            return Err(format!(
                "queued_bytes {} != write queue total {}",
                self.queued_bytes, queued_sum
            ));
        }
        if self.inflight_bytes() + self.queued_bytes > self.cfg.tcp_wmem.default {
            return Err(format!(
                "send buffer overcommitted: {} in flight + {} queued > tcp_wmem {}",
                self.inflight_bytes(),
                self.queued_bytes,
                self.cfg.tcp_wmem.default
            ));
        }
        // --- receive window (SWS rounding, §3.5.1) ---
        if self.rcv_adv < self.rcv_nxt {
            return Err(format!(
                "promised window edge {} fell behind rcv_nxt {}",
                self.rcv_adv, self.rcv_nxt
            ));
        }
        let w = self.window_to_advertise();
        let mss = self.rcv_mss_est.max(1);
        let promised = self.rcv_adv - self.rcv_nxt;
        if w % mss != 0 && w != promised {
            return Err(format!(
                "advertised window {w} is neither a multiple of the peer MSS {mss} \
                 nor the promised remnant {promised}"
            ));
        }
        // --- out-of-order reassembly ranges ---
        let mut prev_end = 0u64;
        for (&start, &end) in &self.ooo {
            if start >= end {
                return Err(format!("empty/inverted ooo range [{start}, {end})"));
            }
            if start <= self.rcv_nxt {
                return Err(format!(
                    "ooo range [{start}, {end}) starts at or before rcv_nxt {}",
                    self.rcv_nxt
                ));
            }
            if start <= prev_end && prev_end != 0 {
                return Err(format!(
                    "ooo ranges overlap or touch: previous end {prev_end}, next start {start}"
                ));
            }
            prev_end = end;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tengig_ethernet::Mtu;

    fn lan_pair(cfg: Sysctls) -> (TcpConn, TcpConn) {
        let mss = cfg.mss();
        (TcpConn::new(cfg, mss), TcpConn::new(cfg, mss))
    }

    /// Ferry all Send actions from `from`'s output into `to`, returning
    /// everything `to` produced. Zero-latency "wire" for unit tests.
    fn ferry(now: Nanos, actions: Vec<Action>, to: &mut TcpConn) -> Vec<Action> {
        let mut out = Vec::new();
        for a in actions {
            if let Action::Send(seg) = a {
                out.extend(to.on_segment(now, &seg));
            }
        }
        out
    }

    fn drain_delivered(actions: &[Action]) -> u64 {
        actions
            .iter()
            .map(|a| {
                if let Action::DeliverData { bytes } = a {
                    *bytes
                } else {
                    0
                }
            })
            .sum()
    }

    #[test]
    fn single_write_single_segment_roundtrip() {
        let cfg = Sysctls::default();
        let (mut a, mut b) = lan_pair(cfg);
        let now = Nanos::from_micros(10);
        let (accepted, acts) = a.on_app_write(now, 1000);
        assert_eq!(accepted, 1000);
        let sends: Vec<&Action> = acts
            .iter()
            .filter(|x| matches!(x, Action::Send(_)))
            .collect();
        assert_eq!(sends.len(), 1);
        let back = ferry(now, acts, &mut b);
        assert_eq!(drain_delivered(&back), 1000);
        assert_eq!(b.rcv_nxt(), 1000);
        assert_eq!(b.rcv_buffered(), 1000);
    }

    #[test]
    fn writes_segment_at_mss() {
        let cfg = Sysctls::default(); // MSS 1448
        let (mut a, _) = lan_pair(cfg);
        let (_, acts) = a.on_app_write(Nanos(0), 4000);
        let lens: Vec<u64> = acts
            .iter()
            .filter_map(|x| {
                if let Action::Send(s) = x {
                    Some(s.len)
                } else {
                    None
                }
            })
            .collect();
        // initial cwnd = 2 → only 2 segments go out now.
        assert_eq!(lens, vec![1448, 1448]);
        assert_eq!(a.inflight_segs(), 2);
        assert_eq!(a.stats.cwnd_limited, 1);
    }

    #[test]
    fn per_write_segmentation_does_not_coalesce() {
        // Two 1000-byte writes stay two 1000-byte segments (NTTCP-style),
        // not one 2000-byte stream chunk.
        let cfg = Sysctls::default();
        let (mut a, _) = lan_pair(cfg);
        let (_, acts1) = a.on_app_write(Nanos(0), 1000);
        let (_, acts2) = a.on_app_write(Nanos(0), 1000);
        for acts in [acts1, acts2] {
            let lens: Vec<u64> = acts
                .iter()
                .filter_map(|x| {
                    if let Action::Send(s) = x {
                        Some(s.len)
                    } else {
                        None
                    }
                })
                .collect();
            assert_eq!(lens, vec![1000]);
        }
    }

    #[test]
    fn ack_opens_cwnd_and_releases_more_data() {
        let cfg = Sysctls::default();
        let (mut a, mut b) = lan_pair(cfg);
        let t0 = Nanos::from_micros(100);
        let (_, acts) = a.on_app_write(t0, 20_000);
        // 2 segments out (cwnd=2). Deliver them; B acks (delack: every 2nd).
        let t1 = t0 + Nanos::from_micros(20);
        let replies = ferry(t1, acts, &mut b);
        // B produced one cumulative ACK for two segments.
        let acks: Vec<&Action> = replies
            .iter()
            .filter(|x| matches!(x, Action::Send(_)))
            .collect();
        assert_eq!(acks.len(), 1);
        // Feed the ACK back: cwnd grew (slow start), more segments flow.
        let t2 = t1 + Nanos::from_micros(20);
        let more = ferry(t2, replies, &mut a);
        let sent: usize = more.iter().filter(|x| matches!(x, Action::Send(_))).count();
        assert!(
            sent >= 3,
            "slow start should release ≥3 segments, got {sent}"
        );
        assert!(a.srtt().is_some(), "RTT sampled from the ACK");
    }

    /// Exchange segments between `a` (sender) and `b` (receiver) until the
    /// conversation quiesces; `b` reads its buffer promptly. Returns the
    /// bytes newly delivered to `b`'s application.
    fn pump(now: &mut Nanos, a: &mut TcpConn, b: &mut TcpConn, from_a: Vec<Action>) -> u64 {
        fn sends(acts: &[Action]) -> Vec<Segment> {
            acts.iter()
                .filter_map(|x| {
                    if let Action::Send(s) = x {
                        Some(*s)
                    } else {
                        None
                    }
                })
                .collect()
        }
        let mut to_b = sends(&from_a);
        let mut to_a: Vec<Segment> = Vec::new();
        let mut delivered = 0u64;
        let mut rounds = 0;
        while !to_a.is_empty() || !to_b.is_empty() {
            rounds += 1;
            assert!(rounds < 10_000, "pump diverged");
            *now += Nanos::from_micros(10);
            let t = *now;
            for seg in std::mem::take(&mut to_b) {
                let acts = b.on_segment(t, &seg);
                delivered += drain_delivered(&acts);
                to_a.extend(sends(&acts));
            }
            to_a.extend(sends(&b.on_app_read(t, u64::MAX)));
            *now += Nanos::from_micros(10);
            let t = *now;
            for seg in std::mem::take(&mut to_a) {
                to_b.extend(sends(&a.on_segment(t, &seg)));
            }
            if to_a.is_empty() && to_b.is_empty() {
                // Flush a straggler delayed ACK, if armed.
                *now += Nanos::from_millis(41);
                let gen = b.delack_gen;
                let late = b.on_timer(*now, TimerKind::DelAck, gen);
                for seg in sends(&late) {
                    to_b.extend(sends(&a.on_segment(*now, &seg)));
                }
            }
        }
        delivered
    }

    #[test]
    fn bulk_transfer_completes_in_order() {
        let cfg = Sysctls::default().with_buffers(256 * 1024);
        let (mut a, mut b) = lan_pair(cfg);
        let mut now = Nanos::from_micros(1);
        let total = 2_000_000u64;
        let mut written = 0u64;
        let mut delivered = 0u64;
        let mut guard = 0;
        while delivered < total {
            guard += 1;
            assert!(guard < 10_000, "transfer wedged at {delivered}/{total}");
            let mut acts = Vec::new();
            if written < total {
                let (acc, a1) = a.on_app_write(now, (total - written).min(16_384));
                written += acc;
                acts.extend(a1);
            }
            delivered += pump(&mut now, &mut a, &mut b, acts);
        }
        assert_eq!(delivered, total);
        assert_eq!(b.rcv_nxt(), total);
        assert_eq!(a.stats.retransmits, 0, "no loss on this path");
        assert_eq!(a.snd_una(), total, "everything acknowledged");
    }

    #[test]
    fn advertised_window_is_mss_aligned() {
        let cfg = Sysctls::default().with_mtu(Mtu::JUMBO_9000);
        let (_, b) = lan_pair(cfg);
        let w = b.advertised_window();
        assert!(w > 0);
        assert_eq!(w % 8948, 0, "window {w} must be a multiple of the 8948 MSS");
    }

    #[test]
    fn jumbo_mtu_quantizes_default_window_harder() {
        // §3.5.1: with a large MSS relative to the buffer, the advertised
        // window loses a large fraction to MSS alignment and truesize.
        let w9000 = {
            let cfg = Sysctls::default().with_mtu(Mtu::JUMBO_9000);
            lan_pair(cfg).1.advertised_window()
        };
        let w8160 = {
            let cfg = Sysctls::default().with_mtu(Mtu::TUNED_8160);
            lan_pair(cfg).1.advertised_window()
        };
        let clamp = Sysctls::default().window_clamp();
        // Both are below the clamp, but 9000 loses more of it.
        assert!(w9000 < clamp && w8160 <= clamp);
        assert!(
            w9000 < w8160,
            "9000-MTU window {w9000} should quantize below 8160-MTU window {w8160}"
        );
    }

    #[test]
    fn receive_buffer_truesize_fills_and_window_closes() {
        let cfg = Sysctls::default().with_mtu(Mtu::JUMBO_9000);
        let (mut a, mut b) = lan_pair(cfg);
        let mut now = Nanos::from_micros(1);
        // Write a lot; never let B's app read. B's window must close.
        for _ in 0..40 {
            let (_, acts) = a.on_app_write(now, 8948);
            now += Nanos::from_micros(50);
            let replies = ferry(now, acts, &mut b);
            now += Nanos::from_micros(50);
            ferry(now, replies, &mut a);
        }
        assert!(
            b.advertised_window() < 2 * 8948,
            "window should be nearly closed, got {}",
            b.advertised_window()
        );
        // The sender is rwnd-limited, not cwnd-limited.
        assert!(a.stats.rwnd_limited > 0);
        // Reading drains the buffer and reopens the window with an update.
        let upd = b.on_app_read(now, b.rcv_buffered());
        assert!(
            upd.iter().any(|x| matches!(x, Action::Send(_))),
            "window update must be sent after a read that reopens the window"
        );
        assert!(b.advertised_window() >= 8948);
    }

    #[test]
    fn out_of_order_triggers_dupacks_and_fast_retransmit() {
        let cfg = Sysctls::default();
        let (mut a, mut b) = lan_pair(cfg);
        let mut now = Nanos::from_micros(1);
        // Grow cwnd a bit first with two clean exchanges.
        for _ in 0..6 {
            let (_, acts) = a.on_app_write(now, 1448);
            now += Nanos::from_micros(30);
            let r = ferry(now, acts, &mut b);
            b.on_app_read(now, u64::MAX);
            now += Nanos::from_micros(30);
            ferry(now, r, &mut a);
            now += Nanos::from_millis(41);
            let gen = b.delack_gen;
            let late = b.on_timer(now, TimerKind::DelAck, gen);
            ferry(now, late, &mut a);
        }
        assert!(a.cc.cwnd >= 5, "cwnd {}", a.cc.cwnd);
        // Queue 5 segments; drop the first on the "wire".
        let (_, acts) = a.on_app_write(now, 5 * 1448);
        let segs: Vec<Segment> = acts
            .iter()
            .filter_map(|x| {
                if let Action::Send(s) = x {
                    Some(*s)
                } else {
                    None
                }
            })
            .collect();
        assert!(
            segs.len() >= 4,
            "need ≥4 segments in flight, got {}",
            segs.len()
        );
        now += Nanos::from_micros(30);
        let mut dupacks = Vec::new();
        for seg in &segs[1..] {
            dupacks.extend(b.on_segment(now, seg));
        }
        // B sent immediate duplicate ACKs for the hole.
        assert!(
            b.stats.dup_acks_out >= 3,
            "dupacks {}",
            b.stats.dup_acks_out
        );
        // Feed them to A: fast retransmit of the first segment.
        now += Nanos::from_micros(30);
        let mut rtx = Vec::new();
        for d in dupacks {
            if let Action::Send(s) = d {
                rtx.extend(a.on_segment(now, &s));
            }
        }
        let rtx_segs: Vec<&Action> = rtx
            .iter()
            .filter(|x| matches!(x, Action::Send(s) if s.retransmit && s.len > 0))
            .collect();
        assert_eq!(rtx_segs.len(), 1, "exactly one fast retransmit");
        assert_eq!(a.stats.retransmits, 1);
        assert_eq!(a.cc.fast_retransmits, 1);
        // Deliver the retransmission: B's reassembly completes the stream.
        now += Nanos::from_micros(30);
        if let Action::Send(s) = rtx_segs[0] {
            let fin = b.on_segment(now, s);
            assert_eq!(drain_delivered(&fin), 5 * 1448);
        }
        assert_eq!(b.rcv_nxt(), a.snd_nxt());
    }

    #[test]
    fn rto_recovers_a_fully_lost_window() {
        let cfg = Sysctls::default();
        let (mut a, mut b) = lan_pair(cfg);
        let now = Nanos::from_micros(1);
        let (_, acts) = a.on_app_write(now, 1448);
        // The segment is lost entirely; capture the RTO timer.
        let timer = acts
            .iter()
            .find_map(|x| {
                if let Action::SetTimer {
                    kind: TimerKind::Rto,
                    at,
                    gen,
                } = x
                {
                    Some((*at, *gen))
                } else {
                    None
                }
            })
            .expect("RTO armed with data in flight");
        let (at, gen) = timer;
        assert!(
            at >= now + Nanos::from_millis(200),
            "RTO respects the 200 ms floor"
        );
        let out = a.on_timer(at, TimerKind::Rto, gen);
        let rtx: Vec<&Action> = out
            .iter()
            .filter(|x| matches!(x, Action::Send(s) if s.retransmit))
            .collect();
        assert_eq!(rtx.len(), 1);
        assert_eq!(a.cc.cwnd, 1, "timeout collapses cwnd");
        assert_eq!(a.cc.timeouts, 1);
        // Deliver the retransmission; stream completes.
        if let Action::Send(s) = rtx[0] {
            let fin = b.on_segment(at + Nanos::from_micros(10), s);
            assert_eq!(drain_delivered(&fin), 1448);
        }
    }

    #[test]
    fn backed_off_rto_never_exceeds_rto_max() {
        // A long flap: the only segment is lost over and over, every RTO
        // fires, and the backed-off delay must double (RFC 6298 §5.5)
        // until the 60 s ceiling binds — then pin there, so recovery time
        // stops growing with outage length instead of heading for the
        // 2^16 × base ≈ hours-long timers the unclamped code produced.
        let cfg = Sysctls::default();
        let (mut a, _b) = lan_pair(cfg);
        let mut now = Nanos::from_micros(1);
        let (_, acts) = a.on_app_write(now, 1448);
        let find_rto = |acts: &[Action]| {
            acts.iter().find_map(|x| match x {
                Action::SetTimer {
                    kind: TimerKind::Rto,
                    at,
                    gen,
                } => Some((*at, *gen)),
                _ => None,
            })
        };
        let mut timer = find_rto(&acts).expect("RTO armed with data in flight");
        let rto_max = Nanos::from_millis(cfg.rto_max_ms);
        let mut delays: Vec<Nanos> = Vec::new();
        for _ in 0..20 {
            let (at, gen) = timer;
            delays.push(at - now);
            now = at;
            let out = a.on_timer(now, TimerKind::Rto, gen);
            timer = find_rto(&out).expect("RTO re-armed after firing");
        }
        for (i, w) in delays.windows(2).enumerate() {
            assert!(
                w[1] == w[0].saturating_mul(2) || w[1] == rto_max,
                "delay {} must double or sit at the cap: {} then {}",
                i,
                w[0],
                w[1]
            );
            assert!(w[1] >= w[0], "backoff must never shrink mid-flap");
        }
        for (i, d) in delays.iter().enumerate() {
            assert!(*d <= rto_max, "delay {i} exceeds rto_max: {d}");
        }
        // The ladder actually reached and stayed at the ceiling.
        assert_eq!(delays.last(), Some(&rto_max));
        let capped = delays.iter().filter(|d| **d == rto_max).count();
        assert!(
            capped >= 10,
            "20 flap rounds must spend most of them pinned at 60 s, got {capped}"
        );
        assert_eq!(a.backoff, MAX_RTO_BACKOFF, "the counter itself is capped");
    }

    #[test]
    fn pathological_rtt_sample_cannot_exceed_rto_max() {
        // `rtt_sample` recomputes the RTO outside `backed_off_rto`; the
        // same ceiling must bind there, or one absurd variance spike
        // would arm a timer past the clamp.
        let cfg = Sysctls::default();
        let (mut a, _b) = lan_pair(cfg);
        a.rtt_sample(Nanos::from_secs(90));
        assert_eq!(a.rto, Nanos::from_millis(cfg.rto_max_ms));
        // And an enormous ceiling really is respected as a ceiling, not
        // re-derived from constants.
        let (mut c, _d) = lan_pair(Sysctls::default().with_rto_max_ms(3_600_000));
        c.rtt_sample(Nanos::from_secs(90));
        assert!(c.rto > Nanos::from_secs(100), "huge sample, huge rto_max");
    }

    #[test]
    fn stale_timers_are_ignored() {
        let cfg = Sysctls::default();
        let (mut a, mut b) = lan_pair(cfg);
        let now = Nanos::from_micros(1);
        let (_, acts) = a.on_app_write(now, 1448);
        let (at, gen) = acts
            .iter()
            .find_map(|x| {
                if let Action::SetTimer {
                    kind: TimerKind::Rto,
                    at,
                    gen,
                } = x
                {
                    Some((*at, *gen))
                } else {
                    None
                }
            })
            .expect("rto armed");
        // The ACK arrives first...
        let t_ack = now + Nanos::from_micros(40);
        ferry(t_ack, acts, &mut b);
        let replies = {
            // force the delack timer so the odd single segment gets acked
            let g = b.delack_gen;
            b.on_timer(t_ack + Nanos::from_millis(41), TimerKind::DelAck, g)
        };
        ferry(t_ack + Nanos::from_millis(42), replies, &mut a);
        assert_eq!(a.snd_una(), 1448);
        // ...so the old RTO firing must do nothing.
        let out = a.on_timer(at, TimerKind::Rto, gen);
        assert!(out.is_empty(), "stale RTO must be ignored: {out:?}");
        assert_eq!(a.stats.retransmits, 0);
    }

    #[test]
    fn send_buffer_limits_writes() {
        let cfg = Sysctls::default(); // wmem default 64 KiB
        let (mut a, _) = lan_pair(cfg);
        let (acc, _) = a.on_app_write(Nanos(0), 1 << 20);
        assert_eq!(acc, 65_536, "write bounded by tcp_wmem");
        let (acc2, _) = a.on_app_write(Nanos(0), 1000);
        assert_eq!(acc2, 0, "buffer full");
    }

    #[test]
    fn window_never_shrinks_right_edge() {
        let cfg = Sysctls::default();
        let (mut a, mut b) = lan_pair(cfg);
        let mut now = Nanos::from_micros(1);
        let mut prev_right = 0u64;
        for _ in 0..20 {
            let (_, acts) = a.on_app_write(now, 1448);
            now += Nanos::from_micros(30);
            let replies = ferry(now, acts, &mut b);
            for r in &replies {
                if let Action::Send(s) = r {
                    let right = s.ack + s.wnd;
                    assert!(
                        right >= prev_right,
                        "right edge retreated: {right} < {prev_right}"
                    );
                    prev_right = right;
                }
            }
            now += Nanos::from_micros(30);
            ferry(now, replies, &mut a);
        }
    }
}
