//! 32-bit wrapping sequence-number arithmetic (RFC 793 style).
//!
//! Internally the connection logic works with absolute 64-bit stream
//! offsets (which cannot wrap within any simulated experiment — a terabyte
//! transfer is 2^40 bytes), but the wire format carries 32-bit sequence
//! numbers. This module provides the wrap-safe comparisons used when
//! interpreting wire values, plus the absolute↔wire mapping.

/// A 32-bit wire sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WireSeq(pub u32);

impl WireSeq {
    /// Map an absolute stream offset to a wire sequence number given the
    /// connection's initial sequence number.
    pub fn from_absolute(isn: u32, offset: u64) -> WireSeq {
        WireSeq(isn.wrapping_add(offset as u32))
    }

    /// `self < other` in wrap-aware modular arithmetic (RFC 1982-style:
    /// true when the forward distance from `self` to `other` is in
    /// `(0, 2^31)`).
    pub fn before(self, other: WireSeq) -> bool {
        (other.0.wrapping_sub(self.0) as i32) > 0
    }

    /// `self <= other` wrap-aware.
    pub fn before_eq(self, other: WireSeq) -> bool {
        self == other || self.before(other)
    }

    /// `self > other` wrap-aware.
    pub fn after(self, other: WireSeq) -> bool {
        other.before(self)
    }

    /// Forward distance from `self` to `other` (bytes), assuming `other`
    /// is not more than 2^31 ahead.
    pub fn distance_to(self, other: WireSeq) -> u32 {
        other.0.wrapping_sub(self.0)
    }

    /// Advance by `n` bytes.
    #[allow(clippy::should_implement_trait)] // wrapping semantics differ from Add
    pub fn add(self, n: u32) -> WireSeq {
        WireSeq(self.0.wrapping_add(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_without_wrap() {
        let a = WireSeq(100);
        let b = WireSeq(200);
        assert!(a.before(b));
        assert!(!b.before(a));
        assert!(a.before_eq(a));
        assert!(b.after(a));
        assert_eq!(a.distance_to(b), 100);
    }

    #[test]
    fn ordering_across_wrap() {
        let a = WireSeq(u32::MAX - 10);
        let b = WireSeq(5);
        assert!(a.before(b), "wrap-around: MAX-10 precedes 5");
        assert!(b.after(a));
        assert_eq!(a.distance_to(b), 16);
        assert_eq!(a.add(16), b);
    }

    #[test]
    fn absolute_mapping() {
        let isn = u32::MAX - 100;
        let w0 = WireSeq::from_absolute(isn, 0);
        let w200 = WireSeq::from_absolute(isn, 200);
        assert_eq!(w0.0, isn);
        assert!(w0.before(w200));
        assert_eq!(w0.distance_to(w200), 200);
        // Offsets beyond 2^32 alias, as on the real wire.
        let big = WireSeq::from_absolute(isn, 1 << 33);
        assert_eq!(big, w0);
    }

    #[test]
    fn half_space_boundary() {
        let a = WireSeq(0);
        // Exactly 2^31 away is "not before" in either direction with our
        // strict definition (the i32 comparison sees i32::MIN, not > 0).
        let far = WireSeq(1 << 31);
        assert!(!a.before(far));
        assert!(!far.before(a));
    }
}
