//! `tengig-tcp` — a Linux-2.4-style TCP/IP stack as a sans-IO state machine.
//!
//! This is the protocol substrate of the laboratory: everything the paper's
//! §3.5.1 window analysis and §4 WAN record depend on is implemented as
//! mechanism, not curve-fitting:
//!
//! * [`conn`] — the connection state machine: per-write segmentation,
//!   packet-counted congestion window, truesize buffer accounting,
//!   MSS-aligned advertised windows with SWS avoidance, delayed ACKs,
//!   Jacobson RTO, Reno fast retransmit/recovery,
//! * [`cc`] — Reno congestion control (the AIMD of Table 1),
//! * [`sysctl`] — the tuning surface (`tcp_rmem`, timestamps, window
//!   scaling, MTU, txqueuelen, …),
//! * [`segment`]/[`seq`] — wire units,
//! * [`udp`] — datagrams for the pktgen workload.
//!
//! The state machines are deliberately I/O-free: they return [`Action`]s
//! and the composition layer schedules them on the simulation engine and
//! charges hardware costs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod conn;
pub mod segment;
pub mod seq;
pub mod sysctl;
pub mod udp;

pub use cc::{CcAction, Phase, Reno};
pub use conn::{Action, ConnStats, TcpConn, TimerKind};
pub use segment::{Flags, Segment, Timestamps};
pub use seq::WireSeq;
pub use sysctl::{BufTriple, Sysctls};
pub use udp::Datagram;
