//! Simulated TCP segments.

use tengig_ethernet::{IP_HEADER, TCP_HEADER, TCP_TIMESTAMP_OPTION};
use tengig_sim::Nanos;

/// Control flags (only the ones the laboratory exercises).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Acknowledgment field is valid (always true after establishment).
    pub ack: bool,
    /// Push: segment closes an application write.
    pub psh: bool,
    /// Sender has finished its stream.
    pub fin: bool,
}

/// The RFC 1323 timestamp option carried by a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timestamps {
    /// Sender's clock value at transmission.
    pub tsval: Nanos,
    /// Echo of the latest timestamp received from the peer.
    pub tsecr: Nanos,
}

/// A TCP segment as it travels through the simulated network.
///
/// Sequence/ack values are absolute 64-bit stream offsets (see
/// [`crate::seq`] for the wire-format view); sizes are byte counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Absolute stream offset of the first payload byte.
    pub seq: u64,
    /// Payload length in bytes (0 for a pure ACK).
    pub len: u64,
    /// Cumulative acknowledgment: all bytes before this offset received.
    pub ack: u64,
    /// Advertised receive window in bytes (post-scaling).
    pub wnd: u64,
    /// Control flags.
    pub flags: Flags,
    /// Timestamp option, when enabled on the connection.
    pub ts: Option<Timestamps>,
    /// True if this segment is a retransmission.
    pub retransmit: bool,
}

impl Segment {
    /// Stream offset one past the last payload byte.
    pub fn end_seq(&self) -> u64 {
        self.seq + self.len
    }

    /// Size of this segment as an IP packet (headers + options + payload).
    pub fn ip_bytes(&self) -> u64 {
        let opts = if self.ts.is_some() {
            TCP_TIMESTAMP_OPTION
        } else {
            0
        };
        IP_HEADER + TCP_HEADER + opts + self.len
    }

    /// Whether this is a pure acknowledgment (no payload, no FIN).
    pub fn is_pure_ack(&self) -> bool {
        self.len == 0 && !self.flags.fin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(seq: u64, len: u64) -> Segment {
        Segment {
            seq,
            len,
            ack: 0,
            wnd: 65535,
            flags: Flags {
                ack: true,
                ..Flags::default()
            },
            ts: None,
            retransmit: false,
        }
    }

    #[test]
    fn sizes() {
        let s = seg(0, 1448);
        assert_eq!(s.end_seq(), 1448);
        assert_eq!(s.ip_bytes(), 1488);
        let with_ts = Segment {
            ts: Some(Timestamps {
                tsval: Nanos(1),
                tsecr: Nanos(0),
            }),
            ..s
        };
        assert_eq!(
            with_ts.ip_bytes(),
            1500,
            "1448 MSS + 40 headers + 12 ts = full 1500 MTU"
        );
    }

    #[test]
    fn pure_ack_detection() {
        assert!(seg(0, 0).is_pure_ack());
        assert!(!seg(0, 1).is_pure_ack());
        let fin = Segment {
            flags: Flags {
                fin: true,
                ack: true,
                psh: false,
            },
            ..seg(0, 0)
        };
        assert!(!fin.is_pure_ack());
    }
}
