//! Reno congestion control, with the congestion window counted in
//! **segments**, as Linux counts it.
//!
//! This unit choice is load-bearing for the paper: "performance is similarly
//! limited because the congestion window is kept aligned with the MSS"
//! (§3.5.1) — a sender transmitting sub-MSS segments spends one cwnd slot
//! per segment regardless of its size, which is exactly the throughput
//! attenuation Fig. 8 illustrates.
//!
//! The additive-increase/multiplicative-decrease behaviour drives Table 1:
//! after a loss the window halves and regrows one segment per RTT, so a
//! 10 Gb/s flow at 180 ms RTT with a 1460-byte MSS needs hours to recover.

/// Congestion-control phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Exponential growth to `ssthresh`.
    SlowStart,
    /// Linear growth (one segment per RTT).
    CongestionAvoidance,
    /// Fast recovery after a triple duplicate ACK; holds the recovery point.
    FastRecovery,
}

/// Reno state. All window quantities are in segments.
#[derive(Debug, Clone)]
pub struct Reno {
    /// Congestion window (segments).
    pub cwnd: u64,
    /// Slow-start threshold (segments).
    pub ssthresh: u64,
    /// Linear-increase accumulator (Linux `snd_cwnd_cnt`).
    cwnd_cnt: u64,
    /// Duplicate-ACK counter.
    dupacks: u32,
    /// Absolute sequence that ends the current fast-recovery episode.
    recovery_point: Option<u64>,
    /// Upper bound on cwnd (segments), from the send-buffer size.
    pub cwnd_clamp: u64,
    /// Count of fast retransmits triggered.
    pub fast_retransmits: u64,
    /// Count of RTO-driven retransmission episodes.
    pub timeouts: u64,
}

/// What the sender should do after a congestion event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcAction {
    /// Nothing special; transmit as the window allows.
    None,
    /// Retransmit the first unacknowledged segment now (fast retransmit).
    FastRetransmit,
}

impl Reno {
    /// A fresh connection with the given initial window (Linux 2.4: 2).
    pub fn new(initial_cwnd: u64, cwnd_clamp: u64) -> Self {
        Reno {
            cwnd: initial_cwnd.max(1),
            ssthresh: u64::MAX / 2,
            cwnd_cnt: 0,
            dupacks: 0,
            recovery_point: None,
            cwnd_clamp: cwnd_clamp.max(2),
            fast_retransmits: 0,
            timeouts: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        if self.recovery_point.is_some() {
            Phase::FastRecovery
        } else if self.cwnd < self.ssthresh {
            Phase::SlowStart
        } else {
            Phase::CongestionAvoidance
        }
    }

    /// A new cumulative ACK arrived covering `acked_segs` full segments,
    /// advancing the left edge to `ack_seq`.
    ///
    /// Returns [`CcAction::FastRetransmit`] on a NewReno partial ACK: an
    /// ACK that advances the left edge but not past the recovery point
    /// means the *next* segment was also lost and must be retransmitted
    /// immediately — without this, a multi-loss window recovers one
    /// segment per RTO and the flow collapses.
    pub fn on_new_ack(&mut self, ack_seq: u64, acked_segs: u64) -> CcAction {
        self.dupacks = 0;
        if let Some(point) = self.recovery_point {
            if ack_seq >= point {
                // Recovery complete: deflate to ssthresh (Reno full ACK).
                self.recovery_point = None;
                self.cwnd = self.ssthresh.max(2);
                return CcAction::None;
            }
            // Partial ACK: retransmit the next hole (NewReno, RFC 6582).
            // §3.2 step 5: deflate the window by the amount of new data
            // acknowledged, then add back one segment for the retransmit.
            // Without the deflation the window stays fully inflated through
            // a multi-loss recovery, letting bursts of new data out while
            // holes remain.
            self.cwnd = self
                .cwnd
                .saturating_sub(acked_segs)
                .saturating_add(1)
                .max(2);
            return CcAction::FastRetransmit;
        }
        for _ in 0..acked_segs {
            if self.cwnd < self.ssthresh {
                // Slow start: one segment per ACKed segment.
                self.cwnd += 1;
            } else {
                // Congestion avoidance: one segment per cwnd ACKs.
                self.cwnd_cnt += 1;
                if self.cwnd_cnt >= self.cwnd {
                    self.cwnd_cnt = 0;
                    self.cwnd += 1;
                }
            }
        }
        self.cwnd = self.cwnd.min(self.cwnd_clamp);
        CcAction::None
    }

    /// A duplicate ACK arrived while `flight_segs` segments are outstanding
    /// and `snd_nxt` is the next send offset.
    pub fn on_dup_ack(&mut self, flight_segs: u64, snd_nxt: u64) -> CcAction {
        if self.recovery_point.is_some() {
            // Each further dupack inflates the window by one segment
            // (Reno fast recovery), letting new data out.
            self.cwnd = (self.cwnd + 1).min(self.cwnd_clamp);
            return CcAction::None;
        }
        self.dupacks += 1;
        if self.dupacks >= 3 {
            self.ssthresh = (flight_segs / 2).max(2);
            self.cwnd = self.ssthresh + 3;
            self.recovery_point = Some(snd_nxt);
            self.dupacks = 0;
            self.fast_retransmits += 1;
            CcAction::FastRetransmit
        } else {
            CcAction::None
        }
    }

    /// The retransmission timer fired with `flight_segs` outstanding.
    pub fn on_timeout(&mut self, flight_segs: u64) {
        self.ssthresh = (flight_segs / 2).max(2);
        self.cwnd = 1;
        self.cwnd_cnt = 0;
        self.dupacks = 0;
        self.recovery_point = None;
        self.timeouts += 1;
    }

    /// Whether a sender with `flight_segs` outstanding may transmit one more
    /// segment.
    pub fn can_send(&self, flight_segs: u64) -> bool {
        flight_segs < self.cwnd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = Reno::new(2, u64::MAX / 2);
        assert_eq!(cc.phase(), Phase::SlowStart);
        // One RTT: every outstanding segment acked → cwnd doubles.
        let mut seq = 0u64;
        for rtt in 0..5 {
            let w = cc.cwnd;
            seq += w;
            cc.on_new_ack(seq, w);
            assert_eq!(cc.cwnd, w * 2, "rtt {rtt}");
        }
    }

    #[test]
    fn congestion_avoidance_adds_one_per_rtt() {
        let mut cc = Reno::new(2, u64::MAX / 2);
        cc.ssthresh = 10;
        cc.cwnd = 10;
        assert_eq!(cc.phase(), Phase::CongestionAvoidance);
        let mut seq = 0u64;
        for _ in 0..4 {
            let w = cc.cwnd;
            seq += w;
            cc.on_new_ack(seq, w);
            assert_eq!(cc.cwnd, w + 1);
        }
    }

    #[test]
    fn triple_dupack_halves_window() {
        let mut cc = Reno::new(2, u64::MAX / 2);
        cc.ssthresh = 8;
        cc.cwnd = 100;
        assert_eq!(cc.on_dup_ack(100, 1000), CcAction::None);
        assert_eq!(cc.on_dup_ack(100, 1000), CcAction::None);
        assert_eq!(cc.on_dup_ack(100, 1000), CcAction::FastRetransmit);
        assert_eq!(cc.phase(), Phase::FastRecovery);
        assert_eq!(cc.ssthresh, 50);
        assert_eq!(cc.cwnd, 53); // ssthresh + 3 inflation
                                 // Partial dupacks inflate...
        cc.on_dup_ack(100, 1000);
        assert_eq!(cc.cwnd, 54);
        // ...and the full ACK deflates to ssthresh.
        cc.on_new_ack(1000, 10);
        assert_eq!(cc.phase(), Phase::CongestionAvoidance);
        assert_eq!(cc.cwnd, 50);
        assert_eq!(cc.fast_retransmits, 1);
    }

    #[test]
    fn timeout_collapses_to_one_segment() {
        let mut cc = Reno::new(2, u64::MAX / 2);
        cc.cwnd = 64;
        cc.ssthresh = 64;
        cc.on_timeout(64);
        assert_eq!(cc.cwnd, 1);
        assert_eq!(cc.ssthresh, 32);
        assert_eq!(cc.phase(), Phase::SlowStart);
        assert_eq!(cc.timeouts, 1);
    }

    #[test]
    fn cwnd_respects_clamp() {
        let mut cc = Reno::new(2, 16);
        let mut seq = 0u64;
        for _ in 0..10 {
            let w = cc.cwnd;
            seq += w;
            cc.on_new_ack(seq, w);
        }
        assert_eq!(cc.cwnd, 16);
    }

    #[test]
    fn can_send_tracks_window() {
        let cc = Reno::new(2, 100);
        assert!(cc.can_send(0));
        assert!(cc.can_send(1));
        assert!(!cc.can_send(2));
    }

    #[test]
    fn recovery_ignores_ack_growth() {
        let mut cc = Reno::new(2, u64::MAX / 2);
        cc.cwnd = 40;
        cc.ssthresh = 40;
        for _ in 0..3 {
            cc.on_dup_ack(40, 500);
        }
        let during = cc.cwnd;
        // A partial ACK below the recovery point must not *grow* the
        // window — it deflates it by the acked amount plus one segment
        // for the retransmit (RFC 6582 §3.2 step 5).
        cc.on_new_ack(100, 5);
        assert_eq!(cc.cwnd, during - 5 + 1);
        assert_eq!(cc.phase(), Phase::FastRecovery);
    }

    #[test]
    fn partial_acks_deflate_through_a_three_loss_window() {
        // A 3-loss window: fast retransmit, then two partial ACKs (one per
        // recovered hole), then the full ACK ends recovery.
        let mut cc = Reno::new(2, u64::MAX / 2);
        cc.cwnd = 20;
        cc.ssthresh = 20;
        // Segments 0..20 in flight; 3 of them (say 0, 7, 14) are lost.
        // Triple dupack on the first hole:
        for _ in 0..3 {
            cc.on_dup_ack(20, 20);
        }
        assert_eq!(cc.phase(), Phase::FastRecovery);
        assert_eq!(cc.ssthresh, 10);
        assert_eq!(cc.cwnd, 13); // ssthresh + 3 inflation

        // Retransmitted segment 0 fills the first hole: the cumulative ACK
        // advances to 7 — a partial ACK covering 7 segments. RFC 6582
        // §3.2 step 5: deflate by the acked amount, add back 1.
        assert_eq!(cc.on_new_ack(7, 7), CcAction::FastRetransmit);
        assert_eq!(cc.phase(), Phase::FastRecovery);
        assert_eq!(cc.cwnd, 13 - 7 + 1);

        // Second hole filled: ACK advances to 14 (7 more segments).
        assert_eq!(cc.on_new_ack(14, 7), CcAction::FastRetransmit);
        assert_eq!(cc.phase(), Phase::FastRecovery);
        assert_eq!(cc.cwnd, 2); // deflation floors at 2 segments

        // Third hole filled: the ACK reaches the recovery point and
        // recovery ends with cwnd = ssthresh.
        assert_eq!(cc.on_new_ack(20, 6), CcAction::None);
        assert_eq!(cc.phase(), Phase::CongestionAvoidance);
        assert_eq!(cc.cwnd, 10);
    }
}
