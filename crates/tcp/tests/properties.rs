//! Property-based tests for the TCP state machine.

use proptest::prelude::*;
use tengig_sim::Nanos;
use tengig_tcp::{Action, Reno, Segment, Sysctls, TcpConn, WireSeq};

fn sends(acts: &[Action]) -> Vec<Segment> {
    acts.iter()
        .filter_map(|x| {
            if let Action::Send(s) = x {
                Some(*s)
            } else {
                None
            }
        })
        .collect()
}

fn delivered(acts: &[Action]) -> u64 {
    acts.iter()
        .map(|a| {
            if let Action::DeliverData { bytes } = a {
                *bytes
            } else {
                0
            }
        })
        .sum()
}

proptest! {
    /// Wire sequence arithmetic is a faithful mod-2^32 order embedding:
    /// for any isn and offsets within half the space, order is preserved.
    #[test]
    fn wire_seq_order_embedding(isn: u32, a in 0u64..(1 << 30), b in 0u64..(1 << 30)) {
        let wa = WireSeq::from_absolute(isn, a);
        let wb = WireSeq::from_absolute(isn, b);
        prop_assert_eq!(a < b, wa.before(wb));
        prop_assert_eq!(a == b, wa == wb);
        if a <= b {
            prop_assert_eq!(wa.distance_to(wb) as u64, b - a);
        }
    }

    /// The advertised window is always a multiple of the estimated MSS and
    /// never exceeds the configured clamp — the §3.5.1 invariant.
    #[test]
    fn advertised_window_invariant(
        buf in 16_384u64..1_048_576,
        write_sizes in proptest::collection::vec(1u64..9000, 1..40),
    ) {
        let cfg = Sysctls::default().with_buffers(buf);
        let mss = cfg.mss();
        let mut a = TcpConn::new(cfg, mss);
        let mut b = TcpConn::new(cfg, mss);
        let mut now = Nanos::from_micros(1);
        let mut prev_right = 0u64;
        for w in write_sizes {
            let (_, acts) = a.on_app_write(now, w);
            now += Nanos::from_micros(20);
            for seg in sends(&acts) {
                let replies = b.on_segment(now, &seg);
                for r in sends(&replies) {
                    prop_assert!(r.wnd <= cfg.window_clamp() + mss,
                        "window {} above clamp {}", r.wnd, cfg.window_clamp());
                    // The right edge never retreats...
                    let right = r.ack + r.wnd;
                    prop_assert!(right >= prev_right,
                        "right edge retreated: {right} < {prev_right}");
                    // ...and a *fresh* advertisement (advancing edge) is
                    // MSS-aligned — the §3.5.1 SWS rounding.
                    if right > prev_right {
                        prop_assert!(r.wnd % b.mss() == 0,
                            "fresh window {} not MSS-aligned (mss {})", r.wnd, b.mss());
                    }
                    prev_right = right;
                    now += Nanos::from_micros(5);
                    a.on_segment(now, &r);
                }
            }
        }
    }

    /// Byte conservation under arbitrary write patterns on a lossless path:
    /// everything written is eventually delivered exactly once, in order.
    #[test]
    fn lossless_delivery_conserves_bytes(
        writes in proptest::collection::vec(1u64..20_000, 1..30)
    ) {
        let cfg = Sysctls::default().with_buffers(512 * 1024);
        let mss = cfg.mss();
        let mut a = TcpConn::new(cfg, mss);
        let mut b = TcpConn::new(cfg, mss);
        let mut now = Nanos::from_micros(1);
        let mut total_written = 0u64;
        let mut total_delivered = 0u64;
        for w in writes {
            let (acc, acts) = a.on_app_write(now, w);
            total_written += acc;
            // Pump to quiescence.
            let mut to_b = sends(&acts);
            let mut rounds = 0;
            while !to_b.is_empty() {
                rounds += 1;
                prop_assert!(rounds < 1000, "diverged");
                now += Nanos::from_micros(10);
                let mut to_a = Vec::new();
                for seg in std::mem::take(&mut to_b) {
                    let replies = b.on_segment(now, &seg);
                    total_delivered += delivered(&replies);
                    to_a.extend(sends(&replies));
                }
                to_a.extend(sends(&b.on_app_read(now, u64::MAX)));
                now += Nanos::from_micros(10);
                for seg in to_a {
                    to_b.extend(sends(&a.on_segment(now, &seg)));
                }
                if to_b.is_empty() {
                    now += Nanos::from_millis(45);
                    // Flush any armed delayed ACK via its timer by just
                    // probing both generations we might have armed.
                    for g in 0..200 {
                        let acts = b.on_timer(now, tengig_tcp::TimerKind::DelAck, g);
                        for seg in sends(&acts) {
                            to_b.extend(sends(&a.on_segment(now, &seg)));
                        }
                    }
                }
            }
        }
        prop_assert_eq!(total_delivered, total_written);
        prop_assert_eq!(b.rcv_nxt(), total_written);
        prop_assert_eq!(a.snd_una(), total_written);
        prop_assert_eq!(a.stats.retransmits, 0);
    }

    /// Reno invariants under arbitrary event sequences: cwnd ≥ 1, cwnd ≤
    /// clamp, ssthresh ≥ 2, and a timeout always collapses cwnd to 1.
    #[test]
    fn reno_invariants(events in proptest::collection::vec(0u8..4, 1..200)) {
        let mut cc = Reno::new(2, 1000);
        let mut seq = 0u64;
        for e in events {
            match e {
                0 => {
                    let w = cc.cwnd;
                    seq += w;
                    cc.on_new_ack(seq, w);
                }
                1 => { cc.on_dup_ack(cc.cwnd, seq + cc.cwnd); }
                2 => {
                    cc.on_timeout(cc.cwnd);
                    prop_assert_eq!(cc.cwnd, 1);
                }
                _ => {
                    let w = cc.cwnd.min(3);
                    seq += w;
                    cc.on_new_ack(seq, w);
                }
            }
            prop_assert!(cc.cwnd >= 1);
            prop_assert!(cc.cwnd <= 1000);
            prop_assert!(cc.ssthresh >= 2);
        }
    }

    /// Random TCP traces — interleaved writes, reads, losses, reordered
    /// deliveries, and timer fires — never trip the connection's
    /// sequence-space invariants ([`TcpConn::check_invariants`]), the same
    /// checks the runtime sanitizer applies at every ACK.
    #[test]
    fn random_traces_never_trip_invariants(
        ops in proptest::collection::vec((0u8..6, 0u64..20_000), 20..150),
    ) {
        let cfg = Sysctls::default().with_buffers(256 * 1024);
        let mss = cfg.mss();
        let mut a = TcpConn::new(cfg, mss);
        let mut b = TcpConn::new(cfg, mss);
        let mut now = Nanos::from_micros(1);
        let mut to_b: Vec<Segment> = Vec::new();
        let mut to_a: Vec<Segment> = Vec::new();
        for (op, arg) in ops {
            now += Nanos::from_micros(1 + arg % 500);
            match op {
                // The sender's application writes.
                0 => {
                    let (_, acts) = a.on_app_write(now, 1 + arg);
                    to_b.extend(sends(&acts));
                }
                // Deliver one a→b segment, possibly out of order.
                1 if !to_b.is_empty() => {
                    let i = arg as usize % to_b.len();
                    let seg = to_b.remove(i);
                    to_a.extend(sends(&b.on_segment(now, &seg)));
                }
                // Deliver one b→a segment (ACK path), possibly out of order.
                2 if !to_a.is_empty() => {
                    let i = arg as usize % to_a.len();
                    let seg = to_a.remove(i);
                    to_b.extend(sends(&a.on_segment(now, &seg)));
                }
                // Drop a segment in either direction (congestion loss).
                3 if !to_b.is_empty() => {
                    let i = arg as usize % to_b.len();
                    to_b.remove(i);
                }
                4 if !to_a.is_empty() => {
                    let i = arg as usize % to_a.len();
                    to_a.remove(i);
                }
                // Fire timers: probe a spread of generations; stale ones
                // are ignored, live ones retransmit or flush an ACK.
                5 => {
                    now += Nanos::from_secs(3); // past any backoff RTO
                    for g in 0..40 {
                        to_b.extend(sends(&a.on_timer(now, tengig_tcp::TimerKind::Rto, g)));
                        to_a.extend(sends(&b.on_timer(now, tengig_tcp::TimerKind::DelAck, g)));
                    }
                    // The receiver's application drains its buffer.
                    to_a.extend(sends(&b.on_app_read(now, u64::MAX)));
                }
                _ => {}
            }
            let ra = a.check_invariants();
            prop_assert!(ra.is_ok(), "sender invariants: {:?}", ra);
            let rb = b.check_invariants();
            prop_assert!(rb.is_ok(), "receiver invariants: {:?}", rb);
        }
    }

    /// Segments never exceed the negotiated MSS, and a write of n bytes
    /// produces exactly ceil(n/mss) segments once the window permits.
    #[test]
    fn segmentation_respects_mss(write in 1u64..100_000) {
        let cfg = Sysctls::default().with_buffers(1 << 20);
        let mss = cfg.mss();
        let mut a = TcpConn::new(cfg, mss);
        let mut b = TcpConn::new(cfg, mss);
        let mut now = Nanos::from_micros(1);
        let (acc, acts) = a.on_app_write(now, write);
        let mut seg_count = 0u64;
        let mut to_b = sends(&acts);
        let mut rounds = 0;
        while !to_b.is_empty() {
            rounds += 1;
            prop_assert!(rounds < 1000);
            now += Nanos::from_micros(10);
            let mut to_a = Vec::new();
            for seg in std::mem::take(&mut to_b) {
                prop_assert!(seg.len <= mss, "segment {} exceeds mss {}", seg.len, mss);
                if seg.len > 0 { seg_count += 1; }
                to_a.extend(sends(&b.on_segment(now, &seg)));
            }
            to_a.extend(sends(&b.on_app_read(now, u64::MAX)));
            now += Nanos::from_micros(10);
            for seg in to_a {
                to_b.extend(sends(&a.on_segment(now, &seg)));
            }
            if to_b.is_empty() {
                now += Nanos::from_millis(45);
                for g in 0..50 {
                    let acts = b.on_timer(now, tengig_tcp::TimerKind::DelAck, g);
                    for seg in sends(&acts) {
                        to_b.extend(sends(&a.on_segment(now, &seg)));
                    }
                }
            }
        }
        prop_assert_eq!(seg_count, acc.div_ceil(mss));
    }
}
