//! Reordering tolerance: a short reorder (one segment overtaken by its
//! successor on the wire) must NOT trigger fast retransmit — the
//! duplicate-ACK threshold of three exists precisely to absorb it — while
//! a genuine hole with three successors in flight must. This is the TCP
//! side of the contract behind `tengig_net::impair`'s bounded-jitter
//! `Reorder` model: jitter below the dup-ACK horizon is free, loss is not.
//!
//! The harness mirrors `loss_recovery.rs` but generalizes the per-
//! transmission drop pattern to a *fate*: deliver on time, drop, or
//! deliver late by a fixed skew (which is what reordering is on a
//! FIFO-per-priority wire).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tengig_sim::Nanos;
use tengig_tcp::{Action, Segment, Sysctls, TcpConn, TimerKind};

/// What happens to the n-th data segment A transmits.
#[derive(Debug, Clone, Copy)]
enum Fate {
    Deliver,
    Drop,
    DelayBy(Nanos),
}

#[derive(Debug)]
enum Ev {
    Deliver {
        to_a: bool,
        seg: Segment,
    },
    Timer {
        of_a: bool,
        kind: TimerKind,
        gen: u64,
    },
}

struct Harness {
    a: TcpConn,
    b: TcpConn,
    now: Nanos,
    queue: BinaryHeap<Reverse<(Nanos, u64, usize)>>,
    events: Vec<Option<Ev>>,
    delivered: u64,
    one_way: Nanos,
    /// Fate per data-segment transmission index (default: deliver).
    fates: Vec<Fate>,
    tx_index: usize,
}

impl Harness {
    fn new(cfg: Sysctls, fates: Vec<Fate>) -> Self {
        let mss = cfg.mss();
        Harness {
            a: TcpConn::new(cfg, mss),
            b: TcpConn::new(cfg, mss),
            now: Nanos::from_micros(1),
            queue: BinaryHeap::new(),
            events: Vec::new(),
            delivered: 0,
            one_way: Nanos::from_micros(50),
            fates,
            tx_index: 0,
        }
    }

    fn push(&mut self, at: Nanos, ev: Ev) {
        let id = self.events.len();
        self.events.push(Some(ev));
        self.queue.push(Reverse((at, id as u64, id)));
    }

    fn handle(&mut self, from_a: bool, actions: Vec<Action>) {
        for act in actions {
            match act {
                Action::Send(seg) => {
                    // Data segments from A are subject to the fate script;
                    // ACKs and B's traffic always arrive on time.
                    let fate = if from_a && seg.len > 0 {
                        let f = self
                            .fates
                            .get(self.tx_index)
                            .copied()
                            .unwrap_or(Fate::Deliver);
                        self.tx_index += 1;
                        f
                    } else {
                        Fate::Deliver
                    };
                    match fate {
                        Fate::Drop => {}
                        Fate::Deliver => {
                            let at = self.now + self.one_way;
                            self.push(at, Ev::Deliver { to_a: !from_a, seg });
                        }
                        Fate::DelayBy(skew) => {
                            let at = self.now + self.one_way + skew;
                            self.push(at, Ev::Deliver { to_a: !from_a, seg });
                        }
                    }
                }
                Action::SetTimer { kind, at, gen } => {
                    self.push(
                        at,
                        Ev::Timer {
                            of_a: from_a,
                            kind,
                            gen,
                        },
                    );
                }
                Action::DeliverData { bytes } => {
                    if !from_a {
                        self.delivered += bytes;
                    }
                }
                Action::SndBufSpace => {}
            }
        }
    }

    /// Run until the calendar drains or `limit` events execute.
    fn run(&mut self, limit: usize) {
        let mut n = 0;
        while let Some(Reverse((at, _, id))) = self.queue.pop() {
            n += 1;
            assert!(n < limit, "harness exceeded {limit} events");
            self.now = self.now.max(at);
            let ev = self.events[id].take().expect("event consumed twice");
            match ev {
                Ev::Deliver { to_a, seg } => {
                    let now = self.now;
                    let acts = if to_a {
                        self.a.on_segment(now, &seg)
                    } else {
                        let mut all = self.b.on_segment(now, &seg);
                        all.extend(self.b.on_app_read(now, u64::MAX));
                        all
                    };
                    self.handle(to_a, acts);
                }
                Ev::Timer { of_a, kind, gen } => {
                    let now = self.now;
                    let acts = if of_a {
                        self.a.on_timer(now, kind, gen)
                    } else {
                        self.b.on_timer(now, kind, gen)
                    };
                    self.handle(of_a, acts);
                }
            }
        }
    }

    fn send(&mut self, bytes: u64) -> u64 {
        let now = self.now;
        let (acc, acts) = self.a.on_app_write(now, bytes);
        self.handle(true, acts);
        acc
    }
}

#[test]
fn short_reorder_does_not_trigger_fast_retransmit() {
    // The first two segments go out back to back (initial cwnd is 2);
    // the first is skewed +60 µs past the 50 µs one-way delay, so its
    // successor overtakes it on the wire — a classic 2-frame swap. The
    // receiver emits a duplicate ACK for the hole — well short of the
    // fast-retransmit threshold of three — and the late original fills
    // it. Nothing is retransmitted.
    let cfg = Sysctls::linux24_defaults().with_buffers(256 * 1024);
    let mss = cfg.mss();
    let mut h = Harness::new(cfg, vec![Fate::DelayBy(Nanos::from_micros(60))]);
    let total = h.send(3 * mss);
    assert_eq!(total, 3 * mss);
    h.run(10_000);
    assert_eq!(h.delivered, total, "all bytes delivered exactly once");
    assert_eq!(h.a.snd_una(), total, "sender fully acknowledged");
    assert!(
        h.b.stats.dup_acks_out >= 1,
        "the receiver must actually have seen the swap"
    );
    assert_eq!(
        h.a.cc.fast_retransmits, 0,
        "a 2-frame reorder must stay below the dup-ACK threshold"
    );
    assert_eq!(
        h.a.stats.retransmits, 0,
        "reordering is not loss; nothing may be resent"
    );
    assert_eq!(h.a.cc.timeouts, 0, "and the RTO must not fire");
}

#[test]
fn genuine_loss_with_three_successors_does_trigger_fast_retransmit() {
    // Same shape, but the second segment is actually lost and enough
    // data follows the hole for the receiver to emit three duplicate
    // ACKs (the third rides the delayed-ACK refresh — with an initial
    // cwnd of 2 the window stalls at three in flight): one fast
    // retransmit, no RTO, full delivery.
    let cfg = Sysctls::linux24_defaults().with_buffers(256 * 1024);
    let mss = cfg.mss();
    let mut h = Harness::new(cfg, vec![Fate::Deliver, Fate::Drop]);
    let total = h.send(6 * mss);
    assert_eq!(total, 6 * mss);
    h.run(10_000);
    assert_eq!(h.delivered, total, "the hole must be repaired");
    assert_eq!(h.a.snd_una(), total);
    assert_eq!(
        h.a.cc.fast_retransmits, 1,
        "three dup ACKs must fire exactly one fast retransmit"
    );
    assert_eq!(h.a.cc.timeouts, 0, "fast recovery must beat the RTO");
    assert!(h.a.stats.retransmits >= 1);
}

#[test]
fn long_reorder_is_indistinguishable_from_loss_until_the_original_lands() {
    // Let slow start open the window first, then skew a mid-stream
    // segment far enough for three successors to overtake it: the sender
    // cannot tell this from loss, fast-retransmits, and the wire carries
    // one duplicate — but delivery stays exactly-once (the receiver
    // discards the copy) and the stream still completes. This is why
    // `Reorder::max_skew` in tengig_net::impair is bounded: past the
    // dup-ACK horizon, "reordering" costs a spurious retransmission.
    let cfg = Sysctls::linux24_defaults().with_buffers(256 * 1024);
    let mss = cfg.mss();
    let mut h = Harness::new(
        cfg,
        vec![
            Fate::Deliver,
            Fate::Deliver,
            Fate::Deliver,
            Fate::Deliver,
            Fate::DelayBy(Nanos::from_millis(2)),
        ],
    );
    let total = h.send(12 * mss);
    assert_eq!(total, 12 * mss);
    h.run(10_000);
    assert_eq!(
        h.delivered, total,
        "exactly-once even with a late duplicate"
    );
    assert_eq!(h.a.snd_una(), total);
    assert_eq!(
        h.a.cc.fast_retransmits, 1,
        "a reorder past the dup-ACK horizon is spuriously retransmitted"
    );
    assert!(h.a.stats.retransmits >= 1);
}
