//! Property tests for loss recovery: under arbitrary drop patterns the
//! connection must eventually deliver every byte exactly once, in order —
//! via fast retransmit, NewReno partial-ACK recovery, or the RTO.
//!
//! The harness is a miniature event loop with a virtual clock: segments
//! ferry with a fixed one-way delay unless the drop pattern eats them, and
//! timers fire in timestamp order when the wire goes quiet.

use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tengig_sim::Nanos;
use tengig_tcp::{Action, Segment, Sysctls, TcpConn, TimerKind};

#[derive(Debug)]
enum Ev {
    Deliver {
        to_a: bool,
        seg: Segment,
    },
    Timer {
        of_a: bool,
        kind: TimerKind,
        gen: u64,
    },
}

struct Harness {
    a: TcpConn,
    b: TcpConn,
    now: Nanos,
    queue: BinaryHeap<Reverse<(Nanos, u64, usize)>>,
    events: Vec<Option<Ev>>,
    delivered: u64,
    one_way: Nanos,
    /// Drop decision per data-segment transmission index.
    drops: Vec<bool>,
    tx_index: usize,
}

impl Harness {
    fn new(cfg: Sysctls, drops: Vec<bool>) -> Self {
        let mss = cfg.mss();
        Harness {
            a: TcpConn::new(cfg, mss),
            b: TcpConn::new(cfg, mss),
            now: Nanos::from_micros(1),
            queue: BinaryHeap::new(),
            events: Vec::new(),
            delivered: 0,
            one_way: Nanos::from_micros(50),
            drops,
            tx_index: 0,
        }
    }

    fn push(&mut self, at: Nanos, ev: Ev) {
        let id = self.events.len();
        self.events.push(Some(ev));
        self.queue.push(Reverse((at, id as u64, id)));
    }

    fn handle(&mut self, from_a: bool, actions: Vec<Action>) {
        for act in actions {
            match act {
                Action::Send(seg) => {
                    // Data segments from A are subject to the drop pattern;
                    // ACKs and B's traffic always arrive.
                    let dropped = if from_a && seg.len > 0 {
                        let d = self.drops.get(self.tx_index).copied().unwrap_or(false);
                        self.tx_index += 1;
                        d
                    } else {
                        false
                    };
                    if !dropped {
                        let at = self.now + self.one_way;
                        self.push(at, Ev::Deliver { to_a: !from_a, seg });
                    }
                }
                Action::SetTimer { kind, at, gen } => {
                    self.push(
                        at,
                        Ev::Timer {
                            of_a: from_a,
                            kind,
                            gen,
                        },
                    );
                }
                Action::DeliverData { bytes } => {
                    if !from_a {
                        self.delivered += bytes;
                    }
                }
                Action::SndBufSpace => {}
            }
        }
    }

    /// Run until the calendar drains or `limit` events execute.
    fn run(&mut self, limit: usize) {
        let mut n = 0;
        while let Some(Reverse((at, _, id))) = self.queue.pop() {
            n += 1;
            assert!(n < limit, "harness exceeded {limit} events");
            self.now = self.now.max(at);
            let ev = self.events[id].take().expect("event consumed twice");
            match ev {
                Ev::Deliver { to_a, seg } => {
                    let now = self.now;
                    let acts = if to_a {
                        self.a.on_segment(now, &seg)
                    } else {
                        let acts = self.b.on_segment(now, &seg);
                        // B's application reads promptly.
                        let mut all = acts;
                        all.extend(self.b.on_app_read(now, u64::MAX));
                        all
                    };
                    self.handle(to_a, acts);
                }
                Ev::Timer { of_a, kind, gen } => {
                    let now = self.now;
                    let acts = if of_a {
                        self.a.on_timer(now, kind, gen)
                    } else {
                        self.b.on_timer(now, kind, gen)
                    };
                    self.handle(of_a, acts);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any pattern of data-segment drops (below a saturation density) is
    /// eventually repaired: all bytes arrive exactly once, in order.
    #[test]
    fn arbitrary_drop_patterns_are_recovered(
        writes in proptest::collection::vec(500u64..12_000, 2..12),
        drop_pattern in proptest::collection::vec(any::<bool>(), 64),
        drop_density in 0u32..4,
    ) {
        // Thin the pattern so at most ~1 in 2^density transmissions drop
        // (density 0 = the raw pattern: brutal but must still converge).
        let drops: Vec<bool> = drop_pattern
            .iter()
            .enumerate()
            .map(|(i, &d)| d && (i as u32 % (1 << drop_density) == 0))
            .collect();
        let cfg = Sysctls::linux24_defaults().with_buffers(256 * 1024);
        let mut h = Harness::new(cfg, drops);
        let total: u64 = writes.iter().sum();
        let now = h.now;
        let mut pending = Vec::new();
        for w in &writes {
            let (acc, acts) = h.a.on_app_write(now, *w);
            prop_assert_eq!(acc, *w, "buffer sized for the test writes");
            pending.extend(acts);
        }
        h.handle(true, pending);
        h.run(200_000);
        prop_assert_eq!(h.delivered, total, "all bytes delivered exactly once");
        prop_assert_eq!(h.b.rcv_nxt(), total);
        prop_assert_eq!(h.a.snd_una(), total, "sender fully acknowledged");
    }

    /// With no drops, no retransmissions ever happen and the RTO never
    /// fires, whatever the write pattern.
    #[test]
    fn clean_paths_never_retransmit(
        writes in proptest::collection::vec(1u64..20_000, 1..20),
    ) {
        let cfg = Sysctls::linux24_defaults().with_buffers(512 * 1024);
        let mut h = Harness::new(cfg, vec![]);
        let now = h.now;
        let mut pending = Vec::new();
        let mut total = 0;
        for w in &writes {
            let (acc, acts) = h.a.on_app_write(now, *w);
            total += acc;
            pending.extend(acts);
        }
        h.handle(true, pending);
        h.run(200_000);
        prop_assert_eq!(h.delivered, total);
        prop_assert_eq!(h.a.stats.retransmits, 0);
        prop_assert_eq!(h.a.cc.timeouts, 0);
    }

    /// Loss never corrupts stream order: rcv_nxt only grows, and delivery
    /// equals exactly the acknowledged prefix when the run completes.
    #[test]
    fn recovery_preserves_exactly_once_semantics(
        first_drops in 1usize..6,
    ) {
        // Drop the first N data segments entirely: pure-RTO recovery.
        let drops = vec![true; first_drops];
        let cfg = Sysctls::linux24_defaults().with_buffers(256 * 1024);
        let mut h = Harness::new(cfg, drops);
        let now = h.now;
        let (acc, acts) = h.a.on_app_write(now, 30_000);
        h.handle(true, acts);
        h.run(200_000);
        prop_assert_eq!(h.delivered, acc);
        prop_assert!(h.a.stats.retransmits >= 1, "must have retransmitted");
    }
}
