//! A vendored, dependency-free shim of the `criterion` benchmark harness.
//!
//! The workspace must build with no network access, so this in-tree
//! stand-in provides the surface the repo's benches use: [`Criterion`] with
//! the builder knobs, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is plain `std::time::Instant`
//! wall-clock sampling — warm-up, then `sample_size` samples of
//! auto-calibrated iteration batches — reported as mean ± spread per
//! benchmark. There is no statistical analysis, HTML report, or baseline
//! comparison.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver: holds the measurement settings and runs
/// registered benchmark functions.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Number of timing samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Time spent running the routine before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total time spent collecting samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark: warm up, auto-calibrate the per-sample iteration
    /// count, collect samples, and print a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: run the routine until the warm-up budget is spent, and
        // estimate the cost of a single iteration as we go.
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_millis(1);
        while warm_start.elapsed() < self.warm_up_time {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed > Duration::ZERO {
                per_iter = b.elapsed / b.iters as u32;
            }
        }

        // Aim each sample at measurement_time / sample_size.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = if per_iter.is_zero() {
            1
        } else {
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed / iters as u32);
        }

        samples.sort_unstable();
        let mean: Duration = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "{name:<44} time: [{} {} {}]  ({iters} iter/sample, {} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            samples.len(),
        );
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the routine the harness-chosen number of times and record the
    /// elapsed wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Define a benchmark group: a function that builds a [`Criterion`] from
/// the `config` expression and runs each target against it.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit the `main` function for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut calls = 0u64;
        c.bench_function("shim/smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0, "routine never executed");
    }

    #[test]
    fn group_macro_compiles() {
        fn target(c: &mut Criterion) {
            c.bench_function("shim/group", |b| b.iter(|| 1 + 1));
        }
        criterion_group! {
            name = benches;
            config = Criterion::default()
                .sample_size(2)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(2));
            targets = target
        }
        benches();
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(850)), "850 ns");
        assert_eq!(fmt_duration(Duration::from_micros(19)), "19.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(180)), "180.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
