//! Property tests for the interrupt coalescer.

use proptest::prelude::*;
use tengig_nic::{CoalesceAction, Coalescer};
use tengig_sim::Nanos;

proptest! {
    /// Frame conservation: every frame offered is covered by exactly one
    /// interrupt batch, for any arrival pattern and any configuration.
    #[test]
    fn every_frame_is_batched_exactly_once(
        gaps in proptest::collection::vec(0u64..20_000, 1..200),
        delay_us in 0u64..20,
        max_frames in 1u32..64,
    ) {
        let mut c = Coalescer::new(Nanos::from_micros(delay_us), max_frames);
        let mut now = Nanos::ZERO;
        let mut batched = 0u64;
        let mut armed: Option<(Nanos, u64)> = None;
        for gap in &gaps {
            now += Nanos(*gap);
            // Fire a pending timer that would have expired by now.
            if let Some((at, gen)) = armed {
                if at <= now {
                    if let Some(b) = c.on_timer(gen) {
                        batched += b as u64;
                    }
                    armed = None;
                }
            }
            let (action, gen) = c.on_frame(now);
            match action {
                CoalesceAction::FireNow => batched += c.fire_now() as u64,
                CoalesceAction::ArmTimer(at) => armed = Some((at, gen)),
                CoalesceAction::None => {}
            }
        }
        // Drain the final timer.
        if let Some((_, gen)) = armed {
            if let Some(b) = c.on_timer(gen) {
                batched += b as u64;
            }
        }
        // Whatever remains pending is exactly the unfired tail.
        prop_assert_eq!(batched + c.pending() as u64, gaps.len() as u64);
        prop_assert_eq!(c.frames(), gaps.len() as u64);
        // Batches never exceed the bound.
        prop_assert!(c.mean_batch() <= max_frames as f64 + 1e-9);
    }

    /// With coalescing disabled, interrupts equal frames.
    #[test]
    fn disabled_coalescing_is_one_to_one(n in 1u64..500) {
        let mut c = Coalescer::new(Nanos::ZERO, 32);
        for i in 0..n {
            let (a, _) = c.on_frame(Nanos(i * 100));
            prop_assert_eq!(a, CoalesceAction::FireNow);
            prop_assert_eq!(c.fire_now(), 1);
        }
        prop_assert_eq!(c.interrupts(), n);
    }
}
