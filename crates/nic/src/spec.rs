//! Static adapter descriptions.

use tengig_sim::{Bandwidth, Nanos};

/// A network adapter's capabilities and configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicSpec {
    /// Display name.
    pub name: &'static str,
    /// Line (serialization) rate on the medium.
    pub line_rate: Bandwidth,
    /// Largest MTU the MAC supports.
    pub max_mtu: u64,
    /// Receive-interrupt coalescing delay: the period the card waits between
    /// receiving a packet and raising an interrupt, so multiple receptions
    /// share one interrupt. `ZERO` disables coalescing.
    pub rx_coalesce_delay: Nanos,
    /// Raise the interrupt immediately once this many frames are pending,
    /// even if the delay has not elapsed (absolute-timer bound).
    pub rx_coalesce_max_frames: u32,
    /// Transmit checksum computed in silicon (host CPU skips it).
    pub tx_csum_offload: bool,
    /// Receive checksum verified in silicon.
    pub rx_csum_offload: bool,
    /// TCP segmentation offload: the host sends one large (up to
    /// `tso_max_bytes`) virtual segment; the MAC cuts it into MTU-sized
    /// frames. Supported by the 82597EX; only used by newer kernels (§3.3).
    pub tso: bool,
    /// Largest virtual segment TSO accepts.
    pub tso_max_bytes: u64,
    /// Fixed adapter forwarding latency (MAC + PHY + serdes, per direction).
    pub port_latency: Nanos,
}

impl NicSpec {
    /// The Intel PRO/10GbE LR server adapter (82597EX controller), in the
    /// paper's default configuration: 5 µs coalescing delay, checksum
    /// offload on, TSO available but unused by the 2.4 kernels measured.
    pub fn intel_pro_10gbe() -> Self {
        NicSpec {
            name: "Intel-PRO/10GbE-LR",
            line_rate: Bandwidth::from_gbps(10),
            max_mtu: 16000,
            rx_coalesce_delay: Nanos::from_micros(5),
            rx_coalesce_max_frames: 32,
            tx_csum_offload: true,
            rx_csum_offload: true,
            tso: false,
            tso_max_bytes: 65_536,
            port_latency: Nanos::from_nanos(500),
        }
    }

    /// An e1000-class copper Gigabit Ethernet adapter ("our extensive
    /// experience with GbE chipsets, e.g. Intel's e1000 line and Broadcom's
    /// Tigon3, allows us to achieve near line-speed performance with a
    /// 1500-byte MTU", §3.5.4).
    pub fn e1000_gbe() -> Self {
        NicSpec {
            name: "e1000-GbE",
            line_rate: Bandwidth::from_gbps(1),
            max_mtu: 9000,
            rx_coalesce_delay: Nanos::from_micros(10),
            rx_coalesce_max_frames: 16,
            tx_csum_offload: true,
            rx_csum_offload: true,
            tso: false,
            tso_max_bytes: 65_536,
            port_latency: Nanos::from_nanos(800),
        }
    }

    /// Change the coalescing delay (`ZERO` turns coalescing off).
    pub fn with_coalescing(mut self, delay: Nanos) -> Self {
        self.rx_coalesce_delay = delay;
        self
    }

    /// Enable/disable TSO.
    pub fn with_tso(mut self, tso: bool) -> Self {
        self.tso = tso;
        self
    }

    /// Serialization time for a frame consuming `wire_bytes` byte-times.
    pub fn serialize_time(&self, wire_bytes: u64) -> Nanos {
        self.line_rate.time_to_send(wire_bytes)
    }

    /// Whether this MTU is usable on this adapter.
    pub fn supports_mtu(&self, mtu: u64) -> bool {
        mtu <= self.max_mtu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel_defaults_match_paper() {
        let nic = NicSpec::intel_pro_10gbe();
        assert_eq!(nic.rx_coalesce_delay, Nanos::from_micros(5));
        assert_eq!(nic.max_mtu, 16000);
        assert!(nic.supports_mtu(16000));
        assert!(!nic.supports_mtu(16001));
        assert!(nic.tx_csum_offload && nic.rx_csum_offload);
        assert!(!nic.tso, "2.4 kernels in the paper do not use TSO");
    }

    #[test]
    fn serialization_at_line_rate() {
        let nic = NicSpec::intel_pro_10gbe();
        // Full 9000-MTU frame: 9038 byte-times ≈ 7.2 µs at 10 Gb/s.
        let t = nic.serialize_time(9038);
        assert!((7.2..7.3).contains(&t.as_micros_f64()), "{t}");
        // GbE is 10x slower.
        let g = NicSpec::e1000_gbe().serialize_time(9038);
        let ratio = g.as_nanos() as f64 / t.as_nanos() as f64;
        assert!((ratio - 10.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn builders() {
        let nic = NicSpec::intel_pro_10gbe()
            .with_coalescing(Nanos::ZERO)
            .with_tso(true);
        assert_eq!(nic.rx_coalesce_delay, Nanos::ZERO);
        assert!(nic.tso);
    }
}
