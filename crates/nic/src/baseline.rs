//! The §3.5.4 comparison interconnects.
//!
//! The paper puts its 10GbE numbers in perspective against Gigabit Ethernet,
//! Myricom Myrinet, and Quadrics QsNet — each with both its native API
//! (GM, Elan3) and its TCP/IP emulation layer. These are published vendor
//! numbers, not the authors' measurements, so the model here is a static
//! record with enough structure to regenerate the comparison table and the
//! Fig. 5 reference lines.

use tengig_sim::{Bandwidth, Nanos};

/// Which software interface drives the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterconnectApi {
    /// Sockets over the vendor's TCP/IP path.
    TcpIp,
    /// The vendor's OS-bypass API (GM for Myrinet, Elan3 for QsNet).
    /// "may oftentimes require rewriting portions of legacy application
    /// code" (§3.5.4).
    Native,
}

/// One interconnect × API combination with its headline numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interconnect {
    /// Display name.
    pub name: &'static str,
    /// API layer.
    pub api: InterconnectApi,
    /// Theoretical hardware maximum (the Fig. 5 reference line).
    pub theoretical: Bandwidth,
    /// Sustained unidirectional bandwidth.
    pub unidirectional: Bandwidth,
    /// Sustained bidirectional bandwidth (where published).
    pub bidirectional: Option<Bandwidth>,
    /// One-way small-message latency.
    pub latency: Nanos,
    /// Whether applications can use unmodified sockets code.
    pub sockets_compatible: bool,
}

impl Interconnect {
    /// Gigabit Ethernet over TCP/IP: near line speed with 1500-byte MTU in a
    /// LAN (§3.5.4); one-way latency ≈ 32 µs on the same class of hosts.
    pub fn gbe_tcp() -> Self {
        Interconnect {
            name: "GbE/TCP",
            api: InterconnectApi::TcpIp,
            theoretical: Bandwidth::from_gbps(1),
            unidirectional: Bandwidth::from_mbps(990),
            bidirectional: Some(Bandwidth::from_mbps(1800)),
            latency: Nanos::from_micros(32),
            sockets_compatible: true,
        }
    }

    /// Myrinet with the proprietary GM API: "sustained unidirectional
    /// bandwidth is [1.984] Gb/s … within 3% of the 2-Gb/s unidirectional
    /// hardware limit. The GM API provides latencies on the order of 6 to
    /// 7 µs" (§3.5.4).
    pub fn myrinet_gm() -> Self {
        Interconnect {
            name: "Myrinet/GM",
            api: InterconnectApi::Native,
            theoretical: Bandwidth::from_gbps(2),
            unidirectional: Bandwidth::from_mbps(1984),
            bidirectional: Some(Bandwidth::from_mbps(3912)),
            latency: Nanos::from_nanos(6_500),
            sockets_compatible: false,
        }
    }

    /// Myrinet's TCP/IP emulation layer: "bandwidth drops to [1.853] Gb/s,
    /// and latencies skyrocket to over 30 µs" (§3.5.4).
    pub fn myrinet_ip() -> Self {
        Interconnect {
            name: "Myrinet/IP",
            api: InterconnectApi::TcpIp,
            theoretical: Bandwidth::from_gbps(2),
            unidirectional: Bandwidth::from_mbps(1853),
            bidirectional: None,
            latency: Nanos::from_micros(31),
            sockets_compatible: true,
        }
    }

    /// Quadrics QsNet via the Elan3 API: the authors' own measurements —
    /// ≈ 2.456 Gb/s and 4.9 µs (§3.5.4).
    pub fn qsnet_elan3() -> Self {
        Interconnect {
            name: "QsNet/Elan3",
            api: InterconnectApi::Native,
            theoretical: Bandwidth::from_gbps_f64(3.2),
            unidirectional: Bandwidth::from_mbps(2456),
            bidirectional: None,
            latency: Nanos::from_nanos(4_900),
            sockets_compatible: false,
        }
    }

    /// Quadrics' TCP/IP implementation: "2.24 Gb/s of bandwidth and under
    /// 30-µs latency" (§3.5.4).
    pub fn qsnet_ip() -> Self {
        Interconnect {
            name: "QsNet/IP",
            api: InterconnectApi::TcpIp,
            theoretical: Bandwidth::from_gbps_f64(3.2),
            unidirectional: Bandwidth::from_mbps(2240),
            bidirectional: None,
            latency: Nanos::from_micros(29),
            sockets_compatible: true,
        }
    }

    /// 10GbE over TCP/IP with the paper's established PE2650 numbers
    /// (4.11 Gb/s, 19 µs). The laboratory regenerates these from simulation;
    /// this constant records the paper's own values for table rendering.
    pub fn tengbe_tcp_paper() -> Self {
        Interconnect {
            name: "10GbE/TCP",
            api: InterconnectApi::TcpIp,
            theoretical: Bandwidth::from_gbps(10),
            unidirectional: Bandwidth::from_mbps(4110),
            bidirectional: None,
            latency: Nanos::from_micros(19),
            sockets_compatible: true,
        }
    }

    /// All comparison rows in the paper's order.
    pub fn all_baselines() -> Vec<Interconnect> {
        vec![
            Self::gbe_tcp(),
            Self::myrinet_gm(),
            Self::myrinet_ip(),
            Self::qsnet_elan3(),
            Self::qsnet_ip(),
        ]
    }

    /// Throughput advantage of `self` over `other` in percent
    /// (positive = self faster).
    pub fn throughput_advantage_pct(&self, other: &Interconnect) -> f64 {
        (self.unidirectional.gbps() / other.unidirectional.gbps() - 1.0) * 100.0
    }

    /// Latency advantage of `self` over `other` in percent
    /// (positive = self lower latency).
    pub fn latency_advantage_pct(&self, other: &Interconnect) -> f64 {
        (1.0 - self.latency.as_nanos() as f64 / other.latency.as_nanos() as f64) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_apis_within_published_margins() {
        // Myrinet GM within 3% of the 2 Gb/s hardware limit.
        let gm = Interconnect::myrinet_gm();
        assert!(gm.unidirectional.gbps() / gm.theoretical.gbps() > 0.97);
        // TCP/IP layers always cost something.
        assert!(Interconnect::myrinet_ip().unidirectional < gm.unidirectional);
        assert!(
            Interconnect::qsnet_ip().unidirectional < Interconnect::qsnet_elan3().unidirectional
        );
    }

    #[test]
    fn paper_comparison_percentages() {
        // §3.5.4: established 10GbE throughput (4.11 Gb/s) is >300% better
        // than GbE, >120% better than Myrinet, >80% better than QsNet
        // (comparing TCP/IP paths).
        let te = Interconnect::tengbe_tcp_paper();
        assert!(te.throughput_advantage_pct(&Interconnect::gbe_tcp()) > 300.0);
        assert!(te.throughput_advantage_pct(&Interconnect::myrinet_ip()) > 120.0);
        assert!(te.throughput_advantage_pct(&Interconnect::qsnet_ip()) > 80.0);
        // Latency: ~40% better than GbE, better than the IP layers of the
        // SAN interconnects, worse than their native APIs.
        assert!(te.latency_advantage_pct(&Interconnect::gbe_tcp()) > 35.0);
        assert!(te.latency_advantage_pct(&Interconnect::myrinet_ip()) > 30.0);
        assert!(te.latency_advantage_pct(&Interconnect::myrinet_gm()) < 0.0);
        assert!(te.latency_advantage_pct(&Interconnect::qsnet_elan3()) < 0.0);
    }

    #[test]
    fn conclusion_latency_ratios() {
        // §5: best-case 12 µs end-to-end is ~1.7x slower than Myrinet/GM,
        // ~2.4x slower than QsNet/Elan3, but >2x faster than the IP layers.
        let best_case = Nanos::from_micros(12).as_nanos() as f64;
        let gm = Interconnect::myrinet_gm().latency.as_nanos() as f64;
        let elan = Interconnect::qsnet_elan3().latency.as_nanos() as f64;
        let m_ip = Interconnect::myrinet_ip().latency.as_nanos() as f64;
        assert!((1.5..2.1).contains(&(best_case / gm)), "{}", best_case / gm);
        assert!(
            (2.1..2.7).contains(&(best_case / elan)),
            "{}",
            best_case / elan
        );
        assert!(m_ip / best_case > 2.0);
    }

    #[test]
    fn sockets_compatibility_flags() {
        for ic in Interconnect::all_baselines() {
            match ic.api {
                InterconnectApi::TcpIp => assert!(ic.sockets_compatible),
                InterconnectApi::Native => assert!(!ic.sockets_compatible),
            }
        }
    }
}
