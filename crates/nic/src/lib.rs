//! `tengig-nic` — network adapter models.
//!
//! * [`spec`] — static descriptions of the adapters the paper measures:
//!   the Intel PRO/10GbE LR (82597EX) with its interrupt-coalescing delay,
//!   checksum offload, and TCP segmentation offload (TSO), and an
//!   e1000-class GbE adapter for the multi-flow senders.
//! * [`coalesce`] — the receive-interrupt coalescing state machine: the 5 µs
//!   delay the paper turns off to shave end-to-end latency from 19 µs to
//!   14 µs (Fig. 6 vs Fig. 7), and the batching that makes multi-sender
//!   receive as fast as transmit (§3.5.2).
//! * [`baseline`] — the comparison interconnects of §3.5.4: Gigabit
//!   Ethernet, Myrinet (GM and IP), and Quadrics QsNet (Elan3 and IP).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod coalesce;
pub mod spec;

pub use baseline::{Interconnect, InterconnectApi};
pub use coalesce::{CoalesceAction, Coalescer};
pub use spec::NicSpec;
