//! The receive-interrupt coalescing state machine.
//!
//! "This delay is the period that the 10GbE card waits between receiving a
//! packet and raising an interrupt to signal packet reception. Such a delay
//! allows multiple packet receptions to be coalesced into a single
//! interrupt, thus reducing the CPU load on the host at the expense of
//! latency." (§3.3)
//!
//! Semantics modeled (82597EX receive-interrupt delay):
//!
//! * the first frame that arrives while no timer is armed arms a timer
//!   `delay` in the future;
//! * further frames accumulate without touching the timer;
//! * when the timer fires, one interrupt delivers the whole batch;
//! * if `max_frames` accumulate first, the interrupt fires immediately;
//! * with `delay == 0`, every frame raises its own interrupt — the Fig. 7
//!   configuration.
//!
//! The state machine is sans-IO: it returns [`CoalesceAction`]s and the
//! composition layer schedules engine events.

use tengig_sim::Nanos;

/// What the adapter should do after an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalesceAction {
    /// Nothing; a timer is already pending.
    None,
    /// Arm the interrupt timer to fire at this absolute time.
    ArmTimer(Nanos),
    /// Raise the interrupt immediately (coalescing off, or batch full).
    FireNow,
}

/// Coalescing state for one adapter's receive side.
#[derive(Debug, Clone)]
pub struct Coalescer {
    delay: Nanos,
    max_frames: u32,
    pending: u32,
    /// Absolute fire time of the armed timer, if any. Stale timers (already
    /// consumed by a `FireNow`) are detected by generation counting.
    armed_at: Option<Nanos>,
    generation: u64,
    interrupts: u64,
    frames: u64,
}

impl Coalescer {
    /// A coalescer with the given delay and batch bound.
    pub fn new(delay: Nanos, max_frames: u32) -> Self {
        Coalescer {
            delay,
            max_frames: max_frames.max(1),
            pending: 0,
            armed_at: None,
            generation: 0,
            interrupts: 0,
            frames: 0,
        }
    }

    /// A frame finished DMA into host memory at `now`.
    ///
    /// Returns the action plus the current timer generation (pass it back to
    /// [`Coalescer::on_timer`] so a superseded timer is ignored).
    pub fn on_frame(&mut self, now: Nanos) -> (CoalesceAction, u64) {
        self.pending += 1;
        self.frames += 1;
        if self.delay == Nanos::ZERO || self.pending >= self.max_frames {
            return (CoalesceAction::FireNow, self.generation);
        }
        if self.armed_at.is_some() {
            (CoalesceAction::None, self.generation)
        } else {
            let at = now + self.delay;
            self.armed_at = Some(at);
            (CoalesceAction::ArmTimer(at), self.generation)
        }
    }

    /// The armed timer of generation `generation` fired. Returns the batch
    /// size to process, or `None` if the timer was superseded (a `FireNow`
    /// already drained the batch).
    pub fn on_timer(&mut self, generation: u64) -> Option<u32> {
        if generation != self.generation || self.pending == 0 {
            return None;
        }
        Some(self.take_batch())
    }

    /// Drain the pending batch after a `FireNow`.
    pub fn fire_now(&mut self) -> u32 {
        self.take_batch()
    }

    fn take_batch(&mut self) -> u32 {
        let batch = self.pending;
        self.pending = 0;
        self.armed_at = None;
        self.generation += 1;
        self.interrupts += 1;
        batch
    }

    /// Frames awaiting an interrupt.
    pub fn pending(&self) -> u32 {
        self.pending
    }

    /// Interrupts raised so far.
    pub fn interrupts(&self) -> u64 {
        self.interrupts
    }

    /// Frames observed so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Mean frames per interrupt — the CPU-relief figure. Bursty multi-
    /// sender arrivals push this up, which is why the paper found the
    /// receive path keeps pace with transmit when fed by many hosts.
    pub fn mean_batch(&self) -> f64 {
        if self.interrupts == 0 {
            0.0
        } else {
            self.frames as f64 / self.interrupts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_coalescing_fires_per_frame() {
        let mut c = Coalescer::new(Nanos::ZERO, 32);
        let (a, _) = c.on_frame(Nanos(100));
        assert_eq!(a, CoalesceAction::FireNow);
        assert_eq!(c.fire_now(), 1);
        let (a, _) = c.on_frame(Nanos(200));
        assert_eq!(a, CoalesceAction::FireNow);
        assert_eq!(c.fire_now(), 1);
        assert_eq!(c.interrupts(), 2);
        assert!((c.mean_batch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frames_batch_under_one_timer() {
        let mut c = Coalescer::new(Nanos::from_micros(5), 32);
        let (a, g) = c.on_frame(Nanos(1000));
        assert_eq!(
            a,
            CoalesceAction::ArmTimer(Nanos(1000) + Nanos::from_micros(5))
        );
        // Two more frames arrive before the timer: no new timer.
        assert_eq!(c.on_frame(Nanos(2000)).0, CoalesceAction::None);
        assert_eq!(c.on_frame(Nanos(3000)).0, CoalesceAction::None);
        // Timer fires: the batch is all three frames.
        assert_eq!(c.on_timer(g), Some(3));
        assert_eq!(c.interrupts(), 1);
        assert!((c.mean_batch() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn batch_bound_fires_early() {
        let mut c = Coalescer::new(Nanos::from_micros(5), 2);
        let (_, g) = c.on_frame(Nanos(0));
        let (a, _) = c.on_frame(Nanos(10));
        assert_eq!(a, CoalesceAction::FireNow);
        assert_eq!(c.fire_now(), 2);
        // The stale timer later fires into nothing.
        assert_eq!(c.on_timer(g), None);
    }

    #[test]
    fn timer_after_drain_is_ignored() {
        let mut c = Coalescer::new(Nanos::from_micros(5), 32);
        let (_, g1) = c.on_frame(Nanos(0));
        assert_eq!(c.on_timer(g1), Some(1));
        // A new cycle begins with a fresh generation.
        let (a, g2) = c.on_frame(Nanos(10_000));
        assert!(matches!(a, CoalesceAction::ArmTimer(_)));
        assert_ne!(g1, g2);
        // The old generation can no longer drain the new batch.
        assert_eq!(c.on_timer(g1), None);
        assert_eq!(c.on_timer(g2), Some(1));
    }

    #[test]
    fn burstier_arrivals_mean_bigger_batches() {
        // Single-sender pacing: one frame per 8 µs > 5 µs delay → batch = 1.
        let mut single = Coalescer::new(Nanos::from_micros(5), 32);
        let mut t = Nanos::ZERO;
        for _ in 0..100 {
            let (a, g) = single.on_frame(t);
            if let CoalesceAction::ArmTimer(_) = a {
                single.on_timer(g);
            }
            t += Nanos::from_micros(8);
        }
        // Multi-sender burst: 4 frames back-to-back each 8 µs.
        let mut multi = Coalescer::new(Nanos::from_micros(5), 32);
        let mut t = Nanos::ZERO;
        for _ in 0..25 {
            let mut arm = None;
            for k in 0..4u64 {
                let (a, g) = multi.on_frame(t + Nanos(k * 700));
                if let CoalesceAction::ArmTimer(_) = a {
                    arm = Some(g);
                }
            }
            if let Some(g) = arm {
                multi.on_timer(g);
            }
            t += Nanos::from_micros(8);
        }
        assert!(multi.mean_batch() > single.mean_batch() * 2.0);
    }
}
