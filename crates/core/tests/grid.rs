//! The grid determinism matrix: sweep JSONL must be byte-identical
//! across shard counts and sweep thread counts, independently.
//!
//! This is the in-repo twin of the CI `grid-check` job (which compares
//! the same report against `goldens/grid.jsonl` at shards 1 and 4); here
//! the matrix also crosses shard count with sweep threads to pin the two
//! parallelism axes as orthogonal.

use tengig::experiments::grid::{grid_sweep_report, run_grid, standard_presets, GridPreset};
use tengig::sweep::SweepRunner;

/// The pinned master seed of the grid golden (kept in sync with the
/// `tengig-grid` binary).
const SEED: u64 = 2003;

#[test]
fn sweep_jsonl_is_byte_identical_across_shards_and_threads() {
    let presets = standard_presets();
    let reference = grid_sweep_report(&presets, 1, SEED, SweepRunner::new(1))
        .1
        .to_jsonl();
    assert!(reference.contains("\"sweep\":\"grid/fabric\""));
    for shards in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            if (shards, threads) == (1, 1) {
                continue;
            }
            let got = grid_sweep_report(&presets, shards, SEED, SweepRunner::new(threads))
                .1
                .to_jsonl();
            assert_eq!(
                reference, got,
                "grid sweep diverged at shards={shards} threads={threads}"
            );
        }
    }
}

#[test]
fn executed_event_totals_are_exactly_shard_count_invariant() {
    let preset = GridPreset::fat_tree(2, 4, 2);
    let one = run_grid(&preset, 1, SEED);
    for shards in [2usize, 3, 4] {
        let n = run_grid(&preset, shards, SEED);
        assert_eq!(
            one.events, n.events,
            "event totals diverged at {shards} shards"
        );
        assert_eq!(one.last_done, n.last_done);
        assert_eq!(one.payload_bytes, n.payload_bytes);
    }
}

#[test]
fn torus_preset_crosses_shards_and_still_merges() {
    let preset = GridPreset::torus([2, 2, 2]);
    let one = run_grid(&preset, 1, SEED);
    let four = run_grid(&preset, 4, SEED);
    assert_eq!(one.flows, 8);
    assert_eq!(one.events, four.events);
    assert_eq!(one.last_done, four.last_done);
    assert!(one.aggregate_gbps > 1.0);
}
