//! The self-profiling plane's contracts, as integration tests:
//!
//! * the gated "sim" profiling sidecar is byte-identical across shard
//!   counts {1, 2, 4} and sweep threads {1, 4} (the in-repo twin of the
//!   CI `prof-check` job against `goldens/prof_throughput.jsonl`);
//! * collecting the profile never changes the primary report bytes;
//! * the wall-time plane reports nonzero barrier waiting on a
//!   multi-shard run while appearing in no golden-gated output;
//! * grid-mode observability timelines merge shard-count-invariantly.

use tengig::experiments::grid::{
    grid_prof_sweep, grid_sweep_report, run_grid, run_grid_obs, run_grid_prof, standard_presets,
    GridPreset,
};
use tengig::sweep::SweepRunner;
use tengig_sim::{Nanos, ObsConfig};

/// The pinned master seed of the grid and prof goldens (kept in sync
/// with the `tengig-grid` / `tengig-prof` binaries).
const SEED: u64 = 2003;

#[test]
fn prof_sidecar_is_byte_identical_across_shards_and_threads() {
    let presets = standard_presets();
    let (ref_report, ref_gated, _) = grid_prof_sweep(&presets, 1, SEED, SweepRunner::new(1));
    let reference = ref_gated.concatenated();
    assert!(reference.contains("\"prof\":\"sim\""));
    for shards in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            if (shards, threads) == (1, 1) {
                continue;
            }
            let (report, gated, _) =
                grid_prof_sweep(&presets, shards, SEED, SweepRunner::new(threads));
            assert_eq!(
                reference,
                gated.concatenated(),
                "prof sidecar diverged at shards={shards} threads={threads}"
            );
            assert_eq!(
                ref_report.to_jsonl(),
                report.to_jsonl(),
                "profiled report diverged at shards={shards} threads={threads}"
            );
        }
    }
}

#[test]
fn profiling_never_changes_the_primary_report_bytes() {
    let presets = standard_presets();
    let plain = grid_sweep_report(&presets, 2, SEED, SweepRunner::new(1))
        .1
        .to_jsonl();
    let (profiled, _, _) = grid_prof_sweep(&presets, 2, SEED, SweepRunner::new(1));
    assert_eq!(plain, profiled.to_jsonl());
}

#[test]
fn wall_plane_reports_barrier_stalls_outside_every_gated_byte() {
    let preset = GridPreset::fat_tree(2, 4, 2);
    let plain = run_grid(&preset, 4, SEED);
    let (profiled, prof) = run_grid_prof(&preset, 4, SEED);
    // Same simulation: the wall plane rides outside the event loop.
    assert_eq!(plain.events, profiled.events);
    assert_eq!(plain.last_done, profiled.last_done);
    assert_eq!(plain.payload_bytes, profiled.payload_bytes);
    // Four shards synchronizing over thousands of conservative windows
    // must observe some barrier waiting, and each shard executes work.
    let mut barrier_total = 0u64;
    let mut shards_seen = 0usize;
    for line in prof.wall.lines() {
        assert!(line.starts_with("{\"wall\":\"shard\""), "wall line: {line}");
        let field = |name: &str| -> u64 {
            let pat = format!("\"{name}\":");
            let at = line.find(&pat).expect("wall field present");
            line[at + pat.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .expect("wall field numeric")
        };
        assert!(field("windows") > 0);
        barrier_total += field("barrier_wait_ns");
        shards_seen += 1;
    }
    assert_eq!(shards_seen, 4);
    assert!(
        barrier_total > 0,
        "a 4-shard run must report some barrier wait"
    );
    // The wall-domain figures appear in no gated output: neither the sim
    // profiling section nor the primary report may mention them.
    assert!(!prof.sim.contains("barrier_wait_ns"));
    assert!(!prof.sim.contains("\"wall\""));
    assert!(!prof.sim.contains("execute_ns"));
}

#[test]
fn sim_section_counts_the_grid_event_anatomy() {
    let preset = GridPreset::fat_tree(2, 2, 1);
    let (r, prof) = run_grid_prof(&preset, 1, SEED);
    // In grid mode every arrival rides the ingress channel, so the
    // FrameArrival event kind never fires while drains do.
    assert!(prof.sim.contains("\"FrameArrival\":0"), "{}", prof.sim);
    assert!(!prof.sim.contains("\"IngressDrain\":0"), "{}", prof.sim);
    // The executed total in the section matches the merged result.
    assert!(prof.sim.contains(&format!("\"executed\":{}", r.events)));
    // Both histograms saw batches.
    assert!(prof.sim.contains("\"rx_batch\":{\"count\":"));
    assert!(prof.sim.contains("\"drain_batch\":{\"count\":"));
    // The local section exists and is per-shard.
    assert!(prof.local.contains("\"prof\":\"local\""));
    assert!(prof.local.contains("\"pool_hits\":"));
}

#[test]
fn grid_obs_timelines_merge_shard_count_invariantly() {
    let preset = GridPreset::fat_tree(2, 2, 1);
    // An odd interval keeps sample instants off the data events' grid.
    let cfg = ObsConfig {
        sample_interval: Nanos::from_nanos(99_989),
        ..ObsConfig::default()
    };
    let plain = run_grid(&preset, 1, SEED);
    let (r1, tl1) = run_grid_obs(&preset, 1, SEED, &cfg);
    let reference = tl1.to_jsonl();
    assert!(reference.contains("cpu_busy_ns"));
    // Observability never changes the primary result, in grid mode too.
    assert_eq!(plain.payload_bytes, r1.payload_bytes);
    assert_eq!(plain.last_done, r1.last_done);
    for shards in [2usize, 4] {
        let (rn, tln) = run_grid_obs(&preset, shards, SEED, &cfg);
        assert_eq!(plain.last_done, rn.last_done);
        assert_eq!(
            reference,
            tln.to_jsonl(),
            "merged obs timelines diverged at {shards} shards"
        );
    }
}
