//! Deterministic parallel sweep runner.
//!
//! Every paper figure is a *sweep*: N independent simulations over a
//! parameter grid (payload sizes, tuning rungs, peer counts). The runner
//! here fans those scenarios out across worker threads while keeping the
//! result bit-identical to a serial run:
//!
//! * **Seeding discipline** — each scenario's RNG seed is a pure function
//!   of the sweep's master seed and the scenario index
//!   ([`SimRng::scenario_seed`]), never of thread identity or scheduling.
//! * **Index-keyed collection** — workers report `(index, result)` pairs
//!   over a channel; results are slotted by scenario index, so completion
//!   order is irrelevant to the output order.
//!
//! Scoped threads (`std::thread::scope`) pull scenario indices from a
//! shared atomic cursor, so the pool load-balances without any partitioning
//! of the grid up front. A panicking scenario is caught with
//! `catch_unwind` and surfaced as a [`SweepError`] after the pool drains —
//! the remaining scenarios still run, and nothing deadlocks because the
//! channel is unbounded and the scope joins every worker before results
//! are collected.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use tengig_sim::SimRng;

/// One point of a parameter sweep: what to run, under which label, with
/// which deterministic seed.
#[derive(Debug, Clone)]
pub struct Scenario<I> {
    /// Position in the sweep grid; results are keyed by this.
    pub index: usize,
    /// Human-readable point label (used in reports and error messages).
    pub label: String,
    /// The scenario's RNG seed: `SimRng::scenario_seed(master, index)`.
    pub seed: u64,
    /// The experiment-specific input (config, payload, peer count, …).
    pub input: I,
}

/// Enumerate a grid of inputs into [`Scenario`]s under the standard
/// seeding discipline: scenario seed = f(master seed, scenario index).
pub fn scenarios<I>(
    master_seed: u64,
    inputs: impl IntoIterator<Item = I>,
    mut label: impl FnMut(&I) -> String,
) -> Vec<Scenario<I>> {
    inputs
        .into_iter()
        .enumerate()
        .map(|(index, input)| Scenario {
            index,
            label: label(&input),
            seed: SimRng::scenario_seed(master_seed, index as u64),
            input,
        })
        .collect()
}

/// A scenario panicked during a sweep.
///
/// When several scenarios fail, the one with the lowest index is reported,
/// regardless of which thread hit its panic first — errors are as
/// deterministic as results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Index of the failing scenario.
    pub index: usize,
    /// Label of the failing scenario.
    pub label: String,
    /// The panic payload, rendered as text.
    pub message: String,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario {} ({}) panicked: {}",
            self.index, self.label, self.message
        )
    }
}

impl std::error::Error for SweepError {}

/// Fans independent scenarios across a pool of worker threads.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl Default for SweepRunner {
    /// One worker per available CPU.
    // lint:trusted(pool sizing only: results are index-keyed and provably thread-count independent)
    fn default() -> Self {
        let threads = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        SweepRunner { threads }
    }
}

impl SweepRunner {
    /// A runner with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
        }
    }

    /// Number of worker threads this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every scenario through `f` and return the outputs **in scenario
    /// order**. The output is a pure function of `(scenarios, f)` — thread
    /// count and scheduling cannot change it.
    ///
    /// If any scenario panics, the lowest-index failure is returned as a
    /// [`SweepError`] once all workers have drained.
    pub fn run<I, O, F>(&self, scenarios: &[Scenario<I>], f: F) -> Result<Vec<O>, SweepError>
    where
        I: Sync,
        O: Send,
        F: Fn(&Scenario<I>) -> O + Sync,
    {
        let n = scenarios.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<O, String>)>();

        thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                let tx = tx.clone();
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let sc = &scenarios[i];
                    let out = catch_unwind(AssertUnwindSafe(|| f(sc)))
                        .map_err(|p| panic_text(p.as_ref()));
                    // The receiver outlives the scope; send cannot fail
                    // while collection is pending, and an unbounded
                    // channel never blocks the worker.
                    if tx.send((i, out)).is_err() {
                        break;
                    }
                });
            }
        });
        drop(tx);

        let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
        let mut first_error: Option<SweepError> = None;
        for (i, res) in rx {
            match res {
                Ok(o) => slots[i] = Some(o),
                Err(message) => {
                    if first_error.as_ref().map_or(true, |e| i < e.index) {
                        first_error = Some(SweepError {
                            index: i,
                            label: scenarios[i].label.clone(),
                            message,
                        });
                    }
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every scenario reported exactly once"))
            .collect())
    }

    /// [`SweepRunner::run`] for scenarios that produce a primary result
    /// *and* a side-channel payload (e.g. metrics timelines): the pair is
    /// unzipped into two scenario-ordered vectors, so the primary results
    /// stay structurally identical to a plain `run` and the side-channel
    /// can be routed elsewhere without touching them.
    pub fn run_split<I, O, M, F>(
        &self,
        scenarios: &[Scenario<I>],
        f: F,
    ) -> Result<(Vec<O>, Vec<M>), SweepError>
    where
        I: Sync,
        O: Send,
        M: Send,
        F: Fn(&Scenario<I>) -> (O, M) + Sync,
    {
        Ok(self.run(scenarios, f)?.into_iter().unzip())
    }
}

/// Render a panic payload as text (the common `&str` / `String` payloads;
/// anything else gets a placeholder).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<Scenario<u64>> {
        scenarios(42, (0..n as u64).map(|i| i * 10), |i| format!("point-{i}"))
    }

    #[test]
    fn seeding_follows_the_discipline() {
        let g = grid(5);
        for (i, sc) in g.iter().enumerate() {
            assert_eq!(sc.index, i);
            assert_eq!(sc.seed, SimRng::scenario_seed(42, i as u64));
        }
    }

    #[test]
    fn results_are_in_scenario_order_for_any_thread_count() {
        let g = grid(17);
        let expect: Vec<u64> = g.iter().map(|sc| sc.input * 2 + sc.seed % 7).collect();
        for threads in [1, 2, 4, 8, 32] {
            let got = SweepRunner::new(threads)
                .run(&g, |sc| sc.input * 2 + sc.seed % 7)
                .expect("no panics");
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_sweep_is_fine() {
        let g: Vec<Scenario<u64>> = Vec::new();
        let out = SweepRunner::new(4).run(&g, |sc| sc.input).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn panic_surfaces_as_lowest_index_error() {
        let g = grid(12);
        let err = SweepRunner::new(4)
            .run(&g, |sc| {
                if sc.index == 3 || sc.index == 9 {
                    panic!("boom at {}", sc.index);
                }
                sc.input
            })
            .unwrap_err();
        assert_eq!(err.index, 3);
        assert_eq!(err.label, "point-30");
        assert!(
            err.message.contains("boom at 3"),
            "message: {}",
            err.message
        );
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(SweepRunner::new(0).threads(), 1);
    }
}
