//! Closed-form models from the paper's analysis sections.
//!
//! * [`recovery_time`] — Table 1: how long AIMD takes to return to the
//!   pre-loss rate after a single packet loss,
//! * [`WindowQuantization`] — §3.5.1 / Fig. 8: the throughput lost to
//!   MSS-aligned windows, including the sender/receiver MSS-mismatch
//!   example worked in the text,
//! * [`BottleneckReport`] — the §3.5.2 resource accounting: which station
//!   of a host caps a given MTU's throughput.

use crate::config::HostConfig;
use tengig_ethernet::Mtu;
use tengig_sim::{Bandwidth, Nanos};

/// Time for TCP to recover its original transmission rate after a single
/// packet loss (Table 1).
///
/// With the congestion window equal to the bandwidth-delay product when
/// the loss occurs, the window halves and then grows one MSS per RTT, so
/// recovery takes `W/2` round trips:
///
/// ```text
/// W = C·RTT / (8·MSS)   segments
/// t = (W / 2) · RTT
/// ```
pub fn recovery_time(bandwidth: Bandwidth, rtt: Nanos, mss: u64) -> Nanos {
    let w_segments = bandwidth.bps() as f64 * rtt.as_secs_f64() / (8.0 * mss as f64);
    Nanos::from_secs_f64(w_segments / 2.0 * rtt.as_secs_f64())
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryRow {
    /// Path name.
    pub path: &'static str,
    /// Assumed bandwidth.
    pub bandwidth: Bandwidth,
    /// Round-trip time.
    pub rtt: Nanos,
    /// Maximum segment size.
    pub mss: u64,
    /// Computed recovery time.
    pub time: Nanos,
}

/// Table 1 of the paper, recomputed. (The LAN row's RTT reconstructs the
/// paper's LAN measurements: ~0.1 ms round trip at 10 Gb/s.)
pub fn table1() -> Vec<RecoveryRow> {
    let rows: [(&'static str, u64, u64, u64); 5] = [
        ("LAN", 10, 100, 1460),
        ("Geneva-Chicago", 10, 120_000, 1460),
        ("Geneva-Chicago", 10, 120_000, 8960),
        ("Geneva-Sunnyvale", 10, 180_000, 1460),
        ("Geneva-Sunnyvale", 10, 180_000, 8960),
    ];
    rows.iter()
        .map(|&(path, gbps, rtt_us, mss)| {
            let bandwidth = Bandwidth::from_gbps(gbps);
            let rtt = Nanos::from_micros(rtt_us);
            RecoveryRow {
                path,
                bandwidth,
                rtt,
                mss,
                time: recovery_time(bandwidth, rtt, mss),
            }
        })
        .collect()
}

/// The §3.5.1 window-quantization arithmetic (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowQuantization {
    /// The ideal (theoretical or advertised) window in bytes.
    pub ideal_window: u64,
    /// Sender MSS.
    pub snd_mss: u64,
    /// Receiver's MSS estimate (used to round the advertised window).
    pub rcv_mss: u64,
}

impl WindowQuantization {
    /// The window the receiver actually advertises:
    /// `⌊available/MSS⌋·MSS` (§3.5.1 footnote 6).
    pub fn advertised(&self) -> u64 {
        (self.ideal_window / self.rcv_mss) * self.rcv_mss
    }

    /// The best window the sender can use, with its congestion window kept
    /// MSS-aligned against the advertised window.
    pub fn sender_usable(&self) -> u64 {
        (self.advertised() / self.snd_mss) * self.snd_mss
    }

    /// Fraction of the ideal window actually usable.
    pub fn efficiency(&self) -> f64 {
        self.sender_usable() as f64 / self.ideal_window as f64
    }

    /// Throughput attenuation in percent: `1 − efficiency`.
    pub fn attenuation_pct(&self) -> f64 {
        (1.0 - self.efficiency()) * 100.0
    }
}

/// The station of a host that caps throughput for a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Station {
    /// Per-segment CPU work (stack + copies + allocation).
    Cpu,
    /// The shared memory bus.
    MemoryBus,
    /// The PCI-X segment.
    Pcix,
    /// The 10GbE wire itself.
    Wire,
}

/// Per-station throughput ceilings for MSS-sized receive traffic.
#[derive(Debug, Clone, Copy)]
pub struct BottleneckReport {
    /// CPU ceiling.
    pub cpu: Bandwidth,
    /// Memory-bus ceiling.
    pub membus: Bandwidth,
    /// PCI-X ceiling.
    pub pcix: Bandwidth,
    /// Wire ceiling (payload over line rate).
    pub wire: Bandwidth,
}

impl BottleneckReport {
    /// Compute the per-station receive ceilings of `cfg` at `mtu`.
    pub fn for_config(cfg: &HostConfig, mtu: Mtu) -> Self {
        let ts = cfg.sysctls.timestamps;
        let payload = mtu.mss(ts);
        let frame = payload + 40 + if ts { 12 } else { 0 } + 18;
        let cpu_time = cfg.hw.cpu.rx_segment_time(ts)
            + cfg.hw.cpu.copy_time(payload)
            + cfg.hw.alloc.alloc_cost(frame)
            + cfg.hw.cpu.plain_time(cfg.hw.cpu.costs.irq_entry) / 2
            + cfg.hw.cpu.plain_time(cfg.hw.cpu.costs.sched_wakeup) / 4;
        let bus_bytes = cfg.hw.mem.rx_bus_bytes(frame, payload, 1);
        BottleneckReport {
            cpu: tengig_sim::rate_of(payload, cpu_time),
            membus: tengig_sim::rate_of(payload, cfg.hw.mem.bus_time(bus_bytes)),
            pcix: tengig_sim::rate_of(payload, cfg.hw.pci.packet_transfer_time(frame)),
            wire: tengig_sim::rate_of(
                payload,
                cfg.nic.serialize_time(Mtu::wire_bytes_for(frame - 18)),
            ),
        }
    }

    /// The binding station (the smallest ceiling).
    pub fn binding(&self) -> (Station, Bandwidth) {
        let mut best = (Station::Cpu, self.cpu);
        for (s, b) in [
            (Station::MemoryBus, self.membus),
            (Station::Pcix, self.pcix),
            (Station::Wire, self.wire),
        ] {
            if b < best.1 {
                best = (s, b);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LadderRung;

    #[test]
    fn table1_matches_paper_values() {
        let t = table1();
        // Geneva-Chicago, 10 Gb/s, MSS 1460: "1 hr 42 min".
        let gc_small = t[1].time.as_secs_f64();
        assert!((6100.0..6250.0).contains(&gc_small), "{gc_small} s");
        // Geneva-Chicago, MSS 8960: ~17 min.
        let gc_jumbo = t[2].time.as_secs_f64() / 60.0;
        assert!((16.0..18.0).contains(&gc_jumbo), "{gc_jumbo} min");
        // Geneva-Sunnyvale, MSS 1460: ~3 hr 51 min.
        let gs_small = t[3].time.as_secs_f64() / 3600.0;
        assert!((3.7..4.0).contains(&gs_small), "{gs_small} h");
        // Geneva-Sunnyvale, MSS 8960: ~38 min.
        let gs_jumbo = t[4].time.as_secs_f64() / 60.0;
        assert!((36.0..39.0).contains(&gs_jumbo), "{gs_jumbo} min");
        // LAN recovers in milliseconds.
        assert!(t[0].time < Nanos::from_millis(10), "{}", t[0].time);
    }

    #[test]
    fn recovery_scales_inverse_with_mss_quadratic_with_rtt() {
        let c = Bandwidth::from_gbps(10);
        let r1 = recovery_time(c, Nanos::from_millis(100), 1460);
        let r2 = recovery_time(c, Nanos::from_millis(100), 2920);
        assert!((r1.as_secs_f64() / r2.as_secs_f64() - 2.0).abs() < 0.01);
        let r4 = recovery_time(c, Nanos::from_millis(200), 1460);
        assert!((r4.as_secs_f64() / r1.as_secs_f64() - 4.0).abs() < 0.01);
    }

    #[test]
    fn window_quantization_paper_example() {
        // §3.5.1: receiver MSS 8948, sender MSS 8960, 33,000 bytes of
        // available socket memory → advertised 26,844; sender usable
        // 17,920 — "nearly 50% smaller than the actual available memory".
        let wq = WindowQuantization {
            ideal_window: 33_000,
            snd_mss: 8960,
            rcv_mss: 8948,
        };
        assert_eq!(wq.advertised(), 26_844);
        assert_eq!(wq.sender_usable(), 17_920);
        assert!(wq.efficiency() < 0.55, "{}", wq.efficiency());
    }

    #[test]
    fn window_quantization_lan_example() {
        // §3.5.1: 48 KB ideal window, 8948-byte MSS → 5 of 5.5 packets,
        // "attenuates the ideal data rate by nearly 17%".
        let wq = WindowQuantization {
            ideal_window: 48_000,
            snd_mss: 8948,
            rcv_mss: 8948,
        };
        assert_eq!(wq.advertised() / 8948, 5);
        let att = wq.attenuation_pct();
        assert!((6.0..8.0).contains(&att), "{att}%"); // 5×8948=44740 of 48000
                                                      // The paper's 17% figure compares 5 packets to the ideal 5.5+:
        let vs_six: f64 = 1.0 - (5.0 * 8948.0) / (6.0 * 8948.0);
        assert!((vs_six * 100.0 - 16.7).abs() < 0.1);
    }

    #[test]
    fn small_mss_quantizes_gently() {
        let jumbo = WindowQuantization {
            ideal_window: 48_000,
            snd_mss: 8948,
            rcv_mss: 8948,
        };
        let std = WindowQuantization {
            ideal_window: 48_000,
            snd_mss: 1448,
            rcv_mss: 1448,
        };
        assert!(std.efficiency() > jumbo.efficiency());
        assert!(std.efficiency() > 0.97);
    }

    #[test]
    fn bottleneck_shifts_across_the_ladder() {
        // Stock jumbo: the PCI-X bus binds (512-byte bursts).
        let stock = LadderRung::Stock.pe2650_config(Mtu::JUMBO_9000);
        let (station, _) = BottleneckReport::for_config(&stock, Mtu::JUMBO_9000).binding();
        assert_eq!(station, Station::Pcix);
        // Tuned 8160: the PCI bus no longer binds.
        let tuned = LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160);
        let rep = BottleneckReport::for_config(&tuned, Mtu::TUNED_8160);
        let (station, ceiling) = rep.binding();
        assert_ne!(station, Station::Pcix);
        assert!((3.5..5.0).contains(&ceiling.gbps()), "{}", ceiling.gbps());
        // Nothing ever beats the wire.
        assert!(rep.wire.gbps() > rep.cpu.gbps());
    }
}
