//! `tengig` — a 10-Gigabit Ethernet end-to-end performance laboratory.
//!
//! Reproduction of "Optimizing 10-Gigabit Ethernet for Networks of
//! Workstations, Clusters, and Grids: A Case Study" (SC 2003) as a
//! deterministic packet-level simulation. See `DESIGN.md` at the repository
//! root for the system inventory and `EXPERIMENTS.md` for paper-vs-measured
//! results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod calib;
pub mod config;
pub mod experiments;
pub mod lab;
pub mod report;
pub mod sweep;

pub use config::{HostConfig, LadderRung, TuningStep};
pub use lab::{App, DiskPipe, Ev, FlowRt, HostRt, Lab, LabProf};
pub use report::{Json, MetricsSidecar, SweepReport, SweepRow};
pub use sweep::{scenarios, Scenario, SweepError, SweepRunner};
