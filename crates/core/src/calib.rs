//! Calibration: the paper's headline numbers as machine-checked targets.
//!
//! Every target lists the paper's value, the experiment that reproduces it,
//! and the tolerance band we hold the simulator to. `run_calibration`
//! executes the whole battery and returns comparison rows — this is what
//! `EXPERIMENTS.md` and the `paper_fidelity` integration test are built
//! from.
//!
//! Tolerances are deliberately honest: headline results (stock peaks, the
//! tuned 4.11 Gb/s, the latency trio, pktgen, the WAN record) hold within
//! ~10%; the mid-ladder rungs and the 1500-byte tuned cases carry the
//! model's known ~20-30% residuals (see `EXPERIMENTS.md` for discussion).

use crate::config::LadderRung;
use crate::experiments::latency::{netpipe_point, without_coalescing};
use crate::experiments::throughput::{nttcp_point, pktgen_run};
use crate::experiments::wan::record_run;
use crate::report::Comparison;
use tengig_ethernet::Mtu;
use tengig_net::WanSpec;
use tengig_sim::Nanos;

/// One calibration target.
#[derive(Debug, Clone)]
pub struct Target {
    /// Comparison row (paper vs measured).
    pub cmp: Comparison,
    /// Relative tolerance the laboratory commits to.
    pub tol: f64,
}

impl Target {
    /// Whether the measurement honours the tolerance.
    pub fn pass(&self) -> bool {
        self.cmp.within(self.tol)
    }
}

/// Packet count per throughput point. The paper's 32,768 converges to the
/// same numbers; 6,000 keeps the battery fast enough for CI.
pub const CALIB_COUNT: u64 = 6_000;

fn peak(rung: LadderRung, mtu: Mtu, payload: u64) -> f64 {
    nttcp_point(rung.pe2650_config(mtu), payload, CALIB_COUNT, 7)
        .throughput
        .gbps()
}

/// Run the full calibration battery. Expensive (several seconds of CPU);
/// points run in parallel where the experiment allows.
pub fn run_calibration() -> Vec<Target> {
    let mut out = Vec::new();
    let mut push = |name: &str, paper: f64, measured: f64, unit: &'static str, tol: f64| {
        out.push(Target {
            cmp: Comparison {
                name: name.into(),
                paper,
                measured,
                unit,
            },
            tol,
        });
    };

    // --- Fig. 3: stock TCP peaks ---
    push(
        "fig3 stock peak, 1500 MTU",
        1.8,
        peak(LadderRung::Stock, Mtu::STANDARD, 1448),
        "Gb/s",
        0.25,
    );
    push(
        "fig3 stock peak, 9000 MTU",
        2.7,
        peak(LadderRung::Stock, Mtu::JUMBO_9000, 8948),
        "Gb/s",
        0.10,
    );

    // --- §3.3 ladder ---
    push(
        "MMRBC 4096 peak, 9000 MTU",
        3.6,
        peak(LadderRung::PciBurst, Mtu::JUMBO_9000, 8948),
        "Gb/s",
        0.25,
    );
    push(
        "UP kernel peak, 1500 MTU",
        2.15,
        peak(LadderRung::Uniprocessor, Mtu::STANDARD, 1448),
        "Gb/s",
        0.25,
    );
    // --- Fig. 4: oversized windows ---
    push(
        "fig4 256KB windows peak, 9000 MTU",
        3.9,
        peak(LadderRung::OversizedWindows, Mtu::JUMBO_9000, 8948),
        "Gb/s",
        0.10,
    );
    push(
        "fig4 256KB windows peak, 1500 MTU",
        2.47,
        peak(LadderRung::OversizedWindows, Mtu::STANDARD, 1448),
        "Gb/s",
        0.35,
    );
    // --- Fig. 5: tuned MTUs ---
    push(
        "fig5 peak, 8160 MTU",
        4.11,
        peak(LadderRung::Mtu8160, Mtu::TUNED_8160, 8108),
        "Gb/s",
        0.10,
    );
    push(
        "fig5 peak, 16000 MTU",
        4.09,
        peak(LadderRung::Mtu16000, Mtu::MAX_INTEL_16000, 15948),
        "Gb/s",
        0.10,
    );

    // --- Figs. 6-7: latency ---
    let lat_cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    push(
        "fig6 one-way latency, back-to-back, 1 B",
        19.0,
        netpipe_point(lat_cfg, 1, false).as_micros_f64(),
        "us",
        0.08,
    );
    push(
        "fig6 one-way latency, through switch, 1 B",
        25.0,
        netpipe_point(lat_cfg, 1, true).as_micros_f64(),
        "us",
        0.08,
    );
    push(
        "fig6 one-way latency, back-to-back, 1024 B",
        23.0,
        netpipe_point(lat_cfg, 1024, false).as_micros_f64(),
        "us",
        0.08,
    );
    push(
        "fig7 latency without coalescing, 1 B",
        14.0,
        netpipe_point(without_coalescing(lat_cfg), 1, false).as_micros_f64(),
        "us",
        0.08,
    );

    // --- §3.5.2: packet generator ---
    let pg = pktgen_run(
        LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160),
        8132,
        8_000,
    );
    push("pktgen single-copy max", 5.5, pg.gbps, "Gb/s", 0.12);
    push("pktgen packet rate", 88_400.0, pg.pps, "pkt/s", 0.12);

    // --- §4: the WAN record ---
    let wan = record_run(
        &WanSpec::record_run(),
        None,
        Nanos::from_secs(3),
        Nanos::from_secs(2),
    );
    push("WAN single-stream record", 2.38, wan.gbps, "Gb/s", 0.05);
    push(
        "WAN payload efficiency",
        0.99,
        wan.payload_efficiency,
        "",
        0.05,
    );
    push(
        "WAN terabyte transfer time",
        3361.0, // 1 TB at 2.38 Gb/s
        wan.terabyte_time.as_secs_f64(),
        "s",
        0.06,
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_pass_logic() {
        let t = Target {
            cmp: Comparison {
                name: "x".into(),
                paper: 2.0,
                measured: 2.1,
                unit: "Gb/s",
            },
            tol: 0.06,
        };
        assert!(t.pass());
        let t2 = Target { tol: 0.04, ..t };
        assert!(!t2.pass());
    }
}
