//! The §4 WAN experiment: the Internet2 Land Speed Record run.
//!
//! A single TCP stream from Sunnyvale to Geneva across the OC-192/OC-48
//! circuit, with socket buffers tuned to the bandwidth-delay product so the
//! flow-control window caps the congestion window just below the congested
//! state — "the network approaches congestion but avoids it altogether".

use crate::config::HostConfig;
use crate::lab::{self, App, Lab, LabEngine};
use crate::report::{Json, SweepReport};
use crate::sweep::{scenarios, SweepRunner};
use tengig_net::WanSpec;
use tengig_nic::NicSpec;
use tengig_sim::{rate_of, Engine, Nanos, SimRng};
use tengig_tcp::Sysctls;
use tengig_tools::{NttcpReceiver, NttcpSender};

/// Result of a WAN run.
#[derive(Debug, Clone, Copy)]
pub struct WanResult {
    /// Steady-state throughput over the measurement window, Gb/s.
    pub gbps: f64,
    /// Retransmissions observed at the sender.
    pub retransmits: u64,
    /// Congestion drops at the bottleneck.
    pub drops: u64,
    /// Payload efficiency relative to the OC-48 payload capacity.
    pub payload_efficiency: f64,
    /// Projected time to move a terabyte at the measured rate.
    pub terabyte_time: Nanos,
}

/// The §4.1 endpoint: dual 2.4 GHz Xeon, jumbo frames, buffers ≈ BDP.
pub fn wan_host(wan: &WanSpec, buffer: Option<u64>) -> HostConfig {
    let bdp = wan.bdp();
    HostConfig {
        hw: tengig_hw::HostSpec::wan_endpoint(),
        nic: NicSpec::intel_pro_10gbe(),
        sysctls: Sysctls::wan_tuned(buffer.unwrap_or(bdp)),
    }
}

/// Build the WAN lab: two hosts across the OC-192/OC-48 circuit.
pub fn wan_lab(wan: &WanSpec, buffer: Option<u64>) -> (Lab, LabEngine) {
    wan_lab_seeded(wan, buffer, 2003)
}

/// [`wan_lab`] with an explicit RNG seed (the WAN path has stochastic
/// elements — random loss — so the seed matters here).
pub fn wan_lab_seeded(wan: &WanSpec, buffer: Option<u64>, seed: u64) -> (Lab, LabEngine) {
    let cfg = wan_host(wan, buffer);
    let mut lab = Lab::new();
    let svl = lab.add_host(cfg);
    let gva = lab.add_host(cfg);
    let mut rng = SimRng::seeded(seed);
    let fwd = lab.add_link(&wan.forward_path(), rng.fork("fwd"));
    let rev = lab.add_link(&wan.reverse_path(), rng.fork("rev"));
    // Effectively endless stream: the run is window-measured.
    let payload = cfg.sysctls.mss();
    let count = 100_000_000;
    lab.add_flow(
        svl,
        gva,
        vec![fwd],
        vec![rev],
        App::Nttcp {
            tx: NttcpSender::new(payload, count),
            rx: NttcpReceiver::new(payload * count),
        },
    );
    let mut eng = Engine::new();
    eng.event_limit = 2_000_000_000;
    lab::install_default_sanitizer(&mut lab, &mut eng, seed);
    (lab, eng)
}

/// Run the record scenario: warm up past slow start, then measure.
pub fn record_run(wan: &WanSpec, buffer: Option<u64>, warmup: Nanos, window: Nanos) -> WanResult {
    record_run_seeded(wan, buffer, warmup, window, 2003)
}

/// [`record_run`] with an explicit RNG seed (used by the sweep runner's
/// per-scenario seeding).
pub fn record_run_seeded(
    wan: &WanSpec,
    buffer: Option<u64>,
    warmup: Nanos,
    window: Nanos,
    seed: u64,
) -> WanResult {
    record_run_inner(wan, buffer, warmup, window, seed, None).0
}

/// [`record_run_seeded`] with the observability layer enabled: returns the
/// WAN result plus the metrics timelines — the cwnd-vs-time series that
/// reproduces the record run's AIMD plot (flow 0, endpoint 0, `cwnd`).
pub fn record_timeline(
    wan: &WanSpec,
    buffer: Option<u64>,
    warmup: Nanos,
    window: Nanos,
    seed: u64,
    obs: &tengig_sim::ObsConfig,
) -> (WanResult, tengig_sim::Timelines) {
    let (result, tl) = record_run_inner(wan, buffer, warmup, window, seed, Some(obs));
    (result, tl.expect("obs was enabled"))
}

fn record_run_inner(
    wan: &WanSpec,
    buffer: Option<u64>,
    warmup: Nanos,
    window: Nanos,
    seed: u64,
    obs: Option<&tengig_sim::ObsConfig>,
) -> (WanResult, Option<tengig_sim::Timelines>) {
    let (mut lab, mut eng) = wan_lab_seeded(wan, buffer, seed);
    if let Some(cfg) = obs {
        lab.enable_obs(cfg, seed);
    }
    lab::kick(&mut lab, &mut eng);
    // advance_to: the rate below divides by the window, so the clock must
    // sit exactly on its edges.
    eng.advance_to(&mut lab, warmup);
    let received = |lab: &Lab| match &lab.flows[0].app {
        App::Nttcp { rx, .. } => rx.received,
        _ => 0,
    };
    let b0 = received(&lab);
    eng.advance_to(&mut lab, warmup + window);
    // Windowed run: frames are still in flight, so no drain check.
    lab::check_sanitizer(&lab, &mut eng, false);
    let b1 = received(&lab);
    let gbps = rate_of(b1 - b0, window).gbps();
    let bottleneck = wan.forward_path().bottleneck().gbps();
    let drops = lab.links[0].total_drops();
    let result = WanResult {
        gbps,
        retransmits: lab.flows[0].conns[0].stats.retransmits,
        drops,
        payload_efficiency: gbps / bottleneck,
        terabyte_time: Nanos::from_secs_f64(1e12 * 8.0 / (gbps * 1e9)),
    };
    (result, lab.take_timelines())
}

/// Sweep the record scenario over socket-buffer sizes (`None` = BDP-tuned)
/// on the deterministic sweep runner. Returns the per-point results plus
/// the machine-readable [`SweepReport`].
pub fn buffer_sweep_report(
    wan: &WanSpec,
    buffers: &[Option<u64>],
    warmup: Nanos,
    window: Nanos,
    master_seed: u64,
    runner: SweepRunner,
) -> (Vec<WanResult>, SweepReport) {
    let grid = scenarios(master_seed, buffers.iter().copied(), |b| match b {
        Some(bytes) => format!("buffer={bytes}"),
        None => "buffer=bdp".to_string(),
    });
    let results = runner
        .run(&grid, |sc| {
            record_run_seeded(wan, sc.input, warmup, window, sc.seed)
        })
        .expect("wan sweep scenario panicked");
    let mut report = SweepReport::new("wan/record_buffer_sweep", master_seed);
    for (sc, r) in grid.iter().zip(&results) {
        report.push_row(
            sc.index,
            sc.label.clone(),
            sc.seed,
            vec![
                ("buffer".to_string(), sc.input.map_or(Json::Null, Json::U64)),
                ("gbps".to_string(), Json::F64(r.gbps)),
                ("retransmits".to_string(), Json::U64(r.retransmits)),
                ("drops".to_string(), Json::U64(r.drops)),
                (
                    "payload_efficiency".to_string(),
                    Json::F64(r.payload_efficiency),
                ),
            ],
        );
    }
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bdp_tuned_run_is_lossless_and_fast() {
        let wan = WanSpec::record_run();
        // Short debug-friendly windows: 3 s warmup (slow start at 90 ms
        // one-way needs ~15 RTTs), 2 s measurement.
        let r = record_run(&wan, None, Nanos::from_secs(3), Nanos::from_secs(2));
        assert_eq!(r.retransmits, 0, "BDP-capped flow must not lose packets");
        assert_eq!(r.drops, 0);
        assert!(r.gbps > 2.0, "steady state {} Gb/s (paper: 2.38)", r.gbps);
        assert!(
            r.payload_efficiency > 0.85,
            "efficiency {}",
            r.payload_efficiency
        );
        // A terabyte in less than an hour (paper's headline).
        assert!(
            r.terabyte_time < Nanos::from_secs(3600),
            "terabyte in {}",
            r.terabyte_time
        );
    }

    #[test]
    fn undersized_buffers_throttle_throughput() {
        let wan = WanSpec::record_run();
        let small = record_run(
            &wan,
            Some(8 << 20), // 8 MB ≪ 54 MB BDP
            Nanos::from_secs(2),
            Nanos::from_secs(2),
        );
        // W/RTT with W=6 MB usable (3/4 of 8 MB) and RTT 180 ms ≈ 0.27 Gb/s.
        assert!(
            small.gbps < 0.6,
            "undersized buffer still got {} Gb/s",
            small.gbps
        );
    }
}
