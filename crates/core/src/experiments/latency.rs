//! NetPipe latency experiments: Figs. 6 and 7.

use super::two_host_lab;
use crate::config::{HostConfig, TuningStep};
use crate::lab::{self, App};
use parking_lot::Mutex;
use tengig_sim::stats::Series;
use tengig_sim::Nanos;
use tengig_tools::NetPipe;

/// Rounds per NetPipe point ("an averaged round-trip time over several
/// single-byte, ping-pong tests").
pub const ROUNDS: u64 = 50;

/// One-way latency for one payload size.
pub fn netpipe_point(cfg: HostConfig, payload: u64, through_switch: bool) -> Nanos {
    let app = App::NetPipe(NetPipe::new(payload, ROUNDS));
    let (mut lab, mut eng) = two_host_lab(cfg, cfg, app, 17 + payload, through_switch);
    lab::kick(&mut lab, &mut eng);
    eng.run(&mut lab);
    assert!(lab.all_done(), "netpipe did not complete");
    let App::NetPipe(np) = &lab.flows[0].app else { unreachable!() };
    np.one_way_latency()
}

/// The Fig. 6/7 payload range: 1 byte to 1 KiB.
pub fn paper_latency_payloads() -> Vec<u64> {
    let mut v = vec![1u64];
    v.extend((64..=1024).step_by(64));
    v
}

/// Sweep one-way latency over payloads (µs on the y axis), in parallel.
pub fn latency_sweep(
    cfg: HostConfig,
    label: impl Into<String>,
    payloads: &[u64],
    through_switch: bool,
) -> Series {
    let results: Mutex<Vec<(u64, f64)>> = Mutex::new(Vec::with_capacity(payloads.len()));
    crossbeam::scope(|s| {
        for &p in payloads {
            let results = &results;
            s.spawn(move |_| {
                let lat = netpipe_point(cfg, p, through_switch);
                results.lock().push((p, lat.as_micros_f64()));
            });
        }
    })
    .expect("latency sweep thread panicked");
    let mut pts = results.into_inner();
    pts.sort_unstable_by_key(|&(p, _)| p);
    let mut series = Series::new(label);
    for (p, us) in pts {
        series.push(p as f64, us);
    }
    series
}

/// The Fig. 7 configuration: interrupt coalescing off.
pub fn without_coalescing(cfg: HostConfig) -> HostConfig {
    cfg.tuned(TuningStep::Coalescing(Nanos::ZERO))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LadderRung;
    use tengig_ethernet::Mtu;

    fn base() -> HostConfig {
        LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000)
    }

    #[test]
    fn switch_adds_latency() {
        let b2b = netpipe_point(base(), 1, false);
        let sw = netpipe_point(base(), 1, true);
        let delta = sw.as_micros_f64() - b2b.as_micros_f64();
        // Paper: 25 µs vs 19 µs → ≈ 6 µs through the FastIron.
        assert!((4.5..7.5).contains(&delta), "switch delta {delta} µs");
    }

    #[test]
    fn coalescing_off_saves_about_5us() {
        let on = netpipe_point(base(), 1, false);
        let off = netpipe_point(without_coalescing(base()), 1, false);
        let delta = on.as_micros_f64() - off.as_micros_f64();
        assert!((4.0..6.0).contains(&delta), "coalescing delta {delta} µs");
    }

    #[test]
    fn latency_grows_modestly_with_payload() {
        // Fig. 6: +~20% from 1 byte to 1024 bytes, stepwise.
        let l1 = netpipe_point(base(), 1, false).as_micros_f64();
        let l1024 = netpipe_point(base(), 1024, false).as_micros_f64();
        let growth = l1024 / l1;
        assert!((1.05..1.5).contains(&growth), "growth {growth} ({l1} → {l1024})");
    }

    #[test]
    fn sweep_is_monotone_in_payload() {
        let s = latency_sweep(base(), "b2b", &[1, 256, 512, 1024], false);
        for w in s.points.windows(2) {
            assert!(w[1].y >= w[0].y - 0.2, "latency should not shrink: {w:?}");
        }
    }
}
