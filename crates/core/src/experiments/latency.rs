//! NetPipe latency experiments: Figs. 6 and 7.

use super::two_host_lab;
use crate::config::{HostConfig, TuningStep};
use crate::lab::{self, App};
use crate::report::{Json, SweepReport};
use crate::sweep::{scenarios, SweepRunner};
use tengig_sim::stats::Series;
use tengig_sim::Nanos;
use tengig_tools::NetPipe;

/// Rounds per NetPipe point ("an averaged round-trip time over several
/// single-byte, ping-pong tests").
pub const ROUNDS: u64 = 50;

/// One-way latency for one payload size, with an explicit RNG seed (used
/// by the sweep runner's per-scenario seeding).
pub fn netpipe_point_seeded(
    cfg: HostConfig,
    payload: u64,
    through_switch: bool,
    seed: u64,
) -> Nanos {
    let app = App::NetPipe(NetPipe::new(payload, ROUNDS));
    let (mut lab, mut eng) = two_host_lab(cfg, cfg, app, seed, through_switch);
    lab::kick(&mut lab, &mut eng);
    eng.run(&mut lab);
    assert!(lab.all_done(), "netpipe did not complete");
    lab::check_sanitizer(&lab, &mut eng, true);
    let App::NetPipe(np) = &lab.flows[0].app else {
        unreachable!()
    };
    np.one_way_latency()
}

/// One-way latency for one payload size.
pub fn netpipe_point(cfg: HostConfig, payload: u64, through_switch: bool) -> Nanos {
    netpipe_point_seeded(cfg, payload, through_switch, 17 + payload)
}

/// The Fig. 6/7 payload range: 1 byte to 1 KiB.
pub fn paper_latency_payloads() -> Vec<u64> {
    let mut v = vec![1u64];
    v.extend((64..=1024).step_by(64));
    v
}

/// Sweep one-way latency over payloads on the deterministic sweep runner.
/// Returns the figure series (µs on the y axis) plus the machine-readable
/// [`SweepReport`]. Thread count cannot change a byte of the result.
pub fn latency_sweep_report(
    cfg: HostConfig,
    label: impl Into<String>,
    payloads: &[u64],
    through_switch: bool,
    master_seed: u64,
    runner: SweepRunner,
) -> (Series, SweepReport) {
    let label = label.into();
    let grid = scenarios(master_seed, payloads.iter().copied(), |p| {
        format!("{label}/payload={p}")
    });
    let results = runner
        .run(&grid, |sc| {
            netpipe_point_seeded(cfg, sc.input, through_switch, sc.seed)
        })
        .expect("latency sweep scenario panicked");
    let mut series = Series::new(label.clone());
    let mut report = SweepReport::new(label, master_seed);
    for (sc, lat) in grid.iter().zip(&results) {
        let us = lat.as_micros_f64();
        series.push(sc.input as f64, us);
        report.push_row(
            sc.index,
            sc.label.clone(),
            sc.seed,
            vec![
                ("payload".to_string(), Json::U64(sc.input)),
                ("one_way_us".to_string(), Json::F64(us)),
                ("through_switch".to_string(), Json::Bool(through_switch)),
            ],
        );
    }
    (series, report)
}

/// Sweep one-way latency over payloads (µs on the y axis), in parallel.
pub fn latency_sweep(
    cfg: HostConfig,
    label: impl Into<String>,
    payloads: &[u64],
    through_switch: bool,
) -> Series {
    let mut payloads: Vec<u64> = payloads.to_vec();
    payloads.sort_unstable();
    latency_sweep_report(
        cfg,
        label,
        &payloads,
        through_switch,
        super::throughput::MASTER_SEED,
        SweepRunner::default(),
    )
    .0
}

/// The Fig. 7 configuration: interrupt coalescing off.
pub fn without_coalescing(cfg: HostConfig) -> HostConfig {
    cfg.tuned(TuningStep::Coalescing(Nanos::ZERO))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LadderRung;
    use tengig_ethernet::Mtu;

    fn base() -> HostConfig {
        LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000)
    }

    #[test]
    fn switch_adds_latency() {
        let b2b = netpipe_point(base(), 1, false);
        let sw = netpipe_point(base(), 1, true);
        let delta = sw.as_micros_f64() - b2b.as_micros_f64();
        // Paper: 25 µs vs 19 µs → ≈ 6 µs through the FastIron.
        assert!((4.5..7.5).contains(&delta), "switch delta {delta} µs");
    }

    #[test]
    fn coalescing_off_saves_about_5us() {
        let on = netpipe_point(base(), 1, false);
        let off = netpipe_point(without_coalescing(base()), 1, false);
        let delta = on.as_micros_f64() - off.as_micros_f64();
        assert!((4.0..6.0).contains(&delta), "coalescing delta {delta} µs");
    }

    #[test]
    fn latency_grows_modestly_with_payload() {
        // Fig. 6: +~20% from 1 byte to 1024 bytes, stepwise.
        let l1 = netpipe_point(base(), 1, false).as_micros_f64();
        let l1024 = netpipe_point(base(), 1024, false).as_micros_f64();
        let growth = l1024 / l1;
        assert!(
            (1.05..1.5).contains(&growth),
            "growth {growth} ({l1} → {l1024})"
        );
    }

    #[test]
    fn sweep_is_monotone_in_payload() {
        let s = latency_sweep(base(), "b2b", &[1, 256, 512, 1024], false);
        for w in s.points.windows(2) {
            assert!(w[1].y >= w[0].y - 0.2, "latency should not shrink: {w:?}");
        }
    }
}
