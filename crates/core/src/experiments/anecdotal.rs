//! The §3.4 anecdotal results: the Intel E7505 loaner systems and the
//! quad-processor Itanium-II aggregation.

use super::multiflow::{aggregate, Direction, MultiflowResult};
use super::throughput::nttcp_point;
use crate::config::{HostConfig, TuningStep};
use crate::report::{Json, SweepReport};
use crate::sweep::{scenarios, SweepRunner};
use tengig_hw::HostSpec;
use tengig_nic::NicSpec;
use tengig_sim::Nanos;
use tengig_tcp::Sysctls;
use tengig_tools::NttcpResult;

/// The E7505 loaners "essentially out of the box": jumbo frames and, as
/// the paper notes was *required*, TCP timestamps disabled.
pub fn e7505_config() -> HostConfig {
    HostConfig {
        hw: HostSpec::e7505(),
        nic: NicSpec::intel_pro_10gbe(),
        sysctls: Sysctls::linux24_defaults()
            .with_mtu(tengig_ethernet::Mtu::JUMBO_9000)
            .with_buffers(256 * 1024),
    }
    .tuned(TuningStep::Timestamps(false))
}

/// Back-to-back run on the E7505 loaners (paper: 4.64 Gb/s).
pub fn e7505_out_of_box(count: u64) -> NttcpResult {
    let cfg = e7505_config();
    nttcp_point(cfg, cfg.sysctls.mss(), count, 21)
}

/// The same run with timestamps enabled — "enabling timestamps reduced
/// throughput by approximately 10%" because on these faster hosts the CPU
/// is close to the binding resource.
pub fn e7505_with_timestamps(count: u64) -> NttcpResult {
    let cfg = e7505_config().tuned(TuningStep::Timestamps(true));
    nttcp_point(cfg, cfg.sysctls.mss(), count, 21)
}

/// The quad Itanium-II aggregation: GbE clients through the switch into
/// one 10GbE adapter (paper: 7.2 Gb/s unidirectional).
pub fn itanium_aggregation(peers: usize, warmup: Nanos, window: Nanos) -> MultiflowResult {
    let tengbe = HostConfig {
        hw: HostSpec::itanium2_quad(),
        nic: NicSpec::intel_pro_10gbe(),
        sysctls: Sysctls::linux24_defaults()
            .with_mtu(tengig_ethernet::Mtu::JUMBO_9000)
            .with_buffers(512 * 1024),
    };
    aggregate(tengbe, peers, Direction::IntoTenGbe, warmup, window)
}

/// Sweep the E7505 anecdote as a two-point grid (timestamps off → on) on
/// the deterministic sweep runner, reporting the ~10% timestamp penalty
/// the paper describes.
pub fn e7505_sweep_report(
    count: u64,
    master_seed: u64,
    runner: SweepRunner,
) -> (Vec<tengig_tools::NttcpResult>, SweepReport) {
    let grid = scenarios(master_seed, [false, true], |&ts| {
        format!("timestamps={}", if ts { "on" } else { "off" })
    });
    let results = runner
        .run(&grid, |sc| {
            let cfg = e7505_config().tuned(TuningStep::Timestamps(sc.input));
            nttcp_point(cfg, cfg.sysctls.mss(), count, sc.seed)
        })
        .expect("e7505 sweep scenario panicked");
    let mut report = SweepReport::new("anecdotal/e7505_timestamps", master_seed);
    for (sc, r) in grid.iter().zip(&results) {
        report.push_row(
            sc.index,
            sc.label.clone(),
            sc.seed,
            vec![
                ("timestamps".to_string(), Json::Bool(sc.input)),
                ("gbps".to_string(), Json::F64(r.throughput.gbps())),
                ("rx_cpu_load".to_string(), Json::F64(r.rx_cpu_load)),
            ],
        );
    }
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LadderRung;
    use tengig_ethernet::Mtu;

    #[test]
    fn e7505_beats_tuned_pe2650() {
        // §3.4: 4.64 Gb/s out of the box vs the heavily optimized
        // PE2650's 4.11 — "better than 13%".
        let e7 = e7505_out_of_box(2_000).throughput.gbps();
        let pe = nttcp_point(
            LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160),
            8108,
            2_000,
            7,
        )
        .throughput
        .gbps();
        assert!(e7 > pe, "e7505 {e7} vs pe2650 {pe}");
        assert!((4.0..5.3).contains(&e7), "e7505 {e7}");
    }

    #[test]
    fn timestamps_cost_several_percent_on_e7505() {
        let without = e7505_out_of_box(2_000).throughput.gbps();
        let with = e7505_with_timestamps(2_000).throughput.gbps();
        let loss = 1.0 - with / without;
        assert!(loss > 0.0, "timestamps should cost something: {loss}");
        assert!(loss < 0.25, "but not this much: {loss}");
    }

    #[test]
    fn itanium_aggregates_well_past_a_pe2650() {
        let w = Nanos::from_millis(25);
        let it = itanium_aggregation(8, w, w);
        assert!(
            it.aggregate_gbps > 4.8,
            "itanium aggregate {} should clear a PE2650's ceiling",
            it.aggregate_gbps
        );
    }
}
