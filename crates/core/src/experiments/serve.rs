//! The `serve` experiment family: open-loop traffic workloads and the
//! disk-to-disk pipeline stage.
//!
//! Two ladders probe the "networks of workstations … and grids" side of
//! the paper from the *service* angle:
//!
//! * **load ladder** — a pool of GbE workstation clients launches
//!   hundreds of short flows at a tuned 10GbE server under a seeded
//!   open-loop arrival process ([`tengig_sim::build_schedule`]: Poisson
//!   gaps, bounded-Pareto mice/elephant sizes). The rung parameter is the
//!   offered load; the measurement is the flow-completion-time tail
//!   (p50/p99/p999 via [`FctStats`]) plus offered-vs-achieved goodput —
//!   the tail degrades as the *hosts* saturate, never the wires, which is
//!   the paper's thesis restated as an SLO curve.
//! * **striping ladder** — the Kukol–Gray regime: one host pair moves a
//!   fixed volume `disk→NIC→WAN→NIC→disk` ([`App::DiskPipe`] over
//!   [`tengig_hw::DiskModel`] spindle banks) with the stream count rising
//!   across rungs. Aggregate pipeline goodput scales with streams until
//!   every spindle is busy (disk-bound) or the path fills (wire-bound).
//!
//! Every run executes through the same sharded machinery as the `grid`
//! family — conservatively synchronized replicas with host-round-robin
//! ownership — and the sweep report is a pure function of
//! `(preset, master seed)`: **neither shard count nor sweep thread count
//! may change a byte of `goldens/serve.jsonl`**, which `make serve-check`
//! and the CI shard matrix enforce.
//!
//! The arrival schedule is drawn entirely at build time from a forked
//! [`SimRng`] (the run itself replays `Ev::StartFlow` at the precomputed
//! instants via [`crate::lab::kick_at`]), so the workload plane costs
//! zero RNG draws and zero event variants in every family that does not
//! opt in — the existing goldens cannot drift by construction.

use super::grid::{tengbe, workstation};
use crate::lab::{self, App, DiskPipe, Ev, GridRt, GridShard, Lab};
use crate::report::{Json, MetricsSidecar, SweepReport};
use crate::sweep::{scenarios, SweepRunner};
use tengig_hw::{DiskModel, DiskSpec};
use tengig_net::{Hop, Path};
use tengig_sim::{
    build_schedule, rate_of, ArrivalProcess, Bandwidth, BoundedPareto, Engine, FctStats, FlowPlan,
    MetricKind, Nanos, ObsConfig, Scope, SimRng, SizeMix, Timelines, WorkloadSpec,
};
use tengig_tools::{NttcpReceiver, NttcpSender};

/// Application write size for every serve flow (jumbo-MSS-sized, as in
/// the grid family); sampled flow sizes are rounded up to whole writes.
const PAYLOAD: u64 = 8948;

/// GbE workstation clients feeding the load-ladder server.
const LOAD_CLIENTS: usize = 4;

/// Nominal serve-pool capacity the load rungs are scaled against, Gb/s —
/// the empirical ceiling of four GbE workstation senders into one tuned
/// PE2650 (host-bound, well under the wire sum). A rung's offered load is
/// `rho ×` this.
const LOAD_CAPACITY_GBPS: f64 = 2.5;

/// Disk-request granularity of a striping stream, in socket writes
/// (117 × 8948 ≈ 1 MiB chunks).
const STRIPE_CHUNK_WRITES: u64 = 117;

/// Socket writes per striping stream (468 × 8948 ≈ 4.2 MiB — four whole
/// disk chunks, a few hundred milliseconds of spindle time).
const STRIPE_COUNT: u64 = 468;

/// The load-ladder flow-size mix: mice-heavy bounded-Pareto, trimmed so
/// a CI rung stays cheap while the tail still carries elephants two
/// orders of magnitude above the median.
fn serve_mix() -> SizeMix {
    SizeMix::new(
        0.97,
        BoundedPareto::new(1.2, 2 << 10, 32 << 10),
        BoundedPareto::new(1.1, 256 << 10, 4 << 20),
    )
}

/// One open-loop load rung.
#[derive(Debug, Clone, Copy)]
pub struct LoadRung {
    /// Offered load as a fraction of [`LOAD_CAPACITY_GBPS`], in permille
    /// (1200 = 20% past nominal saturation).
    pub rho_permille: u64,
    /// Flows launched by the arrival process.
    pub flows: usize,
}

/// One disk-striping rung.
#[derive(Debug, Clone, Copy)]
pub struct StripeRung {
    /// Concurrent `disk→NIC→WAN→NIC→disk` streams.
    pub streams: usize,
    /// Spindles per host disk bank (streams map round-robin).
    pub spindles: usize,
}

/// One serve workload: a load rung or a striping rung.
#[derive(Debug, Clone, Copy)]
pub enum ServePreset {
    /// Open-loop arrivals into the client→server pool.
    Load(LoadRung),
    /// Multi-stream disk-to-disk pipeline over the WAN hop.
    Stripe(StripeRung),
}

impl ServePreset {
    /// Scenario label for reports.
    pub fn label(&self) -> String {
        match self {
            ServePreset::Load(r) => format!("load/rho{:04}", r.rho_permille),
            ServePreset::Stripe(r) => format!("stripe/{}x{}sp", r.streams, r.spindles),
        }
    }

    /// The conservative synchronization window this rung affords: the
    /// base latency of its (only) cross-shard path.
    pub fn lookahead(&self) -> Nanos {
        match self {
            ServePreset::Load(_) => load_path("serve-up").base_latency(),
            ServePreset::Stripe(_) => stripe_wan().base_latency(),
        }
    }
}

/// The pinned serve sweep: a four-rung load ladder climbing through
/// nominal saturation, then a four-rung striping ladder on four-spindle
/// banks (goodput scales 1→2→4 streams, then the disk binds at 8).
pub fn standard_rungs() -> Vec<ServePreset> {
    vec![
        ServePreset::Load(LoadRung {
            rho_permille: 250,
            flows: 400,
        }),
        ServePreset::Load(LoadRung {
            rho_permille: 500,
            flows: 400,
        }),
        ServePreset::Load(LoadRung {
            rho_permille: 850,
            flows: 400,
        }),
        ServePreset::Load(LoadRung {
            rho_permille: 1200,
            flows: 400,
        }),
        ServePreset::Stripe(StripeRung {
            streams: 1,
            spindles: 4,
        }),
        ServePreset::Stripe(StripeRung {
            streams: 2,
            spindles: 4,
        }),
        ServePreset::Stripe(StripeRung {
            streams: 4,
            spindles: 4,
        }),
        ServePreset::Stripe(StripeRung {
            streams: 8,
            spindles: 4,
        }),
    ]
}

/// The client→server access path: a GbE uplink through the pool switch
/// (store-and-forward fixed latency, bounded egress buffer). Per-flow
/// private, so partition safety holds by construction and contention
/// lives where the paper puts it — in the hosts.
fn load_path(name: &'static str) -> Path {
    Path {
        hops: vec![
            Hop::wire(name, Bandwidth::from_gbps(1), Nanos::from_micros(10))
                .with_fixed(Nanos::from_nanos(5_850))
                .with_buffer(512 << 10),
        ],
    }
}

/// The striping ladder's metro WAN hop: 10GbE, 100 µs one-way, shared by
/// every stream of a rung (the two hosts of the pair own the two
/// directions, so a shared link still satisfies the partition rule).
fn stripe_wan() -> Path {
    Path {
        hops: vec![Hop::wire(
            "serve-wan",
            Bandwidth::from_gbps(10),
            Nanos::from_micros(100),
        )
        .with_fixed(Nanos::from_micros(10))
        .with_buffer(16 << 20)],
    }
}

/// Observability configuration for serve runs: 2 ms sampling (dozens of
/// samples per rung), flight-recorder detail effectively off. Always on,
/// so the per-host CPU-saturation series comes from the same run the
/// golden gates (the sampling events themselves are netted out of the
/// reported event counts — see [`run_serve`]).
fn serve_obs() -> ObsConfig {
    ObsConfig {
        sample_interval: Nanos::from_millis(2),
        ring_capacity: 64,
        sample_every: 1 << 20,
    }
}

/// Socket writes needed to carry a sampled flow size (rounded up to
/// whole [`PAYLOAD`] writes; a zero-byte sample still opens one write).
fn writes_for(bytes: u64) -> u64 {
    bytes.div_ceil(PAYLOAD).max(1)
}

/// The open-loop workload of one load rung, and its pre-drawn schedule.
/// All randomness is consumed here, before any engine exists.
fn load_schedule(r: &LoadRung, seed: u64) -> (WorkloadSpec, Vec<FlowPlan>) {
    let sizes = serve_mix();
    let mean_bits = sizes.mean() * 8.0;
    let rate_bps = (r.rho_permille as f64 / 1000.0) * LOAD_CAPACITY_GBPS * 1e9;
    let spec = WorkloadSpec {
        arrivals: ArrivalProcess::Poisson {
            mean_gap: Nanos::from_secs_f64(mean_bits / rate_bps),
        },
        sizes,
        flows: r.flows as u64,
    };
    let mut rng = SimRng::seeded(seed);
    let plans = build_schedule(&spec, &mut rng.fork("serve-load"));
    (spec, plans)
}

/// Build one shard's replica of a serve rung's world (identical
/// construction on every shard, host-round-robin ownership — the same
/// discipline as [`super::grid::build_replica`]).
fn build_replica(
    preset: &ServePreset,
    plans: &[FlowPlan],
    seed: u64,
    shards: usize,
    shard: usize,
) -> GridShard {
    let mut lab = Lab::new();
    let mut rng = SimRng::seeded(seed);
    match preset {
        ServePreset::Load(r) => {
            let clients: Vec<usize> = (0..LOAD_CLIENTS)
                .map(|_| lab.add_host(workstation()))
                .collect();
            let server = lab.add_host(tengbe());
            let up = load_path("serve-up");
            let down = load_path("serve-down");
            debug_assert_eq!(plans.len(), r.flows);
            for (f, plan) in plans.iter().enumerate() {
                let l_up = lab.add_link(&up, rng.fork(&format!("serve-up-{f}")));
                let l_down = lab.add_link(&down, rng.fork(&format!("serve-down-{f}")));
                let count = writes_for(plan.bytes);
                lab.add_flow(
                    clients[f % LOAD_CLIENTS],
                    server,
                    vec![l_up],
                    vec![l_down],
                    App::Nttcp {
                        tx: NttcpSender::new(PAYLOAD, count),
                        rx: NttcpReceiver::new(PAYLOAD * count),
                    },
                );
            }
        }
        ServePreset::Stripe(r) => {
            let a = lab.add_host(tengbe());
            let b = lab.add_host(tengbe());
            lab.attach_disk(a, DiskModel::new(DiskSpec::scsi_2003(), r.spindles));
            lab.attach_disk(b, DiskModel::new(DiskSpec::scsi_2003(), r.spindles));
            let wan = stripe_wan();
            let l_fwd = lab.add_link(&wan, rng.fork("serve-wan-fwd"));
            let l_rev = lab.add_link(&wan, rng.fork("serve-wan-rev"));
            for s in 0..r.streams {
                lab.add_flow(
                    a,
                    b,
                    vec![l_fwd],
                    vec![l_rev],
                    App::DiskPipe(DiskPipe::new(PAYLOAD, STRIPE_COUNT, STRIPE_CHUNK_WRITES, s)),
                );
            }
        }
    }
    let owner: Vec<usize> = (0..lab.hosts.len()).map(|h| h % shards).collect();
    let flows = lab.flows.len();
    lab.enable_grid(GridRt::new(shards, shard, owner, flows));
    lab.enable_obs(&serve_obs(), seed);
    let mut eng = Engine::new();
    eng.event_limit = 2_000_000_000;
    lab::install_default_sanitizer(&mut lab, &mut eng, seed);
    match preset {
        ServePreset::Load(_) => {
            let arrivals: Vec<Nanos> = plans.iter().map(|p| p.at).collect();
            lab::kick_at(&mut lab, &mut eng, &arrivals);
        }
        ServePreset::Stripe(_) => lab::kick(&mut lab, &mut eng),
    }
    GridShard { lab, eng }
}

/// Merged result of one load rung. Every field is shard-count-invariant.
#[derive(Debug, Clone, Copy)]
pub struct LoadResult {
    /// Flows launched (and completed).
    pub flows: u64,
    /// Total events executed, summed over shards.
    pub events: u64,
    /// Payload bytes delivered to the server.
    pub payload_bytes: u64,
    /// Offered load of the arrival process, Gb/s.
    pub offered_gbps: f64,
    /// Achieved goodput over the first-arrival→last-completion window,
    /// Gb/s.
    pub achieved_gbps: f64,
    /// Flow-completion-time p50 (arrival → delivery).
    pub fct_p50: Nanos,
    /// Flow-completion-time p99.
    pub fct_p99: Nanos,
    /// Flow-completion-time p99.9.
    pub fct_p999: Nanos,
    /// Server-host hottest-CPU busy total — the saturation signal.
    pub srv_cpu_busy: Nanos,
    /// Latest flow completion.
    pub last_done: Nanos,
}

/// Merged result of one striping rung. Every field is
/// shard-count-invariant.
#[derive(Debug, Clone, Copy)]
pub struct StripeResult {
    /// Concurrent streams.
    pub streams: u64,
    /// Total events executed, summed over shards.
    pub events: u64,
    /// Payload bytes delivered end to end.
    pub payload_bytes: u64,
    /// Pipeline goodput over first-start→last-*drain* (the destination
    /// disk's final write completion, not mere delivery), Gb/s.
    pub pipeline_gbps: f64,
    /// Earliest stream start.
    pub first_start: Nanos,
    /// Destination disk's final write completion.
    pub last_drain: Nanos,
    /// Source-host disk read-lane busy total.
    pub disk_read_busy: Nanos,
    /// Destination-host disk write-lane busy total.
    pub disk_write_busy: Nanos,
}

/// Merged result of one serve rung.
#[derive(Debug, Clone, Copy)]
pub enum ServeOutcome {
    /// A load rung's FCT/goodput figures.
    Load(LoadResult),
    /// A striping rung's pipeline figures.
    Stripe(StripeResult),
}

/// Run one serve rung as `shards` conservatively synchronized shards and
/// merge the result plus the shard-count-invariant observability
/// timelines. Per-flow values are read from the shard that owns the host
/// that produced them, exactly as in [`super::grid::run_grid`].
pub fn run_serve(preset: &ServePreset, shards: usize, seed: u64) -> (ServeOutcome, Timelines) {
    assert!(shards > 0, "a serve run needs at least one shard");
    let (spec, plans) = match preset {
        ServePreset::Load(r) => load_schedule(r, seed),
        ServePreset::Stripe(_) => (
            WorkloadSpec {
                arrivals: ArrivalProcess::Poisson {
                    mean_gap: Nanos::from_millis(1),
                },
                sizes: serve_mix(),
                flows: 0,
            },
            Vec::new(),
        ),
    };
    let mut replicas: Vec<GridShard> = (0..shards)
        .map(|s| build_replica(preset, &plans, seed, shards, s))
        .collect();
    tengig_sim::run_sharded(&mut replicas, preset.lookahead());
    let mut tl = replicas[0]
        .lab
        .take_timelines()
        .expect("obs is always enabled on serve replicas");
    for shard in &mut replicas[1..] {
        tl.merge(
            &shard
                .lab
                .take_timelines()
                .expect("obs is always enabled on serve replicas"),
        );
    }
    for shard in replicas.iter_mut() {
        lab::check_sanitizer(&shard.lab, &mut shard.eng, true);
    }
    // Workload events only: obs sampling chains run per shard (each
    // re-arms while its own calendar holds events and revives on
    // cross-shard traffic), so raw `executed()` sums are *not*
    // shard-count-invariant once observability is on. Every non-sample
    // event fires on exactly one shard, so netting out the per-kind
    // `ObsSample` fired counter restores the invariant figure the golden
    // gates on.
    let events: u64 = replicas
        .iter()
        .map(|s| s.eng.executed() - s.lab.prof().fired[Ev::ObsSample.prof_idx()])
        .sum();
    let outcome = match preset {
        ServePreset::Load(_) => {
            ServeOutcome::Load(merge_load(&replicas, shards, &spec, &plans, events))
        }
        ServePreset::Stripe(_) => ServeOutcome::Stripe(merge_stripe(&replicas, shards, events)),
    };
    (outcome, tl)
}

/// Fold the per-shard state of a finished load rung into [`LoadResult`].
fn merge_load(
    replicas: &[GridShard],
    shards: usize,
    spec: &WorkloadSpec,
    plans: &[FlowPlan],
    events: u64,
) -> LoadResult {
    let mut fct = FctStats::new();
    let mut payload_bytes = 0u64;
    let mut last_done = Nanos::ZERO;
    let flows = replicas[0].lab.flows.len();
    for (f, plan) in plans.iter().enumerate().take(flows) {
        let rx_owner = replicas[0].lab.flows[f].host[1] % shards;
        let t_done = replicas[rx_owner].lab.flows[f].meas.t_done;
        let t_done = t_done.expect("load flow never finished on its owning shard");
        let bytes = match &replicas[rx_owner].lab.flows[f].app {
            App::Nttcp { rx, .. } => rx.received,
            _ => 0,
        };
        fct.record(plan.at, t_done, bytes);
        payload_bytes += bytes;
        last_done = last_done.max(t_done);
    }
    let server = LOAD_CLIENTS;
    let srv_owner = server % shards;
    LoadResult {
        flows: flows as u64,
        events,
        payload_bytes,
        offered_gbps: spec.offered_bps() / 1e9,
        achieved_gbps: fct.achieved_bps() / 1e9,
        fct_p50: Nanos::from_nanos(fct.fct_permille(500)),
        fct_p99: Nanos::from_nanos(fct.fct_permille(990)),
        fct_p999: Nanos::from_nanos(fct.fct_permille(999)),
        srv_cpu_busy: replicas[srv_owner].lab.hosts[server].hottest_cpu_busy_total(),
        last_done,
    }
}

/// Fold the per-shard state of a finished striping rung into
/// [`StripeResult`].
fn merge_stripe(replicas: &[GridShard], shards: usize, events: u64) -> StripeResult {
    let flows = replicas[0].lab.flows.len();
    let mut payload_bytes = 0u64;
    let mut first_start: Option<Nanos> = None;
    let mut last_drain = Nanos::ZERO;
    for f in 0..flows {
        let tx_owner = replicas[0].lab.flows[f].host[0] % shards;
        let rx_owner = replicas[0].lab.flows[f].host[1] % shards;
        let t_start = replicas[tx_owner].lab.flows[f].meas.t_start;
        let t_start = t_start.expect("stripe stream never started on its owning shard");
        first_start = Some(first_start.map_or(t_start, |t| t.min(t_start)));
        if let App::DiskPipe(dp) = &replicas[rx_owner].lab.flows[f].app {
            payload_bytes += dp.rx.received;
            last_drain = last_drain.max(dp.drain_done());
        }
    }
    let first_start = first_start.expect("stripe rungs always carry streams");
    let src = replicas[0].lab.flows[0].host[0];
    let dst = replicas[0].lab.flows[0].host[1];
    let src_disk = replicas[src % shards].lab.hosts[src]
        .disk
        .as_ref()
        .expect("stripe source host has a disk bank");
    let dst_disk = replicas[dst % shards].lab.hosts[dst]
        .disk
        .as_ref()
        .expect("stripe destination host has a disk bank");
    StripeResult {
        streams: flows as u64,
        events,
        payload_bytes,
        pipeline_gbps: rate_of(payload_bytes, last_drain.saturating_sub(first_start)).gbps(),
        first_start,
        last_drain,
        disk_read_busy: src_disk.read_busy_total(),
        disk_write_busy: dst_disk.write_busy_total(),
    }
}

/// Render only the per-host CPU-saturation series of a merged timeline —
/// the obs sidecar the serve family ships. (The full timelines carry
/// per-flow TCP series for every launched flow; the sidecar keeps the
/// host saturation signal compact.)
pub fn cpu_series_jsonl(tl: &Timelines) -> String {
    let mut out = Timelines::new(tl.interval);
    for (&(scope, metric), series) in tl.iter() {
        if matches!(scope, Scope::Host { .. }) && metric == MetricKind::CpuBusyNanos {
            for &(t, v) in series.points() {
                out.record(scope, metric, t, v);
            }
        }
    }
    out.to_jsonl()
}

/// Sweep the serve rungs on the deterministic [`SweepRunner`] with each
/// scenario executed as `shards` shards. Returns per-rung outcomes, the
/// machine-readable report whose JSONL bytes `goldens/serve.jsonl` pins
/// across shard counts {1, 2, 4} and sweep thread counts {1, 4}, and the
/// (ungated) per-host CPU-saturation sidecar.
pub fn serve_sweep_report(
    presets: &[ServePreset],
    shards: usize,
    master_seed: u64,
    runner: SweepRunner,
) -> (Vec<ServeOutcome>, SweepReport, MetricsSidecar) {
    let sv = scenarios(master_seed, presets.iter().copied(), |p| p.label());
    let results = runner
        .run(&sv, |sc| run_serve(&sc.input, shards, sc.seed))
        .expect("serve sweep scenario panicked");
    let mut report = SweepReport::new("serve/openloop", master_seed);
    let mut sidecar = MetricsSidecar::new("serve/cpu");
    let mut outcomes = Vec::with_capacity(results.len());
    for (sc, (outcome, tl)) in sv.iter().zip(results) {
        let values = match &outcome {
            ServeOutcome::Load(r) => vec![
                ("flows".to_string(), Json::U64(r.flows)),
                ("events".to_string(), Json::U64(r.events)),
                ("payload_bytes".to_string(), Json::U64(r.payload_bytes)),
                ("offered_gbps".to_string(), Json::F64(r.offered_gbps)),
                ("achieved_gbps".to_string(), Json::F64(r.achieved_gbps)),
                ("fct_p50_ns".to_string(), Json::U64(r.fct_p50.as_nanos())),
                ("fct_p99_ns".to_string(), Json::U64(r.fct_p99.as_nanos())),
                ("fct_p999_ns".to_string(), Json::U64(r.fct_p999.as_nanos())),
                (
                    "srv_cpu_busy_ns".to_string(),
                    Json::U64(r.srv_cpu_busy.as_nanos()),
                ),
            ],
            ServeOutcome::Stripe(r) => vec![
                ("streams".to_string(), Json::U64(r.streams)),
                ("events".to_string(), Json::U64(r.events)),
                ("payload_bytes".to_string(), Json::U64(r.payload_bytes)),
                ("pipeline_gbps".to_string(), Json::F64(r.pipeline_gbps)),
                (
                    "first_start_ns".to_string(),
                    Json::U64(r.first_start.as_nanos()),
                ),
                (
                    "last_drain_ns".to_string(),
                    Json::U64(r.last_drain.as_nanos()),
                ),
                (
                    "disk_read_busy_ns".to_string(),
                    Json::U64(r.disk_read_busy.as_nanos()),
                ),
                (
                    "disk_write_busy_ns".to_string(),
                    Json::U64(r.disk_write_busy.as_nanos()),
                ),
            ],
        };
        report.push_row(sc.index, sc.label.clone(), sc.seed, values);
        sidecar.push(sc.index, sc.label.clone(), cpu_series_jsonl(&tl));
        outcomes.push(outcome);
    }
    (outcomes, report, sidecar)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load_rung(rho_permille: u64) -> ServePreset {
        ServePreset::Load(LoadRung {
            rho_permille,
            flows: 120,
        })
    }

    #[test]
    fn load_ladder_fct_tail_worsens_toward_saturation() {
        let rungs = [load_rung(250), load_rung(850), load_rung(1500)];
        let results: Vec<LoadResult> = rungs
            .iter()
            .map(|p| match run_serve(p, 1, 2003).0 {
                ServeOutcome::Load(r) => r,
                ServeOutcome::Stripe(_) => unreachable!("load rung produced a stripe result"),
            })
            .collect();
        for r in &results {
            assert_eq!(r.flows, 120);
            assert!(r.payload_bytes > 0);
            assert!(r.fct_p50 <= r.fct_p99 && r.fct_p99 <= r.fct_p999);
        }
        for pair in results.windows(2) {
            assert!(
                pair[1].fct_p99 >= pair[0].fct_p99,
                "p99 must not improve as offered load rises: {:?} then {:?}",
                pair[0].fct_p99,
                pair[1].fct_p99
            );
        }
        assert!(
            results[2].fct_p99 > results[0].fct_p99,
            "p99 must strictly worsen across the ladder: {:?} vs {:?}",
            results[0].fct_p99,
            results[2].fct_p99
        );
    }

    #[test]
    fn stripe_goodput_rises_until_the_disk_binds() {
        let rungs = [
            ServePreset::Stripe(StripeRung {
                streams: 1,
                spindles: 2,
            }),
            ServePreset::Stripe(StripeRung {
                streams: 2,
                spindles: 2,
            }),
            ServePreset::Stripe(StripeRung {
                streams: 4,
                spindles: 2,
            }),
        ];
        let results: Vec<StripeResult> = rungs
            .iter()
            .map(|p| match run_serve(p, 1, 7).0 {
                ServeOutcome::Stripe(r) => r,
                ServeOutcome::Load(_) => unreachable!("stripe rung produced a load result"),
            })
            .collect();
        assert!(
            results[1].pipeline_gbps > results[0].pipeline_gbps * 1.2,
            "a second spindle must raise goodput: {} then {}",
            results[0].pipeline_gbps,
            results[1].pipeline_gbps
        );
        assert!(
            results[2].pipeline_gbps < results[1].pipeline_gbps * 1.15,
            "both spindles busy: more streams must not scale further: {} then {}",
            results[1].pipeline_gbps,
            results[2].pipeline_gbps
        );
        for r in &results {
            assert!(r.last_drain > r.first_start);
            assert!(r.disk_read_busy > Nanos::ZERO && r.disk_write_busy > Nanos::ZERO);
            assert_eq!(r.payload_bytes, r.streams * STRIPE_COUNT * PAYLOAD);
        }
    }

    #[test]
    fn serve_results_are_shard_count_invariant() {
        for preset in [
            load_rung(900),
            ServePreset::Stripe(StripeRung {
                streams: 2,
                spindles: 2,
            }),
        ] {
            let (one, tl_one) = run_serve(&preset, 1, 11);
            let (two, tl_two) = run_serve(&preset, 2, 11);
            match (one, two) {
                (ServeOutcome::Load(a), ServeOutcome::Load(b)) => {
                    assert_eq!(a.events, b.events);
                    assert_eq!(a.payload_bytes, b.payload_bytes);
                    assert_eq!(a.fct_p99, b.fct_p99);
                    assert_eq!(a.srv_cpu_busy, b.srv_cpu_busy);
                }
                (ServeOutcome::Stripe(a), ServeOutcome::Stripe(b)) => {
                    assert_eq!(a.events, b.events);
                    assert_eq!(a.payload_bytes, b.payload_bytes);
                    assert_eq!(a.last_drain, b.last_drain);
                    assert_eq!(a.disk_read_busy, b.disk_read_busy);
                }
                _ => unreachable!("preset changed family between runs"),
            }
            assert_eq!(
                cpu_series_jsonl(&tl_one),
                cpu_series_jsonl(&tl_two),
                "CPU sidecar must be shard-count-invariant"
            );
        }
    }

    #[test]
    fn serve_report_carries_every_rung_and_cpu_sidecar() {
        let presets = [
            load_rung(500),
            ServePreset::Stripe(StripeRung {
                streams: 1,
                spindles: 1,
            }),
        ];
        let (outcomes, report, sidecar) =
            serve_sweep_report(&presets, 1, 2003, SweepRunner::new(2));
        assert_eq!(outcomes.len(), 2);
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains("\"sweep\":\"serve/openloop\""));
        assert!(jsonl.contains("load/rho0500") && jsonl.contains("stripe/1x1sp"));
        assert_eq!(sidecar.len(), 2);
        assert!(
            sidecar.concatenated().contains("cpu_busy_ns"),
            "sidecar must carry the host CPU-saturation series"
        );
    }
}
