//! The §5 projection: an OS-bypass protocol (RDMA over IP / RDDP) on the
//! same 10GbE hardware.
//!
//! "The authors' past experience with Myrinet and Quadrics leads them to
//! believe that an OS-bypass protocol, like RDMA over IP, implemented over
//! 10GbE would result in throughput approaching 8 Gb/s, end-to-end
//! latencies below 10 µs, and a CPU load approaching zero."
//!
//! The laboratory realizes the projection: direct data placement removes
//! the kernel stack traversals and both copies from the data path, an
//! onboard network processor handles the protocol, and the host's only
//! involvement is posting descriptors. What remains is the hardware: the
//! PCI-X bus (with a leaner, pipelined descriptor engine such an adapter
//! would carry) and the wire.

use crate::config::HostConfig;
use crate::experiments::b2b_lab;
use crate::lab::{self, App};
use crate::report::{Json, SweepReport};
use crate::sweep::{scenarios, SweepRunner};
use tengig_ethernet::Mtu;
use tengig_sim::{rate_of, Bandwidth, Nanos};
use tengig_tools::Pktgen;

/// Per-descriptor PCI-X overhead of an RDMA-capable adapter: descriptors
/// are prefetched and completions batched, unlike the first-generation
/// 82597EX's per-packet doorbell/writeback cycle.
pub const RDMA_PKT_OVERHEAD: Nanos = Nanos::from_nanos(500);

/// Result of the OS-bypass projection.
#[derive(Debug, Clone, Copy)]
pub struct OsBypassResult {
    /// Unidirectional data throughput.
    pub gbps: f64,
    /// One-way small-message latency.
    pub latency: Nanos,
    /// Host CPU load during the transfer.
    pub cpu_load: f64,
}

/// The projected host: a WAN-class Xeon box whose adapter carries the
/// protocol engine.
fn rdma_host(mtu: Mtu) -> HostConfig {
    let mut cfg = HostConfig {
        hw: tengig_hw::HostSpec::wan_endpoint(),
        nic: tengig_nic::NicSpec::intel_pro_10gbe(),
        sysctls: tengig_tcp::Sysctls::linux24_defaults().with_mtu(mtu),
    };
    cfg.hw.pci.packet_overhead = RDMA_PKT_OVERHEAD;
    cfg.hw.pci.burst_overhead = Nanos::from_nanos(400);
    // The host never touches payload: no coalescing wait needed either —
    // completions are polled by the (tiny) user-space library.
    cfg.nic = cfg.nic.with_coalescing(Nanos::ZERO);
    cfg
}

/// Run the throughput projection: a zero-copy, kernel-bypass stream of
/// MTU-sized transfers (modeled on the pktgen path — single DMA, no
/// copies — which is exactly what direct data placement leaves).
pub fn throughput(mtu: Mtu, count: u64) -> OsBypassResult {
    throughput_seeded(mtu, count, 5)
}

/// [`throughput`] with an explicit RNG seed (used by the sweep runner's
/// per-scenario seeding).
pub fn throughput_seeded(mtu: Mtu, count: u64, seed: u64) -> OsBypassResult {
    let cfg = rdma_host(mtu);
    let payload = tengig_tcp::Datagram::max_payload(mtu.get());
    let (mut lab, mut eng) = b2b_lab(cfg, App::Pktgen(Pktgen::new(payload, count)), seed);
    crate::experiments::run_to_completion(&mut lab, &mut eng);
    let App::Pktgen(pg) = &lab.flows[0].app else {
        unreachable!()
    };
    OsBypassResult {
        gbps: pg.throughput().gbps(),
        latency: latency(mtu),
        cpu_load: lab::cpu_load(&lab, 0, 0),
    }
}

/// One-way small-message latency of the bypass path: descriptor post →
/// PCI-X → wire → PCI-X → polled completion. No syscall, no interrupt, no
/// stack, no copy.
pub fn latency(mtu: Mtu) -> Nanos {
    let cfg = rdma_host(mtu);
    let post = Nanos::from_nanos(300); // user-space descriptor write
    let poll = Nanos::from_nanos(300); // completion-queue poll hit
    let small = 64u64;
    let pci = cfg.hw.pci.packet_transfer_time(small);
    let wire = cfg.nic.serialize_time(Mtu::wire_bytes_for(small)) + Nanos::from_nanos(50);
    post + pci + wire + pci + poll
}

/// The sustained rate the bus-level math supports (for cross-checking the
/// simulation).
pub fn bus_ceiling(mtu: Mtu) -> Bandwidth {
    let cfg = rdma_host(mtu);
    let frame = mtu.get() + 18;
    rate_of(
        tengig_tcp::Datagram::max_payload(mtu.get()),
        cfg.hw.pci.packet_transfer_time(frame),
    )
}

/// Sweep the OS-bypass projection over MTUs on the deterministic sweep
/// runner. Returns the per-point results plus the machine-readable
/// [`SweepReport`].
pub fn mtu_sweep_report(
    mtus: &[Mtu],
    count: u64,
    master_seed: u64,
    runner: SweepRunner,
) -> (Vec<OsBypassResult>, SweepReport) {
    let grid = scenarios(master_seed, mtus.iter().copied(), |m| {
        format!("mtu={}", m.get())
    });
    let results = runner
        .run(&grid, |sc| throughput_seeded(sc.input, count, sc.seed))
        .expect("osbypass sweep scenario panicked");
    let mut report = SweepReport::new("osbypass/mtu_sweep", master_seed);
    for (sc, r) in grid.iter().zip(&results) {
        report.push_row(
            sc.index,
            sc.label.clone(),
            sc.seed,
            vec![
                ("mtu".to_string(), Json::U64(sc.input.get())),
                ("gbps".to_string(), Json::F64(r.gbps)),
                (
                    "latency_us".to_string(),
                    Json::F64(r.latency.as_micros_f64()),
                ),
                ("cpu_load".to_string(), Json::F64(r.cpu_load)),
            ],
        );
    }
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_approaches_8_gbps() {
        // §5's claim, at the adapter's largest MTU.
        let r = throughput(Mtu::MAX_INTEL_16000, 3_000);
        assert!(
            r.gbps > 6.5,
            "OS-bypass throughput {} should approach 8 Gb/s",
            r.gbps
        );
        assert!(r.gbps < 10.0);
        // And it comfortably beats the best TCP number (4.11).
        assert!(r.gbps > 4.5);
    }

    #[test]
    fn latency_below_10us() {
        let l = latency(Mtu::JUMBO_9000);
        assert!(
            l < Nanos::from_micros(10),
            "OS-bypass one-way latency {} must be below 10 µs",
            l
        );
        assert!(l > Nanos::from_micros(1), "but not magic: {l}");
    }

    #[test]
    fn cpu_load_approaches_zero() {
        let r = throughput(Mtu::JUMBO_9000, 3_000);
        assert!(
            r.cpu_load < 0.2,
            "OS-bypass CPU load {} should approach zero",
            r.cpu_load
        );
    }

    #[test]
    fn bus_math_agrees_with_simulation() {
        let sim = throughput(Mtu::JUMBO_9000, 3_000).gbps;
        let ceiling = bus_ceiling(Mtu::JUMBO_9000).gbps();
        assert!(
            (sim / ceiling - 1.0).abs() < 0.15,
            "sim {sim} vs analytic ceiling {ceiling}"
        );
    }
}
