//! Multi-flow aggregation through the switch (Fig. 2c, §3.5.2): many GbE
//! hosts against one 10GbE host, in either direction, plus the Itanium-II
//! aggregation anecdote of §3.4.

use crate::config::HostConfig;
use crate::lab::{self, App, Lab};
use crate::report::{Json, SweepReport};
use crate::sweep::{scenarios, SweepRunner};
use tengig_net::{Hop, Path};
use tengig_nic::NicSpec;
use tengig_sim::{rate_of, Bandwidth, Engine, Nanos, SimRng};
use tengig_tcp::Sysctls;
use tengig_tools::{NttcpReceiver, NttcpSender};

/// Data direction relative to the 10GbE host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// GbE senders → 10GbE receiver (receive-path stress).
    IntoTenGbe,
    /// 10GbE sender → GbE receivers (transmit-path stress).
    OutOfTenGbe,
}

/// Result of a multi-flow aggregation run.
#[derive(Debug, Clone, Copy)]
pub struct MultiflowResult {
    /// Number of GbE peers.
    pub peers: usize,
    /// Aggregate payload throughput at the 10GbE host, Gb/s.
    pub aggregate_gbps: f64,
    /// CPU load on the 10GbE host.
    pub tengbe_cpu_load: f64,
    /// Engine events executed over the whole run (warmup + window); feeds
    /// the wall-clock benchmark's events/sec figure.
    pub events: u64,
    /// Payload bytes delivered within the measurement window.
    pub window_bytes: u64,
}

/// The GbE peer configuration: a workstation with an e1000.
fn gbe_peer() -> HostConfig {
    HostConfig {
        hw: tengig_hw::HostSpec::gbe_workstation(),
        nic: NicSpec::e1000_gbe(),
        sysctls: Sysctls::linux24_defaults()
            .with_buffers(256 * 1024)
            .with_mtu(tengig_ethernet::Mtu::JUMBO_9000),
    }
}

/// Run `peers` GbE hosts against one 10GbE host through the FastIron, for
/// a measurement window after warmup. Payloads are full GbE-MTU segments.
pub fn aggregate(
    tengbe: HostConfig,
    peers: usize,
    dir: Direction,
    warmup: Nanos,
    window: Nanos,
) -> MultiflowResult {
    aggregate_seeded(tengbe, peers, dir, warmup, window, 99)
}

/// [`aggregate`] with an explicit RNG seed (used by the sweep runner's
/// per-scenario seeding).
pub fn aggregate_seeded(
    tengbe: HostConfig,
    peers: usize,
    dir: Direction,
    warmup: Nanos,
    window: Nanos,
    seed: u64,
) -> MultiflowResult {
    let mut lab = Lab::new();
    let big = lab.add_host(tengbe);
    let mut rng = SimRng::seeded(seed);
    let line10 = Bandwidth::from_gbps(10);
    let line1 = Bandwidth::from_gbps(1);
    let sw_latency = Nanos::from_nanos(5_850);

    // Shared 10GbE egress toward the big host (the aggregation point) and
    // its shared ingress in the other direction.
    let to_big = lab.add_link(
        &Path {
            hops: vec![Hop::wire("sw-to-10g", line10, Nanos::from_nanos(50))
                .with_fixed(sw_latency)
                .with_buffer(2 << 20)],
        },
        rng.fork("to-big"),
    );
    let from_big = lab.add_link(
        &Path {
            hops: vec![Hop::wire("10g-to-sw", line10, Nanos::from_nanos(50))],
        },
        rng.fork("from-big"),
    );

    let payload = 8948u64; // jumbo frames end-to-end (both MTUs support it)
                           // A long-enough run to span the window at full rate.
    let budget = Bandwidth::from_gbps(11).bytes_in(warmup + window + window);
    let count = budget / payload / peers as u64;

    for p in 0..peers {
        let peer = lab.add_host(gbe_peer());
        // Per-peer GbE access link into / out of the switch.
        let access_in = lab.add_link(
            &Path {
                hops: vec![Hop::wire("gbe-access", line1, Nanos::from_nanos(100))],
            },
            rng.fork(&format!("acc-in-{p}")),
        );
        let access_out = lab.add_link(
            &Path {
                hops: vec![Hop::wire("sw-to-gbe", line1, Nanos::from_nanos(100))
                    .with_fixed(sw_latency)
                    .with_buffer(1 << 20)],
            },
            rng.fork(&format!("acc-out-{p}")),
        );
        let app = App::Nttcp {
            tx: NttcpSender::new(payload, count),
            rx: NttcpReceiver::new(payload * count),
        };
        match dir {
            Direction::IntoTenGbe => {
                // peer → switch (access) → shared 10GbE egress → big host.
                lab.add_flow(
                    peer,
                    big,
                    vec![access_in, to_big],
                    vec![from_big, access_out],
                    app,
                );
            }
            Direction::OutOfTenGbe => {
                // big host → switch → per-peer GbE egress.
                lab.add_flow(
                    big,
                    peer,
                    vec![from_big, access_out],
                    vec![access_in, to_big],
                    app,
                );
            }
        }
    }

    let mut eng = Engine::new();
    eng.event_limit = 2_000_000_000;
    lab::install_default_sanitizer(&mut lab, &mut eng, seed);
    lab::kick(&mut lab, &mut eng);
    // advance_to: the CPU-load and rate math below divide by the window, so
    // the clock must sit exactly on its edges.
    eng.advance_to(&mut lab, warmup);
    let received = |lab: &Lab| -> u64 {
        lab.flows
            .iter()
            .map(|f| match &f.app {
                App::Nttcp { rx, .. } => rx.received,
                _ => 0,
            })
            .sum()
    };
    let b0 = received(&lab);
    let busy0 = lab.hosts[big].hottest_cpu_busy(warmup);
    eng.advance_to(&mut lab, warmup + window);
    // Windowed run: frames are still in flight, so no drain check.
    lab::check_sanitizer(&lab, &mut eng, false);
    let b1 = received(&lab);
    let busy1 = lab.hosts[big].hottest_cpu_busy(warmup + window);
    MultiflowResult {
        peers,
        aggregate_gbps: rate_of(b1 - b0, window).gbps(),
        tengbe_cpu_load: (busy1.saturating_sub(busy0)).as_nanos() as f64 / window.as_nanos() as f64,
        events: eng.executed(),
        window_bytes: b1 - b0,
    }
}

/// Sweep aggregation over peer counts on the deterministic sweep runner.
/// Returns the per-point results (in grid order) plus the machine-readable
/// [`SweepReport`].
pub fn peer_sweep_report(
    tengbe: HostConfig,
    peer_counts: &[usize],
    dir: Direction,
    warmup: Nanos,
    window: Nanos,
    master_seed: u64,
    runner: SweepRunner,
) -> (Vec<MultiflowResult>, SweepReport) {
    let name = match dir {
        Direction::IntoTenGbe => "multiflow/into_10gbe",
        Direction::OutOfTenGbe => "multiflow/out_of_10gbe",
    };
    let grid = scenarios(master_seed, peer_counts.iter().copied(), |n| {
        format!("peers={n}")
    });
    let results = runner
        .run(&grid, |sc| {
            aggregate_seeded(tengbe, sc.input, dir, warmup, window, sc.seed)
        })
        .expect("multiflow sweep scenario panicked");
    let mut report = SweepReport::new(name, master_seed);
    for (sc, r) in grid.iter().zip(&results) {
        report.push_row(
            sc.index,
            sc.label.clone(),
            sc.seed,
            vec![
                ("peers".to_string(), Json::U64(r.peers as u64)),
                ("aggregate_gbps".to_string(), Json::F64(r.aggregate_gbps)),
                ("tengbe_cpu_load".to_string(), Json::F64(r.tengbe_cpu_load)),
            ],
        );
    }
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LadderRung;
    use tengig_ethernet::Mtu;

    fn tengbe() -> HostConfig {
        LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000)
    }

    #[test]
    fn aggregation_scales_with_senders() {
        let w = Nanos::from_millis(30);
        let one = aggregate(tengbe(), 1, Direction::IntoTenGbe, w, w);
        let four = aggregate(tengbe(), 4, Direction::IntoTenGbe, w, w);
        assert!(
            one.aggregate_gbps < 1.0,
            "one GbE sender caps at ~0.95: {}",
            one.aggregate_gbps
        );
        assert!(
            four.aggregate_gbps > one.aggregate_gbps * 2.5,
            "4 senders {} vs 1 sender {}",
            four.aggregate_gbps,
            one.aggregate_gbps
        );
    }

    #[test]
    fn tx_and_rx_paths_statistically_equal() {
        // §3.5.2: "These results unexpectedly show that the transmit and
        // receive paths are of statistically equal performance."
        let w = Nanos::from_millis(30);
        let rx = aggregate(tengbe(), 3, Direction::IntoTenGbe, w, w);
        let tx = aggregate(tengbe(), 3, Direction::OutOfTenGbe, w, w);
        let ratio = rx.aggregate_gbps / tx.aggregate_gbps;
        assert!((0.75..1.35).contains(&ratio), "rx/tx ratio {ratio}");
    }
}
