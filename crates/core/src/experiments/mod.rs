//! Experiment runners: one function per paper figure/table scenario.
//!
//! Each runner builds a topology, drives it to completion (or through a
//! measurement window), and returns the measured quantities. Sweeps
//! enumerate their parameter grids as [`crate::sweep::Scenario`] data and
//! delegate execution to the [`crate::sweep::SweepRunner`], so every point
//! is an independent, deterministically-seeded simulation and the sweep's
//! result is identical at any thread count.

pub mod anecdotal;
pub mod faults;
pub mod grid;
pub mod latency;
pub mod multiflow;
pub mod osbypass;
pub mod serve;
pub mod throughput;
pub mod wan;

use crate::config::HostConfig;
use crate::lab::{App, Lab, LabEngine};
use tengig_net::{Hop, Path};
use tengig_sim::{Bandwidth, Engine, Nanos, SimRng};

/// Crossover-cable one-way propagation (a few meters of fiber).
pub const XOVER_PROP: Nanos = Nanos::from_nanos(50);

/// Build a back-to-back two-host lab (Fig. 2a) and one flow with `app`.
pub fn b2b_lab(cfg: HostConfig, app: App, seed: u64) -> (Lab, LabEngine) {
    two_host_lab(cfg, cfg, app, seed, false)
}

/// Build a two-host lab, optionally through the FastIron switch (Fig. 2b).
pub fn two_host_lab(
    cfg_a: HostConfig,
    cfg_b: HostConfig,
    app: App,
    seed: u64,
    through_switch: bool,
) -> (Lab, LabEngine) {
    let mut lab = Lab::new();
    let a = lab.add_host(cfg_a);
    let b = lab.add_host(cfg_b);
    let mut rng = SimRng::seeded(seed);
    let line = Bandwidth::from_gbps(10);
    let path = if through_switch {
        Path {
            hops: vec![
                Hop::wire("host-sw", line, XOVER_PROP),
                // Store-and-forward egress with the FastIron's fixed
                // forwarding latency and a 2 MiB egress buffer.
                Hop::wire("sw-egress", line, XOVER_PROP)
                    .with_fixed(Nanos::from_nanos(5_850))
                    .with_buffer(2 << 20),
            ],
        }
    } else {
        Path {
            hops: vec![Hop::wire("xover", line, XOVER_PROP)],
        }
    };
    let l_ab = lab.add_link(&path, rng.fork("ab"));
    let l_ba = lab.add_link(&path, rng.fork("ba"));
    lab.add_flow(a, b, vec![l_ab], vec![l_ba], app);
    let mut eng = Engine::new();
    eng.event_limit = 2_000_000_000;
    crate::lab::install_default_sanitizer(&mut lab, &mut eng, seed);
    (lab, eng)
}

/// Run a lab to completion after kicking all flows.
///
/// With a sanitizer installed, the fully drained calendar lets the byte
/// ledger demand zero in-flight bytes; any violation panics with the seed
/// in the message (the sweep runner attaches the scenario index and label).
pub fn run_to_completion(lab: &mut Lab, eng: &mut LabEngine) {
    crate::lab::kick(lab, eng);
    eng.run(lab);
    debug_assert!(lab.all_done(), "a flow failed to complete");
    crate::lab::check_sanitizer(lab, eng, true);
}
