//! NTTCP throughput experiments: Figs. 3-5, the §3.3 optimization ladder,
//! the §3.4 anecdotal hosts, and the §3.5.2 packet generator.

use super::{b2b_lab, run_to_completion};
use crate::config::{HostConfig, LadderRung};
use crate::lab::{self, App};
use crate::report::{Json, SweepReport};
use crate::sweep::{scenarios, SweepRunner};
use tengig_ethernet::Mtu;
use tengig_sim::stats::Series;
use tengig_sim::{rate_of, Nanos};
use tengig_tools::{NttcpReceiver, NttcpResult, NttcpSender, Pktgen};

/// Default packet count per sweep point. The paper uses 32,768; sweeps
/// converge well before that, so callers may reduce it for quick runs.
pub const DEFAULT_COUNT: u64 = 32_768;

/// Default master seed for the paper sweeps (the publication year).
/// Every scenario's seed derives from this and its grid index.
pub const MASTER_SEED: u64 = 2003;

/// Run a single NTTCP point back-to-back.
pub fn nttcp_point(cfg: HostConfig, payload: u64, count: u64, seed: u64) -> NttcpResult {
    let app = App::Nttcp {
        tx: NttcpSender::new(payload, count),
        rx: NttcpReceiver::new(payload * count),
    };
    let (mut lab, mut eng) = b2b_lab(cfg, app, seed);
    run_to_completion(&mut lab, &mut eng);
    let flow = &lab.flows[0];
    let App::Nttcp { tx, rx } = &flow.app else {
        unreachable!()
    };
    NttcpResult::from_run(tx, rx, lab::cpu_load(&lab, 0, 0), lab::cpu_load(&lab, 0, 1))
        .expect("run completed")
}

/// [`nttcp_point`] with the observability layer enabled: identical
/// simulation (sampling is strictly read-only), plus the run's metrics
/// timelines.
pub fn nttcp_point_obs(
    cfg: HostConfig,
    payload: u64,
    count: u64,
    seed: u64,
    obs: &tengig_sim::ObsConfig,
) -> (NttcpResult, tengig_sim::Timelines) {
    let app = App::Nttcp {
        tx: NttcpSender::new(payload, count),
        rx: NttcpReceiver::new(payload * count),
    };
    let (mut lab, mut eng) = b2b_lab(cfg, app, seed);
    lab.enable_obs(obs, seed);
    run_to_completion(&mut lab, &mut eng);
    let timelines = lab.take_timelines().expect("obs was enabled");
    let flow = &lab.flows[0];
    let App::Nttcp { tx, rx } = &flow.app else {
        unreachable!()
    };
    let result =
        NttcpResult::from_run(tx, rx, lab::cpu_load(&lab, 0, 0), lab::cpu_load(&lab, 0, 1))
            .expect("run completed");
    (result, timelines)
}

/// Sweep NTTCP throughput over payload sizes on the deterministic sweep
/// runner (one simulation per scenario, fanned across worker threads).
/// Returns a figure series labeled like the paper's legends, plus the
/// machine-readable [`SweepReport`].
///
/// The result is a pure function of `(cfg, payloads, count, master_seed)`
/// — the runner's thread count cannot change a byte of it.
pub fn throughput_sweep_report(
    cfg: HostConfig,
    label: impl Into<String>,
    payloads: &[u64],
    count: u64,
    master_seed: u64,
    runner: SweepRunner,
) -> (Series, SweepReport) {
    let label = label.into();
    let grid = scenarios(master_seed, payloads.iter().copied(), |p| {
        format!("{label}/payload={p}")
    });
    let results = runner
        .run(&grid, |sc| nttcp_point(cfg, sc.input, count, sc.seed))
        .expect("throughput sweep scenario panicked");
    let mut series = Series::new(label.clone());
    let mut report = SweepReport::new(label, master_seed);
    for (sc, r) in grid.iter().zip(&results) {
        let mbps = r.throughput.gbps() * 1000.0;
        series.push(sc.input as f64, mbps);
        report.push_row(
            sc.index,
            sc.label.clone(),
            sc.seed,
            vec![
                ("payload".to_string(), Json::U64(sc.input)),
                ("mbps".to_string(), Json::F64(mbps)),
                ("rx_cpu_load".to_string(), Json::F64(r.rx_cpu_load)),
                ("tx_cpu_load".to_string(), Json::F64(r.tx_cpu_load)),
            ],
        );
    }
    (series, report)
}

/// [`throughput_sweep_report`] with the metrics side-channel: every
/// scenario additionally records its timelines, returned as a
/// [`crate::report::MetricsSidecar`] alongside — and never inside — the
/// primary report, whose bytes are identical to the obs-disabled sweep's.
///
/// Like the primary report, the sidecar is a pure function of the
/// arguments: the runner's thread count cannot change a byte of it.
pub fn throughput_sweep_with_metrics(
    cfg: HostConfig,
    label: impl Into<String>,
    payloads: &[u64],
    count: u64,
    master_seed: u64,
    runner: SweepRunner,
    obs: &tengig_sim::ObsConfig,
) -> (Series, SweepReport, crate::report::MetricsSidecar) {
    let label = label.into();
    let grid = scenarios(master_seed, payloads.iter().copied(), |p| {
        format!("{label}/payload={p}")
    });
    let (results, timelines) = runner
        .run_split(&grid, |sc| {
            let (r, tl) = nttcp_point_obs(cfg, sc.input, count, sc.seed, obs);
            (r, tl.to_jsonl())
        })
        .expect("throughput sweep scenario panicked");
    let mut series = Series::new(label.clone());
    let mut report = SweepReport::new(label.clone(), master_seed);
    let mut sidecar = crate::report::MetricsSidecar::new(label);
    for ((sc, r), tl) in grid.iter().zip(&results).zip(timelines) {
        let mbps = r.throughput.gbps() * 1000.0;
        series.push(sc.input as f64, mbps);
        report.push_row(
            sc.index,
            sc.label.clone(),
            sc.seed,
            vec![
                ("payload".to_string(), Json::U64(sc.input)),
                ("mbps".to_string(), Json::F64(mbps)),
                ("rx_cpu_load".to_string(), Json::F64(r.rx_cpu_load)),
                ("tx_cpu_load".to_string(), Json::F64(r.tx_cpu_load)),
            ],
        );
        sidecar.push(sc.index, sc.label.clone(), tl);
    }
    (series, report, sidecar)
}

/// Sweep NTTCP throughput over payload sizes, in parallel. Returns a
/// figure series labeled like the paper's legends. Sweep points are sorted
/// by payload because the grid is enumerated that way, not because the
/// results are sorted after the fact.
pub fn throughput_sweep(
    cfg: HostConfig,
    label: impl Into<String>,
    payloads: &[u64],
    count: u64,
) -> Series {
    let mut payloads: Vec<u64> = payloads.to_vec();
    payloads.sort_unstable();
    throughput_sweep_report(
        cfg,
        label,
        &payloads,
        count,
        MASTER_SEED,
        SweepRunner::default(),
    )
    .0
}

/// One rung of the §3.3 ladder, measured.
#[derive(Debug, Clone)]
pub struct LadderResult {
    /// The rung.
    pub rung: LadderRung,
    /// Legend-style label.
    pub label: String,
    /// Peak throughput over the sweep (Mb/s).
    pub peak_mbps: f64,
    /// Mean throughput over the sweep (Mb/s).
    pub mean_mbps: f64,
    /// Receiver CPU load at the full-MSS point.
    pub rx_cpu_load: f64,
    /// Sender CPU load at the full-MSS point.
    pub tx_cpu_load: f64,
}

/// Run the full optimization ladder at one base MTU with a reduced sweep
/// (the peaks live near the MSS, so a coarse sweep finds them).
pub fn ladder(mtu: Mtu, payloads: &[u64], count: u64) -> Vec<LadderResult> {
    LadderRung::ALL
        .iter()
        .map(|&rung| {
            let cfg = rung.pe2650_config(mtu);
            let label = rung.label(mtu);
            let series = throughput_sweep(cfg, label.clone(), payloads, count);
            // CPU load measured at the configured MSS (full segments).
            let full = nttcp_point(cfg, cfg.sysctls.mss(), count, 11);
            LadderResult {
                rung,
                label,
                peak_mbps: series.peak(),
                mean_mbps: series.mean(),
                rx_cpu_load: full.rx_cpu_load,
                tx_cpu_load: full.tx_cpu_load,
            }
        })
        .collect()
}

/// Run a single Iperf point back-to-back: a timed stream of `payload`-byte
/// writes, measured over `duration` after `start`.
///
/// §3.2: "Iperf measures the amount of data sent over a consistent stream
/// in a set time … well suited for measuring raw bandwidth"; the paper
/// notes it agrees with NTTCP within 2-3%.
pub fn iperf_point(cfg: HostConfig, payload: u64, start: Nanos, duration: Nanos, seed: u64) -> f64 {
    let app = App::Iperf(tengig_tools::Iperf::new(start, duration, payload));
    let (mut lab, mut eng) = b2b_lab(cfg, app, seed);
    crate::lab::kick(&mut lab, &mut eng);
    // Run past the deadline so in-flight data lands and is counted (the
    // tool itself clips to the window).
    eng.run_until(&mut lab, start + duration + Nanos::from_millis(20));
    // The deadline cuts the run short of a full drain; skip the drain check.
    crate::lab::check_sanitizer(&lab, &mut eng, false);
    let App::Iperf(ip) = &lab.flows[0].app else {
        unreachable!()
    };
    ip.throughput().gbps()
}

/// The §3.5.2 packet-generator experiment.
#[derive(Debug, Clone, Copy)]
pub struct PktgenResult {
    /// Payload per packet.
    pub payload: u64,
    /// Achieved packets per second.
    pub pps: f64,
    /// Achieved payload bandwidth in Gb/s.
    pub gbps: f64,
}

/// Run pktgen back-to-back with `count` packets of `payload` bytes.
pub fn pktgen_run(cfg: HostConfig, payload: u64, count: u64) -> PktgenResult {
    let (mut lab, mut eng) = b2b_lab(cfg, App::Pktgen(Pktgen::new(payload, count)), 3);
    run_to_completion(&mut lab, &mut eng);
    let App::Pktgen(pg) = &lab.flows[0].app else {
        unreachable!()
    };
    PktgenResult {
        payload,
        pps: pg.packets_per_sec(),
        gbps: pg.throughput().gbps(),
    }
}

/// Steady-state throughput of a long NTTCP run measured over a window
/// (used by WAN and anecdotal experiments where slow-start warmup must be
/// excluded).
pub fn windowed_throughput(
    mut lab: crate::lab::Lab,
    mut eng: crate::lab::LabEngine,
    warmup: Nanos,
    window: Nanos,
) -> f64 {
    crate::lab::kick(&mut lab, &mut eng);
    // advance_to (not run_until) so the clock sits exactly on the window
    // edges and `window` is exactly the virtual time measured over.
    eng.advance_to(&mut lab, warmup);
    let bytes_at = |lab: &crate::lab::Lab| match &lab.flows[0].app {
        App::Nttcp { rx, .. } => rx.received,
        _ => 0,
    };
    let b0 = bytes_at(&lab);
    eng.advance_to(&mut lab, warmup + window);
    // Windowed run: frames are still in flight, so no drain check.
    crate::lab::check_sanitizer(&lab, &mut eng, false);
    let b1 = bytes_at(&lab);
    rate_of(b1 - b0, window).gbps()
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: u64 = 1200;

    #[test]
    fn jumbo_beats_standard_mtu_stock() {
        // Fig. 3 shape: 9000 MTU ≈ 1.5x the 1500 MTU peak, stock config.
        let std = nttcp_point(
            LadderRung::Stock.pe2650_config(Mtu::STANDARD),
            1448,
            QUICK,
            1,
        );
        let jumbo = nttcp_point(
            LadderRung::Stock.pe2650_config(Mtu::JUMBO_9000),
            8948,
            QUICK,
            1,
        );
        let r = jumbo.throughput.gbps() / std.throughput.gbps();
        assert!((1.25..2.2).contains(&r), "jumbo/std ratio {r}");
    }

    #[test]
    fn sweep_is_sorted_and_labeled() {
        let cfg = LadderRung::Stock.pe2650_config(Mtu::STANDARD);
        let s = throughput_sweep(cfg, "1500MTU,SMP,512PCI", &[512, 1448, 1024], 300);
        assert_eq!(s.label, "1500MTU,SMP,512PCI");
        let xs: Vec<f64> = s.points.iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![512.0, 1024.0, 1448.0]);
        assert!(s.peak() > 0.0);
    }

    #[test]
    fn ladder_improves_monotonically_at_jumbo_peak() {
        // The paper's ladder: each rung's peak ≥ the previous (within
        // simulation noise at reduced packet counts).
        let results = ladder(Mtu::JUMBO_9000, &[8948], QUICK);
        assert_eq!(results.len(), 6);
        let stock = results[0].peak_mbps;
        let win = results[3].peak_mbps;
        let m8160 = results[4].peak_mbps;
        assert!(win > stock * 1.2, "windows rung {win} vs stock {stock}");
        assert!(m8160 >= win * 0.9, "8160 {m8160} vs windows {win}");
    }

    #[test]
    fn pktgen_beats_tcp() {
        // §3.5.2: observed TCP ≈ 75% of pktgen.
        let cfg = LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160);
        let pg = pktgen_run(cfg, 8132, 2000);
        let tcp = nttcp_point(cfg, 8108, QUICK, 1);
        assert!(
            pg.gbps > tcp.throughput.gbps(),
            "pktgen {} must beat TCP {}",
            pg.gbps,
            tcp.throughput.gbps()
        );
    }
}
