//! The `grid` experiment family: fabric-scale runs executed as sharded
//! parallel simulations.
//!
//! Two fabrics from the "networks of workstations, clusters, and grids"
//! side of the paper's title:
//!
//! * **fat-tree** — racks of GbE workstations aggregating through leaf
//!   switches into 10GbE spine hosts ([`tengig_net::FatTreeSpec`]),
//! * **torus** — an APENet-style 3D torus of nearest-neighbor exchanges
//!   ([`tengig_net::TorusSpec`]).
//!
//! Every run goes through [`run_grid`], which executes the world as
//! `shards` conservatively synchronized replicas (see
//! [`crate::lab::grid`] and [`tengig_sim::run_sharded`]); the fabric's
//! [`lookahead`](tengig_net::FatTreeSpec::lookahead) — the minimum
//! cross-shard path base latency — is the synchronization window. The
//! merged result is a pure function of `(preset, seed)`: **shard count
//! must never change a byte of the report**, which `make grid-check` and
//! the CI thread-matrix enforce against `goldens/grid.jsonl`.
//!
//! Shard count and sweep threads are orthogonal: the sweep runner
//! parallelizes across scenarios while each scenario parallelizes across
//! shards, and neither axis is allowed to leak into the output.

use crate::config::{HostConfig, LadderRung};
use crate::lab::{self, App, GridRt, GridShard, Lab};
use crate::report::{Json, SweepReport};
use crate::sweep::{scenarios, SweepRunner};
use tengig_ethernet::Mtu;
use tengig_net::{FatTreeSpec, TorusSpec};
use tengig_nic::NicSpec;
use tengig_sim::{rate_of, run_sharded, Engine, Nanos, SimRng};
use tengig_tcp::Sysctls;
use tengig_tools::{NttcpReceiver, NttcpSender};

/// One grid workload: a fabric plus the per-flow NTTCP transfer size.
#[derive(Debug, Clone, Copy)]
pub enum GridPreset {
    /// GbE workstations aggregating into 10GbE spine hosts.
    FatTree {
        /// The fabric.
        spec: FatTreeSpec,
        /// NTTCP payload per write.
        payload: u64,
        /// Writes per workstation.
        count: u64,
    },
    /// APENet-style nearest-neighbor exchange on a 3D torus.
    Torus {
        /// The fabric.
        spec: TorusSpec,
        /// NTTCP payload per write.
        payload: u64,
        /// Writes per node.
        count: u64,
    },
}

impl GridPreset {
    /// The canonical fat-tree points of the pinned grid sweep.
    pub fn fat_tree(leaves: usize, hosts_per_leaf: usize, spines: usize) -> Self {
        GridPreset::FatTree {
            spec: FatTreeSpec::gbe_into_tengbe(leaves, hosts_per_leaf, spines),
            payload: 8948,
            count: 30,
        }
    }

    /// The canonical APENet-style torus point of the pinned grid sweep.
    pub fn torus(dims: [usize; 3]) -> Self {
        GridPreset::Torus {
            spec: TorusSpec::apenet(dims),
            payload: 8948,
            count: 30,
        }
    }

    /// Scenario label for reports.
    pub fn label(&self) -> String {
        match self {
            GridPreset::FatTree { spec, .. } => format!(
                "fat_tree/{}x{}into{}",
                spec.leaves, spec.hosts_per_leaf, spec.spines
            ),
            GridPreset::Torus { spec, .. } => {
                format!("torus/{}x{}x{}", spec.dims[0], spec.dims[1], spec.dims[2])
            }
        }
    }

    /// The conservative synchronization window this fabric affords: the
    /// minimum base latency over every cross-shard path.
    pub fn lookahead(&self) -> Nanos {
        match self {
            GridPreset::FatTree { spec, .. } => spec.lookahead(),
            GridPreset::Torus { spec, .. } => spec.lookahead(),
        }
    }

    /// Flow count of the assembled world.
    pub fn flows(&self) -> usize {
        match self {
            GridPreset::FatTree { spec, .. } => spec.workstations(),
            GridPreset::Torus { spec, .. } => spec.nodes(),
        }
    }
}

/// The GbE workstation config for fat-tree leaves (same class as the
/// multiflow experiment's peers).
fn workstation() -> HostConfig {
    HostConfig {
        hw: tengig_hw::HostSpec::gbe_workstation(),
        nic: NicSpec::e1000_gbe(),
        sysctls: Sysctls::linux24_defaults()
            .with_buffers(256 * 1024)
            .with_mtu(Mtu::JUMBO_9000),
    }
}

/// The 10GbE host config for spines and torus nodes: the paper's tuned
/// PE2650.
fn tengbe() -> HostConfig {
    LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000)
}

/// Build one shard's replica of the preset's world: the full topology is
/// constructed identically on every shard (same seed, same fork labels,
/// same index order), then the replica is switched into grid mode with a
/// host-index round-robin ownership map and kicked.
///
/// Links are per-flow private directional paths, which satisfies the
/// grid partition-safety rule by construction.
fn build_replica(preset: &GridPreset, seed: u64, shards: usize, shard: usize) -> GridShard {
    let mut lab = Lab::new();
    let mut rng = SimRng::seeded(seed);
    match preset {
        GridPreset::FatTree {
            spec,
            payload,
            count,
        } => {
            let ws: Vec<usize> = (0..spec.workstations())
                .map(|_| lab.add_host(workstation()))
                .collect();
            let spines: Vec<usize> = (0..spec.spines).map(|_| lab.add_host(tengbe())).collect();
            let up = spec.up_path();
            let down = spec.down_path();
            for (w, &ws_h) in ws.iter().enumerate() {
                let l_up = lab.add_link(&up, rng.fork(&format!("up-{w}")));
                let l_down = lab.add_link(&down, rng.fork(&format!("down-{w}")));
                lab.add_flow(
                    ws_h,
                    spines[spec.spine_of(w)],
                    vec![l_up],
                    vec![l_down],
                    App::Nttcp {
                        tx: NttcpSender::new(*payload, *count),
                        rx: NttcpReceiver::new(payload * count),
                    },
                );
            }
        }
        GridPreset::Torus {
            spec,
            payload,
            count,
        } => {
            let nodes: Vec<usize> = (0..spec.nodes()).map(|_| lab.add_host(tengbe())).collect();
            let path = spec.link_path();
            for (i, &src) in nodes.iter().enumerate() {
                let dst = nodes[spec.plus_x(i)];
                let l_fwd = lab.add_link(&path, rng.fork(&format!("px-{i}")));
                let l_rev = lab.add_link(&path, rng.fork(&format!("px-rev-{i}")));
                lab.add_flow(
                    src,
                    dst,
                    vec![l_fwd],
                    vec![l_rev],
                    App::Nttcp {
                        tx: NttcpSender::new(*payload, *count),
                        rx: NttcpReceiver::new(payload * count),
                    },
                );
            }
        }
    }
    let owner: Vec<usize> = (0..lab.hosts.len()).map(|h| h % shards).collect();
    let flows = lab.flows.len();
    lab.enable_grid(GridRt::new(shards, shard, owner, flows));
    let mut eng = Engine::new();
    eng.event_limit = 2_000_000_000;
    lab::install_default_sanitizer(&mut lab, &mut eng, seed);
    lab::kick(&mut lab, &mut eng);
    GridShard { lab, eng }
}

/// Merged result of one grid run. Every field is shard-count-invariant —
/// that is the contract `goldens/grid.jsonl` pins.
#[derive(Debug, Clone, Copy)]
pub struct GridResult {
    /// Flow count.
    pub flows: u64,
    /// Total events executed, summed over shards. Exactly equal at any
    /// shard count: every event runs on exactly one shard, and ingress
    /// drains are per (host, instant) in all modes.
    pub events: u64,
    /// Payload bytes delivered to all receivers.
    pub payload_bytes: u64,
    /// Earliest flow start.
    pub first_start: Nanos,
    /// Latest flow completion.
    pub last_done: Nanos,
    /// Aggregate payload throughput over the active interval, Gb/s.
    pub aggregate_gbps: f64,
}

/// Run one grid preset as `shards` conservatively synchronized shards and
/// merge the result. Each per-flow value is read from the shard that owns
/// the host that produced it: start times from the transmitting host's
/// owner, completion times and delivered bytes from the receiving host's
/// owner. (CPU-load figures are deliberately absent: they would read the
/// *other* endpoint's replica, which is stale by design in grid mode.)
pub fn run_grid(preset: &GridPreset, shards: usize, seed: u64) -> GridResult {
    assert!(shards > 0, "a grid run needs at least one shard");
    let lookahead = preset.lookahead();
    let mut replicas: Vec<GridShard> = (0..shards)
        .map(|s| build_replica(preset, seed, shards, s))
        .collect();
    run_sharded(&mut replicas, lookahead);
    for shard in &mut replicas {
        // Every calendar drained, so each shard's byte ledger must sit at
        // zero in-flight (cross-shard frames were handed off explicitly).
        lab::check_sanitizer(&shard.lab, &mut shard.eng, true);
    }
    let events: u64 = replicas.iter().map(|s| s.eng.executed()).sum();
    let mut payload_bytes = 0u64;
    let mut first_start: Option<Nanos> = None;
    let mut last_done: Option<Nanos> = None;
    let flows = replicas[0].lab.flows.len();
    for f in 0..flows {
        let tx_owner = replicas[0].lab.flows[f].host[0] % shards;
        let rx_owner = replicas[0].lab.flows[f].host[1] % shards;
        let t_start = replicas[tx_owner].lab.flows[f].meas.t_start;
        let t_done = replicas[rx_owner].lab.flows[f].meas.t_done;
        let t_start = t_start.expect("flow never started on its owning shard");
        let t_done = t_done.expect("flow never finished on its owning shard");
        first_start = Some(first_start.map_or(t_start, |t| t.min(t_start)));
        last_done = Some(last_done.map_or(t_done, |t| t.max(t_done)));
        if let App::Nttcp { rx, .. } = &replicas[rx_owner].lab.flows[f].app {
            payload_bytes += rx.received;
        }
    }
    let first_start = first_start.expect("grid presets always carry flows");
    let last_done = last_done.expect("grid presets always carry flows");
    GridResult {
        flows: flows as u64,
        events,
        payload_bytes,
        first_start,
        last_done,
        aggregate_gbps: rate_of(payload_bytes, last_done - first_start).gbps(),
    }
}

/// The pinned grid sweep: two fat-tree points and one torus point, sized
/// so the whole sweep stays CI-cheap while still crossing every shard
/// boundary (host ownership is round-robin, so with more than one shard
/// every flow's data and ACK paths are cross-shard).
pub fn standard_presets() -> Vec<GridPreset> {
    vec![
        GridPreset::fat_tree(2, 2, 1),
        GridPreset::fat_tree(2, 4, 2),
        GridPreset::torus([2, 2, 2]),
    ]
}

/// Sweep the grid presets on the deterministic [`SweepRunner`] with each
/// scenario executed as `shards` shards. Returns per-point results plus
/// the machine-readable report whose JSONL bytes `goldens/grid.jsonl`
/// pins across shard counts {1, 2, 4} and sweep thread counts {1, 4}.
pub fn grid_sweep_report(
    presets: &[GridPreset],
    shards: usize,
    master_seed: u64,
    runner: SweepRunner,
) -> (Vec<GridResult>, SweepReport) {
    let grid = scenarios(master_seed, presets.iter().copied(), |p| p.label());
    let results = runner
        .run(&grid, |sc| run_grid(&sc.input, shards, sc.seed))
        .expect("grid sweep scenario panicked");
    let mut report = SweepReport::new("grid/fabric", master_seed);
    for (sc, r) in grid.iter().zip(&results) {
        report.push_row(
            sc.index,
            sc.label.clone(),
            sc.seed,
            vec![
                ("flows".to_string(), Json::U64(r.flows)),
                ("events".to_string(), Json::U64(r.events)),
                ("payload_bytes".to_string(), Json::U64(r.payload_bytes)),
                (
                    "first_start_ns".to_string(),
                    Json::U64(r.first_start.as_nanos()),
                ),
                (
                    "last_done_ns".to_string(),
                    Json::U64(r.last_done.as_nanos()),
                ),
                ("aggregate_gbps".to_string(), Json::F64(r.aggregate_gbps)),
            ],
        );
    }
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_grid_completes_and_matches_across_shard_counts() {
        let preset = GridPreset::fat_tree(2, 2, 1);
        let one = run_grid(&preset, 1, 7);
        assert_eq!(one.flows, 4);
        assert!(one.payload_bytes >= 4 * 8948 * 30);
        assert!(one.aggregate_gbps > 0.5, "gbps {}", one.aggregate_gbps);
        let two = run_grid(&preset, 2, 7);
        assert_eq!(one.events, two.events);
        assert_eq!(one.last_done, two.last_done);
        assert_eq!(one.first_start, two.first_start);
        assert_eq!(one.payload_bytes, two.payload_bytes);
    }

    #[test]
    fn torus_grid_completes() {
        let preset = GridPreset::torus([2, 2, 1]);
        let r = run_grid(&preset, 2, 11);
        assert_eq!(r.flows, 4);
        assert!(r.last_done > r.first_start);
        assert!(r.aggregate_gbps > 1.0, "gbps {}", r.aggregate_gbps);
    }
}
