//! The `grid` experiment family: fabric-scale runs executed as sharded
//! parallel simulations.
//!
//! Two fabrics from the "networks of workstations, clusters, and grids"
//! side of the paper's title:
//!
//! * **fat-tree** — racks of GbE workstations aggregating through leaf
//!   switches into 10GbE spine hosts ([`tengig_net::FatTreeSpec`]),
//! * **torus** — an APENet-style 3D torus of nearest-neighbor exchanges
//!   ([`tengig_net::TorusSpec`]).
//!
//! Every run goes through [`run_grid`], which executes the world as
//! `shards` conservatively synchronized replicas (see
//! [`crate::lab::grid`] and [`tengig_sim::run_sharded`]); the fabric's
//! [`lookahead`](tengig_net::FatTreeSpec::lookahead) — the minimum
//! cross-shard path base latency — is the synchronization window. The
//! merged result is a pure function of `(preset, seed)`: **shard count
//! must never change a byte of the report**, which `make grid-check` and
//! the CI thread-matrix enforce against `goldens/grid.jsonl`.
//!
//! Shard count and sweep threads are orthogonal: the sweep runner
//! parallelizes across scenarios while each scenario parallelizes across
//! shards, and neither axis is allowed to leak into the output.

use crate::config::{HostConfig, LadderRung};
use crate::lab::{self, App, Ev, GridRt, GridShard, Lab};
use crate::report::{Json, MetricsSidecar, SweepReport};
use crate::sweep::{scenarios, Scenario, SweepRunner};
use std::fmt::Write as _;
use tengig_ethernet::Mtu;
use tengig_net::{FatTreeSpec, TorusSpec};
use tengig_nic::NicSpec;
use tengig_sim::{
    rate_of, run_sharded, run_sharded_wall, Engine, EngineCounters, Hist, Nanos, ObsConfig, SimRng,
    Timelines, WallStats,
};
use tengig_tcp::Sysctls;
use tengig_tools::{NttcpReceiver, NttcpSender};

/// One grid workload: a fabric plus the per-flow NTTCP transfer size.
#[derive(Debug, Clone, Copy)]
pub enum GridPreset {
    /// GbE workstations aggregating into 10GbE spine hosts.
    FatTree {
        /// The fabric.
        spec: FatTreeSpec,
        /// NTTCP payload per write.
        payload: u64,
        /// Writes per workstation.
        count: u64,
    },
    /// APENet-style nearest-neighbor exchange on a 3D torus.
    Torus {
        /// The fabric.
        spec: TorusSpec,
        /// NTTCP payload per write.
        payload: u64,
        /// Writes per node.
        count: u64,
    },
}

impl GridPreset {
    /// The canonical fat-tree points of the pinned grid sweep.
    pub fn fat_tree(leaves: usize, hosts_per_leaf: usize, spines: usize) -> Self {
        GridPreset::FatTree {
            spec: FatTreeSpec::gbe_into_tengbe(leaves, hosts_per_leaf, spines),
            payload: 8948,
            count: 30,
        }
    }

    /// The canonical APENet-style torus point of the pinned grid sweep.
    pub fn torus(dims: [usize; 3]) -> Self {
        GridPreset::Torus {
            spec: TorusSpec::apenet(dims),
            payload: 8948,
            count: 30,
        }
    }

    /// Scenario label for reports.
    pub fn label(&self) -> String {
        match self {
            GridPreset::FatTree { spec, .. } => format!(
                "fat_tree/{}x{}into{}",
                spec.leaves, spec.hosts_per_leaf, spec.spines
            ),
            GridPreset::Torus { spec, .. } => {
                format!("torus/{}x{}x{}", spec.dims[0], spec.dims[1], spec.dims[2])
            }
        }
    }

    /// The conservative synchronization window this fabric affords: the
    /// minimum base latency over every cross-shard path.
    pub fn lookahead(&self) -> Nanos {
        match self {
            GridPreset::FatTree { spec, .. } => spec.lookahead(),
            GridPreset::Torus { spec, .. } => spec.lookahead(),
        }
    }

    /// Flow count of the assembled world.
    pub fn flows(&self) -> usize {
        match self {
            GridPreset::FatTree { spec, .. } => spec.workstations(),
            GridPreset::Torus { spec, .. } => spec.nodes(),
        }
    }
}

/// The GbE workstation config for fat-tree leaves (same class as the
/// multiflow experiment's peers).
pub(crate) fn workstation() -> HostConfig {
    HostConfig {
        hw: tengig_hw::HostSpec::gbe_workstation(),
        nic: NicSpec::e1000_gbe(),
        sysctls: Sysctls::linux24_defaults()
            .with_buffers(256 * 1024)
            .with_mtu(Mtu::JUMBO_9000),
    }
}

/// The 10GbE host config for spines and torus nodes: the paper's tuned
/// PE2650.
pub(crate) fn tengbe() -> HostConfig {
    LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000)
}

/// Build one shard's replica of the preset's world: the full topology is
/// constructed identically on every shard (same seed, same fork labels,
/// same index order), then the replica is switched into grid mode with a
/// host-index round-robin ownership map and kicked.
///
/// Links are per-flow private directional paths, which satisfies the
/// grid partition-safety rule by construction.
fn build_replica(
    preset: &GridPreset,
    seed: u64,
    shards: usize,
    shard: usize,
    obs: Option<&ObsConfig>,
) -> GridShard {
    let mut lab = Lab::new();
    let mut rng = SimRng::seeded(seed);
    match preset {
        GridPreset::FatTree {
            spec,
            payload,
            count,
        } => {
            let ws: Vec<usize> = (0..spec.workstations())
                .map(|_| lab.add_host(workstation()))
                .collect();
            let spines: Vec<usize> = (0..spec.spines).map(|_| lab.add_host(tengbe())).collect();
            let up = spec.up_path();
            let down = spec.down_path();
            for (w, &ws_h) in ws.iter().enumerate() {
                let l_up = lab.add_link(&up, rng.fork(&format!("up-{w}")));
                let l_down = lab.add_link(&down, rng.fork(&format!("down-{w}")));
                lab.add_flow(
                    ws_h,
                    spines[spec.spine_of(w)],
                    vec![l_up],
                    vec![l_down],
                    App::Nttcp {
                        tx: NttcpSender::new(*payload, *count),
                        rx: NttcpReceiver::new(payload * count),
                    },
                );
            }
        }
        GridPreset::Torus {
            spec,
            payload,
            count,
        } => {
            let nodes: Vec<usize> = (0..spec.nodes()).map(|_| lab.add_host(tengbe())).collect();
            let path = spec.link_path();
            for (i, &src) in nodes.iter().enumerate() {
                let dst = nodes[spec.plus_x(i)];
                let l_fwd = lab.add_link(&path, rng.fork(&format!("px-{i}")));
                let l_rev = lab.add_link(&path, rng.fork(&format!("px-rev-{i}")));
                lab.add_flow(
                    src,
                    dst,
                    vec![l_fwd],
                    vec![l_rev],
                    App::Nttcp {
                        tx: NttcpSender::new(*payload, *count),
                        rx: NttcpReceiver::new(payload * count),
                    },
                );
            }
        }
    }
    let owner: Vec<usize> = (0..lab.hosts.len()).map(|h| h % shards).collect();
    let flows = lab.flows.len();
    lab.enable_grid(GridRt::new(shards, shard, owner, flows));
    if let Some(cfg) = obs {
        lab.enable_obs(cfg, seed);
    }
    let mut eng = Engine::new();
    eng.event_limit = 2_000_000_000;
    lab::install_default_sanitizer(&mut lab, &mut eng, seed);
    lab::kick(&mut lab, &mut eng);
    GridShard { lab, eng }
}

/// Merged result of one grid run. Every field is shard-count-invariant —
/// that is the contract `goldens/grid.jsonl` pins.
#[derive(Debug, Clone, Copy)]
pub struct GridResult {
    /// Flow count.
    pub flows: u64,
    /// Total events executed, summed over shards. Exactly equal at any
    /// shard count: every event runs on exactly one shard, and ingress
    /// drains are per (host, instant) in all modes.
    pub events: u64,
    /// Payload bytes delivered to all receivers.
    pub payload_bytes: u64,
    /// Earliest flow start.
    pub first_start: Nanos,
    /// Latest flow completion.
    pub last_done: Nanos,
    /// Aggregate payload throughput over the active interval, Gb/s.
    pub aggregate_gbps: f64,
}

/// Run one grid preset as `shards` conservatively synchronized shards and
/// merge the result. Each per-flow value is read from the shard that owns
/// the host that produced it: start times from the transmitting host's
/// owner, completion times and delivered bytes from the receiving host's
/// owner. (CPU-load figures are deliberately absent: they would read the
/// *other* endpoint's replica, which is stale by design in grid mode.)
pub fn run_grid(preset: &GridPreset, shards: usize, seed: u64) -> GridResult {
    assert!(shards > 0, "a grid run needs at least one shard");
    let mut replicas = build_replicas(preset, shards, seed, None);
    run_sharded(&mut replicas, preset.lookahead());
    merge_grid(&mut replicas, shards)
}

/// Build every shard's replica of the preset's world.
fn build_replicas(
    preset: &GridPreset,
    shards: usize,
    seed: u64,
    obs: Option<&ObsConfig>,
) -> Vec<GridShard> {
    (0..shards)
        .map(|s| build_replica(preset, seed, shards, s, obs))
        .collect()
}

/// Check every shard's sanitizer and merge the per-shard state into the
/// shard-count-invariant [`GridResult`] (shared verbatim by the plain,
/// profiled, and observed run paths, so all three produce identical
/// result bytes by construction).
fn merge_grid(replicas: &mut [GridShard], shards: usize) -> GridResult {
    for shard in replicas.iter_mut() {
        // Every calendar drained, so each shard's byte ledger must sit at
        // zero in-flight (cross-shard frames were handed off explicitly).
        lab::check_sanitizer(&shard.lab, &mut shard.eng, true);
    }
    let events: u64 = replicas.iter().map(|s| s.eng.executed()).sum();
    let mut payload_bytes = 0u64;
    let mut first_start: Option<Nanos> = None;
    let mut last_done: Option<Nanos> = None;
    let flows = replicas[0].lab.flows.len();
    for f in 0..flows {
        let tx_owner = replicas[0].lab.flows[f].host[0] % shards;
        let rx_owner = replicas[0].lab.flows[f].host[1] % shards;
        let t_start = replicas[tx_owner].lab.flows[f].meas.t_start;
        let t_done = replicas[rx_owner].lab.flows[f].meas.t_done;
        let t_start = t_start.expect("flow never started on its owning shard");
        let t_done = t_done.expect("flow never finished on its owning shard");
        first_start = Some(first_start.map_or(t_start, |t| t.min(t_start)));
        last_done = Some(last_done.map_or(t_done, |t| t.max(t_done)));
        if let App::Nttcp { rx, .. } = &replicas[rx_owner].lab.flows[f].app {
            payload_bytes += rx.received;
        }
    }
    let first_start = first_start.expect("grid presets always carry flows");
    let last_done = last_done.expect("grid presets always carry flows");
    GridResult {
        flows: flows as u64,
        events,
        payload_bytes,
        first_start,
        last_done,
        aggregate_gbps: rate_of(payload_bytes, last_done - first_start).gbps(),
    }
}

/// The three-section self-profile of one grid run (see `DESIGN.md` §16).
///
/// Only [`GridProfile::sim`] is golden-gated: it carries exclusively
/// shard-count- and thread-invariant merges (per-kind fired counts,
/// executed totals, engine verb counters, the rx-interrupt and
/// ingress-drain batch histograms). The `local` section is deterministic
/// for a fixed shard count but partition-dependent; the `wall` section is
/// host-domain time and never reproducible.
#[derive(Debug, Clone)]
pub struct GridProfile {
    /// The gated deterministic section: one JSONL line, byte-identical
    /// across shard counts and sweep threads.
    pub sim: String,
    /// Per-shard deterministic section, one JSONL line per shard
    /// (never gated — the values are functions of the partition).
    pub local: String,
    /// Host-domain wall-time section, one JSONL line per shard
    /// (never gated, never deterministic).
    pub wall: String,
}

/// Run one grid preset with the self-profiling plane collected: the
/// identical simulation [`run_grid`] executes (same events, same result
/// bytes), plus the deterministic counters and the wall-time
/// barrier/execute accounting of [`tengig_sim::run_sharded_wall`].
pub fn run_grid_prof(preset: &GridPreset, shards: usize, seed: u64) -> (GridResult, GridProfile) {
    assert!(shards > 0, "a grid run needs at least one shard");
    let mut replicas = build_replicas(preset, shards, seed, None);
    let mut wall = vec![WallStats::default(); shards];
    run_sharded_wall(&mut replicas, preset.lookahead(), Some(&mut wall));
    let result = merge_grid(&mut replicas, shards);
    let profile = collect_profile(&preset.label(), seed, &replicas, &wall);
    (result, profile)
}

/// Run one grid preset with observability timelines enabled on every
/// shard and merged shard-count-invariantly: each shard samples only the
/// scopes it owns (see [`crate::lab`]'s grid-aware `obs_sample`), and the
/// merged [`Timelines`] JSONL is byte-identical at any shard count.
pub fn run_grid_obs(
    preset: &GridPreset,
    shards: usize,
    seed: u64,
    obs: &ObsConfig,
) -> (GridResult, Timelines) {
    assert!(shards > 0, "a grid run needs at least one shard");
    let mut replicas = build_replicas(preset, shards, seed, Some(obs));
    run_sharded(&mut replicas, preset.lookahead());
    let mut tl = replicas[0]
        .lab
        .take_timelines()
        .expect("obs was enabled on every replica");
    for shard in &mut replicas[1..] {
        tl.merge(
            &shard
                .lab
                .take_timelines()
                .expect("obs was enabled on every replica"),
        );
    }
    let result = merge_grid(&mut replicas, shards);
    (result, tl)
}

/// Assemble the three profile sections from the finished replicas.
fn collect_profile(
    label: &str,
    seed: u64,
    replicas: &[GridShard],
    wall: &[WallStats],
) -> GridProfile {
    // Invariant merges for the gated "sim" section.
    let mut fired = [0u64; Ev::KINDS];
    let mut engine = EngineCounters::default();
    let mut rx_batch = Hist::new();
    let mut drain_batch = Hist::new();
    let mut executed = 0u64;
    for s in replicas {
        let p = s.lab.prof();
        for (t, f) in fired.iter_mut().zip(&p.fired) {
            *t += f;
        }
        engine.merge(&s.eng.prof_counters());
        rx_batch.merge(&p.rx_batch);
        executed += s.eng.executed();
        let g = s.lab.grid().expect("grid shard without grid");
        drain_batch.merge(&g.drain_batch);
    }
    let fired_obj = Json::Object(
        Ev::NAMES
            .iter()
            .zip(&fired)
            .map(|(n, &c)| (n.to_string(), Json::U64(c)))
            .collect(),
    );
    let engine_obj = Json::Object(vec![
        ("sched_events".to_string(), Json::U64(engine.sched_events)),
        ("sched_timers".to_string(), Json::U64(engine.sched_timers)),
        ("sched_front".to_string(), Json::U64(engine.sched_front)),
        ("cancels".to_string(), Json::U64(engine.cancels)),
        ("cancel_hits".to_string(), Json::U64(engine.cancel_hits)),
    ]);
    let mut sim = String::new();
    let _ = writeln!(
        sim,
        "{{\"prof\":\"sim\",\"preset\":\"{label}\",\"seed\":{seed},\"executed\":{executed},\
         \"fired\":{fired_obj},\"engine\":{engine_obj},\"rx_batch\":{},\"drain_batch\":{}}}",
        rx_batch.render(),
        drain_batch.render(),
    );
    // Per-shard "local" section.
    let mut local = String::new();
    for (i, s) in replicas.iter().enumerate() {
        let p = s.lab.prof();
        let g = s.lab.grid().expect("grid shard without grid");
        let c = s.eng.calendar_counters();
        let cal_obj = Json::Object(vec![
            ("sched_slab".to_string(), Json::U64(c.sched_slab)),
            ("sched_lane".to_string(), Json::U64(c.sched_lane)),
            ("lane_hiwater".to_string(), Json::U64(c.lane_hiwater)),
            ("wheel_parked".to_string(), Json::U64(c.wheel_parked)),
            ("wheel_fallbacks".to_string(), Json::U64(c.wheel_fallbacks)),
            ("wheel_cascades".to_string(), Json::U64(c.wheel_cascades)),
            ("cancels".to_string(), Json::U64(c.cancels)),
            ("cancel_hits".to_string(), Json::U64(c.cancel_hits)),
        ]);
        let _ = writeln!(
            local,
            "{{\"prof\":\"local\",\"preset\":\"{label}\",\"shard\":{i},\"windows\":{},\
             \"msgs_sent\":{},\"pool_hits\":{},\"pool_misses\":{},\"calendar\":{cal_obj}}}",
            g.windows, g.msgs_sent, p.pool_hits, p.pool_misses,
        );
    }
    // Host-domain "wall" section.
    let mut wall_out = String::new();
    for (i, w) in wall.iter().enumerate() {
        let _ = writeln!(wall_out, "{}", w.render(i));
    }
    GridProfile {
        sim,
        local,
        wall: wall_out,
    }
}

/// The pinned grid sweep: two fat-tree points and one torus point, sized
/// so the whole sweep stays CI-cheap while still crossing every shard
/// boundary (host ownership is round-robin, so with more than one shard
/// every flow's data and ACK paths are cross-shard).
pub fn standard_presets() -> Vec<GridPreset> {
    vec![
        GridPreset::fat_tree(2, 2, 1),
        GridPreset::fat_tree(2, 4, 2),
        GridPreset::torus([2, 2, 2]),
    ]
}

/// Sweep the grid presets on the deterministic [`SweepRunner`] with each
/// scenario executed as `shards` shards. Returns per-point results plus
/// the machine-readable report whose JSONL bytes `goldens/grid.jsonl`
/// pins across shard counts {1, 2, 4} and sweep thread counts {1, 4}.
pub fn grid_sweep_report(
    presets: &[GridPreset],
    shards: usize,
    master_seed: u64,
    runner: SweepRunner,
) -> (Vec<GridResult>, SweepReport) {
    let grid = scenarios(master_seed, presets.iter().copied(), |p| p.label());
    let results = runner
        .run(&grid, |sc| run_grid(&sc.input, shards, sc.seed))
        .expect("grid sweep scenario panicked");
    let mut report = SweepReport::new("grid/fabric", master_seed);
    for (sc, r) in grid.iter().zip(&results) {
        push_grid_row(&mut report, sc, r);
    }
    (results, report)
}

/// Append one grid scenario's row to the sweep report. Shared between
/// [`grid_sweep_report`] and [`grid_prof_sweep`] so the profiled sweep's
/// report bytes are identical to the plain one's by construction — the
/// proof that collecting the profile never perturbs `goldens/grid.jsonl`.
fn push_grid_row(report: &mut SweepReport, sc: &Scenario<GridPreset>, r: &GridResult) {
    report.push_row(
        sc.index,
        sc.label.clone(),
        sc.seed,
        vec![
            ("flows".to_string(), Json::U64(r.flows)),
            ("events".to_string(), Json::U64(r.events)),
            ("payload_bytes".to_string(), Json::U64(r.payload_bytes)),
            (
                "first_start_ns".to_string(),
                Json::U64(r.first_start.as_nanos()),
            ),
            (
                "last_done_ns".to_string(),
                Json::U64(r.last_done.as_nanos()),
            ),
            ("aggregate_gbps".to_string(), Json::F64(r.aggregate_gbps)),
        ],
    );
}

/// Sweep the grid presets with the self-profiling plane collected.
/// Returns the primary report (byte-identical to [`grid_sweep_report`]'s),
/// the gated profiling sidecar (one "sim" section per scenario — the
/// bytes `goldens/prof_throughput.jsonl` pins across shard counts
/// {1, 2, 4} and sweep threads {1, 4}), and the ungated host sidecar
/// (per-shard "local" and "wall" sections, for humans).
pub fn grid_prof_sweep(
    presets: &[GridPreset],
    shards: usize,
    master_seed: u64,
    runner: SweepRunner,
) -> (SweepReport, MetricsSidecar, MetricsSidecar) {
    let grid = scenarios(master_seed, presets.iter().copied(), |p| p.label());
    let (results, profiles) = runner
        .run_split(&grid, |sc| run_grid_prof(&sc.input, shards, sc.seed))
        .expect("grid prof sweep scenario panicked");
    let mut report = SweepReport::new("grid/fabric", master_seed);
    let mut gated = MetricsSidecar::new("grid/prof");
    let mut host = MetricsSidecar::new("grid/prof-host");
    for ((sc, r), p) in grid.iter().zip(&results).zip(&profiles) {
        push_grid_row(&mut report, sc, r);
        gated.push(sc.index, sc.label.clone(), p.sim.clone());
        host.push(sc.index, sc.label.clone(), format!("{}{}", p.local, p.wall));
    }
    (report, gated, host)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_grid_completes_and_matches_across_shard_counts() {
        let preset = GridPreset::fat_tree(2, 2, 1);
        let one = run_grid(&preset, 1, 7);
        assert_eq!(one.flows, 4);
        assert!(one.payload_bytes >= 4 * 8948 * 30);
        assert!(one.aggregate_gbps > 0.5, "gbps {}", one.aggregate_gbps);
        let two = run_grid(&preset, 2, 7);
        assert_eq!(one.events, two.events);
        assert_eq!(one.last_done, two.last_done);
        assert_eq!(one.first_start, two.first_start);
        assert_eq!(one.payload_bytes, two.payload_bytes);
    }

    #[test]
    fn torus_grid_completes() {
        let preset = GridPreset::torus([2, 2, 1]);
        let r = run_grid(&preset, 2, 11);
        assert_eq!(r.flows, 4);
        assert!(r.last_done > r.first_start);
        assert!(r.aggregate_gbps > 1.0, "gbps {}", r.aggregate_gbps);
    }
}
